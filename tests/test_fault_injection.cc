/**
 * @file
 * Unit tests for the deterministic fault-injection harness: spec
 * parsing, per-key occurrence windows, substring vs exact key matching,
 * seeded-probability determinism, and the process-global injector's
 * env re-arming (including the exit-2 contract for malformed specs and
 * the SIGKILL semantics of the "die" point).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/fault_injection.hh"

namespace ev8
{
namespace
{

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

TEST(FaultInjector, DefaultConstructedInjectsNothing)
{
    FaultInjector faults;
    EXPECT_FALSE(faults.enabled());
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "g0/r0/gcc"));
    EXPECT_NO_THROW(faults.maybeThrow(FaultPoint::Job, "g0/r0/gcc"));
    EXPECT_NO_THROW(faults.maybeKill("g0/r0/gcc"));
}

TEST(FaultInjector, EmptySpecArmsNothing)
{
    FaultInjector faults{std::string()};
    EXPECT_FALSE(faults.enabled());
}

TEST(FaultInjector, ParsesEveryPointName)
{
    for (const char *spec :
         {"job", "die", "cache_read", "cache_write", "cache_rename",
          "cache_short_write", "ckpt_read", "ckpt_write",
          "ckpt_corrupt", "sidecar_read", "sidecar_write"}) {
        EXPECT_TRUE(FaultInjector{std::string(spec)}.enabled()) << spec;
    }
}

TEST(FaultInjector, RejectsMalformedSpecs)
{
    for (const char *spec :
         {"bogus", "job@0", "job@", "job@two", "job+0", "job+",
          "job~", "job~1.5", "job~-0.1", "job~x", "seed=", "seed=12x",
          ",", "job,,job"}) {
        EXPECT_THROW(FaultInjector{std::string(spec)},
                     std::invalid_argument)
            << "'" << spec << "' should not parse";
    }
}

TEST(FaultInjector, OccurrenceWindowFirstAndCount)
{
    // Fires on occurrences 2 and 3 of each key, nothing else.
    FaultInjector faults("job@2+2");
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "k")); // occurrence 1
    EXPECT_TRUE(faults.fires(FaultPoint::Job, "k"));  // 2
    EXPECT_TRUE(faults.fires(FaultPoint::Job, "k"));  // 3
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "k")); // 4
}

TEST(FaultInjector, OccurrencesAreCountedPerKey)
{
    // A one-shot fault fires once for EVERY distinct matching key,
    // regardless of the order the keys are consulted in.
    FaultInjector faults("job");
    EXPECT_TRUE(faults.fires(FaultPoint::Job, "a"));
    EXPECT_TRUE(faults.fires(FaultPoint::Job, "b"));
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "a"));
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "b"));
}

TEST(FaultInjector, PermanentFaultNeverHeals)
{
    FaultInjector faults("job/=g0/r0/gcc+*");
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(faults.fires(FaultPoint::Job, "g0/r0/gcc")) << i;
}

TEST(FaultInjector, ExactKeyMatchRequiresFullKey)
{
    FaultInjector faults("job/=g0/r0/gcc+*");
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "g0/r0/gcc2"));
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "xg0/r0/gcc"));
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "g0/r0/go"));
    EXPECT_TRUE(faults.fires(FaultPoint::Job, "g0/r0/gcc"));
}

TEST(FaultInjector, SubstringKeyMatchesAnyContainingKey)
{
    FaultInjector faults("job/gcc+*");
    EXPECT_TRUE(faults.fires(FaultPoint::Job, "g0/r0/gcc"));
    EXPECT_TRUE(faults.fires(FaultPoint::Job, "g7/r3/gcc"));
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "g0/r0/compress"));
}

TEST(FaultInjector, PointsDoNotCrossFire)
{
    FaultInjector faults("cache_read+*");
    EXPECT_FALSE(faults.fires(FaultPoint::Job, "k"));
    EXPECT_FALSE(faults.fires(FaultPoint::CacheWrite, "k"));
    EXPECT_TRUE(faults.fires(FaultPoint::CacheRead, "k"));
}

TEST(FaultInjector, MaybeThrowRaisesInjectedFaultWithContext)
{
    FaultInjector faults("ckpt_write/=some-path+*");
    try {
        faults.maybeThrow(FaultPoint::CkptWrite, "some-path");
        FAIL() << "expected InjectedFault";
    } catch (const InjectedFault &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("ckpt_write"), std::string::npos) << what;
        EXPECT_NE(what.find("some-path"), std::string::npos) << what;
    }
}

TEST(FaultInjector, PointNamesMatchSpecSpelling)
{
    EXPECT_STREQ(FaultInjector::pointName(FaultPoint::Job), "job");
    EXPECT_STREQ(FaultInjector::pointName(FaultPoint::Die), "die");
    EXPECT_STREQ(FaultInjector::pointName(FaultPoint::CacheShortWrite),
                 "cache_short_write");
    EXPECT_STREQ(FaultInjector::pointName(FaultPoint::CkptCorrupt),
                 "ckpt_corrupt");
    EXPECT_STREQ(FaultInjector::pointName(FaultPoint::SidecarRead),
                 "sidecar_read");
    EXPECT_STREQ(FaultInjector::pointName(FaultPoint::SidecarWrite),
                 "sidecar_write");
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed)
{
    const std::string spec = "seed=7,job+*~0.5";
    FaultInjector a(spec);
    FaultInjector b(spec);
    int fired = 0;
    for (int i = 0; i < 64; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        const bool fa = a.fires(FaultPoint::Job, key);
        const bool fb = b.fires(FaultPoint::Job, key);
        EXPECT_EQ(fa, fb) << key;
        fired += fa ? 1 : 0;
    }
    // ~32 of 64 keys should fire; generous bounds, the point is that
    // the gate is neither always-on nor always-off.
    EXPECT_GT(fired, 8);
    EXPECT_LT(fired, 56);

    // A different seed reshuffles which keys fire.
    FaultInjector a2(spec);
    FaultInjector c("seed=8,job+*~0.5");
    bool any_difference = false;
    for (int i = 0; i < 64; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        if (a2.fires(FaultPoint::Job, key)
            != c.fires(FaultPoint::Job, key)) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, GlobalRearmsWhenEnvChanges)
{
    {
        ScopedEnv env("EV8_FAULT_SPEC", "job/=unit-test-key+*");
        EXPECT_TRUE(FaultInjector::global().enabled());
        EXPECT_TRUE(FaultInjector::global().fires(FaultPoint::Job,
                                                  "unit-test-key"));
        EXPECT_FALSE(
            FaultInjector::global().fires(FaultPoint::Job, "other-key"));
    }
    {
        ScopedEnv env("EV8_FAULT_SPEC", nullptr);
        EXPECT_FALSE(FaultInjector::global().enabled());
        EXPECT_FALSE(FaultInjector::global().fires(FaultPoint::Job,
                                                   "unit-test-key"));
    }
}

TEST(FaultInjectorDeathTest, GlobalExitsOnMalformedEnvSpec)
{
    EXPECT_EXIT(
        {
            ::setenv("EV8_FAULT_SPEC", "not-a-point", 1);
            FaultInjector::global();
        },
        ::testing::ExitedWithCode(2), "EV8_FAULT_SPEC");
}

TEST(FaultInjectorDeathTest, DieFaultKillsTheProcess)
{
    EXPECT_EXIT(
        {
            FaultInjector faults("die/=k+*");
            faults.maybeKill("k");
        },
        ::testing::KilledBySignal(SIGKILL), "injected die at k");
}

} // namespace
} // namespace ev8
