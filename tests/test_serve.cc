/**
 * @file
 * Session-layer tests for the prediction server, all in-process over
 * handle():
 *
 *  - a served session's cell results are identical to a direct batch
 *    runGrid() of the same grid (the transport is on the critical path,
 *    so this also covers ring + packet framing end to end);
 *  - snapshots report live structured state;
 *  - protocol errors (unknown grid/session, duplicate open, admission
 *    limit, wait before start) come back as {"ok":false,...};
 *  - an injected session_drop kills exactly the targeted session's
 *    cells as structured CellFailures while a sibling session on the
 *    same server completes clean;
 *  - an injected ring_stall perturbs timing only: results unchanged;
 *  - the EV8_SERVE_* env knobs parse strictly (garbage exits 2).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "serve/grids.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "sim/checkpoint.hh"
#include "sim/suite_runner.hh"

namespace ev8
{
namespace
{

constexpr const char *kTinyScale = "3000";

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

/** handle() round trip that must succeed. */
JsonValue
callOk(PredictionServer &server, const std::string &request)
{
    const std::string reply = server.handle(request);
    JsonValue doc = parseJson(reply);
    EXPECT_TRUE(doc.isObject()) << reply;
    const JsonValue *ok = doc.find("ok");
    EXPECT_TRUE(ok && ok->kind == JsonValue::Kind::Bool) << reply;
    EXPECT_TRUE(ok->boolean) << reply;
    return doc;
}

/** handle() round trip that must fail; returns the error message. */
std::string
callErr(PredictionServer &server, const std::string &request)
{
    const std::string reply = server.handle(request);
    const JsonValue doc = parseJson(reply);
    EXPECT_TRUE(doc.isObject()) << reply;
    const JsonValue *ok = doc.find("ok");
    EXPECT_TRUE(ok && !ok->boolean) << reply;
    const JsonValue *err = doc.find("error");
    return err && err->isString() ? err->text : std::string();
}

std::string
openReq(const std::string &session, bool timing = false,
        const std::string &grid = "fig5")
{
    ServeRequest req;
    req.op = "open";
    req.session = session;
    req.grid = grid;
    req.wantEvents = false;
    req.wantMetrics = true;
    req.timing = timing;
    return encodeRequest(req);
}

std::string
sessionReq(const std::string &op, const std::string &session)
{
    ServeRequest req;
    req.op = op;
    req.session = session;
    return req.session.empty() ? std::string() : encodeRequest(req);
}

/** Opens, starts and waits @p session; returns the wait reply. */
JsonValue
runSession(PredictionServer &server, const std::string &session)
{
    callOk(server, openReq(session));
    callOk(server, sessionReq("start", session));
    return callOk(server, sessionReq("wait", session));
}

/** Decodes a wait reply's cells into index order. */
std::vector<GridCheckpoint::RestoredCell>
decodeCells(const JsonValue &done, size_t expect)
{
    const JsonValue &cells = done.at("cells");
    EXPECT_TRUE(cells.isArray());
    EXPECT_EQ(cells.items.size(), expect);
    std::vector<GridCheckpoint::RestoredCell> out(expect);
    for (const JsonValue &item : cells.items) {
        GridCheckpoint::RestoredCell cell;
        const size_t idx = decodeCellRecord(item.text, expect, cell);
        out[idx] = std::move(cell);
    }
    return out;
}

/**
 * Serve parity for one registered grid: a served session's cells must
 * be identical to a direct batch runGrid() over the same definition.
 */
void
expectServeParity(const std::string &grid_id)
{
    SCOPED_TRACE(grid_id);
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    const GridSpec *grid = findGrid(grid_id);
    ASSERT_NE(grid, nullptr);

    // Direct batch reference over the same grid definition.
    SuiteRunner reference(3000, 2);
    const size_t nbench = reference.size();
    MetricRegistry registry;
    SimConfig config = baseConfig(*grid);
    config.metrics = &registry;
    const GridOutcome direct =
        reference.runGrid(buildGridRows(*grid, config));
    ASSERT_TRUE(direct.ok());

    PredictionServer server(ServeLimits{}, 2);
    callOk(server, openReq("s1", false, grid_id));
    callOk(server, sessionReq("start", "s1"));
    const JsonValue done = callOk(server, sessionReq("wait", "s1"));
    const auto cells =
        decodeCells(done, grid->rows.size() * nbench);
    EXPECT_TRUE(done.at("failures").items.empty());

    for (size_t i = 0; i < cells.size(); ++i) {
        const BenchResult &got = cells[i].result;
        const BenchResult &want =
            direct.results[i / nbench][i % nbench];
        EXPECT_EQ(got.bench, want.bench) << i;
        EXPECT_FALSE(got.failed) << i;
        EXPECT_EQ(got.sim.stats.lookups(), want.sim.stats.lookups())
            << i;
        EXPECT_EQ(got.sim.stats.mispredictions(),
                  want.sim.stats.mispredictions())
            << i;
        EXPECT_EQ(got.sim.condBranches, want.sim.condBranches) << i;
        EXPECT_EQ(got.sim.fetchBlocks, want.sim.fetchBlocks) << i;
    }
    EXPECT_EQ(server.failedCellsTotal(), 0u);
}

TEST(Serve, ServedCellsMatchDirectBatchRun)
{
    expectServeParity("fig5");
}

TEST(Serve, Fig7GridServesWithBatchParity)
{
    expectServeParity("fig7");
}

TEST(Serve, Fig8GridServesWithBatchParity)
{
    expectServeParity("fig8");
}

TEST(Serve, Fig7PresetsResolveTheInformationVectorLadder)
{
    const GridSpec *grid = findGrid("fig7");
    ASSERT_NE(grid, nullptr);
    ASSERT_EQ(grid->rows.size(), 5u);

    const SimConfig ghist = rowBaseConfig(*grid, grid->rows[0]);
    EXPECT_EQ(ghist.history, HistoryMode::Ghist);

    const SimConfig nopath = rowBaseConfig(*grid, grid->rows[1]);
    EXPECT_EQ(nopath.history, HistoryMode::LghistNoPath);
    EXPECT_EQ(nopath.historyAge, 0u);

    const SimConfig path = rowBaseConfig(*grid, grid->rows[2]);
    EXPECT_EQ(path.history, HistoryMode::LghistPath);
    EXPECT_EQ(path.historyAge, 0u);

    const SimConfig old3 = rowBaseConfig(*grid, grid->rows[3]);
    EXPECT_EQ(old3.history, HistoryMode::LghistPath);
    EXPECT_EQ(old3.historyAge, 3u);
    EXPECT_FALSE(old3.assignBanks);

    const SimConfig ev8 = rowBaseConfig(*grid, grid->rows[4]);
    EXPECT_EQ(ev8.history, HistoryMode::LghistPath);
    EXPECT_EQ(ev8.historyAge, 3u);
    EXPECT_TRUE(ev8.assignBanks);

    // Fig. 8 rows all share the grid's EV8 preset; the three table
    // sizes must be strictly decreasing in storage.
    const GridSpec *fig8 = findGrid("fig8");
    ASSERT_NE(fig8, nullptr);
    const std::vector<uint64_t> bits = gridStorageBits(*fig8);
    ASSERT_EQ(bits.size(), 3u);
    EXPECT_GT(bits[0], bits[1]);
    EXPECT_GT(bits[1], bits[2]);
}

TEST(Serve, SnapshotReportsStructuredLiveState)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);

    PredictionServer server(ServeLimits{}, 2);
    callOk(server, openReq("snap"));

    // Before start: open state, nothing done.
    JsonValue snap = callOk(server, sessionReq("snapshot", "snap"));
    EXPECT_EQ(snap.at("state").text, "open");
    EXPECT_EQ(snap.at("cells_done").number, 0.0);

    callOk(server, sessionReq("start", "snap"));
    callOk(server, sessionReq("wait", "snap"));

    snap = callOk(server, sessionReq("snapshot", "snap"));
    EXPECT_EQ(snap.at("state").text, "done");
    const double total = snap.at("cells_total").number;
    EXPECT_EQ(snap.at("cells_done").number, total);
    EXPECT_GT(total, 0.0);
    EXPECT_EQ(snap.at("failures").number, 0.0);
    EXPECT_GT(snap.at("packets").number, 0.0);
    // The ring saw every packet through.
    const JsonValue &ring = snap.at("ring");
    EXPECT_EQ(ring.at("pushed").number, ring.at("popped").number);
}

TEST(Serve, ProtocolErrorsAreStructured)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);

    ServeLimits limits;
    limits.maxSessions = 2;
    PredictionServer server(limits, 2);

    // Unknown grid lists the registered ones.
    {
        ServeRequest req;
        req.op = "open";
        req.session = "x";
        req.grid = "nope";
        const std::string err = callErr(server, encodeRequest(req));
        EXPECT_NE(err.find("unknown grid"), std::string::npos);
        EXPECT_NE(err.find("fig5"), std::string::npos);
    }

    // Unknown session, for every per-session op.
    for (const char *op : {"start", "snapshot", "wait"}) {
        const std::string err =
            callErr(server, sessionReq(op, "ghost"));
        EXPECT_NE(err.find("unknown session"), std::string::npos) << op;
    }

    // Malformed request line.
    EXPECT_FALSE(callErr(server, "this is not json").empty());
    EXPECT_NE(callErr(server, "{\"op\":\"frobnicate\"}").find("unknown"),
              std::string::npos);

    callOk(server, openReq("a"));

    // Wait before start is an error, not a hang.
    EXPECT_NE(callErr(server, sessionReq("wait", "a"))
                  .find("never started"),
              std::string::npos);

    // Duplicate session name.
    EXPECT_NE(callErr(server, openReq("a")).find("already"),
              std::string::npos);

    // Admission control: the limit refuses, it does not queue.
    callOk(server, openReq("b"));
    const std::string err = callErr(server, openReq("c"));
    EXPECT_NE(err.find("session limit"), std::string::npos);

    // Run the admitted sessions out so the dtor join is quick.
    callOk(server, sessionReq("start", "a"));
    callOk(server, sessionReq("start", "b"));
    callOk(server, sessionReq("wait", "a"));
    callOk(server, sessionReq("wait", "b"));
}

TEST(Serve, DeliveredSessionsRetireToAdmitNewClients)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    ServeLimits limits;
    limits.maxSessions = 2;
    PredictionServer server(limits, 2);

    // Sequential clients far past the admission limit: every wait
    // delivers the full payload, so each open past the limit retires
    // a finished session instead of refusing admission.
    for (int i = 0; i < 5; ++i)
        runSession(server, "seq" + std::to_string(i));

    const JsonValue stats = callOk(server, "{\"op\":\"stats\"}");
    EXPECT_EQ(stats.at("sessions_opened").number, 5.0);
    EXPECT_EQ(stats.at("sessions_done").number, 5.0);
    // At least the opens beyond the limit forced a retirement.
    EXPECT_GE(stats.at("sessions_retired").number, 3.0);

    // A retired session is gone: its per-session ops say so, and its
    // name is free for reuse.
    EXPECT_NE(callErr(server, sessionReq("wait", "seq0"))
                  .find("unknown session"),
              std::string::npos);
    runSession(server, "seq0");

    // Sessions that never delivered results are not retirable: two
    // undelivered opens pin the table and the third is refused.
    callOk(server, openReq("pin0"));
    callOk(server, openReq("pin1"));
    EXPECT_NE(callErr(server, openReq("pin2")).find("session limit"),
              std::string::npos);
    for (const char *pinned : {"pin0", "pin1"}) {
        callOk(server, sessionReq("start", pinned));
        callOk(server, sessionReq("wait", pinned));
    }
}

TEST(Serve, DeliveredSessionNameIsImmediatelyReusable)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    ServeLimits limits;
    PredictionServer server(limits, 2);

    // A reconnecting client reopens its default session name right
    // after collecting results -- well below the admission limit, so
    // only the collision path (not capacity pressure) can retire it.
    runSession(server, "s1");
    runSession(server, "s1");

    const JsonValue stats = callOk(server, "{\"op\":\"stats\"}");
    EXPECT_EQ(stats.at("sessions_opened").number, 2.0);
    EXPECT_GE(stats.at("sessions_retired").number, 1.0);

    // A live (undelivered) session still blocks its name.
    callOk(server, openReq("s1"));
    EXPECT_NE(callErr(server, openReq("s1")).find("already exists"),
              std::string::npos);
    callOk(server, sessionReq("start", "s1"));
    callOk(server, sessionReq("wait", "s1"));
}

TEST(Serve, SessionDropFailsOnlyTheTargetedSession)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noWait("EV8_RETRY_BASE_MS", "0");
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    // Clean reference for the surviving session's cells.
    std::vector<GridCheckpoint::RestoredCell> clean;
    {
        ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
        PredictionServer server(ServeLimits{}, 2);
        const JsonValue done = runSession(server, "doomed");
        clean = decodeCells(done, done.at("cells").items.size());
    }

    // Kill every cell of session "doomed" permanently; "healthy" runs
    // on the same server and must not see a single occurrence.
    ScopedEnv fault("EV8_FAULT_SPEC", "session_drop/doomed/+*");
    PredictionServer server(ServeLimits{}, 2);

    callOk(server, openReq("doomed"));
    callOk(server, openReq("healthy"));
    callOk(server, sessionReq("start", "doomed"));
    callOk(server, sessionReq("start", "healthy"));
    const JsonValue doomed = callOk(server, sessionReq("wait", "doomed"));
    const JsonValue healthy =
        callOk(server, sessionReq("wait", "healthy"));

    // Every doomed cell is a structured CellFailure...
    const size_t n = clean.size();
    const JsonValue &failures = doomed.at("failures");
    ASSERT_EQ(failures.items.size(), n);
    const CellFailure f = readFailure(failures.items.front());
    EXPECT_EQ(f.row, 0u);
    EXPECT_GE(f.attempts, 1u);
    EXPECT_NE(f.error.find("session"), std::string::npos);

    // ...and the sibling's cells equal a fault-free run exactly.
    const auto survived = decodeCells(healthy, n);
    EXPECT_TRUE(healthy.at("failures").items.empty());
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(survived[i].result.sim.stats.mispredictions(),
                  clean[i].result.sim.stats.mispredictions())
            << i;
        EXPECT_EQ(survived[i].result.sim.stats.lookups(),
                  clean[i].result.sim.stats.lookups())
            << i;
    }

    EXPECT_EQ(server.failedCellsTotal(), n);
}

TEST(Serve, RingStallIsTimingOnly)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    std::vector<GridCheckpoint::RestoredCell> clean;
    {
        ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
        PredictionServer server(ServeLimits{}, 2);
        const JsonValue done = runSession(server, "s1");
        clean = decodeCells(done, done.at("cells").items.size());
    }

    // Stall the producer on its first three packets: the consumer just
    // waits; every simulated byte is unchanged.
    ScopedEnv fault("EV8_FAULT_SPEC", "ring_stall/s1/p+3");
    PredictionServer server(ServeLimits{}, 2);
    const JsonValue done = runSession(server, "s1");
    EXPECT_TRUE(done.at("failures").items.empty());
    const auto stalled = decodeCells(done, clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
        EXPECT_EQ(stalled[i].result.sim.stats.mispredictions(),
                  clean[i].result.sim.stats.mispredictions())
            << i;
        EXPECT_EQ(stalled[i].result.sim.stats.lookups(),
                  clean[i].result.sim.stats.lookups())
            << i;
    }
}

TEST(Serve, ShutdownOpFlagsTheServer)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    PredictionServer server(ServeLimits{}, 2);
    EXPECT_FALSE(server.shutdownRequested());
    callOk(server, "{\"op\":\"shutdown\"}");
    EXPECT_TRUE(server.shutdownRequested());
    // Opens after shutdown are refused.
    EXPECT_FALSE(callErr(server, openReq("late")).empty());
}

TEST(Serve, StatsOpReportsCountersAndLimits)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    PredictionServer server(ServeLimits{}, 2);
    runSession(server, "s1");
    const JsonValue stats = callOk(server, "{\"op\":\"stats\"}");
    EXPECT_EQ(stats.at("sessions_opened").number, 1.0);
    EXPECT_EQ(stats.at("sessions_done").number, 1.0);
}

TEST(Serve, DefaultLimitsParseStrictly)
{
    {
        ScopedEnv a("EV8_SERVE_MAX_SESSIONS", "16");
        ScopedEnv b("EV8_SERVE_RING_CAP", "128");
        ScopedEnv c("EV8_SERVE_BLOCKS_PER_PACKET", "512");
        const ServeLimits limits = PredictionServer::defaultLimits();
        EXPECT_EQ(limits.maxSessions, 16u);
        EXPECT_EQ(limits.ringCapacity, 128u);
        EXPECT_EQ(limits.blocksPerPacket, 512u);
    }
    {
        ScopedEnv a("EV8_SERVE_MAX_SESSIONS", nullptr);
        ScopedEnv b("EV8_SERVE_RING_CAP", nullptr);
        ScopedEnv c("EV8_SERVE_BLOCKS_PER_PACKET", nullptr);
        const ServeLimits limits = PredictionServer::defaultLimits();
        EXPECT_EQ(limits.maxSessions, 8u);
        EXPECT_EQ(limits.ringCapacity, 64u);
        EXPECT_EQ(limits.blocksPerPacket, 4096u);
    }
}

/** handle() round trip that must fail; returns the whole reply. */
JsonValue
callFail(PredictionServer &server, const std::string &request)
{
    const std::string reply = server.handle(request);
    JsonValue doc = parseJson(reply);
    EXPECT_TRUE(doc.isObject()) << reply;
    const JsonValue *ok = doc.find("ok");
    EXPECT_TRUE(ok && !ok->boolean) << reply;
    return doc;
}

TEST(Serve, PingRenewsTheLeaseAndEchoesState)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    PredictionServer server(ServeLimits{}, 2);
    callOk(server, openReq("p"));
    JsonValue pong = callOk(server, sessionReq("ping", "p"));
    EXPECT_EQ(pong.at("state").text, "open");
    callOk(server, sessionReq("start", "p"));
    callOk(server, sessionReq("wait", "p"));
    pong = callOk(server, sessionReq("ping", "p"));
    EXPECT_EQ(pong.at("state").text, "done");
    EXPECT_FALSE(callErr(server, sessionReq("ping", "ghost")).empty());
}

TEST(Serve, AdmissionRefusalIsATypedBusyReply)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ServeLimits limits;
    limits.maxSessions = 1;
    PredictionServer server(limits, 2);
    callOk(server, openReq("pinned"));

    const JsonValue busy = callFail(server, openReq("refused"));
    EXPECT_TRUE(busy.at("busy").boolean);
    EXPECT_GT(busy.at("retry_after_ms").number, 0.0);
    EXPECT_NE(busy.at("error").text.find("session limit"),
              std::string::npos);

    const JsonValue stats = callOk(server, "{\"op\":\"stats\"}");
    EXPECT_EQ(stats.at("sessions_shed").number, 1.0);

    callOk(server, sessionReq("start", "pinned"));
    callOk(server, sessionReq("wait", "pinned"));
}

TEST(Serve, DrainRefusesOpensButServesExistingSessions)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    PredictionServer server(ServeLimits{}, 2);
    callOk(server, openReq("early"));
    callOk(server, sessionReq("start", "early"));

    server.beginDrain();
    EXPECT_TRUE(server.draining());
    const JsonValue refused = callFail(server, openReq("late"));
    EXPECT_TRUE(refused.at("draining").boolean);

    // The in-flight session is untouched by the drain mark.
    const JsonValue done = callOk(server, sessionReq("wait", "early"));
    EXPECT_TRUE(done.at("failures").items.empty());
    EXPECT_TRUE(server.drainWait(5000)); // nothing left: clean drain
}

TEST(Serve, HandleRejectsHostileFramingInline)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    PredictionServer server(ServeLimits{}, 2);

    std::string flood(serveio::kMaxRequestLine + 1, 'x');
    EXPECT_NE(callErr(server, flood).find("exceeds"),
              std::string::npos);

    std::string evil = "{\"op\":\"stats\"}";
    evil[4] = '\0';
    EXPECT_NE(callErr(server, evil).find("NUL"), std::string::npos);
}

TEST(Serve, LeaseExpiryReclaimsAbandonedSessions)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    ServeLimits limits;
    limits.maxSessions = 2;
    limits.idleTimeoutMs = 150;
    limits.heartbeatMs = 30;
    PredictionServer server(limits, 2);

    // One session runs to completion but is never collected; another
    // is opened and then abandoned before start. Both leases lapse.
    callOk(server, openReq("ran"));
    callOk(server, sessionReq("start", "ran"));
    callOk(server, openReq("stillborn"));

    JsonValue stats;
    bool reclaimed = false;
    for (int i = 0; i < 400 && !reclaimed; ++i) {
        stats = callOk(server, "{\"op\":\"stats\"}");
        reclaimed = stats.at("sessions_expired").number >= 2.0;
        if (!reclaimed)
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ASSERT_TRUE(reclaimed);

    const JsonValue &records = stats.at("expired");
    ASSERT_EQ(records.items.size(), 2u);
    for (const JsonValue &rec : records.items) {
        EXPECT_NE(rec.at("error").text.find("lease expired"),
                  std::string::npos);
        if (rec.at("session").text == "ran") {
            // Completed cleanly, merely abandoned: no failed cells.
            EXPECT_EQ(rec.at("cells_failed").number, 0.0);
        } else {
            // Never started: every cell failed structurally.
            EXPECT_EQ(rec.at("session").text, "stillborn");
            EXPECT_GT(rec.at("cells_failed").number, 0.0);
        }
    }

    // Both slots are reclaimed: two fresh sessions are admitted and a
    // retired name is reusable.
    runSession(server, "ran");
    runSession(server, "fresh");
}

TEST(Serve, WaitersPinTheLeaseAgainstExpiry)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    ServeLimits limits;
    limits.idleTimeoutMs = 60; // shorter than any real session run
    limits.heartbeatMs = 20;
    PredictionServer server(limits, 2);

    // A blocked wait() renews by pinning: even though the run takes
    // much longer than the idle timeout, the session must NOT expire
    // under the waiting client.
    callOk(server, openReq("pinned"));
    callOk(server, sessionReq("start", "pinned"));
    const JsonValue done = callOk(server, sessionReq("wait", "pinned"));
    EXPECT_TRUE(done.at("failures").items.empty());
    const JsonValue stats = callOk(server, "{\"op\":\"stats\"}");
    EXPECT_EQ(stats.at("sessions_expired").number, 0.0);
}

/**
 * Runs @p victim with @p spec armed next to a clean sibling on the
 * same server; returns the victim's wait reply after asserting the
 * sibling matched @p clean exactly.
 */
JsonValue
runWithPacketFault(const char *spec, const std::string &victim,
                   const std::vector<GridCheckpoint::RestoredCell> &clean)
{
    ScopedEnv fault("EV8_FAULT_SPEC", spec);
    PredictionServer server(ServeLimits{}, 2);
    callOk(server, openReq(victim));
    callOk(server, openReq("sibling"));
    callOk(server, sessionReq("start", victim));
    callOk(server, sessionReq("start", "sibling"));
    const JsonValue hurt = callOk(server, sessionReq("wait", victim));
    const JsonValue fine = callOk(server, sessionReq("wait", "sibling"));

    EXPECT_TRUE(fine.at("failures").items.empty()) << spec;
    const auto survived = decodeCells(fine, clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
        EXPECT_EQ(survived[i].result.sim.stats.mispredictions(),
                  clean[i].result.sim.stats.mispredictions())
            << spec << " cell " << i;
    }
    return hurt;
}

TEST(Serve, PacketFaultsFailStructurallyWithSiblingParity)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);
    ScopedEnv noWait("EV8_RETRY_BASE_MS", "0");

    // Clean reference cells and the session's packet count (the frame
    // sequence is deterministic, so the last frame -- the final End --
    // has packet index N-1 on every identically-configured run).
    std::vector<GridCheckpoint::RestoredCell> clean;
    uint64_t packets = 0;
    {
        ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
        PredictionServer server(ServeLimits{}, 2);
        const JsonValue done = runSession(server, "v");
        clean = decodeCells(done, done.at("cells").items.size());
        const JsonValue snap =
            callOk(server, sessionReq("snapshot", "v"));
        packets = static_cast<uint64_t>(snap.at("packets").number);
    }
    ASSERT_GE(packets, 3u); // Hello, at least one Blocks, End

    // A torn Blocks frame (half the payload) is caught by the payload
    // decoder.
    {
        const JsonValue hurt =
            runWithPacketFault("partial_write/=v/p1", "v", clean);
        ASSERT_FALSE(hurt.at("failures").items.empty());
        EXPECT_NE(readFailure(hurt.at("failures").items.front())
                      .error.find("truncated"),
                  std::string::npos);
    }

    // A garbage Hello no longer parses.
    {
        const JsonValue hurt =
            runWithPacketFault("garbage_frame/=v/p0", "v", clean);
        ASSERT_FALSE(hurt.at("failures").items.empty());
        EXPECT_NE(readFailure(hurt.at("failures").items.front())
                      .error.find("transport"),
                  std::string::npos);
    }

    // A dropped Blocks frame with rebased seqs is invisible to the
    // ordering check -- only the End totals accounting catches it.
    {
        const JsonValue hurt =
            runWithPacketFault("garbage_frame/=v/p1", "v", clean);
        ASSERT_FALSE(hurt.at("failures").items.empty());
        EXPECT_NE(readFailure(hurt.at("failures").items.front())
                      .error.find("totals mismatch"),
                  std::string::npos);
    }

    // A perturbed End seq is a reorder, caught immediately.
    {
        const std::string spec =
            "garbage_frame/=v/p" + std::to_string(packets - 1);
        const JsonValue hurt =
            runWithPacketFault(spec.c_str(), "v", clean);
        ASSERT_FALSE(hurt.at("failures").items.empty());
        EXPECT_NE(readFailure(hurt.at("failures").items.back())
                      .error.find("out of order"),
                  std::string::npos);
    }
}

TEST(ServeDeathTest, GarbageEnvKnobsExitUsage)
{
    {
        ScopedEnv bad("EV8_SERVE_MAX_SESSIONS", "many");
        EXPECT_EXIT(PredictionServer::defaultLimits(),
                    ::testing::ExitedWithCode(2),
                    "EV8_SERVE_MAX_SESSIONS");
    }
    {
        ScopedEnv bad("EV8_SERVE_RING_CAP", "0");
        EXPECT_EXIT(PredictionServer::defaultLimits(),
                    ::testing::ExitedWithCode(2), "EV8_SERVE_RING_CAP");
    }
    {
        ScopedEnv bad("EV8_SERVE_BLOCKS_PER_PACKET", "-1");
        EXPECT_EXIT(PredictionServer::defaultLimits(),
                    ::testing::ExitedWithCode(2),
                    "EV8_SERVE_BLOCKS_PER_PACKET");
    }
}

} // namespace
} // namespace ev8
