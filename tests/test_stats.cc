/**
 * @file
 * Unit tests for the prediction statistics accumulator (misp/KI).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace ev8
{
namespace
{

TEST(PredictionStats, EmptyIsZero)
{
    PredictionStats s;
    EXPECT_EQ(s.lookups(), 0u);
    EXPECT_EQ(s.mispredictions(), 0u);
    EXPECT_DOUBLE_EQ(s.mispKI(), 0.0);
    EXPECT_DOUBLE_EQ(s.mispRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(PredictionStats, CountsCorrectAndWrong)
{
    PredictionStats s;
    s.record(true, true);   // correct
    s.record(true, false);  // wrong
    s.record(false, false); // correct
    s.record(false, true);  // wrong
    EXPECT_EQ(s.lookups(), 4u);
    EXPECT_EQ(s.mispredictions(), 2u);
    EXPECT_DOUBLE_EQ(s.mispRate(), 0.5);
}

TEST(PredictionStats, MispKiUsesInstructions)
{
    PredictionStats s;
    s.setInstructions(10000);
    for (int i = 0; i < 25; ++i)
        s.record(true, false);
    // 25 mispredictions per 10K instructions = 2.5 misp/KI.
    EXPECT_DOUBLE_EQ(s.mispKI(), 2.5);
}

TEST(PredictionStats, MergeAccumulates)
{
    PredictionStats a, b;
    a.setInstructions(1000);
    b.setInstructions(3000);
    a.record(true, false);
    b.record(true, false);
    b.record(false, false);
    a.merge(b);
    EXPECT_EQ(a.lookups(), 3u);
    EXPECT_EQ(a.mispredictions(), 2u);
    EXPECT_EQ(a.instructions(), 4000u);
    EXPECT_DOUBLE_EQ(a.mispKI(), 0.5);
}

TEST(PredictionStats, SummaryMentionsNumbers)
{
    PredictionStats s;
    s.setInstructions(1000);
    s.record(true, false);
    const std::string text = s.summary();
    EXPECT_NE(text.find("1 lookups"), std::string::npos) << text;
    EXPECT_NE(text.find("misp/KI"), std::string::npos) << text;
}

TEST(PredictionStats, SummaryExactFormat)
{
    // Regression-pin the full summary line: downstream tooling greps
    // these fields out of bench logs.
    PredictionStats s;
    s.setInstructions(10000);
    for (int i = 0; i < 3; ++i)
        s.record(true, true);
    s.record(true, false);
    EXPECT_EQ(s.summary(),
              "4 lookups, 1 mispredicts (25.000% of branches, "
              "0.100 misp/KI)");

    PredictionStats empty;
    EXPECT_EQ(empty.summary(),
              "0 lookups, 0 mispredicts (0.000% of branches, "
              "0.000 misp/KI)");
}

} // namespace
} // namespace ev8
