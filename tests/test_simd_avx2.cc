/**
 * @file
 * AVX2-vs-emulation equality for the simd.hh vector API. This is the
 * one test translation unit built with -mavx2 (mirroring
 * src/predictors/fused_vec_avx2.cc); every intrinsic runs behind a
 * runtime cpuHasAvx2() guard, so the binary still loads and the test
 * skips cleanly on CPUs without AVX2.
 *
 * The claim under test is the simd.hh file comment: the U64x4
 * emulation is semantics-exact with U64x4Avx2 -- in particular the
 * variable shifts zero at counts >= 64 -- so the two backends compute
 * bit-identical results by construction.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/simd.hh"

namespace ev8
{
namespace
{

#if defined(__AVX2__)

/** Deterministic xorshift64*; same stream shape as test_simd.cc. */
struct Rng
{
    uint64_t s = 0x853c49e6748fea9bULL;

    uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dULL;
    }
};

template <class V>
void
storeLanes(const V &v, uint64_t out[4])
{
    v.store(out);
}

#define EXPECT_SAME_LANES(emu_expr, avx_expr, what)                    \
    do {                                                               \
        uint64_t emu_out[4], avx_out[4];                               \
        storeLanes((emu_expr), emu_out);                               \
        storeLanes((avx_expr), avx_out);                               \
        for (int lane_ = 0; lane_ < 4; ++lane_)                        \
            EXPECT_EQ(emu_out[lane_], avx_out[lane_])                  \
                << what << " lane " << lane_;                          \
    } while (0)

TEST(SimdVector, Avx2MatchesEmulationOnRandomVectors)
{
    if (!simd::cpuHasAvx2())
        GTEST_SKIP() << "CPU does not report AVX2";

    using simd::U64x4;
    using simd::U64x4Avx2;

    Rng rng;
    for (int round = 0; round < 500; ++round) {
        uint64_t as[4], bs[4], ns[4];
        for (int i = 0; i < 4; ++i) {
            as[i] = rng.next();
            bs[i] = rng.next();
            // Shift counts straddling the >= 64 zeroing boundary.
            ns[i] = rng.next() % 130;
        }
        const U64x4 ea = U64x4::load(as), eb = U64x4::load(bs);
        const U64x4 en = U64x4::load(ns);
        const U64x4Avx2 va = U64x4Avx2::load(as);
        const U64x4Avx2 vb = U64x4Avx2::load(bs);
        const U64x4Avx2 vn = U64x4Avx2::load(ns);

        EXPECT_SAME_LANES(ea & eb, va & vb, "and");
        EXPECT_SAME_LANES(ea | eb, va | vb, "or");
        EXPECT_SAME_LANES(ea ^ eb, va ^ vb, "xor");
        EXPECT_SAME_LANES(~ea, ~va, "not");
        EXPECT_SAME_LANES(U64x4::add(ea, eb), U64x4Avx2::add(va, vb),
                          "add");
        EXPECT_SAME_LANES(U64x4::srlv(ea, en), U64x4Avx2::srlv(va, vn),
                          "srlv");
        EXPECT_SAME_LANES(U64x4::sllv(ea, en), U64x4Avx2::sllv(va, vn),
                          "sllv");
        EXPECT_SAME_LANES(U64x4::blend(eb, ea, ~ea),
                          U64x4Avx2::blend(vb, va, ~va), "blend");

        const unsigned imm = static_cast<unsigned>(rng.next() % 64);
        EXPECT_SAME_LANES(ea << imm, va << imm, "shl imm");
        EXPECT_SAME_LANES(ea >> imm, va >> imm, "shr imm");

        EXPECT_EQ((ea ^ ea).allZero(), (va ^ va).allZero());
        EXPECT_EQ(ea.allZero(), va.allZero());
    }

    // gather: both backends read one uint64_t per lane from absolute
    // byte addresses, so reads mixing sources and orders agree.
    uint64_t pool[8];
    Rng pool_rng;
    for (uint64_t &p : pool)
        p = pool_rng.next();
    const auto base = reinterpret_cast<uintptr_t>(&pool[0]);
    uint64_t addrs[4] = {base, base + 8, base + 24, base + 16};
    EXPECT_SAME_LANES(U64x4::gather(U64x4::load(addrs)),
                      U64x4Avx2::gather(U64x4Avx2::load(addrs)),
                      "gather");
}

TEST(SimdVector, Avx2BroadcastAndZeroMatchEmulation)
{
    if (!simd::cpuHasAvx2())
        GTEST_SKIP() << "CPU does not report AVX2";
    EXPECT_SAME_LANES(simd::U64x4(0xdeadbeefcafef00dULL),
                      simd::U64x4Avx2(0xdeadbeefcafef00dULL),
                      "broadcast");
    EXPECT_SAME_LANES(simd::U64x4::zero(), simd::U64x4Avx2::zero(),
                      "zero");
    EXPECT_TRUE(simd::U64x4Avx2::zero().allZero());
    EXPECT_FALSE(simd::U64x4Avx2(1).allZero());
}

#else // !__AVX2__

TEST(SimdVector, Avx2MatchesEmulationOnRandomVectors)
{
    GTEST_SKIP() << "build has no AVX2 translation unit";
}

#endif // __AVX2__

} // namespace
} // namespace ev8
