/**
 * @file
 * Edge cases of the serve transport's bounded SPSC ring: FIFO drain
 * order at capacity 1, producer backpressure against a slow consumer,
 * clean end-of-stream via close(), shutdown of a blocked peer via
 * abort() from either side, and a fast/slow stress run (which is also
 * the ThreadSanitizer workload for the ring).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/ring_buffer.hh"

namespace ev8
{
namespace
{

TEST(SpscRing, RejectsZeroCapacity)
{
    EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, CapacityOneDrainsInPushOrder)
{
    SpscRing<int> ring(1);
    std::vector<int> got;

    // With capacity 1 the producer can never run more than one item
    // ahead: every push after the first blocks until the consumer pops.
    std::thread producer([&] {
        for (int i = 0; i < 100; ++i)
            ASSERT_TRUE(ring.push(i));
        ring.close();
    });
    int v = 0;
    while (ring.pop(v))
        got.push_back(v);
    producer.join();

    ASSERT_EQ(got.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(got[i], i);

    const RingStats stats = ring.stats();
    EXPECT_EQ(stats.pushed, 100u);
    EXPECT_EQ(stats.popped, 100u);
    EXPECT_EQ(stats.maxDepth, 1u);
}

TEST(SpscRing, FastProducerHitsBackpressure)
{
    SpscRing<int> ring(4);
    std::atomic<bool> filled{false};

    std::thread producer([&] {
        // The first 4 pushes fill the ring without blocking; the fifth
        // blocks until the (deliberately late) consumer starts popping.
        for (int i = 0; i < 32; ++i)
            ASSERT_TRUE(ring.push(i));
        filled = true;
        ring.close();
    });

    while (ring.depth() < 4)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(filled.load());

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int v = 0;
    int expect = 0;
    while (ring.pop(v))
        EXPECT_EQ(v, expect++);
    producer.join();

    EXPECT_EQ(expect, 32);
    const RingStats stats = ring.stats();
    EXPECT_LE(stats.maxDepth, 4u);
    EXPECT_GT(stats.pushStallNs, 0u);
}

TEST(SpscRing, CloseDrainsThenEndsStream)
{
    SpscRing<int> ring(8);
    ASSERT_TRUE(ring.push(1));
    ASSERT_TRUE(ring.push(2));
    ring.close();

    // Pushing after close is a producer bug: surfaced, not queued.
    EXPECT_FALSE(ring.push(3));

    int v = 0;
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 1);
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(ring.pop(v)); // end of stream, nothing dropped
}

TEST(SpscRing, AbortDropsQueueAndUnblocksNothingPending)
{
    SpscRing<int> ring(8);
    ASSERT_TRUE(ring.push(1));
    ASSERT_TRUE(ring.push(2));
    ring.abort();

    int v = 0;
    EXPECT_FALSE(ring.pop(v));  // queued items dropped, not delivered
    EXPECT_FALSE(ring.push(3)); // both sides are dead
    EXPECT_TRUE(ring.aborted());
}

TEST(SpscRing, AbortUnblocksAWaitingConsumer)
{
    SpscRing<int> ring(1);
    std::atomic<bool> popReturned{false};

    std::thread consumer([&] {
        int v = 0;
        EXPECT_FALSE(ring.pop(v)); // blocks on empty, then aborted
        popReturned = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(popReturned.load());
    ring.abort();
    consumer.join();
    EXPECT_TRUE(popReturned.load());
}

TEST(SpscRing, AbortUnblocksAWaitingProducer)
{
    SpscRing<int> ring(1);
    ASSERT_TRUE(ring.push(0)); // ring now full
    std::atomic<bool> pushReturned{false};

    std::thread producer([&] {
        EXPECT_FALSE(ring.push(1)); // blocks on full, then aborted
        pushReturned = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushReturned.load());
    ring.abort();
    producer.join();
    EXPECT_TRUE(pushReturned.load());
}

TEST(SpscRing, CloseUnblocksAWaitingConsumerAsEndOfStream)
{
    SpscRing<int> ring(1);
    std::thread consumer([&] {
        int v = 0;
        EXPECT_FALSE(ring.pop(v));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ring.close();
    consumer.join();
}

/**
 * Stress: a tight producer against a consumer that alternates between
 * keeping up and lagging, over a small ring. Every element must arrive
 * exactly once, in order. Run under TSan in CI.
 */
TEST(SpscRing, StressFifoUnderContention)
{
    constexpr uint64_t kItems = 20000;
    SpscRing<uint64_t> ring(3);

    std::thread producer([&] {
        for (uint64_t i = 0; i < kItems; ++i)
            ASSERT_TRUE(ring.push(i));
        ring.close();
    });

    uint64_t expect = 0;
    uint64_t v = 0;
    while (ring.pop(v)) {
        ASSERT_EQ(v, expect);
        ++expect;
        if ((expect & 1023u) == 0)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    producer.join();

    EXPECT_EQ(expect, kItems);
    const RingStats stats = ring.stats();
    EXPECT_EQ(stats.pushed, kItems);
    EXPECT_EQ(stats.popped, kItems);
    EXPECT_LE(stats.maxDepth, 3u);
}

} // namespace
} // namespace ev8
