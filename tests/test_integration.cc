/**
 * @file
 * End-to-end integration tests: small-scale versions of the paper's
 * qualitative claims. These use reduced trace lengths so they stay fast;
 * the full-scale reproductions live in bench/.
 */

#include <gtest/gtest.h>

#include "core/ev8_predictor.hh"
#include "predictors/bimodal.hh"
#include "predictors/factory.hh"
#include "predictors/twobcgskew.hh"
#include "sim/suite_runner.hh"

namespace ev8
{
namespace
{

/** Shared runner so the traces are generated once for the whole file. */
SuiteRunner &
runner()
{
    static SuiteRunner instance(120000);
    return instance;
}

double
avgMispKI(const PredictorFactory &factory, const SimConfig &config)
{
    return SuiteRunner::averageMispKI(runner().run(factory, config));
}

TEST(Integration, Ev8BeatsBimodalEverywhere)
{
    const auto ev8 = runner().run(
        [] { return std::make_unique<Ev8Predictor>(); }, SimConfig::ev8());
    const auto bim = runner().run(
        [] { return std::make_unique<BimodalPredictor>(14); },
        SimConfig::ghist());
    for (size_t i = 0; i < ev8.size(); ++i) {
        EXPECT_LT(ev8[i].sim.stats.mispKI(), bim[i].sim.stats.mispKI())
            << ev8[i].bench;
    }
}

TEST(Integration, DealiasedSchemesBeatGshareAtSmallerBudget)
{
    // Fig. 5's core finding: 2Bc-gskew at 256-512 Kbits outperforms a
    // 2 Mbit gshare.
    const double gshare = avgMispKI([] { return makeGshare2M(); },
                                    SimConfig::ghist());
    const double gskew512 = avgMispKI([] { return make2BcGskew512K(); },
                                      SimConfig::ghist());
    EXPECT_LT(gskew512, gshare);
}

TEST(Integration, VariableHistoryLengthsBeatUniformLog2Size)
{
    // Figs. 5/6 + Section 4.5: per-table history lengths, with G1's
    // history longer than log2 of the table size, beat the conventional
    // uniform log2(size) choice. (The full-scale best-length sweep is
    // bench_fig6_history_length; at this reduced scale we compare the
    // Table 1 style lengths against uniform 16.)
    const double uniform_log2 = avgMispKI(
        [] { return makePredictor("2bcgskew:16:0:16:16:16"); },
        SimConfig::ghist());
    const double variable = avgMispKI(
        [] { return makePredictor("2bcgskew:16:0:13:15:21"); },
        SimConfig::ghist());
    EXPECT_LT(variable, uniform_log2);
}

TEST(Integration, Ev8InfoVectorCloseToConventionalHistory)
{
    // Fig. 7's bottom line: the constrained EV8 information vector
    // achieves approximately the accuracy of unconstrained conventional
    // history (we allow 30% slack at this reduced scale).
    const double ghist = avgMispKI([] { return make2BcGskew512K(); },
                                   SimConfig::ghist());
    const double ev8 = avgMispKI(
        [] { return std::make_unique<Ev8Predictor>(); }, SimConfig::ev8());
    EXPECT_LT(ev8, ghist * 1.3);
}

TEST(Integration, PathInformationRecoversAgingLoss)
{
    // Fig. 7: three-blocks-old lghist alone degrades accuracy; path
    // information recovers most of the loss. Compare the generic
    // predictor without path info against the same with path info,
    // both on aged lghist.
    SimConfig aged;
    aged.history = HistoryMode::LghistPath;
    aged.historyAge = 3;

    auto cfg = TwoBcGskewConfig::ev8Size();
    cfg.usePathInfo = false;
    const double without = avgMispKI(
        [&] { return std::make_unique<TwoBcGskewPredictor>(cfg); }, aged);
    cfg.usePathInfo = true;
    const double with_path = avgMispKI(
        [&] { return std::make_unique<TwoBcGskewPredictor>(cfg); }, aged);
    EXPECT_LT(with_path, without);
}

TEST(Integration, SmallBimCostsNothing)
{
    // Fig. 8: shrinking BIM from 64K to 16K entries has no impact for
    // the large predictor (the bimodal table is sparsely used).
    const double full = avgMispKI([] { return make2BcGskew512K(); },
                                  SimConfig::ghist());
    const double small_bim = avgMispKI(
        [] {
            TwoBcGskewConfig cfg =
                TwoBcGskewConfig::symmetric(16, 0, 17, 20, 27, "smallBIM");
            cfg.tables[BIM].log2Pred = 14;
            cfg.tables[BIM].log2Hyst = 14;
            return std::make_unique<TwoBcGskewPredictor>(cfg);
        },
        SimConfig::ghist());
    EXPECT_LT(small_bim, full * 1.06);
}

TEST(Integration, HalfHysteresisNearlyFree)
{
    // Fig. 8: half-size hysteresis on G0 and Meta is barely noticeable.
    const double full = avgMispKI(
        [] {
            TwoBcGskewConfig cfg =
                TwoBcGskewConfig::symmetric(16, 4, 13, 15, 21, "full");
            cfg.tables[BIM].log2Pred = 14;
            cfg.tables[BIM].log2Hyst = 14;
            return std::make_unique<TwoBcGskewPredictor>(cfg);
        },
        SimConfig::ghist());
    const double half = avgMispKI(
        [] {
            auto cfg = TwoBcGskewConfig::ev8Size();
            cfg.usePathInfo = false;
            return std::make_unique<TwoBcGskewPredictor>(cfg);
        },
        SimConfig::ghist());
    EXPECT_LT(half, full * 1.10);
}

TEST(Integration, HardwareEv8WithinReachOfUnconstrainedSameGeometry)
{
    // Fig. 9's bottom line: the constrained index functions do not
    // compromise accuracy relative to a complete hash of the same
    // information vector.
    const double complete_hash = avgMispKI(
        [] { return make2BcGskewEv8Size(); }, SimConfig::ev8());
    const double constrained = avgMispKI(
        [] { return std::make_unique<Ev8Predictor>(); }, SimConfig::ev8());
    EXPECT_LT(constrained, complete_hash * 1.15);
}

TEST(Integration, AddressOnlyWordlineHurts)
{
    // Fig. 9: a pure-PC shared index restricts the distribution and
    // loses accuracy against the EV8's history-mixed wordline.
    const double ev8 = avgMispKI(
        [] { return std::make_unique<Ev8Predictor>(); }, SimConfig::ev8());
    Ev8Config addr_cfg;
    addr_cfg.wordline = WordlineMode::AddressOnly;
    const double addr_only = avgMispKI(
        [&] { return std::make_unique<Ev8Predictor>(addr_cfg); },
        SimConfig::ev8());
    EXPECT_LT(ev8, addr_only);
}

TEST(Integration, PartialUpdateBeatsTotalUpdate)
{
    // Section 4.2: partial update improves accuracy.
    const double partial = avgMispKI(
        [] { return std::make_unique<Ev8Predictor>(); }, SimConfig::ev8());
    Ev8Config total_cfg;
    total_cfg.partialUpdate = false;
    const double total = avgMispKI(
        [&] { return std::make_unique<Ev8Predictor>(total_cfg); },
        SimConfig::ev8());
    EXPECT_LT(partial, total);
}

TEST(Integration, GoIsTheHardestBenchmark)
{
    const auto rows = runner().run(
        [] { return std::make_unique<Ev8Predictor>(); }, SimConfig::ev8());
    double go = 0, worst_other = 0;
    for (const auto &r : rows) {
        if (r.bench == "go")
            go = r.sim.stats.mispKI();
        else
            worst_other = std::max(worst_other, r.sim.stats.mispKI());
    }
    EXPECT_GT(go, worst_other);
}

} // namespace
} // namespace ev8
