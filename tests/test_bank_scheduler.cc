/**
 * @file
 * Tests for the conflict-free bank-number computation (Section 6.2).
 * The paper's claim is structural: any two dynamically successive fetch
 * blocks access distinct banks, by construction. We verify it
 * exhaustively and on random fetch streams.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "frontend/bank_scheduler.hh"

namespace ev8
{
namespace
{

TEST(BankNumber, MatchesPaperDefinition)
{
    // if ((y6,y5) == Bz) then Ba = (y6, y5^1) else Ba = (y6,y5).
    for (unsigned y65 = 0; y65 < 4; ++y65) {
        const uint64_t y_addr = uint64_t{y65} << 5;
        for (unsigned bz = 0; bz < 4; ++bz) {
            const unsigned ba = computeBankNumber(y_addr, bz);
            if (y65 == bz)
                EXPECT_EQ(ba, y65 ^ 1u);
            else
                EXPECT_EQ(ba, y65);
        }
    }
}

TEST(BankNumber, NeverEqualsPreviousBank_Exhaustive)
{
    // The conflict-freedom theorem, exhaustively over all inputs.
    for (unsigned y65 = 0; y65 < 4; ++y65) {
        for (unsigned bz = 0; bz < 4; ++bz) {
            EXPECT_NE(computeBankNumber(uint64_t{y65} << 5, bz), bz)
                << "y65=" << y65 << " bz=" << bz;
        }
    }
}

TEST(BankNumber, IgnoresIrrelevantAddressBits)
{
    // Only bits 6..5 of Y matter.
    EXPECT_EQ(computeBankNumber(0xdeadbe40, 3),
              computeBankNumber(0x40, 3));
}

TEST(BankScheduler, SuccessiveBlocksNeverConflict)
{
    BankScheduler sched;
    Rng rng(31337);
    unsigned prev = sched.lastBank();
    bool first = true;
    for (int i = 0; i < 100000; ++i) {
        const uint64_t addr = rng.next() & ~uint64_t{3};
        const unsigned bank = sched.assign(addr);
        ASSERT_LT(bank, kNumBanks);
        if (!first) {
            ASSERT_NE(bank, prev) << "bank conflict at block " << i;
        }
        prev = bank;
        first = false;
    }
}

TEST(BankScheduler, SequentialFetchAlsoConflictFree)
{
    // Sequential code: addresses advance by one fetch row (32 bytes),
    // so (y6, y5) alternates -- the adversarial-looking easy case.
    BankScheduler sched;
    unsigned prev = 99;
    for (uint64_t addr = 0x1000; addr < 0x1000 + 32 * 1000; addr += 32) {
        const unsigned bank = sched.assign(addr);
        if (prev != 99) {
            ASSERT_NE(bank, prev);
        }
        prev = bank;
    }
}

TEST(BankScheduler, TightLoopConflictFree)
{
    // A 2-block loop hammering the same two addresses: the worst case
    // for a naive (y6,y5)-only scheme.
    BankScheduler sched;
    unsigned prev = 99;
    for (int i = 0; i < 1000; ++i) {
        for (uint64_t addr : {uint64_t{0x1000}, uint64_t{0x1020}}) {
            const unsigned bank = sched.assign(addr);
            if (prev != 99) {
                ASSERT_NE(bank, prev);
            }
            prev = bank;
        }
    }
}

TEST(BankScheduler, UsesAllFourBanksOverVariedStream)
{
    BankScheduler sched;
    Rng rng(55);
    bool seen[4] = {};
    for (int i = 0; i < 1000; ++i)
        seen[sched.assign(rng.next() & ~uint64_t{3})] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(BankScheduler, ClearResetsRecurrence)
{
    BankScheduler a, b;
    a.assign(0x40);
    a.assign(0x80);
    a.clear();
    // After clear, the scheduler behaves like a fresh one.
    for (uint64_t addr : {0x20ull, 0x40ull, 0x60ull})
        EXPECT_EQ(a.assign(addr), b.assign(addr));
}

} // namespace
} // namespace ev8
