/**
 * @file
 * Tests for the small formatting helpers used by reports.
 */

#include <gtest/gtest.h>

#include "predictors/predictor.hh"

namespace ev8
{
namespace
{

TEST(FormatKbits, KbitRange)
{
    EXPECT_EQ(formatKbits(352 * 1024), "352 Kbits");
    EXPECT_EQ(formatKbits(256 * 1024), "256 Kbits");
    EXPECT_EQ(formatKbits(1024), "1 Kbits");
}

TEST(FormatKbits, MbitRange)
{
    EXPECT_EQ(formatKbits(2 * 1024 * 1024), "2.0 Mbits");
    EXPECT_EQ(formatKbits(8 * 1024 * 1024), "8.0 Mbits");
    EXPECT_EQ(formatKbits(1536 * 1024), "1.5 Mbits");
}

TEST(FormatKbits, SubKbitRoundsSensibly)
{
    EXPECT_EQ(formatKbits(512), "0 Kbits"); // 0.5 rounds down via %.0f
}

} // namespace
} // namespace ev8
