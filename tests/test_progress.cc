/**
 * @file
 * Unit tests for the --progress ETA formatter. The estimate is a pure
 * function of the meter's counters, so the edge cases that used to
 * produce nonsense output -- nothing completed yet, a single-cell
 * grid, more workers than remaining cells -- are pinned down here
 * without spawning any threads or rendering to stderr.
 */

#include <gtest/gtest.h>

#include "obs/progress.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kSecNs = 1'000'000'000;

TEST(ProgressEtaTest, NoEstimateBeforeFirstCompletion)
{
    EXPECT_LT(ProgressMeter::etaSeconds(10, 0, 0, 0, 4), 0.0);
}

TEST(ProgressEtaTest, NoEstimateWhenOnlyFailuresCompleted)
{
    // Two cells done, both failed: no duration sample exists.
    EXPECT_LT(ProgressMeter::etaSeconds(10, 2, 2, 0, 4), 0.0);
}

TEST(ProgressEtaTest, NoEstimateOnSingleCellGrid)
{
    // The only sample would be the cell being predicted.
    EXPECT_LT(ProgressMeter::etaSeconds(1, 0, 0, 0, 4), 0.0);
    EXPECT_LT(ProgressMeter::etaSeconds(1, 1, 0, kSecNs, 4), 0.0);
}

TEST(ProgressEtaTest, NoEstimateWhenNothingRemains)
{
    EXPECT_LT(ProgressMeter::etaSeconds(8, 8, 0, 8 * kSecNs, 4), 0.0);
}

TEST(ProgressEtaTest, NoEstimateOnZeroCellBatch)
{
    EXPECT_LT(ProgressMeter::etaSeconds(0, 0, 0, 0, 4), 0.0);
}

TEST(ProgressEtaTest, NoEstimateWithoutObservedDuration)
{
    // A completed cell whose measured duration rounded to zero gives
    // no basis for extrapolation (and must not print "ETA 0s").
    EXPECT_LT(ProgressMeter::etaSeconds(10, 1, 0, 0, 4), 0.0);
}

TEST(ProgressEtaTest, ExtrapolatesMeanOverRemainingCells)
{
    // 4 done at 2s each, 6 remaining, 1 worker: 12s.
    EXPECT_DOUBLE_EQ(
        ProgressMeter::etaSeconds(10, 4, 0, 4 * 2 * kSecNs, 1), 12.0);
}

TEST(ProgressEtaTest, SpreadsRemainingWorkAcrossWorkers)
{
    // 6 remaining over 3 workers: two waves of 2s.
    EXPECT_DOUBLE_EQ(
        ProgressMeter::etaSeconds(10, 4, 0, 4 * 2 * kSecNs, 3), 4.0);
}

TEST(ProgressEtaTest, WorkersClampedToRemainingCells)
{
    // 1 cell left: 8 idle workers cannot speed it up.
    EXPECT_DOUBLE_EQ(
        ProgressMeter::etaSeconds(10, 9, 0, 9 * 2 * kSecNs, 8), 2.0);
}

TEST(ProgressEtaTest, ZeroWorkersTreatedAsOne)
{
    // Before any worker registered a current cell the slot list is
    // empty; the estimate still assumes one lane.
    EXPECT_DOUBLE_EQ(
        ProgressMeter::etaSeconds(4, 2, 0, 2 * kSecNs, 0), 2.0);
}

TEST(ProgressEtaTest, FailedCellsExcludedFromMean)
{
    // 3 done but 1 failed: mean over the 2 successes (3s each).
    EXPECT_DOUBLE_EQ(
        ProgressMeter::etaSeconds(5, 3, 1, 2 * 3 * kSecNs, 1), 6.0);
}

TEST(ProgressEtaTest, DefensiveOnInconsistentCounters)
{
    // failed > done cannot happen via the public hooks; the formatter
    // still refuses rather than underflowing.
    EXPECT_LT(ProgressMeter::etaSeconds(10, 1, 2, kSecNs, 4), 0.0);
}

} // namespace
} // namespace ev8
