/**
 * @file
 * Transport-layer tests (serve/transport.hh): host:port parsing, the
 * bounded line framing with its poison semantics, read deadlines, and
 * real AF_UNIX / TCP listener round trips on the loopback.
 *
 * The framing contract under test is the hostile-network one: an
 * unbounded line or an embedded NUL must come back as a typed status
 * (and keep coming back -- the channel is poisoned), a vanished peer
 * must surface as Eof/Error, and a deadline must expire as Timeout
 * with the partial line intact for the next read.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/transport.hh"

namespace ev8
{
namespace
{

using serveio::LineChannel;
using serveio::LineStatus;

/** A connected AF_UNIX socket pair; each end wrapped when needed. */
struct SocketPair
{
    int a = -1;
    int b = -1;

    SocketPair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }

    /** Closes whatever a LineChannel did not take ownership of. */
    ~SocketPair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }

    int takeA() { int fd = a; a = -1; return fd; }
    int takeB() { int fd = b; b = -1; return fd; }
};

TEST(Transport, ParseHostPortAcceptsHostColonPort)
{
    std::string host;
    uint16_t port = 7;
    std::string err;
    ASSERT_TRUE(serveio::parseHostPort("127.0.0.1:7517", host, port, err))
        << err;
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 7517);

    // Port 0 is the ephemeral bind and must parse.
    ASSERT_TRUE(serveio::parseHostPort("localhost:0", host, port, err));
    EXPECT_EQ(host, "localhost");
    EXPECT_EQ(port, 0);
}

TEST(Transport, ParseHostPortRejectsGarbage)
{
    std::string host;
    uint16_t port = 0;
    std::string err;
    for (const char *bad : {"127.0.0.1", ":7517", "host:", "host:port",
                            "host:-1", "host:65536", "host:12x", ""}) {
        EXPECT_FALSE(serveio::parseHostPort(bad, host, port, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Transport, LineStatusNamesAreStable)
{
    EXPECT_STREQ(serveio::lineStatusName(LineStatus::Ok), "ok");
    EXPECT_STREQ(serveio::lineStatusName(LineStatus::TooLong),
                 "too_long");
}

TEST(Transport, LineChannelRoundTripsLines)
{
    SocketPair pair;
    LineChannel tx(pair.takeA());
    LineChannel rx(pair.takeB());

    ASSERT_TRUE(tx.writeLine("{\"op\":\"ping\"}"));
    ASSERT_TRUE(tx.writeLine("second"));

    std::string line;
    ASSERT_EQ(rx.readLine(line, 1000), LineStatus::Ok);
    EXPECT_EQ(line, "{\"op\":\"ping\"}");
    ASSERT_EQ(rx.readLine(line, 1000), LineStatus::Ok);
    EXPECT_EQ(line, "second");
}

TEST(Transport, ReadDeadlineExpiresAsTimeoutAndResumesThePartialLine)
{
    SocketPair pair;
    const int txFd = pair.takeA();
    LineChannel rx(pair.takeB());

    // Half a line, then silence: the deadline must expire without
    // consuming the partial bytes.
    ASSERT_EQ(::send(txFd, "half", 4, 0), 4);
    std::string line;
    EXPECT_EQ(rx.readLine(line, 50), LineStatus::Timeout);

    // The rest arrives; the next read completes the original line.
    ASSERT_EQ(::send(txFd, "+half\n", 6, 0), 6);
    ASSERT_EQ(rx.readLine(line, 1000), LineStatus::Ok);
    EXPECT_EQ(line, "half+half");
    ::close(txFd);
}

TEST(Transport, OverlongLinePoisonsTheChannel)
{
    SocketPair pair;
    const int txFd = pair.takeA();
    LineChannel rx(pair.takeB(), /*max_line=*/64);

    const std::string flood(256, 'x'); // no newline anywhere
    ASSERT_EQ(::send(txFd, flood.data(), flood.size(), 0),
              static_cast<ssize_t>(flood.size()));

    std::string line;
    EXPECT_EQ(rx.readLine(line, 1000), LineStatus::TooLong);
    // Poisoned: the violation is permanent, even after more bytes.
    ASSERT_EQ(::send(txFd, "tail\n", 5, 0), 5);
    EXPECT_EQ(rx.readLine(line, 1000), LineStatus::TooLong);
    ::close(txFd);
}

TEST(Transport, EmbeddedNulIsRejectedBeforeAnyParser)
{
    SocketPair pair;
    const int txFd = pair.takeA();
    LineChannel rx(pair.takeB());

    const char evil[] = "{\"op\":\0\"ping\"}\n";
    ASSERT_EQ(::send(txFd, evil, sizeof(evil) - 1, 0),
              static_cast<ssize_t>(sizeof(evil) - 1));

    std::string line;
    EXPECT_EQ(rx.readLine(line, 1000), LineStatus::BadByte);
    EXPECT_EQ(rx.readLine(line, 1000), LineStatus::BadByte); // poisoned
    ::close(txFd);
}

TEST(Transport, OrderlyCloseIsEofTornFrameIsError)
{
    {
        SocketPair pair;
        LineChannel rx(pair.takeB());
        ::close(pair.a);
        pair.a = -1;
        std::string line;
        EXPECT_EQ(rx.readLine(line, 1000), LineStatus::Eof);
    }
    {
        // A peer that dies mid-line left a torn frame, not a clean EOF.
        SocketPair pair;
        LineChannel tx(pair.takeA());
        LineChannel rx(pair.takeB());
        tx.writePartialAndShutdown("{\"op\":\"wait\",...}", 7);
        std::string line;
        EXPECT_EQ(rx.readLine(line, 1000), LineStatus::Error);
    }
}

TEST(Transport, WriteLineReportsAVanishedPeer)
{
    SocketPair pair;
    LineChannel tx(pair.takeA());
    ::close(pair.b);
    pair.b = -1;
    // First write may land in the socket buffer; keep pushing until the
    // RST surfaces. Must return false eventually, never raise SIGPIPE.
    bool ok = true;
    for (int i = 0; ok && i < 64; ++i)
        ok = tx.writeLine("into the void");
    EXPECT_FALSE(ok);
}

TEST(Transport, TcpListenerBindsEphemeralPortAndServesALine)
{
    uint16_t port = 0;
    std::string err;
    const int listenFd = serveio::listenTcp("127.0.0.1", 0, port, err);
    ASSERT_GE(listenFd, 0) << err;
    EXPECT_NE(port, 0); // the ephemeral port was resolved

    std::thread server([&] {
        const int fd = serveio::acceptWithTimeout(listenFd, 2000);
        ASSERT_GE(fd, 0);
        LineChannel channel(fd);
        std::string line;
        ASSERT_EQ(channel.readLine(line, 2000), LineStatus::Ok);
        EXPECT_EQ(line, "hello");
        EXPECT_TRUE(channel.writeLine("world"));
    });

    const int clientFd = serveio::connectTcp("127.0.0.1", port, err);
    ASSERT_GE(clientFd, 0) << err;
    LineChannel client(clientFd);
    ASSERT_TRUE(client.writeLine("hello"));
    std::string line;
    ASSERT_EQ(client.readLine(line, 2000), LineStatus::Ok);
    EXPECT_EQ(line, "world");
    server.join();
    ::close(listenFd);
}

TEST(Transport, UnixListenerRoundTripsOverThePathSocket)
{
    const std::string path =
        ::testing::TempDir() + "ev8_transport_test.sock";
    std::string err;
    const int listenFd = serveio::listenUnix(path, err);
    ASSERT_GE(listenFd, 0) << err;

    std::thread server([&] {
        const int fd = serveio::acceptWithTimeout(
            std::vector<int>{listenFd}, 2000);
        ASSERT_GE(fd, 0);
        LineChannel channel(fd);
        std::string line;
        ASSERT_EQ(channel.readLine(line, 2000), LineStatus::Ok);
        EXPECT_TRUE(channel.writeLine(line)); // echo
    });

    const int clientFd = serveio::connectUnix(path, err);
    ASSERT_GE(clientFd, 0) << err;
    LineChannel client(clientFd);
    ASSERT_TRUE(client.writeLine("echo me"));
    std::string line;
    ASSERT_EQ(client.readLine(line, 2000), LineStatus::Ok);
    EXPECT_EQ(line, "echo me");
    server.join();
    ::close(listenFd);
    std::remove(path.c_str());
}

TEST(Transport, AcceptTimesOutWithoutAClient)
{
    uint16_t port = 0;
    std::string err;
    const int listenFd = serveio::listenTcp("127.0.0.1", 0, port, err);
    ASSERT_GE(listenFd, 0) << err;
    EXPECT_EQ(serveio::acceptWithTimeout(listenFd, 20), -1);
    ::close(listenFd);
}

} // namespace
} // namespace ev8
