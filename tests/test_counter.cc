/**
 * @file
 * Unit tests for saturating counters and the split
 * prediction/hysteresis counter of Section 4.3.
 */

#include <gtest/gtest.h>

#include "common/counter.hh"

namespace ev8
{
namespace
{

TEST(SaturatingCounter, TwoBitStateMachine)
{
    SaturatingCounter c(2, 0); // strong not-taken
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.isStrong());

    c.increment(); // -> 1 weak NT
    EXPECT_FALSE(c.taken());
    EXPECT_FALSE(c.isStrong());

    c.increment(); // -> 2 weak T
    EXPECT_TRUE(c.taken());

    c.increment(); // -> 3 strong T
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.isStrong());

    c.increment(); // saturates at 3
    EXPECT_EQ(c.raw(), 3);

    c.decrement();
    EXPECT_EQ(c.raw(), 2);
}

TEST(SaturatingCounter, SaturatesLow)
{
    SaturatingCounter c(2, 0);
    c.decrement();
    EXPECT_EQ(c.raw(), 0);
}

TEST(SaturatingCounter, UpdateFollowsOutcome)
{
    SaturatingCounter c(2, 1);
    c.update(true);
    EXPECT_EQ(c.raw(), 2);
    c.update(false);
    EXPECT_EQ(c.raw(), 1);
}

TEST(SaturatingCounter, WiderCounters)
{
    SaturatingCounter c(3, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), 7);
    EXPECT_TRUE(c.taken());
    for (int i = 0; i < 4; ++i)
        c.decrement();
    EXPECT_EQ(c.raw(), 3);
    EXPECT_FALSE(c.taken()); // 3 <= 7/2
}

/** The four canonical 2-bit states as (prediction, hysteresis). */
struct SplitState
{
    bool pred;
    bool hyst;
    uint8_t classic; // value of the equivalent classic 2-bit counter
};

const SplitState kStates[] = {
    {false, false, 0}, // strong not-taken
    {false, true, 1},  // weak not-taken
    {true, false, 2},  // weak taken
    {true, true, 3},   // strong taken
};

TEST(SplitCounter, RawEncodingMatchesClassic)
{
    for (const auto &s : kStates) {
        SplitCounter c{s.pred, s.hyst};
        EXPECT_EQ(c.raw(), s.classic);
        EXPECT_EQ(c.taken(), s.classic >= 2);
        EXPECT_EQ(c.isStrong(), s.classic == 0 || s.classic == 3);
    }
}

TEST(SplitCounter, UpdateMatchesClassicCounterExhaustively)
{
    // For every state and outcome, the split counter must step exactly
    // like the classic 2-bit saturating counter.
    for (const auto &s : kStates) {
        for (bool taken : {false, true}) {
            SplitCounter c{s.pred, s.hyst};
            SaturatingCounter ref(2, s.classic);
            c.update(taken);
            ref.update(taken);
            EXPECT_EQ(c.raw(), ref.raw())
                << "state=" << int(s.classic) << " taken=" << taken;
        }
    }
}

TEST(SplitCounter, StrengthenOnlyTouchesHysteresis)
{
    for (const auto &s : kStates) {
        SplitCounter c{s.pred, s.hyst};
        c.strengthen();
        EXPECT_EQ(c.prediction, s.pred) << "prediction bit must not move";
        EXPECT_TRUE(c.isStrong());
    }
}

TEST(SplitCounter, WeakStatesFlipOnMispredict)
{
    SplitCounter weak_nt{false, true};
    weak_nt.update(true);
    EXPECT_TRUE(weak_nt.prediction);

    SplitCounter weak_t{true, false};
    weak_t.update(false);
    EXPECT_FALSE(weak_t.prediction);
}

TEST(SplitCounter, StrongStatesResistOneMispredict)
{
    SplitCounter strong_t{true, true};
    strong_t.update(false);
    EXPECT_TRUE(strong_t.prediction) << "one mispredict only weakens";
    strong_t.update(false);
    EXPECT_FALSE(strong_t.prediction) << "two mispredicts flip";
}

} // namespace
} // namespace ev8
