/**
 * @file
 * Unit tests for the history shift registers.
 */

#include <gtest/gtest.h>

#include "common/history.hh"

namespace ev8
{
namespace
{

TEST(HistoryRegister, PushShiftsMostRecentIntoBitZero)
{
    HistoryRegister h;
    h.push(true);
    h.push(false);
    h.push(true);
    // Sequence (oldest..newest) = 1, 0, 1 -> register 0b101.
    EXPECT_EQ(h.raw(), 0b101u);
    EXPECT_TRUE(h.get(0));
    EXPECT_FALSE(h.get(1));
    EXPECT_TRUE(h.get(2));
}

TEST(HistoryRegister, LowMasksToLength)
{
    HistoryRegister h;
    for (int i = 0; i < 10; ++i)
        h.push(true);
    EXPECT_EQ(h.low(4), 0xfu);
    EXPECT_EQ(h.low(10), 0x3ffu);
    EXPECT_EQ(h.low(64), h.raw());
}

TEST(HistoryRegister, OldBitsFallOffAfter64)
{
    HistoryRegister h;
    h.push(true);
    for (int i = 0; i < 64; ++i)
        h.push(false);
    EXPECT_EQ(h.raw(), 0u);
}

TEST(HistoryRegister, ClearAndSetRaw)
{
    HistoryRegister h;
    h.setRaw(0xdead);
    EXPECT_EQ(h.raw(), 0xdeadu);
    h.clear();
    EXPECT_EQ(h.raw(), 0u);
}

TEST(HistoryView, DefaultsAreZero)
{
    HistoryView v;
    EXPECT_EQ(v.ghist, 0u);
    EXPECT_EQ(v.indexHist, 0u);
    EXPECT_EQ(v.pathZ, 0u);
    EXPECT_EQ(v.pathY, 0u);
    EXPECT_EQ(v.pathX, 0u);
}

} // namespace
} // namespace ev8
