/**
 * @file
 * Tests for the SMT simulation layer (Section 3).
 */

#include <gtest/gtest.h>

#include "core/ev8_predictor.hh"
#include "predictors/factory.hh"
#include "sim/smt.hh"
#include "workloads/suite.hh"

namespace ev8
{
namespace
{

Trace
traceOf(const char *name, uint64_t branches)
{
    return generateTrace(findBenchmark(name).profile, branches);
}

TEST(Smt, SingleThreadMatchesPlainSimulator)
{
    // One SMT "thread" must be bit-identical to simulateTrace.
    const Trace t = traceOf("perl", 30000);
    SmtConfig cfg;
    cfg.sim = SimConfig::ev8();

    Ev8Predictor smt_pred;
    const auto smt = simulateSmt({&t}, smt_pred, cfg);

    Ev8Predictor plain_pred;
    const SimResult plain = simulateTrace(t, plain_pred, cfg.sim);

    ASSERT_EQ(smt.size(), 1u);
    EXPECT_EQ(smt[0].sim.stats.mispredictions(),
              plain.stats.mispredictions());
    EXPECT_EQ(smt[0].sim.condBranches, plain.condBranches);
    EXPECT_EQ(smt[0].sim.lghistBits, plain.lghistBits);
    EXPECT_EQ(smt[0].sim.fetchBlocks, plain.fetchBlocks);
}

TEST(Smt, EveryThreadRunsToCompletion)
{
    const Trace a = traceOf("compress", 20000);
    const Trace b = traceOf("vortex", 10000);
    SmtConfig cfg;
    cfg.sim = SimConfig::ev8();
    Ev8Predictor p;
    const auto results = simulateSmt({&a, &b}, p, cfg);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].name, "compress");
    EXPECT_EQ(results[1].name, "vortex");
    EXPECT_EQ(results[0].sim.condBranches, 20000u);
    EXPECT_EQ(results[1].sim.condBranches, 10000u);
}

TEST(Smt, DeterministicAcrossRuns)
{
    const Trace a = traceOf("go", 15000);
    const Trace b = traceOf("li", 15000);
    SmtConfig cfg;
    cfg.sim = SimConfig::ev8();
    Ev8Predictor p1, p2;
    const auto r1 = simulateSmt({&a, &b}, p1, cfg);
    const auto r2 = simulateSmt({&a, &b}, p2, cfg);
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].sim.stats.mispredictions(),
                  r2[i].sim.stats.mispredictions());
    }
}

TEST(Smt, SharingTablesDegradesGracefully)
{
    // Section 3: independent threads compete for entries; the global
    // scheme must lose some accuracy but not collapse.
    const Trace a = traceOf("gcc", 60000);
    const Trace b = traceOf("go", 60000);
    SmtConfig cfg;
    cfg.sim = SimConfig::ev8();

    Ev8Predictor alone_pred;
    const double alone =
        simulateTrace(a, alone_pred, cfg.sim).stats.mispKI();

    Ev8Predictor shared_pred;
    const auto both = simulateSmt({&a, &b}, shared_pred, cfg);
    const double together = both[0].sim.stats.mispKI();

    EXPECT_GE(together, alone * 0.98) << "sharing cannot help gcc here";
    EXPECT_LT(together, alone * 2.0) << "degradation must be graceful";
}

TEST(Smt, PerThreadHistoryBeatsSharedHistory)
{
    // The paper's core SMT argument: one history register per thread.
    const Trace a = traceOf("gcc", 50000);
    const Trace b = traceOf("go", 50000);

    SmtConfig per_thread;
    per_thread.sim = SimConfig::ev8();
    per_thread.perThreadHistory = true;

    SmtConfig shared = per_thread;
    shared.perThreadHistory = false;

    Ev8Predictor p1;
    const auto good = simulateSmt({&a, &b}, p1, per_thread);
    Ev8Predictor p2;
    const auto bad = simulateSmt({&a, &b}, p2, shared);

    const double good_avg = (good[0].sim.stats.mispKI()
                             + good[1].sim.stats.mispKI()) / 2;
    const double bad_avg = (bad[0].sim.stats.mispKI()
                            + bad[1].sim.stats.mispKI()) / 2;
    EXPECT_LT(good_avg, bad_avg);
}

TEST(Smt, WorksWithAnyPredictorScheme)
{
    const Trace a = traceOf("perl", 10000);
    const Trace b = traceOf("li", 10000);
    SmtConfig cfg;
    cfg.sim = SimConfig::ghist();
    auto gshare = makePredictor("gshare:14:12");
    const auto results = simulateSmt({&a, &b}, *gshare, cfg);
    EXPECT_EQ(results[0].sim.condBranches, 10000u);
    EXPECT_EQ(results[1].sim.condBranches, 10000u);
}

} // namespace
} // namespace ev8
