/**
 * @file
 * Live-daemon tests (serve/daemon.hh): a real ServeDaemon accepting on
 * an AF_UNIX socket, exercised by real client connections -- the layer
 * the in-process test_serve.cc handle() tests cannot reach.
 *
 * The hostile-network contract under test:
 *
 *  - malformed request lines (garbage JSON, overlong, embedded NUL)
 *    get a typed error reply; framing violations close the connection;
 *    sibling connections never notice;
 *  - a connection that never completes a request is closed once the
 *    idle timeout lapses (the handshake timeout);
 *  - a client that vanishes mid-session loses its lease: the session
 *    is expired and reclaimed, surfaced in stats, while a sibling
 *    session's results are untouched;
 *  - an injected conn_drop vanishes a reply after the work was done --
 *    the worst case for a client -- without wedging the server;
 *  - an external stop request (the SIGTERM path) drains: new opens get
 *    a typed "draining" refusal while in-flight sessions finish.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "obs/json.hh"
#include "serve/daemon.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "sim/checkpoint.hh"

namespace ev8
{
namespace
{

constexpr const char *kTinyScale = "3000";

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

/** A ServeDaemon running on a test-unique AF_UNIX socket. */
class LiveDaemon
{
  public:
    explicit LiveDaemon(ServeLimits limits, uint64_t drain_ms = 5000,
                        const volatile std::sig_atomic_t *stop = nullptr)
        : server_(limits, /*jobs=*/2)
    {
        path_ = ::testing::TempDir() + "ev8_daemon_"
            + std::to_string(++instance_) + ".sock";
        DaemonOptions opts;
        opts.unixPath = path_;
        opts.drainMs = drain_ms;
        opts.pollMs = 25; // fast ticks keep the tests snappy
        opts.stopFlag = stop;
        daemon_ = std::make_unique<ServeDaemon>(server_, opts);
        std::string err;
        EXPECT_TRUE(daemon_->listen(err)) << err;
        runner_ = std::thread([this] { (void)daemon_->run(); });
    }

    ~LiveDaemon()
    {
        if (runner_.joinable()) {
            // Belt and braces: a test that forgot to stop the daemon
            // still tears down (shutdown is idempotent).
            server_.handle("{\"op\":\"shutdown\"}");
            runner_.join();
        }
        std::remove(path_.c_str());
    }

    const std::string &path() const { return path_; }
    PredictionServer &server() { return server_; }
    ServeDaemon &daemon() { return *daemon_; }

    void join()
    {
        runner_.join();
    }

  private:
    static int instance_;
    PredictionServer server_;
    std::string path_;
    std::unique_ptr<ServeDaemon> daemon_;
    std::thread runner_;
};

int LiveDaemon::instance_ = 0;

/** One protocol client connection over the daemon's socket. */
class Client
{
  public:
    explicit Client(const LiveDaemon &daemon)
    {
        std::string err;
        const int fd = serveio::connectUnix(daemon.path(), err);
        EXPECT_GE(fd, 0) << err;
        channel_ = std::make_unique<serveio::LineChannel>(
            fd, serveio::kMaxReplyLine);
    }

    serveio::LineChannel &channel() { return *channel_; }

    /** Round trip: one request line, one parsed reply. */
    JsonValue call(const std::string &request, int timeout_ms = 30000)
    {
        EXPECT_TRUE(channel_->writeLine(request));
        std::string reply;
        const serveio::LineStatus st =
            channel_->readLine(reply, timeout_ms);
        EXPECT_EQ(st, serveio::LineStatus::Ok)
            << serveio::lineStatusName(st) << " for " << request;
        JsonValue doc = parseJson(reply);
        EXPECT_TRUE(doc.isObject()) << reply;
        return doc;
    }

    JsonValue callOk(const std::string &request, int timeout_ms = 30000)
    {
        JsonValue doc = call(request, timeout_ms);
        const JsonValue *ok = doc.find("ok");
        EXPECT_TRUE(ok && ok->boolean) << request;
        return doc;
    }

    /** Hard-closes the socket: the peer simply vanishes. */
    void vanish() { channel_.reset(); }

  private:
    std::unique_ptr<serveio::LineChannel> channel_;
};

std::string
openLine(const std::string &session)
{
    return "{\"op\":\"open\",\"session\":\"" + session
        + "\",\"grid\":\"fig5\"}";
}

std::string
opLine(const std::string &op, const std::string &session)
{
    return "{\"op\":\"" + op + "\",\"session\":\"" + session + "\"}";
}

/** Sums mispredictions across a wait reply's cells (parity digest). */
uint64_t
waitDigest(const JsonValue &done)
{
    const JsonValue &cells = done.at("cells");
    EXPECT_FALSE(cells.items.empty());
    uint64_t digest = 0;
    for (const JsonValue &item : cells.items) {
        GridCheckpoint::RestoredCell cell;
        decodeCellRecord(item.text, cells.items.size(), cell);
        digest += cell.result.sim.stats.mispredictions();
    }
    return digest;
}

TEST(Daemon, MalformedLinesGetTypedErrorsWithoutCollateral)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    LiveDaemon live(ServeLimits{});

    // Garbage JSON: typed error, connection stays usable.
    {
        Client c(live);
        const JsonValue bad = c.call("this is not json");
        EXPECT_FALSE(bad.at("ok").boolean);
        EXPECT_FALSE(bad.at("error").text.empty());
        c.callOk("{\"op\":\"stats\"}"); // same connection still serves
    }

    // Embedded NUL: typed error, then the connection is closed.
    {
        Client c(live);
        std::string evil = "{\"op\":\"ping\"}";
        evil[3] = '\0';
        ASSERT_TRUE(c.channel().writeLine(evil));
        std::string reply;
        ASSERT_EQ(c.channel().readLine(reply, 5000),
                  serveio::LineStatus::Ok);
        const JsonValue doc = parseJson(reply);
        EXPECT_FALSE(doc.at("ok").boolean);
        EXPECT_NE(doc.at("error").text.find("NUL"), std::string::npos);
        EXPECT_EQ(c.channel().readLine(reply, 5000),
                  serveio::LineStatus::Eof);
    }

    // Overlong line: typed error naming the bound, then closed.
    {
        Client c(live);
        const std::string flood(serveio::kMaxRequestLine + 16, 'x');
        ASSERT_TRUE(c.channel().writeLine(flood));
        std::string reply;
        ASSERT_EQ(c.channel().readLine(reply, 5000),
                  serveio::LineStatus::Ok);
        const JsonValue doc = parseJson(reply);
        EXPECT_FALSE(doc.at("ok").boolean);
        EXPECT_NE(doc.at("error").text.find("exceeds"),
                  std::string::npos);
        EXPECT_EQ(c.channel().readLine(reply, 5000),
                  serveio::LineStatus::Eof);
    }

    // None of the abuse above harmed the server: a full session still
    // serves cleanly on a fresh connection.
    Client c(live);
    c.callOk(openLine("after"));
    c.callOk(opLine("start", "after"));
    const JsonValue done = c.callOk(opLine("wait", "after"));
    EXPECT_TRUE(done.at("failures").items.empty());
    c.callOk("{\"op\":\"shutdown\"}");
    live.join();
}

TEST(Daemon, HandshakeTimeoutClosesSilentConnections)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ServeLimits limits;
    limits.idleTimeoutMs = 150;
    limits.heartbeatMs = 50;
    LiveDaemon live(limits);

    // Connect and say nothing: the daemon must hang up on its own,
    // with a typed reply first.
    Client silent(live);
    std::string reply;
    ASSERT_EQ(silent.channel().readLine(reply, 5000),
              serveio::LineStatus::Ok);
    const JsonValue doc = parseJson(reply);
    EXPECT_FALSE(doc.at("ok").boolean);
    EXPECT_NE(doc.at("error").text.find("idle timeout"),
              std::string::npos);
    EXPECT_EQ(silent.channel().readLine(reply, 5000),
              serveio::LineStatus::Eof);

    Client c(live);
    c.callOk("{\"op\":\"shutdown\"}");
    live.join();
}

TEST(Daemon, VanishedClientLeaseIsReclaimedSiblingUnaffected)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    // Clean single-session reference digest for the sibling's cells.
    uint64_t want = 0;
    {
        LiveDaemon ref(ServeLimits{});
        Client c(ref);
        c.callOk(openLine("ref"));
        c.callOk(opLine("start", "ref"));
        want = waitDigest(c.callOk(opLine("wait", "ref")));
        c.callOk("{\"op\":\"shutdown\"}");
        ref.join();
    }

    ServeLimits limits;
    limits.idleTimeoutMs = 250;
    limits.heartbeatMs = 50;
    LiveDaemon live(limits);

    // The victim starts a session and vanishes without collecting it.
    Client victim(live);
    victim.callOk(openLine("victim"));
    victim.callOk(opLine("start", "victim"));
    victim.vanish();

    // A sibling serves to completion with byte-equal results.
    Client sibling(live);
    sibling.callOk(openLine("sib"));
    sibling.callOk(opLine("start", "sib"));
    const JsonValue done = sibling.callOk(opLine("wait", "sib"));
    EXPECT_TRUE(done.at("failures").items.empty());
    EXPECT_EQ(waitDigest(done), want);

    // The reaper reclaims the abandoned lease and surfaces it.
    bool reclaimed = false;
    JsonValue stats;
    for (int i = 0; i < 200 && !reclaimed; ++i) {
        stats = sibling.callOk("{\"op\":\"stats\"}");
        reclaimed = stats.at("sessions_expired").number >= 1.0;
        if (!reclaimed)
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ASSERT_TRUE(reclaimed);
    const JsonValue &records = stats.at("expired");
    ASSERT_FALSE(records.items.empty());
    EXPECT_EQ(records.items.front().at("session").text, "victim");
    EXPECT_NE(records.items.front().at("error").text.find("lease"),
              std::string::npos);
    // The victim's name is gone (slot reclaimed, name reusable).
    const JsonValue ghost = sibling.call(opLine("snapshot", "victim"));
    EXPECT_FALSE(ghost.at("ok").boolean);

    sibling.callOk("{\"op\":\"shutdown\"}");
    live.join();
}

TEST(Daemon, ConnDropVanishesTheReplyAfterTheWork)
{
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", kTinyScale);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);
    // Drop the connection exactly when k1's wait reply is due: the
    // session ran, the results exist, the ack never arrives.
    ScopedEnv fault("EV8_FAULT_SPEC", "conn_drop/k1/wait");
    LiveDaemon live(ServeLimits{});

    Client doomed(live);
    doomed.callOk(openLine("k1"));
    doomed.callOk(opLine("start", "k1"));
    ASSERT_TRUE(doomed.channel().writeLine(opLine("wait", "k1")));
    std::string reply;
    EXPECT_EQ(doomed.channel().readLine(reply, 30000),
              serveio::LineStatus::Eof);

    // The server is not wedged: the session finished server-side and a
    // fresh connection can still read everything.
    Client c(live);
    const JsonValue stats = c.callOk("{\"op\":\"stats\"}");
    EXPECT_EQ(stats.at("sessions_done").number, 1.0);
    const JsonValue done = c.callOk(opLine("wait", "k1"));
    EXPECT_TRUE(done.at("failures").items.empty());
    c.callOk("{\"op\":\"shutdown\"}");
    live.join();
}

TEST(Daemon, ExternalStopDrainsInFlightAndRefusesNewSessions)
{
    // A session long enough to still be running when the stop lands.
    ScopedEnv scale("EV8_BRANCHES_PER_BENCH", "200000");
    ScopedEnv noFault("EV8_FAULT_SPEC", nullptr);
    ScopedEnv noCkpt("EV8_CHECKPOINT_DIR", nullptr);

    static volatile std::sig_atomic_t stop;
    stop = 0;
    LiveDaemon live(ServeLimits{}, /*drain_ms=*/30000, &stop);

    Client worker(live);
    worker.callOk(openLine("inflight"));
    worker.callOk(opLine("start", "inflight"));

    Client late(live); // connected before the stop, open comes after
    stop = 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // Admission is closed with a typed refusal...
    const JsonValue refused = late.call(openLine("late"));
    EXPECT_FALSE(refused.at("ok").boolean);
    EXPECT_TRUE(refused.at("draining").boolean);

    // ...while the in-flight session drains to a complete result.
    const JsonValue done = worker.callOk(opLine("wait", "inflight"));
    EXPECT_TRUE(done.at("failures").items.empty());
    EXPECT_EQ(done.at("state").text, "done");

    live.join();
    EXPECT_TRUE(live.daemon().drainedClean());
}

} // namespace
} // namespace ev8
