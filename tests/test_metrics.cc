/**
 * @file
 * Unit tests for the metric registry: stable references, kind-collision
 * detection, histogram bucketing, deterministic enumeration, lock-free
 * concurrent updates and cross-registry merging.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace ev8
{
namespace
{

TEST(MetricRegistry, CounterGetOrCreateReturnsStableReference)
{
    MetricRegistry r;
    Counter &a = r.counter("sim.fetch_blocks");
    a.inc(3);
    Counter &b = r.counter("sim.fetch_blocks");
    EXPECT_EQ(&a, &b);
    b.inc(2);
    EXPECT_EQ(r.counterValue("sim.fetch_blocks"), 5u);
    EXPECT_EQ(r.size(), 1u);
}

TEST(MetricRegistry, ReferencesSurviveLaterRegistrations)
{
    // Hot paths cache the Counter& across the whole run; creating many
    // more metrics afterwards must not invalidate it.
    MetricRegistry r;
    Counter &held = r.counter("pred.x.bank0.conflicts");
    for (int i = 0; i < 64; ++i)
        r.counter("filler." + std::to_string(i)).inc();
    held.inc(7);
    EXPECT_EQ(r.counterValue("pred.x.bank0.conflicts"), 7u);
}

TEST(MetricRegistry, GaugeStoresLastValue)
{
    MetricRegistry r;
    Gauge &g = r.gauge("core.storage.bim.wordline_mean_reads");
    g.set(1.5);
    g.set(42.25);
    EXPECT_DOUBLE_EQ(r.gauge("core.storage.bim.wordline_mean_reads")
                         .value(),
                     42.25);
}

TEST(MetricRegistry, KindCollisionThrows)
{
    MetricRegistry r;
    r.counter("sim.cond_branches");
    EXPECT_THROW(r.gauge("sim.cond_branches"), std::logic_error);
    EXPECT_THROW(r.histogram("sim.cond_branches", {1.0}),
                 std::logic_error);

    r.gauge("a.gauge");
    EXPECT_THROW(r.counter("a.gauge"), std::logic_error);
}

TEST(MetricRegistry, CounterValueOfUnknownNameIsZero)
{
    MetricRegistry r;
    EXPECT_EQ(r.counterValue("never.registered"), 0u);
    EXPECT_FALSE(r.has("never.registered"));
}

TEST(Histogram, BucketsAreInclusiveUpperBoundsPlusOverflow)
{
    MetricRegistry r;
    Histogram &h = r.histogram("sim.branches_per_block",
                               {0.0, 1.0, 2.0});
    ASSERT_EQ(h.bucketCounts().size(), 4u); // 3 bounds + overflow

    h.observe(0.0);     // bucket 0 (le 0)
    h.observe(1.0);     // bucket 1 (le 1, inclusive edge)
    h.observe(1.5);     // bucket 2
    h.observe(2.0, 3);  // bucket 2, weighted
    h.observe(99.0);    // overflow bucket

    EXPECT_EQ(h.bucketCounts()[0], 1u);
    EXPECT_EQ(h.bucketCounts()[1], 1u);
    EXPECT_EQ(h.bucketCounts()[2], 4u);
    EXPECT_EQ(h.bucketCounts()[3], 1u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.0 + 1.5 + 3 * 2.0 + 99.0);
    EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 7.0);
}

TEST(Histogram, ReRegistrationMustRepeatBounds)
{
    MetricRegistry r;
    Histogram &a = r.histogram("h", {1.0, 2.0});
    Histogram &b = r.histogram("h", {1.0, 2.0});
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(r.histogram("h", {1.0, 3.0}), std::logic_error);
}

TEST(MetricRegistry, EntriesAreSortedByName)
{
    MetricRegistry r;
    r.counter("z.last");
    r.gauge("a.first");
    r.counter("m.middle");
    const auto entries = r.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(*entries[0].name, "a.first");
    EXPECT_EQ(*entries[1].name, "m.middle");
    EXPECT_EQ(*entries[2].name, "z.last");
    EXPECT_EQ(entries[0].kind, MetricKind::Gauge);
    EXPECT_EQ(entries[1].kind, MetricKind::Counter);
}

TEST(MetricsConcurrency, CounterUpdatesFromManyThreadsAreExact)
{
    MetricRegistry r;
    Counter &c = r.counter("stress.hits");
    constexpr int kThreads = 8;
    constexpr int kIncsPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kIncsPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              uint64_t{kThreads} * uint64_t{kIncsPerThread});
}

TEST(MetricsConcurrency, HistogramObservationsFromManyThreadsAreExact)
{
    MetricRegistry r;
    Histogram &h = r.histogram("stress.latency", {1.0, 2.0, 3.0});
    constexpr int kThreads = 8;
    constexpr int kObsPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            // Each thread hammers one bucket: 0 -> le-1, 1 -> le-2, ...
            const double v = 1.0 + t % 4;
            for (int i = 0; i < kObsPerThread; ++i)
                h.observe(v);
        });
    }
    for (auto &t : threads)
        t.join();

    const auto counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    for (size_t b = 0; b < counts.size(); ++b)
        EXPECT_EQ(counts[b], 2u * kObsPerThread) << "bucket " << b;
    EXPECT_EQ(h.count(), uint64_t{kThreads} * kObsPerThread);
    // The CAS-loop sum is exact here: small integers add associatively.
    EXPECT_DOUBLE_EQ(h.sum(),
                     2.0 * kObsPerThread * (1.0 + 2.0 + 3.0 + 4.0));
}

TEST(MetricRegistryMerge, CountersAddGaugesOverwriteHistogramsAdd)
{
    MetricRegistry target;
    target.counter("sim.fetch_blocks").inc(10);
    target.gauge("scale").set(1.0);
    target.histogram("lat", {1.0, 2.0}).observe(0.5);

    MetricRegistry source;
    source.counter("sim.fetch_blocks").inc(32);
    source.counter("only.in.source").inc(7);
    source.gauge("scale").set(4.0);
    source.histogram("lat", {1.0, 2.0}).observe(1.5, 3);

    target.merge(source);
    EXPECT_EQ(target.counterValue("sim.fetch_blocks"), 42u);
    EXPECT_EQ(target.counterValue("only.in.source"), 7u);
    EXPECT_DOUBLE_EQ(target.gauge("scale").value(), 4.0);
    const Histogram &lat = target.histogram("lat", {1.0, 2.0});
    EXPECT_EQ(lat.count(), 4u);
    EXPECT_EQ(lat.bucketCounts()[0], 1u);
    EXPECT_EQ(lat.bucketCounts()[1], 3u);
    EXPECT_DOUBLE_EQ(lat.sum(), 0.5 + 3 * 1.5);
    // The source registry is read-only during a merge.
    EXPECT_EQ(source.counterValue("sim.fetch_blocks"), 32u);
}

TEST(MetricRegistryMerge, MergeIsAssociativeOverJobOrder)
{
    // Engine contract: merging per-job registries one by one in
    // submission order equals one big serial registry.
    MetricRegistry serial;
    MetricRegistry merged;
    for (int job = 0; job < 5; ++job) {
        MetricRegistry per_job;
        per_job.counter("jobs.done").inc(job + 1);
        per_job.histogram("size", {10.0}).observe(job);
        serial.counter("jobs.done").inc(job + 1);
        serial.histogram("size", {10.0}).observe(job);
        merged.merge(per_job);
    }
    EXPECT_EQ(merged.counterValue("jobs.done"),
              serial.counterValue("jobs.done"));
    EXPECT_EQ(merged.histogram("size", {10.0}).count(),
              serial.histogram("size", {10.0}).count());
    EXPECT_DOUBLE_EQ(merged.histogram("size", {10.0}).sum(),
                     serial.histogram("size", {10.0}).sum());
}

TEST(MetricRegistryMerge, KindMismatchThrows)
{
    MetricRegistry target;
    target.counter("m");
    MetricRegistry source;
    source.gauge("m").set(2.0);
    EXPECT_THROW(target.merge(source), std::logic_error);

    MetricRegistry bounds_target;
    bounds_target.histogram("h", {1.0});
    MetricRegistry bounds_source;
    bounds_source.histogram("h", {2.0}).observe(0.5);
    EXPECT_THROW(bounds_target.merge(bounds_source), std::logic_error);
}

} // namespace
} // namespace ev8
