/**
 * @file
 * Unit tests for the metric registry: stable references, kind-collision
 * detection, histogram bucketing and deterministic enumeration.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.hh"

namespace ev8
{
namespace
{

TEST(MetricRegistry, CounterGetOrCreateReturnsStableReference)
{
    MetricRegistry r;
    Counter &a = r.counter("sim.fetch_blocks");
    a.inc(3);
    Counter &b = r.counter("sim.fetch_blocks");
    EXPECT_EQ(&a, &b);
    b.inc(2);
    EXPECT_EQ(r.counterValue("sim.fetch_blocks"), 5u);
    EXPECT_EQ(r.size(), 1u);
}

TEST(MetricRegistry, ReferencesSurviveLaterRegistrations)
{
    // Hot paths cache the Counter& across the whole run; creating many
    // more metrics afterwards must not invalidate it.
    MetricRegistry r;
    Counter &held = r.counter("pred.x.bank0.conflicts");
    for (int i = 0; i < 64; ++i)
        r.counter("filler." + std::to_string(i)).inc();
    held.inc(7);
    EXPECT_EQ(r.counterValue("pred.x.bank0.conflicts"), 7u);
}

TEST(MetricRegistry, GaugeStoresLastValue)
{
    MetricRegistry r;
    Gauge &g = r.gauge("core.storage.bim.wordline_mean_reads");
    g.set(1.5);
    g.set(42.25);
    EXPECT_DOUBLE_EQ(r.gauge("core.storage.bim.wordline_mean_reads")
                         .value(),
                     42.25);
}

TEST(MetricRegistry, KindCollisionThrows)
{
    MetricRegistry r;
    r.counter("sim.cond_branches");
    EXPECT_THROW(r.gauge("sim.cond_branches"), std::logic_error);
    EXPECT_THROW(r.histogram("sim.cond_branches", {1.0}),
                 std::logic_error);

    r.gauge("a.gauge");
    EXPECT_THROW(r.counter("a.gauge"), std::logic_error);
}

TEST(MetricRegistry, CounterValueOfUnknownNameIsZero)
{
    MetricRegistry r;
    EXPECT_EQ(r.counterValue("never.registered"), 0u);
    EXPECT_FALSE(r.has("never.registered"));
}

TEST(Histogram, BucketsAreInclusiveUpperBoundsPlusOverflow)
{
    MetricRegistry r;
    Histogram &h = r.histogram("sim.branches_per_block",
                               {0.0, 1.0, 2.0});
    ASSERT_EQ(h.bucketCounts().size(), 4u); // 3 bounds + overflow

    h.observe(0.0);     // bucket 0 (le 0)
    h.observe(1.0);     // bucket 1 (le 1, inclusive edge)
    h.observe(1.5);     // bucket 2
    h.observe(2.0, 3);  // bucket 2, weighted
    h.observe(99.0);    // overflow bucket

    EXPECT_EQ(h.bucketCounts()[0], 1u);
    EXPECT_EQ(h.bucketCounts()[1], 1u);
    EXPECT_EQ(h.bucketCounts()[2], 4u);
    EXPECT_EQ(h.bucketCounts()[3], 1u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.0 + 1.5 + 3 * 2.0 + 99.0);
    EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 7.0);
}

TEST(Histogram, ReRegistrationMustRepeatBounds)
{
    MetricRegistry r;
    Histogram &a = r.histogram("h", {1.0, 2.0});
    Histogram &b = r.histogram("h", {1.0, 2.0});
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(r.histogram("h", {1.0, 3.0}), std::logic_error);
}

TEST(MetricRegistry, EntriesAreSortedByName)
{
    MetricRegistry r;
    r.counter("z.last");
    r.gauge("a.first");
    r.counter("m.middle");
    const auto entries = r.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(*entries[0].name, "a.first");
    EXPECT_EQ(*entries[1].name, "m.middle");
    EXPECT_EQ(*entries[2].name, "z.last");
    EXPECT_EQ(entries[0].kind, MetricKind::Gauge);
    EXPECT_EQ(entries[1].kind, MetricKind::Counter);
}

} // namespace
} // namespace ev8
