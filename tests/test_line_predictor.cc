/**
 * @file
 * Unit tests for the line predictor model (Section 2).
 */

#include <gtest/gtest.h>

#include "frontend/line_predictor.hh"

namespace ev8
{
namespace
{

TEST(LinePredictor, ColdPredictsSequentialRow)
{
    LinePredictor lp(8);
    EXPECT_EQ(lp.predict(0x1000), 0x1020u);
    EXPECT_EQ(lp.predict(0x1014), 0x1020u);
}

TEST(LinePredictor, LearnsTrainedSuccessor)
{
    LinePredictor lp(8);
    lp.train(0x1000, 0x4abc);
    EXPECT_EQ(lp.predict(0x1000), 0x4abcu);
}

TEST(LinePredictor, RetrainingOverwrites)
{
    LinePredictor lp(8);
    lp.train(0x1000, 0x2000);
    lp.train(0x1000, 0x3000);
    EXPECT_EQ(lp.predict(0x1000), 0x3000u);
}

TEST(LinePredictor, AliasingIsRealistic)
{
    // Two addresses mapping to the same entry interfere -- deliberately:
    // the EV8 line predictor's "relatively low accuracy" comes from its
    // very limited hashing.
    LinePredictor lp(4); // tiny table to force aliasing
    lp.train(0x1000, 0x2000);
    bool aliased = false;
    for (uint64_t addr = 0x1040; addr < 0x1040 + 64 * 64; addr += 64) {
        lp.train(addr, 0x5000);
        if (lp.predict(0x1000) != 0x2000) {
            aliased = true;
            break;
        }
    }
    EXPECT_TRUE(aliased);
}

TEST(LinePredictor, ClearForgets)
{
    LinePredictor lp(8);
    lp.train(0x1000, 0x2000);
    lp.clear();
    EXPECT_EQ(lp.predict(0x1000), 0x1020u);
}

TEST(LinePredictor, StorageBitsScaleWithSize)
{
    EXPECT_EQ(LinePredictor(10).storageBits(), 1024u * 43u);
    EXPECT_EQ(LinePredictor(12).storageBits(), 4096u * 43u);
}

} // namespace
} // namespace ev8
