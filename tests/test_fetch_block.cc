/**
 * @file
 * Unit and property tests for fetch-block reconstruction (Section 2
 * rules: blocks end at an aligned 8-instruction boundary or a taken
 * CTI; not-taken conditionals do not end a block).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "frontend/fetch_block_util.hh"
#include "trace/trace.hh"

namespace ev8
{
namespace
{

BranchRecord
rec(uint64_t pc, uint64_t target, BranchType type, bool taken)
{
    return BranchRecord{pc, target, type, taken};
}

TEST(FetchBlock, TakenBranchEndsBlock)
{
    Trace t("t", 0x1000);
    t.append(rec(0x1008, 0x2000, BranchType::Conditional, true));
    const auto blocks = buildFetchBlocks(t);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].address, 0x1000u);
    EXPECT_EQ(blocks[0].endPc, 0x100cu);
    EXPECT_EQ(blocks[0].numInstrs(), 3u);
    EXPECT_TRUE(blocks[0].endsTaken);
    EXPECT_EQ(blocks[0].takenTarget, 0x2000u);
    EXPECT_EQ(blocks[0].nextAddress(), 0x2000u);
    ASSERT_EQ(blocks[0].numBranches, 1);
    EXPECT_EQ(blocks[0].branches[0].pc, 0x1008u);
    EXPECT_TRUE(blocks[0].branches[0].taken);
}

TEST(FetchBlock, NotTakenBranchDoesNotEndBlock)
{
    Trace t("t", 0x1000);
    t.append(rec(0x1004, 0x2000, BranchType::Conditional, false));
    t.append(rec(0x1010, 0x2000, BranchType::Conditional, true));
    const auto blocks = buildFetchBlocks(t);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].numBranches, 2);
    EXPECT_FALSE(blocks[0].branches[0].taken);
    EXPECT_TRUE(blocks[0].branches[1].taken);
    EXPECT_EQ(blocks[0].lastBranch().pc, 0x1010u);
}

TEST(FetchBlock, AlignmentBoundaryEndsBlock)
{
    // Start at 0x1000 (32-byte aligned); a not-taken branch beyond the
    // row boundary forces an aligned block [0x1000, 0x1020).
    Trace t("t", 0x1000);
    t.append(rec(0x1024, 0x2000, BranchType::Conditional, true));
    const auto blocks = buildFetchBlocks(t);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].address, 0x1000u);
    EXPECT_EQ(blocks[0].endPc, 0x1020u);
    EXPECT_EQ(blocks[0].numInstrs(), 8u);
    EXPECT_FALSE(blocks[0].endsTaken);
    EXPECT_EQ(blocks[0].numBranches, 0);
    EXPECT_EQ(blocks[1].address, 0x1020u);
    EXPECT_TRUE(blocks[1].endsTaken);
}

TEST(FetchBlock, UnalignedStartShortensBlock)
{
    // A taken branch lands mid-row: the next block runs only to the
    // next 32-byte boundary.
    Trace t("t", 0x1014);
    t.append(rec(0x1018, 0x3004, BranchType::Unconditional, true));
    t.append(rec(0x3028, 0x1000, BranchType::Unconditional, true));
    const auto blocks = buildFetchBlocks(t);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].address, 0x1014u);
    EXPECT_EQ(blocks[0].numInstrs(), 2u);
    // Block 1: from 0x3004 to the row end 0x3020.
    EXPECT_EQ(blocks[1].address, 0x3004u);
    EXPECT_EQ(blocks[1].endPc, 0x3020u);
    EXPECT_FALSE(blocks[1].endsTaken);
    // Block 2: 0x3020 .. taken at 0x3028.
    EXPECT_EQ(blocks[2].address, 0x3020u);
    EXPECT_TRUE(blocks[2].endsTaken);
}

TEST(FetchBlock, NotTakenOnLastRowSlotClosesAtBoundary)
{
    Trace t("t", 0x1000);
    t.append(rec(0x101c, 0x2000, BranchType::Conditional, false));
    t.append(rec(0x1020, 0x3000, BranchType::Unconditional, true));
    const auto blocks = buildFetchBlocks(t);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].endPc, 0x1020u);
    EXPECT_EQ(blocks[0].numBranches, 1);
    EXPECT_FALSE(blocks[0].endsTaken);
}

TEST(FetchBlock, UpToEightBranchesPerBlock)
{
    // 8 consecutive not-taken conditionals filling an aligned row.
    Trace t("t", 0x1000);
    for (int i = 0; i < 8; ++i)
        t.append(rec(0x1000 + 4 * i, 0x2000, BranchType::Conditional,
                     false));
    const auto blocks = buildFetchBlocks(t);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].numBranches, 8);
    EXPECT_EQ(blocks[0].numInstrs(), 8u);
}

TEST(FetchBlock, FlushEmitsPendingPartialBlock)
{
    Trace t("t", 0x1000);
    t.append(rec(0x1004, 0x2000, BranchType::Conditional, false));
    const auto blocks = buildFetchBlocks(t);
    ASSERT_EQ(blocks.size(), 1u); // flushed partial block
    EXPECT_EQ(blocks[0].numBranches, 1);
}

TEST(FetchBlockProperty, InvariantsOnRandomTraces)
{
    Rng rng(77);
    Trace t("rand", 0x120000000ULL);
    uint64_t flow = t.startPc();
    for (int i = 0; i < 20000; ++i) {
        BranchRecord r;
        r.pc = flow + rng.below(12) * kInstrBytes;
        r.type = rng.chance(0.8) ? BranchType::Conditional
                                 : BranchType::Unconditional;
        r.taken = r.type == BranchType::Conditional ? rng.chance(0.4)
                                                    : true;
        r.target = 0x120000000ULL + rng.below(1 << 16) * kInstrBytes;
        t.append(r);
        flow = r.nextPc();
    }

    const auto blocks = buildFetchBlocks(t);
    ASSERT_FALSE(blocks.empty());
    uint64_t cond_seen = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
        const FetchBlock &b = blocks[i];
        // 1..8 instructions, never spanning an aligned row.
        ASSERT_GE(b.numInstrs(), 1u);
        ASSERT_LE(b.numInstrs(), 8u);
        ASSERT_EQ(b.address / 32, (b.endPc - 1) / 32)
            << "block spans an aligned row";
        // Non-taken-ending blocks stop exactly at the row boundary.
        if (!b.endsTaken && i + 1 < blocks.size()) {
            ASSERT_EQ(b.endPc % 32, 0u);
        }
        // Chain: each block starts where the previous said it would.
        if (i + 1 < blocks.size()) {
            ASSERT_EQ(blocks[i + 1].address, b.nextAddress());
        }
        // Branches lie inside the block, in order.
        for (unsigned j = 0; j < b.numBranches; ++j) {
            ASSERT_GE(b.branches[j].pc, b.address);
            ASSERT_LT(b.branches[j].pc, b.endPc);
            if (j > 0) {
                ASSERT_GT(b.branches[j].pc, b.branches[j - 1].pc);
            }
        }
        // Only the last branch of a taken-ending block may be taken.
        for (unsigned j = 0; j + 1 < b.numBranches; ++j)
            ASSERT_FALSE(b.branches[j].taken);
        cond_seen += b.numBranches;
    }
    EXPECT_EQ(cond_seen, t.stats().dynamicCondBranches);

    // Total instructions in blocks equal the trace's instruction count.
    uint64_t instrs = 0;
    for (const auto &b : blocks)
        instrs += b.numInstrs();
    // The final flushed block is padded to its row boundary, so allow
    // up to 7 extra slots.
    EXPECT_GE(instrs, t.instructionCount());
    EXPECT_LE(instrs, t.instructionCount() + 7);
}

} // namespace
} // namespace ev8
