/**
 * @file
 * Tests for the generic (unconstrained) 2Bc-gskew predictor and its
 * configuration presets.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictors/twobcgskew.hh"

namespace ev8
{
namespace
{

BranchSnapshot
snap(uint64_t pc, uint64_t hist, uint64_t path_z = 0)
{
    BranchSnapshot s;
    s.pc = pc;
    s.blockAddr = pc & ~uint64_t{31};
    s.hist.indexHist = hist;
    s.hist.pathZ = path_z;
    s.hist.pathY = path_z >> 8;
    s.hist.pathX = path_z >> 16;
    return s;
}

TEST(TwoBcGskewConfig, Ev8SizeMatchesTable1)
{
    const auto cfg = TwoBcGskewConfig::ev8Size();
    // Table 1 of the paper: prediction/hysteresis entries and history
    // lengths per component.
    EXPECT_EQ(cfg.tables[BIM].log2Pred, 14u);  // 16K
    EXPECT_EQ(cfg.tables[BIM].log2Hyst, 14u);  // 16K
    EXPECT_EQ(cfg.tables[BIM].histLen, 4u);
    EXPECT_EQ(cfg.tables[G0].log2Pred, 16u);   // 64K
    EXPECT_EQ(cfg.tables[G0].log2Hyst, 15u);   // 32K
    EXPECT_EQ(cfg.tables[G0].histLen, 13u);
    EXPECT_EQ(cfg.tables[G1].log2Pred, 16u);   // 64K
    EXPECT_EQ(cfg.tables[G1].log2Hyst, 16u);   // 64K
    EXPECT_EQ(cfg.tables[G1].histLen, 21u);
    EXPECT_EQ(cfg.tables[META].log2Pred, 16u); // 64K
    EXPECT_EQ(cfg.tables[META].log2Hyst, 15u); // 32K
    EXPECT_EQ(cfg.tables[META].histLen, 15u);
    // 208 Kbits prediction + 144 Kbits hysteresis = 352 Kbits.
    EXPECT_EQ(cfg.storageBits(), 352u * 1024);
}

TEST(TwoBcGskewConfig, SymmetricBudgets)
{
    // 4 * 64K 2-bit entries = 512 Kbits (the Fig. 5/8 base config).
    EXPECT_EQ(TwoBcGskewConfig::symmetric(16, 0, 17, 20, 27, "x")
                  .storageBits(),
              512u * 1024);
    EXPECT_EQ(TwoBcGskewConfig::symmetric(15, 0, 13, 16, 23, "x")
                  .storageBits(),
              256u * 1024);
}

TEST(TwoBcGskew, IndicesStayInTableRange)
{
    TwoBcGskewPredictor p(TwoBcGskewConfig::ev8Size());
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto s = snap(rng.next(), rng.next(), rng.next());
        EXPECT_LT(p.tableIndex(BIM, s), size_t{1} << 14);
        EXPECT_LT(p.tableIndex(G0, s), size_t{1} << 16);
        EXPECT_LT(p.tableIndex(G1, s), size_t{1} << 16);
        EXPECT_LT(p.tableIndex(META, s), size_t{1} << 16);
    }
}

TEST(TwoBcGskew, BimIgnoresHistoryWhenLengthZero)
{
    TwoBcGskewPredictor p(
        TwoBcGskewConfig::symmetric(12, 0, 9, 11, 14, "t"));
    EXPECT_EQ(p.tableIndex(BIM, snap(0x1000, 0x00)),
              p.tableIndex(BIM, snap(0x1000, 0xff)));
    EXPECT_NE(p.tableIndex(G0, snap(0x1000, 0x00)),
              p.tableIndex(G0, snap(0x1000, 0xff)));
}

TEST(TwoBcGskew, PathInfoChangesIndicesOnlyWhenEnabled)
{
    auto cfg = TwoBcGskewConfig::symmetric(12, 4, 9, 11, 14, "t");
    cfg.usePathInfo = false;
    TwoBcGskewPredictor without(cfg);
    cfg.usePathInfo = true;
    TwoBcGskewPredictor with(cfg);

    const auto a = snap(0x1000, 0x5a, /*path_z=*/0x111100);
    const auto b = snap(0x1000, 0x5a, /*path_z=*/0x999900);
    EXPECT_EQ(without.tableIndex(G1, a), without.tableIndex(G1, b));
    EXPECT_NE(with.tableIndex(G1, a), with.tableIndex(G1, b));
}

TEST(TwoBcGskew, LearnsBiasedBranchViaBim)
{
    TwoBcGskewPredictor p(
        TwoBcGskewConfig::symmetric(12, 0, 9, 11, 14, "t"));
    Rng rng(3);
    int wrong = 0;
    uint64_t hist = 0;
    for (int i = 0; i < 300; ++i) {
        const auto s = snap(0x2000, hist);
        const bool pred = p.predict(s);
        p.update(s, true, pred);
        wrong += !pred;
        hist = (hist << 1) | 1;
    }
    EXPECT_LT(wrong, 6);
}

TEST(TwoBcGskew, MetaSwitchesToGskewForCorrelatedBranch)
{
    // A branch whose outcome is history-dependent: the bimodal can at
    // best be 50% right, the majority vote learns it; meta must migrate.
    TwoBcGskewPredictor p(
        TwoBcGskewConfig::symmetric(12, 0, 9, 11, 14, "t"));
    Rng rng(4);
    uint64_t hist = 0;
    int wrong_late = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const bool driver = rng.chance(0.5);
        // driver branch
        auto d = snap(0x4000, hist);
        p.update(d, driver, p.predict(d));
        hist = (hist << 1) | (driver ? 1 : 0);
        // correlated branch copies the driver outcome
        auto s = snap(0x5000, hist);
        const bool pred = p.predict(s);
        p.update(s, driver, pred);
        if (i > n / 2)
            wrong_late += pred != driver;
        hist = (hist << 1) | (driver ? 1 : 0);
    }
    EXPECT_LT(wrong_late / double(n / 2), 0.10);
}

TEST(TwoBcGskew, PartialBeatsTotalUpdateUnderAliasing)
{
    // The Section 4.2 claim: partial update yields better accuracy via
    // better space utilization. Reproduce with a small predictor under
    // heavy aliasing pressure.
    auto cfg = TwoBcGskewConfig::symmetric(8, 0, 7, 8, 10, "t");
    cfg.partialUpdate = true;
    TwoBcGskewPredictor partial(cfg);
    cfg.partialUpdate = false;
    TwoBcGskewPredictor total(cfg);

    Rng rng(5);
    uint64_t hist = 0;
    int wrong_partial = 0, wrong_total = 0;
    // Many strongly biased static branches fighting over 256 entries.
    for (int i = 0; i < 60000; ++i) {
        const uint64_t pc = 0x1000 + (rng.below(1024) << 2);
        const bool taken = (pc >> 2) % 3 == 0; // per-branch constant
        auto s = snap(pc, hist);
        const bool pp = partial.predict(s);
        partial.update(s, taken, pp);
        const bool tp = total.predict(s);
        total.update(s, taken, tp);
        wrong_partial += pp != taken;
        wrong_total += tp != taken;
        hist = (hist << 1) | (taken ? 1 : 0);
    }
    EXPECT_LT(wrong_partial, wrong_total);
}

TEST(TwoBcGskew, HalfSizeHysteresisSharesEntries)
{
    // G0's hysteresis is half the prediction array: indices differing
    // only in the prediction-index MSB share a hysteresis entry.
    auto cfg = TwoBcGskewConfig::ev8Size();
    TwoBcGskewPredictor p(cfg);
    const auto &g0 = p.bank(G0);
    EXPECT_EQ(g0.predSize(), size_t{1} << 16);
    EXPECT_EQ(g0.hystSize(), size_t{1} << 15);
    EXPECT_EQ(g0.hystIndex(0x8123), g0.hystIndex(0x0123));
    const auto &g1 = p.bank(G1);
    EXPECT_NE(g1.hystIndex(0x8123), g1.hystIndex(0x0123));
}

TEST(TwoBcGskew, ResetRestoresInitialState)
{
    TwoBcGskewPredictor p(
        TwoBcGskewConfig::symmetric(10, 0, 8, 9, 10, "t"));
    const auto s = snap(0x1000, 0x3c);
    const bool before = p.predict(s);
    for (int i = 0; i < 100; ++i)
        p.update(s, !before, p.predict(s));
    p.reset();
    EXPECT_EQ(p.predict(s), before);
}

TEST(TwoBcGskew, NameUsesLabel)
{
    EXPECT_EQ(TwoBcGskewPredictor(TwoBcGskewConfig::ev8Size()).name(),
              "2Bc-gskew-EV8size");
}

} // namespace
} // namespace ev8
