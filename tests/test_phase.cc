/**
 * @file
 * Unit tests for the phase-classification layer under the stratified
 * sampler: windowed feature extraction, the leader-follower
 * classifier, the PhaseMap tiling invariants and its serialization
 * round-trip, and the sample planner's allocation guarantees. These
 * are the properties the extrapolation math relies on -- windows tile
 * the stream exactly, everything is a pure deterministic function of
 * (trace content, spec), and a corrupt sidecar is rejected rather
 * than trusted.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/block_stream.hh"
#include "sim/phase/classifier.hh"
#include "sim/phase/features.hh"
#include "sim/phase/phase_map.hh"
#include "sim/phase/sample_plan.hh"
#include "trace/trace_io.hh"
#include "workloads/suite.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kBranches = 20000;
constexpr uint64_t kWindow = 1024;
constexpr uint32_t kMaxPhases = 8;

const BlockStream &
testStream()
{
    static const BlockStream stream = decodeBlockStream(
        generateTrace(findBenchmark("gcc").profile, kBranches));
    return stream;
}

const PhaseMap &
testMap()
{
    static const PhaseMap map =
        buildPhaseMap(testStream(), kWindow, kMaxPhases);
    return map;
}

SampleSpec
testSpec()
{
    SampleSpec spec;
    spec.active = true;
    spec.windowBranches = kWindow;
    spec.warmupBranches = kWindow;
    spec.seed = 1;
    spec.maxPhases = kMaxPhases;
    return spec;
}

TEST(PhaseFeatures, DistanceIsSymmetricAndZeroOnSelf)
{
    const BlockStream &s = testStream();
    const size_t mid = s.blocks() / 2;
    const WindowFeatures a = extractWindowFeatures(s, 0, mid);
    const WindowFeatures b = extractWindowFeatures(s, mid, s.blocks());
    EXPECT_DOUBLE_EQ(featureDistance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(featureDistance(b, b), 0.0);
    EXPECT_DOUBLE_EQ(featureDistance(a, b), featureDistance(b, a));
}

TEST(PhaseFeatures, ScalarFeaturesAreNormalized)
{
    const BlockStream &s = testStream();
    const WindowFeatures f = extractWindowFeatures(s, 0, s.blocks());
    EXPECT_GE(f.takenRate, 0.0);
    EXPECT_LE(f.takenRate, 1.0);
    EXPECT_GE(f.transitionRate, 0.0);
    EXPECT_LE(f.transitionRate, 1.0);
    EXPECT_GE(f.entropy, 0.0);
    EXPECT_LE(f.entropy, 1.0);
    double l1 = 0.0;
    for (double bin : f.signature) {
        EXPECT_GE(bin, 0.0);
        l1 += bin;
    }
    EXPECT_NEAR(l1, 1.0, 1e-9);
}

TEST(PhaseFeatures, ExtractionIsDeterministic)
{
    const BlockStream &s = testStream();
    const WindowFeatures a = extractWindowFeatures(s, 0, s.blocks());
    const WindowFeatures b = extractWindowFeatures(s, 0, s.blocks());
    EXPECT_DOUBLE_EQ(featureDistance(a, b), 0.0);
}

TEST(PhaseClassifier, FoundsDistinctPhasesForDistantFeatures)
{
    PhaseClassifier c(4);
    WindowFeatures lo;
    lo.takenRate = 0.1;
    lo.signature[0] = 1.0;
    WindowFeatures hi;
    hi.takenRate = 0.9;
    hi.signature[1] = 1.0;
    EXPECT_EQ(c.classify(lo), 0u);
    EXPECT_EQ(c.classify(hi), 1u);
    EXPECT_EQ(c.phases(), 2u);
    // Repeats rejoin their founders.
    EXPECT_EQ(c.classify(lo), 0u);
    EXPECT_EQ(c.classify(hi), 1u);
    EXPECT_EQ(c.phases(), 2u);
}

TEST(PhaseClassifier, NearbyFeaturesJoinTheirLeader)
{
    PhaseClassifier c(4);
    WindowFeatures base;
    base.takenRate = 0.5;
    base.signature[0] = 1.0;
    WindowFeatures near = base;
    near.takenRate = 0.501;
    EXPECT_EQ(c.classify(base), 0u);
    EXPECT_EQ(c.classify(near), 0u);
    EXPECT_EQ(c.phases(), 1u);
}

TEST(PhaseClassifier, CapForcesJoinOfNearestLeader)
{
    PhaseClassifier c(2);
    for (int i = 0; i < 8; ++i) {
        WindowFeatures f;
        f.takenRate = 0.1 * i;
        f.signature[static_cast<size_t>(i) % kPhaseSignatureBins] = 1.0;
        const uint32_t id = c.classify(f);
        EXPECT_LT(id, 2u);
    }
    EXPECT_LE(c.phases(), 2u);
}

TEST(PhaseMapTest, WindowsTileTheStreamExactly)
{
    const BlockStream &s = testStream();
    const PhaseMap &map = testMap();

    ASSERT_FALSE(map.windows.empty());
    EXPECT_EQ(map.name, s.name());
    EXPECT_EQ(map.branches, s.branches());
    EXPECT_EQ(map.instructions, s.instructions());
    EXPECT_EQ(map.windowBranches, kWindow);
    EXPECT_EQ(map.maxPhases, kMaxPhases);
    EXPECT_GE(map.phases, 1u);
    EXPECT_LE(map.phases, kMaxPhases);

    // Per-block instruction counts include the tail instructions after
    // the last CTI, which Trace::instructionCount() excludes -- the
    // tiling invariant is against the block sums.
    uint64_t block_instrs = 0;
    for (size_t b = 0; b < s.blocks(); ++b)
        block_instrs += s.blockInstrs(b);

    uint64_t branches = 0, instrs = 0, next_block = 0, next_branch = 0;
    for (const PhaseWindow &w : map.windows) {
        EXPECT_EQ(w.blockBegin, next_block);
        EXPECT_EQ(w.branchBegin, next_branch);
        EXPECT_LT(w.blockBegin, w.blockEnd);
        EXPECT_LT(w.phaseId, map.phases);
        next_block = w.blockEnd;
        next_branch += w.branches;
        branches += w.branches;
        instrs += w.instrs;
    }
    EXPECT_EQ(next_block, s.blocks());
    EXPECT_EQ(branches, s.branches());
    EXPECT_EQ(instrs, block_instrs);
}

TEST(PhaseMapTest, WindowsRespectTheBranchBudget)
{
    const PhaseMap &map = testMap();
    // Block alignment can overshoot a window by at most one block's
    // branches; only the final window may run short (the remainder).
    for (size_t i = 0; i + 1 < map.windows.size(); ++i)
        EXPECT_GE(map.windows[i].branches, kWindow);
}

TEST(PhaseMapTest, BuildIsDeterministic)
{
    const PhaseMap again = buildPhaseMap(testStream(), kWindow, kMaxPhases);
    EXPECT_EQ(again, testMap());
}

TEST(PhaseMapTest, SerializationRoundTrips)
{
    std::stringstream buf;
    writePhaseMap(buf, testMap());
    const PhaseMap back = readPhaseMap(buf);
    EXPECT_EQ(back, testMap());
}

TEST(PhaseMapTest, RejectsGarbageAndTruncation)
{
    std::stringstream garbage("not a phase map at all");
    EXPECT_THROW(readPhaseMap(garbage), TraceIoError);

    std::stringstream buf;
    writePhaseMap(buf, testMap());
    const std::string bytes = buf.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(readPhaseMap(truncated), TraceIoError);
}

TEST(PhaseMapTest, RejectsFlippedVersion)
{
    std::stringstream buf;
    writePhaseMap(buf, testMap());
    std::string bytes = buf.str();
    // The u32 version follows the 4-byte magic; poke its low byte.
    bytes[4] = static_cast<char>(bytes[4] + 1);
    std::stringstream bumped(bytes);
    EXPECT_THROW(readPhaseMap(bumped), TraceIoError);
}

TEST(SamplePlanTest, PlanIsDeterministicAndSorted)
{
    const SampleSpec spec = testSpec();
    const SamplePlan a = buildSamplePlan(testMap(), spec, 4096);
    const SamplePlan b = buildSamplePlan(testMap(), spec, 4096);

    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].index, b.windows[i].index);
        EXPECT_EQ(a.windows[i].blockBegin, b.windows[i].blockBegin);
    }
    EXPECT_TRUE(std::is_sorted(
        a.windows.begin(), a.windows.end(),
        [](const SampledWindow &x, const SampledWindow &y) {
            return x.blockBegin < y.blockBegin;
        }));
}

TEST(SamplePlanTest, TotalsReproduceTheStream)
{
    const SamplePlan plan = buildSamplePlan(testMap(), testSpec(), 4096);
    EXPECT_EQ(plan.phases, testMap().phases);
    EXPECT_EQ(plan.windowsTotal, testMap().windows.size());
    EXPECT_EQ(plan.totalBranches, testStream().branches());
    EXPECT_EQ(plan.totalInstructions, testStream().instructions());

    uint64_t branches = 0, instrs = 0, windows = 0;
    ASSERT_EQ(plan.totals.size(), plan.phases);
    for (const SamplePlan::PhaseTotals &t : plan.totals) {
        windows += t.windows;
        branches += t.branches;
        instrs += t.instrs;
    }
    EXPECT_EQ(windows, plan.windowsTotal);
    EXPECT_EQ(branches, plan.totalBranches);
    // Window instrs count post-CTI tails the trace-level total omits.
    EXPECT_GE(instrs, plan.totalInstructions);
}

TEST(SamplePlanTest, BudgetRoughlyMet)
{
    const uint64_t budget = 4096;
    const SamplePlan plan = buildSamplePlan(testMap(), testSpec(), budget);
    ASSERT_FALSE(plan.windows.empty());
    // Allocation rounds to whole windows: within one window of target
    // on each side (and never more than the whole stream).
    EXPECT_GE(plan.measuredBranches() + 2 * kWindow, budget);
    EXPECT_LE(plan.measuredBranches(), testStream().branches());
}

TEST(SamplePlanTest, TinyBudgetStillSelectsOneWindow)
{
    const SamplePlan plan = buildSamplePlan(testMap(), testSpec(), 1);
    EXPECT_EQ(plan.windows.size(), 1u);
}

TEST(SamplePlanTest, OversizedBudgetSelectsEveryWindow)
{
    const SamplePlan plan = buildSamplePlan(
        testMap(), testSpec(), testStream().branches() * 2);
    EXPECT_EQ(plan.windows.size(), testMap().windows.size());
    EXPECT_EQ(plan.measuredBranches(), testStream().branches());
}

TEST(SamplePlanTest, EveryPhaseRepresentedWhenBudgetAllows)
{
    const PhaseMap &map = testMap();
    const uint64_t budget =
        static_cast<uint64_t>(map.phases) * 2 * kWindow;
    const SamplePlan plan = buildSamplePlan(map, testSpec(), budget);

    std::vector<bool> seen(map.phases, false);
    for (const SampledWindow &w : plan.windows) {
        ASSERT_LT(w.phaseId, map.phases);
        seen[w.phaseId] = true;
    }
    for (uint32_t p = 0; p < map.phases; ++p)
        EXPECT_TRUE(seen[p]) << "phase " << p << " unrepresented";
}

TEST(SamplePlanTest, WarmupPrefixPrecedesEachWindow)
{
    const SamplePlan plan = buildSamplePlan(testMap(), testSpec(), 4096);
    for (const SampledWindow &w : plan.windows) {
        EXPECT_LE(w.warmupBlockBegin, w.blockBegin);
        EXPECT_LT(w.blockBegin, w.blockEnd);
    }
    EXPECT_EQ(plan.warmupBranches, testSpec().warmupBranches);
}

TEST(SamplePlanTest, SeedMovesInPhasePlacement)
{
    SampleSpec other = testSpec();
    other.seed = 99;
    const SamplePlan a = buildSamplePlan(testMap(), testSpec(), 4096);
    const SamplePlan b = buildSamplePlan(testMap(), other, 4096);
    // Same allocation sizes (seed only shifts which representatives
    // are picked inside each phase).
    EXPECT_EQ(a.windows.size(), b.windows.size());
    EXPECT_EQ(b.seed, 99u);
}

} // namespace
} // namespace ev8
