/**
 * @file
 * Tests for the suite runner and history-length sweep harness.
 */

#include <gtest/gtest.h>

#include "predictors/factory.hh"
#include "sim/suite_runner.hh"
#include "sim/sweep.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kTinyScale = 3000;

TEST(SuiteRunner, CoversAllBenchmarksInOrder)
{
    SuiteRunner runner(kTinyScale);
    const auto results = runner.run([] { return makePredictor("bimodal:10"); },
                                    SimConfig::ghist());
    ASSERT_EQ(results.size(), 8u);
    EXPECT_EQ(results[0].bench, "compress");
    EXPECT_EQ(results[7].bench, "vortex");
    for (const auto &r : results)
        EXPECT_GT(r.sim.condBranches, 0u);
}

TEST(SuiteRunner, TraceCachingIsStable)
{
    SuiteRunner runner(kTinyScale);
    const Trace &first = runner.trace(2);
    const Trace &second = runner.trace(2);
    EXPECT_EQ(&first, &second) << "trace must be generated once";
    EXPECT_EQ(first.name(), "go");
}

TEST(SuiteRunner, RunsAreDeterministic)
{
    SuiteRunner runner(kTinyScale);
    const auto a = runner.run([] { return makePredictor("gshare:12:10"); },
                              SimConfig::ghist());
    const auto b = runner.run([] { return makePredictor("gshare:12:10"); },
                              SimConfig::ghist());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].sim.stats.mispredictions(),
                  b[i].sim.stats.mispredictions());
    }
}

TEST(SuiteRunner, BranchVolumesFollowWeights)
{
    SuiteRunner runner(kTinyScale);
    const auto results = runner.run([] { return makePredictor("bimodal:10"); },
                                    SimConfig::ghist());
    // li carries the largest dynamic weight (Table 2), ijpeg the least.
    uint64_t li = 0, ijpeg = 0;
    for (const auto &r : results) {
        if (r.bench == "li")
            li = r.sim.condBranches;
        if (r.bench == "ijpeg")
            ijpeg = r.sim.condBranches;
    }
    EXPECT_GT(li, ijpeg);
}

TEST(SuiteRunner, AverageMispKi)
{
    std::vector<BenchResult> rows(2);
    rows[0].sim.stats.setInstructions(1000);
    rows[1].sim.stats.setInstructions(1000);
    for (int i = 0; i < 4; ++i)
        rows[0].sim.stats.record(true, false); // 4 misp/KI
    for (int i = 0; i < 2; ++i)
        rows[1].sim.stats.record(true, false); // 2 misp/KI
    EXPECT_DOUBLE_EQ(SuiteRunner::averageMispKI(rows), 3.0);
    EXPECT_DOUBLE_EQ(SuiteRunner::averageMispKI({}), 0.0);
}

TEST(Sweep, EvaluatesAllLengthsAndFindsMinimum)
{
    SuiteRunner runner(kTinyScale);
    const auto points = sweepHistoryLengths(
        runner,
        [](unsigned len) {
            return makePredictor("gshare:12:" + std::to_string(len));
        },
        {0, 6, 12}, SimConfig::ghist());
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].histLen, 0u);
    EXPECT_EQ(points[2].histLen, 12u);
    for (const auto &p : points) {
        EXPECT_GT(p.avgMispKI, 0.0);
        EXPECT_EQ(p.perBench.size(), 8u);
    }
    const SweepPoint &best = bestPoint(points);
    for (const auto &p : points)
        EXPECT_LE(best.avgMispKI, p.avgMispKI);
}

TEST(Sweep, HistoryHelpsOnTheSuite)
{
    // Even at tiny scale, *some* history must beat no history for a
    // gshare of adequate size -- the suite is correlation-rich.
    SuiteRunner runner(20000);
    const auto points = sweepHistoryLengths(
        runner,
        [](unsigned len) {
            return makePredictor("gshare:14:" + std::to_string(len));
        },
        {0, 10}, SimConfig::ghist());
    EXPECT_LT(points[1].avgMispKI, points[0].avgMispKI);
}

} // namespace
} // namespace ev8
