/**
 * @file
 * Unit tests for the synthetic branch behaviour models.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "workloads/branch_behavior.hh"

namespace ev8
{
namespace
{

BehaviorContext
ctxWith(Rng &rng, uint64_t ghist = 0, uint64_t path = 0)
{
    BehaviorContext ctx;
    ctx.rng = &rng;
    ctx.ghist = ghist;
    ctx.path = path;
    return ctx;
}

TEST(BiasedBehavior, RespectsProbability)
{
    Rng rng(1);
    auto ctx = ctxWith(rng);
    BiasedBehavior b(0.9);
    int taken = 0;
    for (int i = 0; i < 10000; ++i)
        taken += b.nextOutcome(ctx);
    EXPECT_NEAR(taken / 10000.0, 0.9, 0.02);
}

TEST(BiasedBehavior, ExtremesAreDeterministic)
{
    Rng rng(2);
    auto ctx = ctxWith(rng);
    BiasedBehavior always(1.0), never(0.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(always.nextOutcome(ctx));
        EXPECT_FALSE(never.nextOutcome(ctx));
    }
}

TEST(LoopBehavior, PeriodicTakenRuns)
{
    Rng rng(3);
    auto ctx = ctxWith(rng);
    LoopBehavior loop(5, 5, 5, 0.0);
    // Expect (trip-1)=4 taken then 1 not-taken, repeating.
    for (int rep = 0; rep < 3; ++rep) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(loop.nextOutcome(ctx)) << rep << "," << i;
        EXPECT_FALSE(loop.nextOutcome(ctx)) << rep;
    }
}

TEST(LoopBehavior, TripOneNeverTaken)
{
    Rng rng(4);
    auto ctx = ctxWith(rng);
    LoopBehavior loop(1, 1, 1, 0.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(loop.nextOutcome(ctx));
}

TEST(LoopBehavior, RerollChangesTripWithinBounds)
{
    Rng rng(5);
    auto ctx = ctxWith(rng);
    LoopBehavior loop(4, 2, 8, 1.0); // re-roll after every exit
    for (int rep = 0; rep < 50; ++rep) {
        unsigned run = 0;
        while (loop.nextOutcome(ctx))
            ++run;
        EXPECT_GE(run + 1, 1u);
        EXPECT_LE(run + 1, 8u);
    }
}

TEST(PatternBehavior, CyclesExactly)
{
    Rng rng(6);
    auto ctx = ctxWith(rng);
    PatternBehavior p({true, false, false, true});
    for (int rep = 0; rep < 3; ++rep) {
        EXPECT_TRUE(p.nextOutcome(ctx));
        EXPECT_FALSE(p.nextOutcome(ctx));
        EXPECT_FALSE(p.nextOutcome(ctx));
        EXPECT_TRUE(p.nextOutcome(ctx));
    }
}

TEST(PatternBehavior, EmptyPatternDegradesGracefully)
{
    Rng rng(7);
    auto ctx = ctxWith(rng);
    PatternBehavior p({});
    EXPECT_FALSE(p.nextOutcome(ctx));
}

TEST(GlobalCorrelated, XorIsParityOfTaps)
{
    Rng rng(8);
    auto ctx = ctxWith(rng);
    GlobalCorrelatedBehavior b(0b101, CorrKind::Xor, false, 0.0);
    ctx.ghist = 0b001; // taps 0 and 2 -> parity(1,0)=1
    EXPECT_TRUE(b.nextOutcome(ctx));
    ctx.ghist = 0b101; // parity(1,1)=0
    EXPECT_FALSE(b.nextOutcome(ctx));
    ctx.ghist = 0b110; // parity(0,1)=1
    EXPECT_TRUE(b.nextOutcome(ctx));
}

TEST(GlobalCorrelated, InvertFlips)
{
    Rng rng(9);
    auto ctx = ctxWith(rng);
    GlobalCorrelatedBehavior plain(0b1, CorrKind::Xor, false, 0.0);
    GlobalCorrelatedBehavior inv(0b1, CorrKind::Xor, true, 0.0);
    for (uint64_t h : {0ull, 1ull}) {
        ctx.ghist = h;
        EXPECT_NE(plain.nextOutcome(ctx), inv.nextOutcome(ctx));
    }
}

TEST(GlobalCorrelated, AndFormIsTakenRare)
{
    Rng rng(10);
    auto ctx = ctxWith(rng);
    GlobalCorrelatedBehavior b(0b11, CorrKind::And, false, 0.0);
    int taken = 0;
    for (int i = 0; i < 4096; ++i) {
        ctx.ghist = rng.next();
        taken += b.nextOutcome(ctx);
    }
    EXPECT_NEAR(taken / 4096.0, 0.25, 0.05);
}

TEST(GlobalCorrelated, OrFormIsTakenOften)
{
    Rng rng(11);
    auto ctx = ctxWith(rng);
    GlobalCorrelatedBehavior b(0b11, CorrKind::Or, false, 0.0);
    int taken = 0;
    for (int i = 0; i < 4096; ++i) {
        ctx.ghist = rng.next();
        taken += b.nextOutcome(ctx);
    }
    EXPECT_NEAR(taken / 4096.0, 0.75, 0.05);
}

TEST(GlobalCorrelated, DeterministicWithoutNoise)
{
    Rng rng(12);
    auto ctx = ctxWith(rng);
    GlobalCorrelatedBehavior b(0b1101, CorrKind::And, false, 0.0);
    for (uint64_t h = 0; h < 16; ++h) {
        ctx.ghist = h;
        const bool first = b.nextOutcome(ctx);
        ctx.ghist = h;
        EXPECT_EQ(b.nextOutcome(ctx), first) << "h=" << h;
    }
}

TEST(GlobalCorrelated, DeepestTap)
{
    GlobalCorrelatedBehavior b(0b1000100, CorrKind::Xor, false, 0.0);
    EXPECT_EQ(b.deepestTap(), 7u);
    GlobalCorrelatedBehavior one(0b1, CorrKind::Xor, false, 0.0);
    EXPECT_EQ(one.deepestTap(), 1u);
}

TEST(GlobalCorrelated, NoiseFlipsApproximatelyAtRate)
{
    Rng rng(13);
    auto ctx = ctxWith(rng);
    GlobalCorrelatedBehavior noisy(0b1, CorrKind::Xor, false, 0.1);
    int flips = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        ctx.ghist = i & 1;
        const bool expected = (i & 1) != 0;
        flips += noisy.nextOutcome(ctx) != expected;
    }
    EXPECT_NEAR(flips / double(n), 0.1, 0.02);
}

TEST(PathCorrelated, DependsOnPathOnly)
{
    Rng rng(14);
    auto ctx = ctxWith(rng);
    PathCorrelatedBehavior b(0b11, false, 0.0);
    ctx.path = 0b01;
    ctx.ghist = 0xdead; // must be ignored
    const bool v1 = b.nextOutcome(ctx);
    ctx.ghist = 0xbeef;
    EXPECT_EQ(b.nextOutcome(ctx), v1);
    ctx.path = 0b11;
    EXPECT_NE(b.nextOutcome(ctx), v1);
}

TEST(RandomBehavior, RoughlyFair)
{
    Rng rng(15);
    auto ctx = ctxWith(rng);
    RandomBehavior b;
    int taken = 0;
    for (int i = 0; i < 10000; ++i)
        taken += b.nextOutcome(ctx);
    EXPECT_NEAR(taken / 10000.0, 0.5, 0.02);
}

TEST(SampleBehavior, PureWeightsPickTheClass)
{
    BehaviorTuning tuning;
    Rng rng(16);
    BehaviorMix only_random;
    only_random.biased = 0.0;
    only_random.random = 1.0;
    for (int i = 0; i < 20; ++i) {
        auto b = sampleBehavior(only_random, tuning, rng);
        EXPECT_STREQ(b->name(), "random");
    }
    BehaviorMix only_biased; // default biased = 1.0
    for (int i = 0; i < 20; ++i) {
        auto b = sampleBehavior(only_biased, tuning, rng);
        EXPECT_STREQ(b->name(), "biased");
    }
}

TEST(SampleBehavior, BiasedSkewsNotTaken)
{
    BehaviorTuning tuning;
    tuning.biasedNotTakenSkew = 0.8;
    Rng rng(17);
    BehaviorMix mix;
    int nt_biased = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        auto b = sampleBehavior(mix, tuning, rng);
        auto *biased = dynamic_cast<BiasedBehavior *>(b.get());
        ASSERT_NE(biased, nullptr);
        nt_biased += biased->takenProbability() < 0.5;
    }
    EXPECT_NEAR(nt_biased / double(n), 0.8, 0.06);
}

TEST(SampleLoopBehavior, TripsWithinBounds)
{
    BehaviorTuning tuning;
    tuning.loopMinTrip = 3;
    tuning.loopMaxTrip = 9;
    Rng rng(18);
    for (int i = 0; i < 200; ++i) {
        auto b = sampleLoopBehavior(tuning, rng);
        auto *loop = dynamic_cast<LoopBehavior *>(b.get());
        ASSERT_NE(loop, nullptr);
        EXPECT_GE(loop->currentTrip(), 3u);
        EXPECT_LE(loop->currentTrip(), 9u);
    }
}

TEST(SampleBehavior, CorrTapsWithinConfiguredDepth)
{
    BehaviorTuning tuning;
    tuning.corrMinDepth = 4;
    tuning.corrMaxDepth = 12;
    Rng rng(19);
    BehaviorMix mix;
    mix.biased = 0.0;
    mix.globalCorrelated = 1.0;
    for (int i = 0; i < 100; ++i) {
        auto b = sampleBehavior(mix, tuning, rng);
        auto *corr = dynamic_cast<GlobalCorrelatedBehavior *>(b.get());
        ASSERT_NE(corr, nullptr);
        EXPECT_LE(corr->deepestTap(), 12u);
        EXPECT_EQ(corr->tapMask() & mask(4), 0u)
            << "taps must start at depth 4";
    }
}

} // namespace
} // namespace ev8
