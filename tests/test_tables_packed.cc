/**
 * @file
 * Property tests for the bit-packed counter tables: every operation of
 * TwoBitCounterTable and SplitCounterArray is driven in lock-step
 * against a transparent byte-per-counter reference model under long
 * random operation sequences, with full state compared after every
 * step. The packed tables must be observationally identical to the
 * reference -- they only change where the bits live.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "predictors/tables.hh"

namespace ev8
{
namespace
{

/** Byte-per-counter model of TwoBitCounterTable. */
class RefTwoBit
{
  public:
    explicit RefTwoBit(size_t entries) : table(entries, 1) {}

    bool taken(size_t i) const { return table[i] >= 2; }
    bool isStrong(size_t i) const { return table[i] == 0 || table[i] == 3; }
    uint8_t raw(size_t i) const { return table[i]; }
    void set(size_t i, uint8_t v) { table[i] = v; }

    void
    update(size_t i, bool t)
    {
        if (t) {
            if (table[i] < 3)
                ++table[i];
        } else {
            if (table[i] > 0)
                --table[i];
        }
    }

    void strengthen(size_t i) { update(i, taken(i)); }
    void reset() { table.assign(table.size(), 1); }

  private:
    std::vector<uint8_t> table;
};

/** Byte-per-bit model of SplitCounterArray. */
class RefSplit
{
  public:
    RefSplit(size_t pred_entries, size_t hyst_entries)
        : pred(pred_entries, 0), hyst(hyst_entries, 1),
          mask(hyst_entries - 1)
    {}

    size_t hi(size_t i) const { return i & mask; }
    bool taken(size_t i) const { return pred[i] != 0; }
    bool isStrong(size_t i) const { return hyst[hi(i)] == pred[i]; }
    uint8_t rawPred(size_t i) const { return pred[i]; }
    uint8_t rawHyst(size_t i) const { return hyst[hi(i)]; }
    void strengthen(size_t i) { hyst[hi(i)] = pred[i]; }

    void
    update(size_t i, bool t)
    {
        const uint8_t p = pred[i];
        uint8_t &h = hyst[hi(i)];
        const uint8_t tv = t ? 1 : 0;
        if (p == tv) {
            h = p;
        } else if (h == p) {
            h = !p;
        } else {
            pred[i] = tv;
            h = !tv;
        }
    }

    void
    setRaw(size_t i, bool p, bool h)
    {
        pred[i] = p;
        hyst[hi(i)] = h;
    }

    void
    reset()
    {
        pred.assign(pred.size(), 0);
        hyst.assign(hyst.size(), 1);
    }

  private:
    std::vector<uint8_t> pred;
    std::vector<uint8_t> hyst;
    size_t mask;
};

constexpr size_t kEntries = 256; //!< spans several packed words
constexpr unsigned kOps = 20000;

TEST(PackedTables, TwoBitTableMatchesByteReferenceUnderRandomOps)
{
    TwoBitCounterTable packed(kEntries);
    RefTwoBit ref(kEntries);
    Rng rng(0x2b17ab1eULL);

    ASSERT_EQ(packed.size(), kEntries);
    ASSERT_EQ(packed.storageBits(), kEntries * 2);

    for (unsigned op = 0; op < kOps; ++op) {
        const size_t i = rng.next() % kEntries;
        switch (rng.next() % 4) {
        case 0: {
            const bool t = (rng.next() & 1) != 0;
            packed.update(i, t);
            ref.update(i, t);
            break;
        }
        case 1:
            packed.strengthen(i);
            ref.strengthen(i);
            break;
        case 2: {
            const uint8_t v = static_cast<uint8_t>(rng.next() % 4);
            packed.set(i, v);
            ref.set(i, v);
            break;
        }
        default: // pure reads, checked below
            break;
        }
        ASSERT_EQ(packed.raw(i), ref.raw(i)) << "op " << op;
        ASSERT_EQ(packed.taken(i), ref.taken(i)) << "op " << op;
        ASSERT_EQ(packed.isStrong(i), ref.isStrong(i)) << "op " << op;
    }
    // Final sweep: every entry, not just the ones just touched.
    for (size_t i = 0; i < kEntries; ++i)
        ASSERT_EQ(packed.raw(i), ref.raw(i)) << "entry " << i;

    packed.reset();
    ref.reset();
    for (size_t i = 0; i < kEntries; ++i)
        ASSERT_EQ(packed.raw(i), TwoBitCounterTable::kWeaklyNotTaken);
}

TEST(PackedTables, SplitArrayMatchesByteReferenceUnderRandomOps)
{
    // Half-size hysteresis: the sharing case of Section 4.4, where a
    // packed-bit indexing slip would corrupt a *different* entry.
    SplitCounterArray packed(kEntries, kEntries / 2);
    RefSplit ref(kEntries, kEntries / 2);
    Rng rng(0x511717ULL);

    ASSERT_EQ(packed.predSize(), kEntries);
    ASSERT_EQ(packed.hystSize(), kEntries / 2);
    ASSERT_EQ(packed.storageBits(), kEntries + kEntries / 2);

    for (unsigned op = 0; op < kOps; ++op) {
        const size_t i = rng.next() % kEntries;
        switch (rng.next() % 4) {
        case 0: {
            const bool t = (rng.next() & 1) != 0;
            packed.update(i, t);
            ref.update(i, t);
            break;
        }
        case 1:
            packed.strengthen(i);
            ref.strengthen(i);
            break;
        case 2: {
            const bool p = (rng.next() & 1) != 0;
            const bool h = (rng.next() & 1) != 0;
            packed.setRaw(i, p, h);
            ref.setRaw(i, p, h);
            break;
        }
        default:
            break;
        }
        ASSERT_EQ(packed.hystIndex(i), ref.hi(i));
        ASSERT_EQ(packed.rawPred(i), ref.rawPred(i)) << "op " << op;
        ASSERT_EQ(packed.rawHyst(i), ref.rawHyst(i)) << "op " << op;
        ASSERT_EQ(packed.taken(i), ref.taken(i)) << "op " << op;
        ASSERT_EQ(packed.isStrong(i), ref.isStrong(i)) << "op " << op;
    }
    for (size_t i = 0; i < kEntries; ++i) {
        ASSERT_EQ(packed.rawPred(i), ref.rawPred(i)) << "entry " << i;
        ASSERT_EQ(packed.rawHyst(i), ref.rawHyst(i)) << "entry " << i;
    }

    packed.reset();
    ref.reset();
    for (size_t i = 0; i < kEntries; ++i) {
        ASSERT_EQ(packed.rawPred(i), 0);
        ASSERT_EQ(packed.rawHyst(i), 1);
    }
}

TEST(PackedTables, SplitArrayFullSizeHysteresisIsAPlainTwoBitCounter)
{
    // With equal array sizes the split table must behave as a 2-bit
    // saturating counter: walk one entry through the full state graph.
    SplitCounterArray split(64, 64);
    TwoBitCounterTable two(64);
    Rng rng(7);
    for (unsigned op = 0; op < 2000; ++op) {
        const size_t i = rng.next() % 64;
        const bool t = (rng.next() & 1) != 0;
        split.update(i, t);
        two.update(i, t);
        ASSERT_EQ(split.taken(i), two.taken(i));
        ASSERT_EQ(split.isStrong(i), two.isStrong(i));
    }
}

} // namespace
} // namespace ev8
