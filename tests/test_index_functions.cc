/**
 * @file
 * Tests for the Section 7 EV8 index functions: hand-checked examples
 * from the published equations, plus structural property tests of the
 * hardware constraints (shared unhashed wordline, single-2-input-XOR
 * column bits, XOR unshuffle permutation).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hh"
#include "common/random.hh"
#include "core/index_functions.hh"

namespace ev8
{
namespace
{

Ev8IndexInput
input(uint64_t a = 0, uint64_t h = 0, uint64_t z = 0, unsigned bank = 0)
{
    return Ev8IndexInput{a, h, z, bank};
}

// ---------------------------------------------------------------------
// Hand-checked samples of the published equations.
// ---------------------------------------------------------------------

TEST(Wordline, Ev8IsH3H2H1H0A8A7)
{
    // (i10..i5) = (h3, h2, h1, h0, a8, a7).
    auto wl = [](const Ev8IndexInput &in) {
        return ev8WordCoords(G1, in, WordlineMode::Ev8).wordline;
    };
    EXPECT_EQ(wl(input(0, 0, 0)), 0u);
    EXPECT_EQ(wl(input(0, 0b1000, 0)), 32u); // h3 -> top wordline bit
    EXPECT_EQ(wl(input(0, 0b0100, 0)), 16u); // h2
    EXPECT_EQ(wl(input(0, 0b0010, 0)), 8u);  // h1
    EXPECT_EQ(wl(input(0, 0b0001, 0)), 4u);  // h0
    EXPECT_EQ(wl(input(0x100, 0, 0)), 2u);   // a8
    EXPECT_EQ(wl(input(0x080, 0, 0)), 1u);   // a7
    EXPECT_EQ(wl(input(0x180, 0b1111, 0)), 63u);
}

TEST(Wordline, SharedByAllFourTables)
{
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        const auto in = input(rng.next(), rng.next(), rng.next(),
                              unsigned(rng.below(4)));
        const unsigned wl =
            ev8WordCoords(BIM, in, WordlineMode::Ev8).wordline;
        for (TableId t : {G0, G1, META}) {
            EXPECT_EQ(ev8WordCoords(t, in, WordlineMode::Ev8).wordline,
                      wl);
        }
    }
}

TEST(Wordline, AddressOnlyModeIgnoresHistory)
{
    const auto a = input(0xdead00, 0x00000, 0);
    const auto b = input(0xdead00, 0x1ffff, 0);
    EXPECT_EQ(ev8WordCoords(G0, a, WordlineMode::AddressOnly).wordline,
              ev8WordCoords(G0, b, WordlineMode::AddressOnly).wordline);
    EXPECT_NE(ev8WordCoords(G0, a, WordlineMode::Ev8).wordline,
              ev8WordCoords(G0, b, WordlineMode::Ev8).wordline);
}

TEST(Column, G1MatchesPublishedEquation)
{
    // (i15..i11) = (h19^h12, h18^h11, h17^h10, h16^h4, h15^h20).
    auto col = [](uint64_t h) {
        return ev8WordCoords(G1, input(0, h, 0), WordlineMode::Ev8)
            .column;
    };
    EXPECT_EQ(col(0), 0u);
    EXPECT_EQ(col(1ull << 19), 16u);
    EXPECT_EQ(col(1ull << 12), 16u);
    EXPECT_EQ(col((1ull << 19) | (1ull << 12)), 0u); // XOR cancels
    EXPECT_EQ(col(1ull << 18), 8u);
    EXPECT_EQ(col(1ull << 11), 8u);
    EXPECT_EQ(col(1ull << 17), 4u);
    EXPECT_EQ(col(1ull << 10), 4u);
    EXPECT_EQ(col(1ull << 16), 2u);
    EXPECT_EQ(col(1ull << 4), 2u);
    EXPECT_EQ(col(1ull << 15), 1u);
    EXPECT_EQ(col(1ull << 20), 1u);
}

TEST(Column, MetaMatchesPublishedEquation)
{
    // (i15..i11) = (h7^h11, h8^h12, h5^h13, h4^h9, a9^h6).
    auto col = [](uint64_t a, uint64_t h) {
        return ev8WordCoords(META, input(a, h, 0), WordlineMode::Ev8)
            .column;
    };
    EXPECT_EQ(col(0, 1ull << 7), 16u);
    EXPECT_EQ(col(0, 1ull << 11), 16u);
    EXPECT_EQ(col(0, 1ull << 8), 8u);
    EXPECT_EQ(col(0, 1ull << 12), 8u);
    EXPECT_EQ(col(0, 1ull << 5), 4u);
    EXPECT_EQ(col(0, 1ull << 13), 4u);
    EXPECT_EQ(col(0, 1ull << 4), 2u);
    EXPECT_EQ(col(0, 1ull << 9), 2u);
    EXPECT_EQ(col(1ull << 9, 0), 1u); // a9
    EXPECT_EQ(col(0, 1ull << 6), 1u); // h6
}

TEST(Column, G0SharesTopTwoBitsWithMeta)
{
    // "To simplify the implementation of column selectors, G0 and Meta
    // share i15 and i14."
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const auto in = input(rng.next(), rng.next(), rng.next());
        const unsigned g0 =
            ev8WordCoords(G0, in, WordlineMode::Ev8).column;
        const unsigned meta =
            ev8WordCoords(META, in, WordlineMode::Ev8).column;
        EXPECT_EQ(g0 >> 3, meta >> 3);
    }
}

TEST(Column, BimUsesAddressAndZPath)
{
    // (i13,i12,i11) = (a11, a10^z5, a9^z6)  [reconstructed].
    auto col = [](uint64_t a, uint64_t z) {
        return ev8WordCoords(BIM, input(a, 0, z), WordlineMode::Ev8)
            .column;
    };
    EXPECT_EQ(col(1ull << 11, 0), 4u);
    EXPECT_EQ(col(1ull << 10, 0), 2u);
    EXPECT_EQ(col(0, 1ull << 5), 2u);
    EXPECT_EQ(col(1ull << 9, 0), 1u);
    EXPECT_EQ(col(0, 1ull << 6), 1u);
}

// ---------------------------------------------------------------------
// Structural hardware constraints.
// ---------------------------------------------------------------------

/**
 * Enumerates the input bit positions the functions may consume, as
 * (field, bit) pairs flattened into single-bit input vectors.
 */
struct ProbeBit
{
    enum Field { A, H, Z } field;
    unsigned pos;
};

std::vector<ProbeBit>
probeBits()
{
    std::vector<ProbeBit> bits;
    for (unsigned i = 2; i <= 16; ++i)
        bits.push_back({ProbeBit::A, i});
    for (unsigned i = 0; i <= 20; ++i)
        bits.push_back({ProbeBit::H, i});
    for (unsigned i = 5; i <= 6; ++i)
        bits.push_back({ProbeBit::Z, i});
    return bits;
}

Ev8IndexInput
inputWith(const ProbeBit &probe)
{
    Ev8IndexInput in{};
    const uint64_t v = uint64_t{1} << probe.pos;
    switch (probe.field) {
      case ProbeBit::A: in.blockAddr = v; break;
      case ProbeBit::H: in.hist = v; break;
      case ProbeBit::Z: in.zAddr = v; break;
    }
    return in;
}

class ColumnConstraint : public ::testing::TestWithParam<TableId>
{
};

TEST_P(ColumnConstraint, EachColumnBitUsesAtMostOneTwoEntryXor)
{
    // "computation of the column bits can only use one 2-entry XOR
    // gate": every column bit is a linear function of at most two
    // input bits.
    const TableId table = GetParam();
    const unsigned width = ev8ColumnBits(table);
    const auto probes = probeBits();

    for (unsigned b = 0; b < width; ++b) {
        unsigned deps = 0;
        for (const auto &probe : probes) {
            const unsigned flipped =
                ev8WordCoords(table, inputWith(probe), WordlineMode::Ev8)
                    .column
                ^ ev8WordCoords(table, Ev8IndexInput{},
                                WordlineMode::Ev8)
                      .column;
            deps += (flipped >> b) & 1;
        }
        EXPECT_LE(deps, 2u) << "table " << table << " column bit " << b;
        EXPECT_GE(deps, 1u) << "dead column bit";
    }
}

TEST_P(ColumnConstraint, ColumnIsLinearInInputs)
{
    // The hardware is pure XOR logic: f(x ^ y) = f(x) ^ f(y) ^ f(0).
    const TableId table = GetParam();
    Rng rng(3);
    const auto col = [&](const Ev8IndexInput &in) {
        return ev8WordCoords(table, in, WordlineMode::Ev8).column;
    };
    const unsigned f0 = col(Ev8IndexInput{});
    for (int i = 0; i < 300; ++i) {
        Ev8IndexInput x = input(rng.next(), rng.next() & mask(21),
                                rng.next());
        Ev8IndexInput y = input(rng.next(), rng.next() & mask(21),
                                rng.next());
        Ev8IndexInput xy = input(x.blockAddr ^ y.blockAddr,
                                 x.hist ^ y.hist, x.zAddr ^ y.zAddr);
        EXPECT_EQ(col(xy), col(x) ^ col(y) ^ f0);
    }
}

INSTANTIATE_TEST_SUITE_P(Tables, ColumnConstraint,
                         ::testing::Values(BIM, G0, G1, META));

TEST(Unshuffle, IsAPermutationOfOffsets)
{
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const auto in = input(rng.next(), rng.next(), rng.next());
        for (TableId t : {BIM, G0, G1, META}) {
            const unsigned u =
                ev8WordCoords(t, in, WordlineMode::Ev8).unshuffle;
            bool seen[8] = {};
            for (unsigned offset = 0; offset < 8; ++offset) {
                const unsigned pos = ev8BitOffset(offset << 2, u);
                ASSERT_LT(pos, 8u);
                ASSERT_FALSE(seen[pos]) << "not a permutation";
                seen[pos] = true;
            }
        }
    }
}

TEST(Unshuffle, G1DeepestXorTreeHasElevenInputs)
{
    // Section 8.5: "11 bits are XORed in the unshuffling function on
    // table G1": 10 information bits in the parameter plus the branch's
    // own offset bit.
    const auto probes = probeBits();
    unsigned deps = 0;
    const unsigned u0_base =
        ev8WordCoords(G1, Ev8IndexInput{}, WordlineMode::Ev8).unshuffle
        & 1;
    for (const auto &probe : probes) {
        const unsigned u0 =
            ev8WordCoords(G1, inputWith(probe), WordlineMode::Ev8)
                .unshuffle
            & 1;
        deps += u0 != u0_base;
    }
    EXPECT_EQ(deps + 1, 11u);
}

TEST(EntryIndex, LayoutRoundtrip)
{
    // (i1,i0) bank, (i4..i2) offset, (i10..i5) wordline, rest column.
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto in = input(rng.next(), rng.next() & mask(21),
                              rng.next(), unsigned(rng.below(4)));
        const uint64_t branch_pc = in.blockAddr + rng.below(8) * 4;
        for (TableId t : {BIM, G0, G1, META}) {
            const size_t idx =
                ev8EntryIndex(t, in, branch_pc, WordlineMode::Ev8);
            ASSERT_LT(idx, size_t{1} << ev8IndexBits(t));
            const Ev8WordCoords direct =
                ev8WordCoords(t, in, WordlineMode::Ev8);
            const Ev8WordCoords decomposed = ev8DecomposeIndex(t, idx);
            EXPECT_EQ(decomposed.bank, direct.bank);
            EXPECT_EQ(decomposed.wordline, direct.wordline);
            EXPECT_EQ(decomposed.column, direct.column);
            EXPECT_EQ(ev8IndexOffset(idx),
                      ev8BitOffset(branch_pc, direct.unshuffle));
        }
    }
}

TEST(EntryIndex, BimIs14BitsOthers16)
{
    EXPECT_EQ(ev8IndexBits(BIM), 14u);
    EXPECT_EQ(ev8IndexBits(G0), 16u);
    EXPECT_EQ(ev8IndexBits(G1), 16u);
    EXPECT_EQ(ev8IndexBits(META), 16u);
}

TEST(EntryIndex, BranchesInSameBlockGetDistinctEntries)
{
    // Eight branches of one fetch block must land on the 8 distinct
    // bits of the same word: same word coordinates, distinct offsets.
    const auto in = input(0x120001000ULL, 0x1abcd, 0x120000f80ULL, 2);
    for (TableId t : {BIM, G0, G1, META}) {
        bool seen[8] = {};
        for (unsigned slot = 0; slot < 8; ++slot) {
            const size_t idx = ev8EntryIndex(
                t, in, in.blockAddr + slot * 4, WordlineMode::Ev8);
            const unsigned offset = ev8IndexOffset(idx);
            ASSERT_FALSE(seen[offset]);
            seen[offset] = true;
            // Word-level coordinates identical for all 8.
            EXPECT_EQ(idx & ~size_t{0x1c},
                      ev8EntryIndex(t, in, in.blockAddr, WordlineMode::Ev8)
                          & ~size_t{0x1c});
        }
    }
}

TEST(EntryIndex, HistoryConsumptionMatchesTable1Lengths)
{
    // BIM sees h0..h3 only; G0 h0..h12; Meta h0..h14; G1 h0..h20.
    const auto base = input(0x4321000, 0, 0x7700);
    auto idx = [&](TableId t, uint64_t h) {
        Ev8IndexInput in = base;
        in.hist = h;
        return ev8EntryIndex(t, in, base.blockAddr, WordlineMode::Ev8);
    };
    struct Case { TableId t; unsigned maxBit; };
    for (const Case c : {Case{BIM, 4u}, Case{G0, 13u}, Case{META, 15u},
                         Case{G1, 21u}}) {
        for (unsigned b = 0; b < 21; ++b) {
            const bool moved = idx(c.t, 0) != idx(c.t, 1ull << b);
            if (b < c.maxBit)
                EXPECT_TRUE(moved) << "table " << c.t << " ignores h" << b;
            else
                EXPECT_FALSE(moved)
                    << "table " << c.t << " consumes h" << b
                    << " beyond its history length";
        }
    }
}

} // namespace
} // namespace ev8
