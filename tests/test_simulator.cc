/**
 * @file
 * Tests for the trace-driven simulator: information-vector plumbing
 * (ghist vs. lghist, aging, path registers, banks) and accounting.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "frontend/bank_scheduler.hh"
#include "frontend/fetch_block_util.hh"
#include "frontend/lghist.hh"
#include "sim/simulator.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{
namespace
{

BranchRecord
rec(uint64_t pc, uint64_t target, BranchType type, bool taken)
{
    return BranchRecord{pc, target, type, taken};
}

/** Probe predictor: records every snapshot it sees, predicts not-taken. */
class ProbePredictor : public ConditionalBranchPredictor
{
  public:
    bool
    predict(const BranchSnapshot &snap) override
    {
        seen.push_back(snap);
        return false;
    }
    void update(const BranchSnapshot &, bool taken, bool) override
    {
        outcomes.push_back(taken);
    }
    uint64_t storageBits() const override { return 0; }
    std::string name() const override { return "probe"; }
    void reset() override { seen.clear(); }

    std::vector<BranchSnapshot> seen;
    std::vector<bool> outcomes;
};

Trace
tinyTrace()
{
    // Three conditional branches across two fetch blocks plus a taken
    // jump between them.
    Trace t("tiny", 0x1000);
    t.append(rec(0x1004, 0x2000, BranchType::Conditional, false));
    t.append(rec(0x1008, 0x2000, BranchType::Conditional, true));
    t.append(rec(0x2004, 0x3000, BranchType::Conditional, false));
    t.append(rec(0x2008, 0x1000, BranchType::Unconditional, true));
    return t;
}

TEST(Simulator, CountsBranchesAndInstructions)
{
    ProbePredictor probe;
    const Trace t = tinyTrace();
    const SimResult r = simulateTrace(t, probe, SimConfig::ghist());
    EXPECT_EQ(r.condBranches, 3u);
    EXPECT_EQ(r.stats.lookups(), 3u);
    EXPECT_EQ(r.stats.instructions(), t.instructionCount());
    // Probe predicts not-taken: exactly the taken branch mispredicts.
    EXPECT_EQ(r.stats.mispredictions(), 1u);
}

TEST(Simulator, GhistModePassesPerBranchHistory)
{
    ProbePredictor probe;
    simulateTrace(tinyTrace(), probe, SimConfig::ghist());
    ASSERT_EQ(probe.seen.size(), 3u);
    EXPECT_EQ(probe.seen[0].hist.indexHist, 0u);
    // Second branch sees the first's outcome (NT = 0).
    EXPECT_EQ(probe.seen[1].hist.indexHist, 0b0u);
    // Third sees NT, T -> 0b01.
    EXPECT_EQ(probe.seen[2].hist.indexHist, 0b01u);
    // ghist mirror matches.
    EXPECT_EQ(probe.seen[2].hist.ghist, 0b01u);
}

TEST(Simulator, BlockAddressAndPcPlumbed)
{
    ProbePredictor probe;
    simulateTrace(tinyTrace(), probe, SimConfig::ghist());
    EXPECT_EQ(probe.seen[0].pc, 0x1004u);
    EXPECT_EQ(probe.seen[0].blockAddr, 0x1000u);
    EXPECT_EQ(probe.seen[2].pc, 0x2004u);
    EXPECT_EQ(probe.seen[2].blockAddr, 0x2000u);
}

TEST(Simulator, PathRegistersHoldPreviousBlocks)
{
    ProbePredictor probe;
    // Block chain: 0x1000 (taken to 0x2000), 0x2000 (jump to 0x1000),
    // 0x1000 ... with conditional branches in each 0x1000 block.
    Trace t("path", 0x1000);
    for (int i = 0; i < 4; ++i) {
        t.append(rec(0x1004, 0x2000, BranchType::Unconditional, true));
        t.append(rec(0x2004, 0x1000, BranchType::Conditional, true));
    }
    simulateTrace(t, probe, SimConfig::ev8());
    ASSERT_GE(probe.seen.size(), 3u);
    // The branch in the second 0x2000 block: previous block (Z) is the
    // 0x1000 block, before that (Y) the previous 0x2000 block.
    const BranchSnapshot &s = probe.seen[1];
    EXPECT_EQ(s.blockAddr, 0x2000u);
    EXPECT_EQ(s.hist.pathZ, 0x1000u);
    EXPECT_EQ(s.hist.pathY, 0x2000u);
    EXPECT_EQ(s.hist.pathX, 0x1000u);
}

TEST(Simulator, LghistAgingMatchesReferenceModel)
{
    // Cross-check the simulator's aged lghist against an independently
    // maintained reference built from the fetch-block sequence.
    const WorkloadProfile profile = [] {
        WorkloadProfile p;
        p.name = "aging";
        p.seed = 123;
        p.shape.numFunctions = 4;
        p.shape.minBlocksPerFunction = 6;
        p.shape.maxBlocksPerFunction = 16;
        p.mix.biased = 0.6;
        p.mix.random = 0.4;
        return p;
    }();
    const Trace t = generateTrace(profile, 3000);

    for (unsigned age : {0u, 3u}) {
        SimConfig cfg;
        cfg.history = HistoryMode::LghistPath;
        cfg.historyAge = age;
        ProbePredictor probe;
        simulateTrace(t, probe, cfg);

        // Reference: walk fetch blocks, maintain lghist, record the
        // aged view visible to each conditional branch.
        const auto blocks = buildFetchBlocks(t);
        LghistTracker lghist(true);
        std::deque<uint64_t> posts; // post-update register per block
        std::vector<uint64_t> expected;
        for (const auto &block : blocks) {
            uint64_t view = 0;
            if (posts.size() >= age + 1)
                view = posts[posts.size() - (age + 1)];
            for (unsigned i = 0; i < block.numBranches; ++i)
                expected.push_back(view);
            lghist.onBlock(block);
            posts.push_back(lghist.value());
        }

        ASSERT_EQ(probe.seen.size(), expected.size()) << "age " << age;
        for (size_t i = 0; i < expected.size(); ++i) {
            ASSERT_EQ(probe.seen[i].hist.indexHist, expected[i])
                << "age " << age << " branch " << i;
        }
    }
}

TEST(Simulator, LghistNoPathDiffersFromPath)
{
    const WorkloadProfile profile = [] {
        WorkloadProfile p;
        p.name = "paths";
        p.seed = 5;
        p.shape.numFunctions = 3;
        p.shape.minBlocksPerFunction = 6;
        p.shape.maxBlocksPerFunction = 12;
        p.mix.random = 1.0;
        p.mix.biased = 0.0;
        return p;
    }();
    const Trace t = generateTrace(profile, 2000);

    SimConfig with_path;
    with_path.history = HistoryMode::LghistPath;
    SimConfig no_path;
    no_path.history = HistoryMode::LghistNoPath;

    ProbePredictor a, b;
    simulateTrace(t, a, with_path);
    simulateTrace(t, b, no_path);
    ASSERT_EQ(a.seen.size(), b.seen.size());
    bool any_diff = false;
    for (size_t i = 0; i < a.seen.size(); ++i)
        any_diff |= a.seen[i].hist.indexHist != b.seen[i].hist.indexHist;
    EXPECT_TRUE(any_diff) << "path bit had no effect";
}

TEST(Simulator, BankAssignmentConflictFree)
{
    const WorkloadProfile profile = [] {
        WorkloadProfile p;
        p.name = "banks";
        p.seed = 9;
        p.shape.numFunctions = 4;
        p.shape.minBlocksPerFunction = 6;
        p.shape.maxBlocksPerFunction = 14;
        p.mix.biased = 0.7;
        p.mix.random = 0.3;
        return p;
    }();
    const Trace t = generateTrace(profile, 5000);
    ProbePredictor probe;
    simulateTrace(t, probe, SimConfig::ev8());
    // Banks are always valid and all four get used over a long run.
    // (Per-pair conflict-freedom is proven at the BankScheduler level;
    // snapshots alone cannot delimit dynamic block instances, since a
    // one-block loop legitimately re-banks the same address.)
    bool used[4] = {};
    for (const auto &s : probe.seen) {
        ASSERT_LT(s.bank, 4u);
        used[s.bank] = true;
    }
    EXPECT_TRUE(used[0] && used[1] && used[2] && used[3]);
}

TEST(Simulator, LghistRatioMatchesTable3Definition)
{
    ProbePredictor probe;
    const Trace t = tinyTrace();
    const SimResult r = simulateTrace(t, probe, SimConfig::ev8());
    // tiny trace: block 0x1000 has 2 cond branches, block 0x2000 has 1;
    // both insert one lghist bit each.
    EXPECT_EQ(r.lghistBits, 2u);
    EXPECT_EQ(r.condBranches, 3u);
    EXPECT_DOUBLE_EQ(r.lghistRatio(), 1.5);
}

TEST(Simulator, FetchBlocksCounted)
{
    ProbePredictor probe;
    const SimResult r =
        simulateTrace(tinyTrace(), probe, SimConfig::ghist());
    EXPECT_GE(r.fetchBlocks, 2u);
}

} // namespace
} // namespace ev8
