/**
 * @file
 * Exhaustive invariant checks of the Section 4.2 partial-update policy
 * over ALL 256 combinations of (prediction, hysteresis) states of the
 * four tables, for both outcomes: 512 scenarios, each verified against
 * the properties the paper's rationales imply.
 */

#include <gtest/gtest.h>

#include "predictors/gskew_policy.hh"
#include "predictors/tables.hh"

namespace ev8
{
namespace
{

/** Four single-entry banks so states can be enumerated exhaustively. */
struct TinyBanks
{
    std::array<SplitCounterArray, kNumTables> arrays{
        SplitCounterArray(1, 1), SplitCounterArray(1, 1),
        SplitCounterArray(1, 1), SplitCounterArray(1, 1)};

    bool taken(TableId t, size_t i) const { return arrays[t].taken(i); }
    void strengthen(TableId t, size_t i) { arrays[t].strengthen(i); }
    void update(TableId t, size_t i, bool v) { arrays[t].update(i, v); }

    void
    setState(unsigned code)
    {
        // 2 bits per table: (prediction, hysteresis).
        for (unsigned t = 0; t < kNumTables; ++t) {
            arrays[t].setRaw(0, (code >> (2 * t)) & 1,
                             (code >> (2 * t + 1)) & 1);
        }
    }

    bool pred(TableId t) const { return arrays[t].taken(0); }
};

GskewLookup
lookupOf(const TinyBanks &banks)
{
    GskewLookup look;
    look.idx = {0, 0, 0, 0};
    computeGskewVotes(banks, look);
    return look;
}

class PolicyExhaustive : public ::testing::TestWithParam<bool>
{
};

TEST_P(PolicyExhaustive, CorrectPredictionNeverTouchesPredictionBits)
{
    // Under partial update, a correct prediction writes only hysteresis
    // (that is what allows the physically split arrays of Section 4.3).
    const bool taken = GetParam();
    for (unsigned code = 0; code < 256; ++code) {
        TinyBanks banks;
        banks.setState(code);
        const GskewLookup look = lookupOf(banks);
        if (look.overall != taken)
            continue;
        const bool before[3] = {banks.pred(BIM), banks.pred(G0),
                                banks.pred(G1)};
        const bool meta_before = banks.pred(META);
        gskewPartialUpdate(banks, look, taken);
        EXPECT_EQ(banks.pred(BIM), before[0]) << "state " << code;
        EXPECT_EQ(banks.pred(G0), before[1]) << "state " << code;
        EXPECT_EQ(banks.pred(G1), before[2]) << "state " << code;
        EXPECT_EQ(banks.pred(META), meta_before) << "state " << code;
    }
}

TEST_P(PolicyExhaustive, AllAgreeingCorrectLeavesEverythingUntouched)
{
    // Rationale 1, over every state where it applies.
    const bool taken = GetParam();
    for (unsigned code = 0; code < 256; ++code) {
        TinyBanks banks;
        banks.setState(code);
        const GskewLookup look = lookupOf(banks);
        if (look.overall != taken)
            continue;
        if (!(look.bimPred == look.g0Pred && look.g0Pred == look.g1Pred))
            continue;
        TinyBanks reference;
        reference.setState(code);
        gskewPartialUpdate(banks, look, taken);
        for (unsigned t = 0; t < kNumTables; ++t) {
            EXPECT_EQ(banks.arrays[t].rawPred(0),
                      reference.arrays[t].rawPred(0))
                << "state " << code;
            EXPECT_EQ(banks.arrays[t].rawHyst(0),
                      reference.arrays[t].rawHyst(0))
                << "state " << code;
        }
    }
}

TEST_P(PolicyExhaustive, PredictionBitsNeverFlipAwayFromOutcome)
{
    // Every prediction-bank write moves toward the outcome: a bank that
    // already predicted the outcome may never be flipped off it.
    const bool taken = GetParam();
    for (unsigned code = 0; code < 256; ++code) {
        TinyBanks banks;
        banks.setState(code);
        const GskewLookup look = lookupOf(banks);
        const bool agreed[3] = {banks.pred(BIM) == taken,
                                banks.pred(G0) == taken,
                                banks.pred(G1) == taken};
        gskewPartialUpdate(banks, look, taken);
        const TableId tables[3] = {BIM, G0, G1};
        for (int i = 0; i < 3; ++i) {
            if (agreed[i]) {
                EXPECT_EQ(banks.pred(tables[i]), taken)
                    << "state " << code << " table " << tables[i];
            }
        }
    }
}

TEST_P(PolicyExhaustive, RepeatedOutcomeConverges)
{
    // Feeding the same outcome repeatedly must reach a fixed point that
    // predicts that outcome, from any start state, within 4 rounds.
    const bool taken = GetParam();
    for (unsigned code = 0; code < 256; ++code) {
        TinyBanks banks;
        banks.setState(code);
        for (int round = 0; round < 4; ++round) {
            const GskewLookup look = lookupOf(banks);
            gskewPartialUpdate(banks, look, taken);
        }
        EXPECT_EQ(lookupOf(banks).overall, taken) << "state " << code;
        // And a genuine fixed point: one more round changes nothing.
        TinyBanks reference = banks;
        gskewPartialUpdate(banks, lookupOf(banks), taken);
        for (unsigned t = 0; t < kNumTables; ++t) {
            EXPECT_EQ(banks.arrays[t].rawPred(0),
                      reference.arrays[t].rawPred(0));
        }
    }
}

TEST_P(PolicyExhaustive, TotalUpdateAlwaysMovesPredictionBanksToOutcome)
{
    const bool taken = GetParam();
    for (unsigned code = 0; code < 256; ++code) {
        TinyBanks banks;
        banks.setState(code);
        gskewTotalUpdate(banks, lookupOf(banks), taken);
        gskewTotalUpdate(banks, lookupOf(banks), taken);
        // Two total updates saturate every bank toward the outcome.
        EXPECT_EQ(banks.pred(BIM), taken) << "state " << code;
        EXPECT_EQ(banks.pred(G0), taken) << "state " << code;
        EXPECT_EQ(banks.pred(G1), taken) << "state " << code;
    }
}

INSTANTIATE_TEST_SUITE_P(BothOutcomes, PolicyExhaustive,
                         ::testing::Bool());

} // namespace
} // namespace ev8
