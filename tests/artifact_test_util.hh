/**
 * @file
 * Helpers for byte-identity assertions over bench artifacts.
 *
 * The ev8-bench-v1 JSON now carries two members whose *values* are
 * wall-clock dependent while their *presence* is deterministic: the
 * top-level "telemetry" block and the per-failure "attempt_ns" arrays.
 * Byte-identity gates (serial vs. parallel, fused vs. per-cell, resumed
 * vs. uninterrupted) therefore compare artifacts with those values
 * masked; everything else must still match byte for byte. The CI twin
 * of this helper is ci/strip_telemetry.py.
 */

#ifndef EV8_TESTS_ARTIFACT_TEST_UTIL_HH
#define EV8_TESTS_ARTIFACT_TEST_UTIL_HH

#include <cctype>
#include <string>

namespace ev8
{
namespace test_util
{

/**
 * Replaces every `"<key>": <open>...<close>` value with an empty
 * container, tracking string literals and escapes so braces inside
 * string values cannot truncate the match. Assumes @p key itself only
 * appears as an object key (true for the controlled artifact schema).
 */
inline std::string
maskJsonMember(std::string s, const std::string &key, char open,
               char close)
{
    const std::string needle = "\"" + key + "\":";
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
        size_t v = pos + needle.size();
        while (v < s.size()
               && std::isspace(static_cast<unsigned char>(s[v])))
            ++v;
        if (v >= s.size() || s[v] != open) {
            pos = v;
            continue;
        }
        size_t end = v;
        int depth = 0;
        bool in_str = false, esc = false;
        for (; end < s.size(); ++end) {
            const char c = s[end];
            if (in_str) {
                if (esc)
                    esc = false;
                else if (c == '\\')
                    esc = true;
                else if (c == '"')
                    in_str = false;
            } else if (c == '"') {
                in_str = true;
            } else if (c == open) {
                ++depth;
            } else if (c == close && --depth == 0) {
                ++end;
                break;
            }
        }
        s.replace(v, end - v, {open, close});
        pos = v + 2;
    }
    return s;
}

/**
 * Masks the timing-dependent artifact members ("telemetry" objects,
 * "attempt_ns" arrays) plus the mode-dependent "sampling" block (its
 * values are deterministic but it exists only in sampled runs, so
 * exact-vs-sampled comparisons must ignore it) so the rest of the
 * document can be compared byte for byte across worker counts,
 * kernels, caches and resumes.
 */
inline std::string
maskTimingDependent(std::string json)
{
    json = maskJsonMember(std::move(json), "telemetry", '{', '}');
    json = maskJsonMember(std::move(json), "attempt_ns", '[', ']');
    json = maskJsonMember(std::move(json), "sampling", '{', '}');
    return json;
}

} // namespace test_util
} // namespace ev8

#endif // EV8_TESTS_ARTIFACT_TEST_UTIL_HH
