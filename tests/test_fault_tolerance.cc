/**
 * @file
 * Fault-tolerance tests for the experiment engine, at two levels:
 *
 *  - engine: a permanently failing cell is isolated into a CellFailure
 *    (the rest of the grid completes, healthy outputs byte-equal a
 *    fault-free run), transient faults heal through bounded retries,
 *    a poisoned fused group falls back to per-cell execution, and the
 *    retry knobs (EV8_RETRY_MAX / EV8_RETRY_BASE_MS) behave.
 *
 *  - end to end, spawning the real bench binaries: a partial run exits
 *    3 with a "failures" section in every artifact, a SIGKILLed run
 *    resumes from its checkpoint journal to byte-identical artifacts,
 *    a malformed EV8_FAULT_SPEC exits 2, and an unusable trace-cache
 *    directory degrades to in-memory caching without failing the run.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "artifact_test_util.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "predictors/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

namespace ev8
{
namespace
{

namespace fs = std::filesystem;

constexpr uint64_t kTinyScale = 3000;

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

/** A unique directory under /tmp, removed on scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/ev8-fault-test-XXXXXX";
        path_ = ::mkdtemp(tmpl);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

size_t
benchIndex(SuiteRunner &runner, const std::string &name)
{
    for (size_t i = 0; i < runner.size(); ++i) {
        if (runner.name(i) == name)
            return i;
    }
    ADD_FAILURE() << "no benchmark named " << name;
    return 0;
}

/** Runs a two-row grid (same walk config: the rows fuse per bench). */
GridOutcome
runTwoRowGrid(SuiteRunner &runner)
{
    std::vector<GridRow> rows;
    size_t r = 0;
    for (const char *spec : {"gshare:12:8", "gshare:12:12"}) {
        GridRow row;
        row.factory = [spec] { return makePredictor(spec); };
        row.config = SimConfig::ghist();
        row.label = "row" + std::to_string(r++);
        rows.push_back(std::move(row));
    }
    return runner.runGrid(rows);
}

uint64_t
engineCounter(SuiteRunner &runner, const std::string &name)
{
    MetricRegistry registry;
    runner.engine().publishMetrics(registry, "engine");
    return registry.counter("engine." + name).value();
}

/**
 * The isolation contract: one permanently failing cell (which also
 * poisons its fused group, forcing the per-cell fallback) becomes one
 * CellFailure; every other cell -- including the failing cell's fused
 * group mates -- matches a fault-free run exactly.
 */
TEST(FaultTolerance, PermanentFaultIsolatesExactlyOneCell)
{
    ScopedEnv no_ckpt("EV8_CHECKPOINT_DIR", nullptr);
    ScopedEnv no_wait("EV8_RETRY_BASE_MS", "0");

    GridOutcome clean;
    {
        ScopedEnv spec("EV8_FAULT_SPEC", nullptr);
        SuiteRunner runner(kTinyScale, 2);
        clean = runTwoRowGrid(runner);
        ASSERT_TRUE(clean.ok());
    }

    ScopedEnv spec("EV8_FAULT_SPEC", "job/=g0/r0/gcc+*");
    SuiteRunner runner(kTinyScale, 2);
    const size_t gcc = benchIndex(runner, "gcc");
    const GridOutcome outcome = runTwoRowGrid(runner);

    EXPECT_FALSE(outcome.ok());
    ASSERT_EQ(outcome.failures.size(), 1u);
    const CellFailure &f = outcome.failures.front();
    EXPECT_EQ(f.row, 0u);
    EXPECT_EQ(f.rowLabel, "row0");
    EXPECT_EQ(f.bench, "gcc");
    EXPECT_EQ(f.attempts, 3u); // the default EV8_RETRY_MAX
    EXPECT_NE(f.error.find("injected job fault"), std::string::npos)
        << f.error;

    // The failed cell carries the flag and an empty sim.
    ASSERT_EQ(outcome.results.size(), 2u);
    EXPECT_TRUE(outcome.results[0][gcc].failed);
    EXPECT_EQ(outcome.results[0][gcc].bench, "gcc");
    EXPECT_EQ(outcome.results[0][gcc].sim.stats.lookups(), 0u);

    // Every other cell is exactly what the fault-free run produced.
    for (size_t r = 0; r < 2; ++r) {
        for (size_t b = 0; b < runner.size(); ++b) {
            if (r == 0 && b == gcc)
                continue;
            const BenchResult &got = outcome.results[r][b];
            const BenchResult &want = clean.results[r][b];
            EXPECT_FALSE(got.failed) << r << "/" << got.bench;
            EXPECT_EQ(got.sim.stats.mispredictions(),
                      want.sim.stats.mispredictions())
                << r << "/" << got.bench;
            EXPECT_EQ(got.sim.stats.instructions(),
                      want.sim.stats.instructions())
                << r << "/" << got.bench;
        }
    }

    // The failure also accumulated on the runner and the engine.
    ASSERT_EQ(runner.failures().size(), 1u);
    EXPECT_EQ(runner.failures().front().bench, "gcc");
    EXPECT_EQ(engineCounter(runner, "cells_failed"), 1u);
    // The fused attempt consumed one occurrence, the fallback three:
    // two of those were retries.
    EXPECT_EQ(engineCounter(runner, "cells_retried"), 2u);

    // averageMispKI skips the failed cell instead of folding in a 0.
    const double avg = SuiteRunner::averageMispKI(outcome.results[0]);
    EXPECT_TRUE(std::isfinite(avg));
    EXPECT_GT(avg, 0.0);
}

/** A transient fault (two bad attempts) heals inside the retry budget. */
TEST(FaultTolerance, TransientFaultHealsThroughRetries)
{
    ScopedEnv no_ckpt("EV8_CHECKPOINT_DIR", nullptr);
    ScopedEnv no_wait("EV8_RETRY_BASE_MS", "0");

    auto run_single_row = [] {
        SuiteRunner runner(kTinyScale, 2);
        std::vector<GridRow> rows;
        GridRow row;
        row.factory = [] { return makePredictor("gshare:12:10"); };
        row.config = SimConfig::ghist();
        row.label = "solo";
        rows.push_back(std::move(row));
        GridOutcome outcome = runner.runGrid(rows);
        return std::make_pair(std::move(outcome),
                              engineCounter(runner, "cells_retried"));
    };

    GridOutcome clean;
    {
        ScopedEnv spec("EV8_FAULT_SPEC", nullptr);
        clean = run_single_row().first;
        ASSERT_TRUE(clean.ok());
    }

    ScopedEnv spec("EV8_FAULT_SPEC", "job/=g0/r0/gcc@1+2");
    const auto [outcome, retried] = run_single_row();
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(retried, 2u);
    for (size_t b = 0; b < clean.results[0].size(); ++b) {
        EXPECT_EQ(outcome.results[0][b].sim.stats.mispredictions(),
                  clean.results[0][b].sim.stats.mispredictions())
            << clean.results[0][b].bench;
    }
}

/** EV8_RETRY_MAX=1 means a single attempt: fail fast, no retries. */
TEST(FaultTolerance, RetryMaxCapsAttempts)
{
    ScopedEnv no_ckpt("EV8_CHECKPOINT_DIR", nullptr);
    ScopedEnv no_wait("EV8_RETRY_BASE_MS", "0");
    ScopedEnv max("EV8_RETRY_MAX", "1");
    ScopedEnv spec("EV8_FAULT_SPEC", "job/=g0/r0/gcc+*");

    SuiteRunner runner(kTinyScale, 2);
    std::vector<GridRow> rows;
    GridRow row;
    row.factory = [] { return makePredictor("gshare:12:10"); };
    row.config = SimConfig::ghist();
    rows.push_back(std::move(row));
    const GridOutcome outcome = runner.runGrid(rows);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures.front().attempts, 1u);
    EXPECT_EQ(engineCounter(runner, "cells_retried"), 0u);
}

TEST(FaultTolerance, RetryKnobsParseAndDefault)
{
    {
        ScopedEnv max("EV8_RETRY_MAX", nullptr);
        ScopedEnv base("EV8_RETRY_BASE_MS", nullptr);
        EXPECT_EQ(ExperimentEngine::retryMax(), 3u);
        EXPECT_EQ(ExperimentEngine::retryBaseMs(), 10u);
    }
    {
        ScopedEnv max("EV8_RETRY_MAX", "5");
        ScopedEnv base("EV8_RETRY_BASE_MS", "0");
        EXPECT_EQ(ExperimentEngine::retryMax(), 5u);
        EXPECT_EQ(ExperimentEngine::retryBaseMs(), 0u);
    }
}

TEST(FaultToleranceDeathTest, InvalidRetryKnobsExitUsage)
{
    {
        ScopedEnv max("EV8_RETRY_MAX", "0");
        EXPECT_EXIT(ExperimentEngine::retryMax(),
                    ::testing::ExitedWithCode(2), "EV8_RETRY_MAX");
    }
    {
        ScopedEnv base("EV8_RETRY_BASE_MS", "fast");
        EXPECT_EXIT(ExperimentEngine::retryBaseMs(),
                    ::testing::ExitedWithCode(2), "EV8_RETRY_BASE_MS");
    }
}

/** SuiteRunner::run (no partial-result channel) must throw instead. */
TEST(FaultTolerance, SuiteRunThrowsWhenACellExhaustsRetries)
{
    ScopedEnv no_ckpt("EV8_CHECKPOINT_DIR", nullptr);
    ScopedEnv no_wait("EV8_RETRY_BASE_MS", "0");
    ScopedEnv spec("EV8_FAULT_SPEC", "job/=g0/r0/gcc+*");
    SuiteRunner runner(kTinyScale, 2);
    EXPECT_THROW(runner.run([] { return makePredictor("gshare:12:10"); },
                            SimConfig::ghist()),
                 std::runtime_error);
}

#ifdef EV8_BENCH_DIR

/**
 * End-to-end scenarios against the real bench binaries. Environment
 * overrides ride the command line ("VAR=x prog ..."), so nothing
 * leaks into the test process; stdout is discarded, stderr captured
 * where a warning is asserted.
 */
class BenchE2E : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fig6_ = std::string(EV8_BENCH_DIR) + "/bench_fig6_history_length";
        fig5_ = std::string(EV8_BENCH_DIR) + "/bench_fig5_schemes";
        if (!std::ifstream(fig6_).good() || !std::ifstream(fig5_).good())
            GTEST_SKIP() << "bench binaries not built";
    }

    /** Raw wait status of "env binary args" run through the shell. */
    int
    runRaw(const std::string &env, const std::string &binary,
           const std::string &args, const std::string &stderr_path = "")
    {
        const std::string redirect = "> /dev/null 2>"
            + (stderr_path.empty() ? std::string("&1") : stderr_path);
        const std::string cmd =
            env + " " + binary + " " + args + " " + redirect;
        return std::system(cmd.c_str());
    }

    int
    runExit(const std::string &env, const std::string &binary,
            const std::string &args, const std::string &stderr_path = "")
    {
        const int status = runRaw(env, binary, args, stderr_path);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    /** Artifact flags for one run, rooted at dir/<tag>.*. */
    static std::string
    artifactArgs(const std::string &dir, const std::string &tag)
    {
        return "--branches=2000 --sample=16 --no-timing --json=" + dir
            + "/" + tag + ".json --csv=" + dir + "/" + tag
            + ".csv --events=" + dir + "/" + tag + ".jsonl";
    }

    std::string fig6_;
    std::string fig5_;
};

TEST_F(BenchE2E, PartialRunExitsThreeAndReportsTheFailure)
{
    TempDir tmp;
    const std::string cache = "EV8_TRACE_CACHE_DIR=" + tmp.path()
        + "/cache EV8_RETRY_BASE_MS=0";

    // A clean run first: exit 0, no failures section, warm cache.
    ASSERT_EQ(runExit(cache, fig6_,
                      artifactArgs(tmp.path(), "clean") + " --jobs=4"),
              0);
    const JsonValue clean = parseJson(slurp(tmp.path() + "/clean.json"));
    EXPECT_EQ(clean.find("failures"), nullptr);

    // One permanently failing cell plus transient cache-read faults:
    // the cache regenerates, the cell fails, everything else completes.
    const std::string env = cache
        + " EV8_FAULT_SPEC='job/=g0/r0/gcc+*,cache_read/+2'";
    EXPECT_EQ(runExit(env, fig6_,
                      artifactArgs(tmp.path(), "part") + " --jobs=4"),
              3);

    const JsonValue doc = parseJson(slurp(tmp.path() + "/part.json"));
    const JsonValue *failures = doc.find("failures");
    ASSERT_NE(failures, nullptr);
    ASSERT_TRUE(failures->isArray());
    ASSERT_EQ(failures->items.size(), 1u);
    const JsonValue &f = failures->items.front();
    EXPECT_EQ(f.at("row_label").text, "len8");
    EXPECT_EQ(f.at("bench").text, "gcc");
    EXPECT_EQ(f.at("attempts").number, 3.0);
    EXPECT_NE(f.at("error").text.find("injected job fault"),
              std::string::npos);

    const std::string csv = slurp(tmp.path() + "/part.csv");
    EXPECT_NE(csv.find("\nfailures\nrow_label,bench,attempts,error\n"),
              std::string::npos);
    EXPECT_NE(csv.find("len8,gcc,3,"), std::string::npos);

    const std::string events = slurp(tmp.path() + "/part.jsonl");
    EXPECT_NE(events.find("\"type\":\"cell_failure\""),
              std::string::npos);
}

TEST_F(BenchE2E, KilledRunResumesToByteIdenticalArtifacts)
{
    TempDir tmp;
    const std::string ckpt_dir = tmp.path() + "/ckpt";
    const std::string base = "EV8_TRACE_CACHE_DIR=" + tmp.path()
        + "/cache EV8_RETRY_BASE_MS=0";
    const std::string fault = " EV8_FAULT_SPEC='job/=g0/r0/gcc+*'";
    const std::string ckpt = " EV8_CHECKPOINT_DIR=" + ckpt_dir;

    // The reference: an uninterrupted (but equally faulty) run with no
    // checkpointing at all.
    ASSERT_EQ(runExit(base + fault, fig6_,
                      artifactArgs(tmp.path(), "ref") + " --jobs=4"),
              3);

    // The same run, checkpointed, SIGKILLed deterministically when the
    // gshare sweep (batch g3) first schedules its (len8, compress)
    // cell. Depending on whether the shell exec'd the binary, the kill
    // surfaces as a signal death or as exit code 128+9.
    const std::string die_env = base
        + " EV8_FAULT_SPEC='job/=g0/r0/gcc+*,die/=g3/r0/compress@1'"
        + ckpt;
    const int status = runRaw(
        die_env, fig6_, artifactArgs(tmp.path(), "killed") + " --jobs=4");
    const bool killed =
        (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        || (WIFEXITED(status) && WEXITSTATUS(status) == 128 + SIGKILL);
    ASSERT_TRUE(killed) << "raw wait status " << status;

    // The kill left journals behind (batches before g3 completed).
    ASSERT_TRUE(fs::exists(ckpt_dir));
    size_t journals = 0;
    for (const auto &entry : fs::directory_iterator(ckpt_dir)) {
        (void)entry;
        ++journals;
    }
    EXPECT_GT(journals, 0u);

    // Resume (die disarmed, the permanent cell fault still armed):
    // finishes partial as before, and every artifact byte matches the
    // uninterrupted reference -- at the same width and at width 1.
    ASSERT_EQ(runExit(base + fault + ckpt, fig6_,
                      artifactArgs(tmp.path(), "res4") + " --jobs=4"),
              3);
    ASSERT_EQ(runExit(base + fault + ckpt, fig6_,
                      artifactArgs(tmp.path(), "res1") + " --jobs=1"),
              3);
    // JSON carries wall-clock members (telemetry, per-failure
    // attempt_ns) that legitimately differ across runs; mask those and
    // require every remaining byte to match. CSV/JSONL carry none.
    for (const char *ext : {".json", ".csv", ".jsonl"}) {
        std::string ref = slurp(tmp.path() + "/ref" + ext);
        std::string res4 = slurp(tmp.path() + "/res4" + ext);
        std::string res1 = slurp(tmp.path() + "/res1" + ext);
        ASSERT_FALSE(ref.empty()) << ext;
        if (ext == std::string(".json")) {
            ref = test_util::maskTimingDependent(std::move(ref));
            res4 = test_util::maskTimingDependent(std::move(res4));
            res1 = test_util::maskTimingDependent(std::move(res1));
        }
        EXPECT_EQ(res4, ref) << ext;
        EXPECT_EQ(res1, ref) << ext;
    }
}

TEST_F(BenchE2E, MalformedFaultSpecExitsUsage)
{
    EXPECT_EQ(runExit("EV8_FAULT_SPEC='not-a-point'", fig5_,
                      "--branches=2000"),
              2);
}

TEST_F(BenchE2E, UnusableTraceCacheDirDegradesToMemory)
{
    TempDir tmp;
    // A path under a regular file: unusable for any process, root or
    // not (a chmod-based test would be a no-op under root).
    std::ofstream(tmp.path() + "/plain-file") << "x";
    const std::string env =
        "EV8_TRACE_CACHE_DIR=" + tmp.path() + "/plain-file/sub";
    const std::string stderr_path = tmp.path() + "/stderr.txt";
    EXPECT_EQ(runExit(env, fig5_,
                      "--branches=2000 --sample=32 --json=" + tmp.path()
                          + "/out.json",
                      stderr_path),
              0);
    EXPECT_NE(slurp(stderr_path).find("falling back to in-memory"),
              std::string::npos);
    // The degraded run self-reports in its metrics.
    EXPECT_NE(slurp(tmp.path() + "/out.json")
                  .find("trace_cache.disk_disabled"),
              std::string::npos);
}

#endif // EV8_BENCH_DIR

} // namespace
} // namespace ev8
