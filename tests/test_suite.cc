/**
 * @file
 * Tests for the SPECINT95-like benchmark suite definitions, checking the
 * Table 2 calibration axes at small scale.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "workloads/suite.hh"

namespace ev8
{
namespace
{

TEST(Suite, HasTheEightBenchmarksInTable2Order)
{
    const auto &suite = specint95Suite();
    ASSERT_EQ(suite.size(), 8u);
    const char *expected[] = {"compress", "gcc", "go", "ijpeg",
                              "li", "m88ksim", "perl", "vortex"};
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(suite[i].profile.name, expected[i]);
}

TEST(Suite, FindBenchmark)
{
    EXPECT_EQ(findBenchmark("gcc").profile.name, "gcc");
    EXPECT_THROW(findBenchmark("nosuch"), std::out_of_range);
}

TEST(Suite, DynamicWeightsFollowTable2)
{
    // Table 2: li (16254K) has the most dynamic conditional branches,
    // ijpeg (8894K) the fewest.
    const auto &suite = specint95Suite();
    double max_w = 0, min_w = 1e9;
    std::string max_name, min_name;
    for (const auto &b : suite) {
        if (b.dynamicWeight > max_w) {
            max_w = b.dynamicWeight;
            max_name = b.profile.name;
        }
        if (b.dynamicWeight < min_w) {
            min_w = b.dynamicWeight;
            min_name = b.profile.name;
        }
    }
    EXPECT_EQ(max_name, "li");
    EXPECT_EQ(min_name, "ijpeg");
    EXPECT_EQ(findBenchmark("gcc").branchesAt(12000), 16035u);
}

TEST(Suite, StaticFootprintOrderingMatchesTable2)
{
    // The CFG footprint ordering must match Table 2's static counts:
    // gcc >> go > vortex > ijpeg > ... > compress (the tiny one).
    auto static_count = [](const std::string &name) {
        return SyntheticProgram(findBenchmark(name).profile)
            .staticCondBranches();
    };
    const size_t gcc = static_count("gcc");
    const size_t go = static_count("go");
    const size_t vortex = static_count("vortex");
    const size_t ijpeg = static_count("ijpeg");
    const size_t compress = static_count("compress");
    EXPECT_GT(gcc, go);
    EXPECT_GT(go, vortex);
    EXPECT_GT(vortex, ijpeg);
    EXPECT_GT(ijpeg, compress);
    EXPECT_LT(compress, 100u);
    EXPECT_GT(gcc, 8000u);
}

TEST(Suite, TracesHaveRealisticShape)
{
    // Small-scale sanity of the traces the experiments consume.
    for (const auto &bench : specint95Suite()) {
        const Trace t = generateTrace(bench.profile, 20000);
        const TraceStats s = t.stats();
        EXPECT_EQ(s.dynamicCondBranches, 20000u) << bench.profile.name;
        // Branch density: SPECINT conditional branches are roughly one
        // per 5..20 instructions.
        const double density = double(s.dynamicCondBranches)
            / double(s.instructions);
        EXPECT_GT(density, 0.04) << bench.profile.name;
        EXPECT_LT(density, 0.35) << bench.profile.name;
        // Optimized-code taken-rate skew (Section 5.1): no benchmark is
        // overwhelmingly taken.
        EXPECT_LT(s.takenRate(), 0.80) << bench.profile.name;
        EXPECT_GT(s.takenRate(), 0.10) << bench.profile.name;
    }
}

TEST(Suite, BranchesPerBenchmarkReadsEnv)
{
    ASSERT_EQ(setenv("EV8_BRANCHES_PER_BENCH", "12345", 1), 0);
    EXPECT_EQ(branchesPerBenchmark(), 12345u);
    ASSERT_EQ(unsetenv("EV8_BRANCHES_PER_BENCH"), 0);
    EXPECT_EQ(branchesPerBenchmark(), 1000000u);
}

TEST(Suite, BranchesPerBenchmarkRejectsGarbage)
{
    // Strict knob parsing: a set-but-invalid budget is a hard usage
    // error (exit 2), never a silent fall-back to the default.
    ASSERT_EQ(setenv("EV8_BRANCHES_PER_BENCH", "garbage", 1), 0);
    EXPECT_EXIT(branchesPerBenchmark(), testing::ExitedWithCode(2),
                "EV8_BRANCHES_PER_BENCH");
    ASSERT_EQ(setenv("EV8_BRANCHES_PER_BENCH", "1e6", 1), 0);
    EXPECT_EXIT(branchesPerBenchmark(), testing::ExitedWithCode(2),
                "EV8_BRANCHES_PER_BENCH");
    ASSERT_EQ(setenv("EV8_BRANCHES_PER_BENCH", "0", 1), 0);
    EXPECT_EXIT(branchesPerBenchmark(), testing::ExitedWithCode(2),
                "EV8_BRANCHES_PER_BENCH");
    ASSERT_EQ(unsetenv("EV8_BRANCHES_PER_BENCH"), 0);
}

TEST(Suite, SeedsAreDistinct)
{
    const auto &suite = specint95Suite();
    for (size_t i = 0; i < suite.size(); ++i)
        for (size_t j = i + 1; j < suite.size(); ++j)
            EXPECT_NE(suite[i].profile.seed, suite[j].profile.seed);
}

} // namespace
} // namespace ev8
