/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace ev8
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(19);
    int counts[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(8)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 8, n / 80);
}

} // namespace
} // namespace ev8
