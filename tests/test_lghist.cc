/**
 * @file
 * Unit tests for lghist (block-compressed history, Section 5.1) and the
 * N-fetch-blocks-old delayed view.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/random.hh"
#include "frontend/lghist.hh"

namespace ev8
{
namespace
{

FetchBlock
blockWithLastBranch(uint64_t branch_pc, bool taken)
{
    FetchBlock b;
    b.address = branch_pc & ~uint64_t{31};
    b.endPc = b.address + 32;
    b.addBranch(branch_pc, taken);
    return b;
}

TEST(Lghist, BitIsOutcomeXorPcBit4)
{
    // pc bit 4 set: outcome is inverted in the history bit.
    FetchBlock b = blockWithLastBranch(0x1010, true);
    EXPECT_FALSE(LghistTracker::blockBit(b, /*include_path=*/true));
    EXPECT_TRUE(LghistTracker::blockBit(b, /*include_path=*/false));

    // pc bit 4 clear: outcome passes through.
    FetchBlock c = blockWithLastBranch(0x1000, true);
    EXPECT_TRUE(LghistTracker::blockBit(c, true));
    EXPECT_TRUE(LghistTracker::blockBit(c, false));
}

TEST(Lghist, UsesLastConditionalBranchOfBlock)
{
    FetchBlock b;
    b.address = 0x1000;
    b.endPc = 0x1020;
    b.addBranch(0x1000, false);
    b.addBranch(0x1008, true); // last branch decides
    EXPECT_TRUE(LghistTracker::blockBit(b, false));
}

TEST(Lghist, BranchlessBlockInsertsNothing)
{
    LghistTracker tracker(true);
    FetchBlock empty;
    empty.address = 0x1000;
    empty.endPc = 0x1020;
    EXPECT_FALSE(tracker.onBlock(empty));
    EXPECT_EQ(tracker.bitsInserted(), 0u);
    EXPECT_EQ(tracker.value(), 0u);
}

TEST(Lghist, OneBitPerBranchyBlock)
{
    LghistTracker tracker(false);
    tracker.onBlock(blockWithLastBranch(0x1000, true));
    tracker.onBlock(blockWithLastBranch(0x2000, false));
    tracker.onBlock(blockWithLastBranch(0x3000, true));
    EXPECT_EQ(tracker.bitsInserted(), 3u);
    // Sequence T, NT, T -> register 0b101 (most recent in bit 0).
    EXPECT_EQ(tracker.value(), 0b101u);
}

TEST(Lghist, ClearResets)
{
    LghistTracker tracker(true);
    tracker.onBlock(blockWithLastBranch(0x1000, true));
    tracker.clear();
    EXPECT_EQ(tracker.value(), 0u);
    EXPECT_EQ(tracker.bitsInserted(), 0u);
}

TEST(DelayedHistory, AgeZeroSeesLatest)
{
    DelayedHistory d(0);
    EXPECT_EQ(d.view(), 0u);
    d.advance(11);
    EXPECT_EQ(d.view(), 11u);
    d.advance(22);
    EXPECT_EQ(d.view(), 22u);
}

TEST(DelayedHistory, AgeThreeSkipsThreeBlocks)
{
    DelayedHistory d(3);
    // Predicting block t must see the register as of block t-4
    // (Section 5.1: blocks t-1, t-2, t-3 are still in flight).
    std::deque<uint64_t> posts;
    for (uint64_t t = 0; t < 50; ++t) {
        const uint64_t expected =
            t >= 4 ? posts[posts.size() - 4] : 0;
        EXPECT_EQ(d.view(), expected) << "block " << t;
        const uint64_t post = (t + 1) * 100;
        d.advance(post);
        posts.push_back(post);
    }
}

class DelayedHistoryAges : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DelayedHistoryAges, MatchesReferenceDeque)
{
    const unsigned age = GetParam();
    DelayedHistory d(age);
    Rng rng(123 + age);
    std::deque<uint64_t> posts;
    for (int t = 0; t < 500; ++t) {
        uint64_t expected = 0;
        if (posts.size() >= age + 1)
            expected = posts[posts.size() - (age + 1)];
        ASSERT_EQ(d.view(), expected) << "age=" << age << " t=" << t;
        const uint64_t post = rng.next();
        d.advance(post);
        posts.push_back(post);
    }
}

INSTANTIATE_TEST_SUITE_P(Ages, DelayedHistoryAges,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 7u));

TEST(DelayedHistory, ClearRestartsCold)
{
    DelayedHistory d(2);
    d.advance(1);
    d.advance(2);
    d.advance(3);
    d.clear();
    EXPECT_EQ(d.view(), 0u);
}

} // namespace
} // namespace ev8
