/**
 * @file
 * Unit tests for the return-address stack (Section 2 front end).
 */

#include <gtest/gtest.h>

#include "frontend/ras.hh"
#include "trace/branch_record.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{
namespace
{

TEST(ReturnAddressStack, PushPopPairsPredictPerfectly)
{
    ReturnAddressStack ras(8);
    ras.pushCall(0x1000);
    ras.pushCall(0x2000);
    EXPECT_EQ(ras.popReturn(), 0x2004u);
    EXPECT_EQ(ras.popReturn(), 0x1004u);
}

TEST(ReturnAddressStack, UnderflowReturnsNoPrediction)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.popReturn(), 0u);
    ras.pushCall(0x1000);
    ras.popReturn();
    EXPECT_EQ(ras.popReturn(), 0u);
}

TEST(ReturnAddressStack, OverflowWrapsAndLosesOldest)
{
    ReturnAddressStack ras(2);
    ras.pushCall(0x1000);
    ras.pushCall(0x2000);
    ras.pushCall(0x3000); // overwrites the 0x1000 entry
    EXPECT_EQ(ras.popReturn(), 0x3004u);
    EXPECT_EQ(ras.popReturn(), 0x2004u);
    // The wrapped slot now replays stale data -- realistic hardware.
    EXPECT_EQ(ras.occupancy(), 0u);
}

TEST(ReturnAddressStack, OccupancySaturates)
{
    ReturnAddressStack ras(3);
    for (int i = 0; i < 10; ++i)
        ras.pushCall(0x1000 + i * 0x100);
    EXPECT_EQ(ras.occupancy(), 3u);
}

TEST(ReturnAddressStack, StatsTrackMispredicts)
{
    ReturnAddressStack ras(4);
    ras.recordOutcome(0x1004, 0x1004);
    ras.recordOutcome(0x1004, 0x2004);
    EXPECT_EQ(ras.returnsSeen(), 2u);
    EXPECT_EQ(ras.mispredicts(), 1u);
    EXPECT_DOUBLE_EQ(ras.accuracy(), 0.5);
}

TEST(ReturnAddressStack, ClearResets)
{
    ReturnAddressStack ras(4);
    ras.pushCall(0x1000);
    ras.recordOutcome(1, 2);
    ras.clear();
    EXPECT_EQ(ras.occupancy(), 0u);
    EXPECT_EQ(ras.returnsSeen(), 0u);
    EXPECT_EQ(ras.popReturn(), 0u);
}

TEST(ReturnAddressStack, PerfectOnSyntheticProgramCallDepth)
{
    // Our programs bound call depth by the function count; a deep
    // enough RAS must predict every return exactly.
    WorkloadProfile p;
    p.name = "ras";
    p.seed = 42;
    p.shape.numFunctions = 6;
    p.shape.minBlocksPerFunction = 6;
    p.shape.maxBlocksPerFunction = 14;
    p.shape.callFraction = 0.2;
    p.mix.biased = 1.0;
    const Trace trace = generateTrace(p, 20000);

    ReturnAddressStack ras(16);
    for (const auto &rec : trace.records()) {
        if (rec.type == BranchType::Call
            || rec.type == BranchType::Indirect) {
            ras.pushCall(rec.pc);
        } else if (rec.type == BranchType::Return) {
            ras.recordOutcome(ras.popReturn(), rec.target);
        }
    }
    EXPECT_GT(ras.returnsSeen(), 100u);
    EXPECT_EQ(ras.mispredicts(), 0u)
        << "bounded call depth must fit a 16-deep RAS";
}

} // namespace
} // namespace ev8
