/**
 * @file
 * Unit tests for the SIMD layer under the vectorized fused kernel:
 *
 *  - the masked bitplane saturating inc/dec on packed 2-bit counter
 *    words, checked exhaustively against the scalar per-counter
 *    transition for all 4 states x mask patterns x slot positions
 *    (the check promised by the doc comments in predictors/tables.hh);
 *  - the split-counter bitplane transition formula (pred' = p^(d&e),
 *    hyst' = p^(d&~e) with d = p^v, e = h^p) against
 *    SplitCounterArray::update()'s three cases, per entry and as
 *    whole-word plane arithmetic;
 *  - the U64x4 emulation's instruction semantics (variable shifts
 *    zeroing at counts >= 64, blend, gather on absolute addresses);
 *  - the strict EV8_SIMD knob parse in simd::activeBackend().
 *
 * The AVX2-vs-emulation op equality lives in test_simd_avx2.cc, the
 * one test TU built with -mavx2.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "predictors/tables.hh"

#include "scoped_env.hh"

namespace ev8
{
namespace
{

/** Per-counter scalar reference for the masked word operations. */
uint64_t
scalarMaskedStep(uint64_t word, uint64_t sel, bool increment)
{
    uint64_t out = 0;
    for (unsigned slot = 0; slot < TwoBitCounterTable::kPerWord;
         ++slot) {
        uint64_t c = (word >> (2 * slot)) & 3;
        if ((sel >> (2 * slot)) & 1) {
            if (increment && c < 3)
                ++c;
            else if (!increment && c > 0)
                --c;
        }
        out |= c << (2 * slot);
    }
    return out;
}

/** Deterministic xorshift64*; no libc rand in tests. */
struct Rng
{
    uint64_t s = 0x9e3779b97f4a7c15ULL;

    uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dULL;
    }
};

/**
 * Every (state, neighbor state, mask pattern over the pair) for every
 * slot position: saturation behaves per the scalar counter and no
 * carry/borrow ever crosses a 2-bit lane boundary.
 */
TEST(MaskedBitplane, IncDecMatchScalarCounterExhaustively)
{
    constexpr unsigned kPerWord = TwoBitCounterTable::kPerWord;
    for (unsigned slot = 0; slot < kPerWord; ++slot) {
        const unsigned next = (slot + 1) % kPerWord;
        for (uint64_t s0 = 0; s0 < 4; ++s0) {
            for (uint64_t s1 = 0; s1 < 4; ++s1) {
                for (uint64_t pick = 0; pick < 4; ++pick) {
                    // Background alternates 00/11 lanes so stuck bits
                    // in untouched counters would be caught too.
                    uint64_t word = 0xccccccccccccccccULL >> 2;
                    word &= ~((uint64_t{3} << (2 * slot)) |
                              (uint64_t{3} << (2 * next)));
                    word |= (s0 << (2 * slot)) | (s1 << (2 * next));
                    const uint64_t sel =
                        ((pick & 1) ? uint64_t{1} << (2 * slot) : 0) |
                        ((pick & 2) ? uint64_t{1} << (2 * next) : 0);

                    EXPECT_EQ(
                        TwoBitCounterTable::maskedSatIncWord(word, sel),
                        scalarMaskedStep(word, sel, true))
                        << "inc slot=" << slot << " s0=" << s0
                        << " s1=" << s1 << " pick=" << pick;
                    EXPECT_EQ(
                        TwoBitCounterTable::maskedSatDecWord(word, sel),
                        scalarMaskedStep(word, sel, false))
                        << "dec slot=" << slot << " s0=" << s0
                        << " s1=" << s1 << " pick=" << pick;
                }
            }
        }
    }
}

/** Stray odd (bit1) select bits are documented as ignored. */
TEST(MaskedBitplane, StrayOddSelectBitsAreIgnored)
{
    Rng rng;
    for (int i = 0; i < 256; ++i) {
        const uint64_t word = rng.next();
        const uint64_t even_sel = rng.next() & 0x5555555555555555ULL;
        const uint64_t noisy_sel = even_sel | (rng.next() &
                                               0xaaaaaaaaaaaaaaaaULL);
        EXPECT_EQ(TwoBitCounterTable::maskedSatIncWord(word, even_sel),
                  TwoBitCounterTable::maskedSatIncWord(word, noisy_sel));
        EXPECT_EQ(TwoBitCounterTable::maskedSatDecWord(word, even_sel),
                  TwoBitCounterTable::maskedSatDecWord(word, noisy_sel));
    }
}

/** Random words, and the template instantiated on the vector type. */
TEST(MaskedBitplane, RandomWordsMatchScalarAndVectorInstantiation)
{
    Rng rng;
    for (int i = 0; i < 1000; ++i) {
        uint64_t words[4], sels[4], want_inc[4], want_dec[4];
        for (int lane = 0; lane < 4; ++lane) {
            words[lane] = rng.next();
            sels[lane] = rng.next();
            want_inc[lane] =
                scalarMaskedStep(words[lane], sels[lane], true);
            want_dec[lane] =
                scalarMaskedStep(words[lane], sels[lane], false);
            EXPECT_EQ(TwoBitCounterTable::maskedSatIncWord(
                          words[lane], sels[lane]),
                      want_inc[lane]);
            EXPECT_EQ(TwoBitCounterTable::maskedSatDecWord(
                          words[lane], sels[lane]),
                      want_dec[lane]);
        }
        const simd::U64x4 w = simd::U64x4::load(words);
        const simd::U64x4 sel = simd::U64x4::load(sels);
        uint64_t got[4];
        TwoBitCounterTable::maskedSatIncWord(w, sel).store(got);
        for (int lane = 0; lane < 4; ++lane)
            EXPECT_EQ(got[lane], want_inc[lane]) << "inc lane " << lane;
        TwoBitCounterTable::maskedSatDecWord(w, sel).store(got);
        for (int lane = 0; lane < 4; ++lane)
            EXPECT_EQ(got[lane], want_dec[lane]) << "dec lane " << lane;
    }
}

/** The masked word op agrees with TwoBitCounterTable::update(). */
TEST(MaskedBitplane, MatchesTableUpdateAcrossWholeTable)
{
    constexpr size_t kEntries = 64; // two packed words
    for (const bool taken : {true, false}) {
        TwoBitCounterTable table(kEntries);
        for (size_t i = 0; i < kEntries; ++i)
            table.set(i, static_cast<uint8_t>(i % 4));

        std::vector<uint64_t> words(
            table.wordsData(),
            table.wordsData() + kEntries / TwoBitCounterTable::kPerWord);
        std::vector<uint64_t> sels(words.size(), 0);
        for (size_t i = 0; i < kEntries; i += 3) { // every 3rd counter
            table.update(i, taken);
            sels[i / TwoBitCounterTable::kPerWord] |=
                uint64_t{1}
                << (2 * (i % TwoBitCounterTable::kPerWord));
        }
        for (size_t w = 0; w < words.size(); ++w) {
            const uint64_t stepped =
                taken ? TwoBitCounterTable::maskedSatIncWord(words[w],
                                                             sels[w])
                      : TwoBitCounterTable::maskedSatDecWord(words[w],
                                                             sels[w]);
            EXPECT_EQ(stepped, table.wordsData()[w])
                << "word " << w << " taken=" << taken;
        }
    }
}

/**
 * The bitplane transition formula the vector update pass applies,
 * per entry: all 8 (p, h, v) combinations against update()'s cases,
 * and strengthen() as the d = 0 instance.
 */
TEST(SplitBitplane, TransitionFormulaMatchesUpdatePerEntry)
{
    for (const size_t idx : {size_t{0}, size_t{63}, size_t{64}}) {
        for (int bits = 0; bits < 8; ++bits) {
            const bool p = bits & 1, h = bits & 2, v = bits & 4;
            const bool d = p != v;      // mispredicted?
            const bool e = h != p;      // weak?
            const bool want_pred = p != (d && e);
            const bool want_hyst = p != (d && !e);

            SplitCounterArray counters(128, 128);
            counters.setRaw(idx, p, h);
            counters.update(idx, v);
            EXPECT_EQ(counters.rawPred(idx) != 0, want_pred)
                << "idx=" << idx << " p=" << p << " h=" << h
                << " v=" << v;
            EXPECT_EQ(counters.rawHyst(idx) != 0, want_hyst)
                << "idx=" << idx << " p=" << p << " h=" << h
                << " v=" << v;

            // strengthen() is the formula at d = 0: pred stays,
            // hysteresis snaps to the prediction bit.
            SplitCounterArray strong(128, 128);
            strong.setRaw(idx, p, h);
            strong.strengthen(idx);
            EXPECT_EQ(strong.rawPred(idx) != 0, p);
            EXPECT_EQ(strong.rawHyst(idx) != 0, p);
        }
    }
}

/**
 * Whole-word plane arithmetic: one masked word step updates 64
 * counters at once exactly as 64 scalar update() calls do. Uses a
 * full-size hysteresis array -- plane word math needs a 1:1 pred/hyst
 * mapping, which is why the vector kernel gathers hysteresis through
 * hystIndex() when the arrays share entries.
 */
TEST(SplitBitplane, TransitionFormulaMatchesUpdatePerWord)
{
    Rng rng;
    for (int round = 0; round < 200; ++round) {
        const uint64_t pw = rng.next();  // prediction plane word
        const uint64_t hw = rng.next();  // hysteresis plane word
        const uint64_t vw = rng.next();  // per-entry outcome bits
        const uint64_t sel = rng.next(); // per-entry update mask

        SplitCounterArray counters(64, 64);
        for (size_t i = 0; i < 64; ++i)
            counters.setRaw(i, (pw >> i) & 1, (hw >> i) & 1);
        for (size_t i = 0; i < 64; ++i) {
            if ((sel >> i) & 1)
                counters.update(i, ((vw >> i) & 1) != 0);
        }

        const uint64_t d = pw ^ vw;
        const uint64_t e = hw ^ pw;
        const uint64_t pred2 = pw ^ (d & e & sel);
        const uint64_t hyst2 =
            ((pw ^ (d & ~e)) & sel) | (hw & ~sel);
        EXPECT_EQ(counters.predWords()[0], pred2) << "round " << round;
        EXPECT_EQ(counters.hystWords()[0], hyst2) << "round " << round;
    }
}

/** Shared hysteresis: the formula holds through hystIndex() folding. */
TEST(SplitBitplane, SharedHysteresisFollowsFormulaThroughFolding)
{
    constexpr size_t kPred = 128, kHyst = 32;
    SplitCounterArray counters(kPred, kHyst);
    uint64_t pred_model[2] = {0, 0};  // mirrors of the two planes
    uint64_t hyst_model = ~uint64_t{0} & ((uint64_t{1} << kHyst) - 1);

    Rng rng;
    for (int step = 0; step < 2000; ++step) {
        const size_t idx = rng.next() % kPred;
        const bool v = (rng.next() & 1) != 0;
        const size_t hi = counters.hystIndex(idx);
        ASSERT_EQ(hi, idx % kHyst);

        const bool p = (pred_model[idx / 64] >> (idx % 64)) & 1;
        const bool h = (hyst_model >> hi) & 1;
        const bool d = p != v, e = h != p;
        const bool pred2 = p != (d && e);
        const bool hyst2 = p != (d && !e);
        pred_model[idx / 64] &= ~(uint64_t{1} << (idx % 64));
        pred_model[idx / 64] |= uint64_t{pred2} << (idx % 64);
        hyst_model &= ~(uint64_t{1} << hi);
        hyst_model |= uint64_t{hyst2} << hi;

        counters.update(idx, v);
        ASSERT_EQ(counters.rawPred(idx) != 0, pred2) << "step " << step;
        ASSERT_EQ(counters.rawHyst(idx) != 0, hyst2) << "step " << step;
    }
    EXPECT_EQ(counters.predWords()[0], pred_model[0]);
    EXPECT_EQ(counters.predWords()[1], pred_model[1]);
    EXPECT_EQ(counters.hystWords()[0] &
                  ((uint64_t{1} << kHyst) - 1),
              hyst_model);
}

/** The emulation's documented instruction semantics. */
TEST(SimdVector, EmulationOpSemantics)
{
    using simd::U64x4;

    const uint64_t xs[4] = {~uint64_t{0}, 0x123456789abcdef0ULL, 1, 0};
    const uint64_t ns[4] = {0, 63, 64, 255}; // >= 64 must yield 0
    const U64x4 x = U64x4::load(xs);
    const U64x4 n = U64x4::load(ns);

    uint64_t got[4];
    U64x4::srlv(x, n).store(got);
    EXPECT_EQ(got[0], ~uint64_t{0});
    EXPECT_EQ(got[1], 0x123456789abcdef0ULL >> 63);
    EXPECT_EQ(got[2], 0u);
    EXPECT_EQ(got[3], 0u);

    U64x4::sllv(x, n).store(got);
    EXPECT_EQ(got[0], ~uint64_t{0});
    EXPECT_EQ(got[1], 0x123456789abcdef0ULL << 63);
    EXPECT_EQ(got[2], 0u);
    EXPECT_EQ(got[3], 0u);

    const uint64_t ms[4] = {~uint64_t{0}, 0, 0x00ff00ff00ff00ffULL, 1};
    const U64x4 mask = U64x4::load(ms);
    U64x4::blend(mask, U64x4(0xaaaaaaaaaaaaaaaaULL),
                 U64x4(0x5555555555555555ULL))
        .store(got);
    EXPECT_EQ(got[0], 0xaaaaaaaaaaaaaaaaULL);
    EXPECT_EQ(got[1], 0x5555555555555555ULL);
    EXPECT_EQ(got[2], 0x55aa55aa55aa55aaULL);
    EXPECT_EQ(got[3], 0x5555555555555554ULL);

    uint64_t pool[4] = {11, 22, 33, 44};
    uint64_t addrs[4];
    for (int i = 0; i < 4; ++i) { // absolute addresses, reverse order
        addrs[i] = reinterpret_cast<uintptr_t>(&pool[3 - i]);
    }
    U64x4::gather(U64x4::load(addrs)).store(got);
    EXPECT_EQ(got[0], 44u);
    EXPECT_EQ(got[1], 33u);
    EXPECT_EQ(got[2], 22u);
    EXPECT_EQ(got[3], 11u);

    U64x4::add(U64x4(~uint64_t{0}), U64x4(1)).store(got);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(got[i], 0u); // wraparound, no lane carry

    EXPECT_TRUE(U64x4::zero().allZero());
    EXPECT_FALSE(U64x4(1).allZero());
}

/** The strict EV8_SIMD parse: valid values and the cpuid default. */
TEST(SimdEnv, ActiveBackendParsesKnob)
{
    {
        ScopedEnv simd_env("EV8_SIMD", "0");
        EXPECT_EQ(simd::activeBackend(), simd::Backend::Off);
    }
    {
        ScopedEnv simd_env("EV8_SIMD", "scalar");
        EXPECT_EQ(simd::activeBackend(), simd::Backend::Scalar);
    }
    {
        ScopedEnv simd_env("EV8_SIMD", nullptr);
        const simd::Backend expect =
            simd::builtWithAvx2() && simd::cpuHasAvx2()
                ? simd::Backend::Avx2
                : simd::Backend::Off;
        EXPECT_EQ(simd::activeBackend(), expect);
    }
    if (simd::builtWithAvx2() && simd::cpuHasAvx2()) {
        ScopedEnv simd_env("EV8_SIMD", "avx2");
        EXPECT_EQ(simd::activeBackend(), simd::Backend::Avx2);
    }

    EXPECT_STREQ(simd::backendName(simd::Backend::Off), "off");
    EXPECT_STREQ(simd::backendName(simd::Backend::Scalar), "scalar");
    EXPECT_STREQ(simd::backendName(simd::Backend::Avx2), "avx2");
    EXPECT_EQ(simd::backendLanes(simd::Backend::Off), 1u);
    EXPECT_EQ(simd::backendLanes(simd::Backend::Scalar), 4u);
    EXPECT_EQ(simd::backendLanes(simd::Backend::Avx2), 4u);
}

/** Invalid EV8_SIMD values are usage errors: exit code 2. */
TEST(SimdEnvDeathTest, InvalidValueExitsWithUsageError)
{
    ScopedEnv simd_env("EV8_SIMD", "bogus");
    EXPECT_EXIT(simd::activeBackend(), ::testing::ExitedWithCode(2),
                "invalid value 'bogus'");
}

TEST(SimdEnvDeathTest, Avx2RequestWithoutSupportExitsWithUsageError)
{
    if (simd::builtWithAvx2() && simd::cpuHasAvx2())
        GTEST_SKIP() << "host runs AVX2; the refusal path is "
                        "unreachable here";
    ScopedEnv simd_env("EV8_SIMD", "avx2");
    EXPECT_EXIT(simd::activeBackend(), ::testing::ExitedWithCode(2),
                "'avx2' requested but");
}

} // namespace
} // namespace ev8
