/**
 * @file
 * Tests for the span tracer and its Chrome trace_event serialization:
 * concurrent recording from many threads must serialize to valid JSON
 * with every span intact; an injected cell fault must not leave a
 * dangling (unclosed) span in the timeline; and the disabled path must
 * not allocate -- the tracer's "near-zero cost when off" contract.
 *
 * The counting operator new/delete replacement at the bottom of this
 * file is binary-global (as any ::operator new replacement is); it
 * forwards to malloc/free and only adds one relaxed atomic increment.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/trace_span.hh"
#include "obs/trace_writer.hh"
#include "predictors/factory.hh"
#include "sim/suite_runner.hh"

/** Allocation counter backing the disabled-path test (see file end). */
static std::atomic<uint64_t> g_allocCount{0};

namespace ev8
{
namespace
{

constexpr uint64_t kTinyScale = 3000;

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

/** Leaves the process-global tracer disabled and empty on exit. */
class TracerGuard
{
  public:
    TracerGuard()
    {
        SpanTracer::global().disable();
        SpanTracer::global().clear();
    }

    ~TracerGuard()
    {
        SpanTracer::global().disable();
        SpanTracer::global().clear();
    }
};

TEST(TraceSpan, ConcurrentSpansSerializeToValidChromeTrace)
{
    TracerGuard guard;
    SpanTracer &tracer = SpanTracer::global();
    tracer.enable();

    // More spans per thread than one chunk holds, to cross the chunk
    // growth path, from enough threads to exercise registration races.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kSpansPerThread = 300;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &tracer] {
            tracer.setThreadName("span-test-" + std::to_string(t));
            for (unsigned i = 0; i < kSpansPerThread; ++i) {
                ScopedSpan span(SpanPhase::Cell);
                span.rename("t" + std::to_string(t) + ":"
                            + std::to_string(i));
                span.arg("i", uint64_t{i});
                span.arg("who", "worker \"quoted\\path\"");
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    tracer.disable();

    ASSERT_EQ(tracer.collect().size(),
              size_t{kThreads} * kSpansPerThread);

    std::ostringstream out;
    writeChromeTrace(out, tracer, "ev8-test");
    const JsonValue doc = parseJson(out.str());
    EXPECT_EQ(doc.at("displayTimeUnit").text, "ms");

    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    size_t complete = 0, metadata = 0, named_threads = 0;
    for (const JsonValue &event : events.items) {
        const std::string &ph = event.at("ph").text;
        ASSERT_TRUE(ph == "X" || ph == "M") << ph;
        EXPECT_TRUE(event.at("pid").isNumber());
        EXPECT_TRUE(event.at("tid").isNumber());
        if (ph == "M") {
            ++metadata;
            named_threads +=
                event.at("name").text == "thread_name"
                && event.at("args").at("name").text.rfind("span-test-",
                                                          0)
                       == 0;
            continue;
        }
        ++complete;
        EXPECT_TRUE(event.at("ts").isNumber());
        EXPECT_TRUE(event.at("dur").isNumber());
        EXPECT_GE(event.at("dur").number, 0.0);
        EXPECT_EQ(event.at("cat").text, "cell");
        EXPECT_FALSE(event.at("name").text.empty());
        const JsonValue &args = event.at("args");
        EXPECT_TRUE(args.at("i").isNumber());
        EXPECT_EQ(args.at("who").text, "worker \"quoted\\path\"");
    }
    EXPECT_EQ(complete, size_t{kThreads} * kSpansPerThread);
    // process_name plus one thread_name per registered thread.
    EXPECT_EQ(metadata, 1 + tracer.threads().size());
    EXPECT_EQ(named_threads, size_t{kThreads});

    // The coarse phase totals saw every span too.
    const auto totals = tracer.phaseTotals();
    EXPECT_EQ(totals[static_cast<size_t>(SpanPhase::Cell)].count,
              uint64_t{kThreads} * kSpansPerThread);
}

/**
 * An injected permanent cell fault (the EV8_FAULT_SPEC job point) must
 * not leave a dangling span: every attempt -- including the throwing
 * ones -- closes its "cell" span on unwind, so the timeline stays
 * balanced and accounts for exactly one span per attempt per lane.
 */
TEST(TraceSpan, InjectedCellFaultLeavesNoDanglingSpans)
{
    TracerGuard guard;
    ScopedEnv fault("EV8_FAULT_SPEC", "job/gcc+*");
    ScopedEnv retry("EV8_RETRY_BASE_MS", "0");
    SpanTracer &tracer = SpanTracer::global();
    tracer.enable();

    SuiteRunner runner(kTinyScale, 2);
    std::vector<GridRow> rows;
    GridRow row;
    row.factory = [] { return makePredictor("gshare:10:8"); };
    row.config = SimConfig::ghist();
    row.label = "traced";
    rows.push_back(std::move(row));
    const GridOutcome outcome = runner.runGrid(rows);
    tracer.disable();

    ASSERT_FALSE(outcome.ok());
    ASSERT_EQ(outcome.results.size(), 1u);
    const size_t cells = outcome.results[0].size();
    uint64_t failed_attempts = 0;
    for (const CellFailure &failure : outcome.failures) {
        EXPECT_EQ(failure.bench, "gcc");
        EXPECT_EQ(failure.attemptNs.size(), failure.attempts);
        failed_attempts += failure.attempts;
    }
    ASSERT_EQ(outcome.failures.size(), 1u);

    // One span per successful lane + one per failed attempt; a span
    // that dangled (never closed) would break this exact accounting.
    const uint64_t expected_cell_spans =
        (cells - outcome.failures.size()) + failed_attempts;
    uint64_t cell_spans = 0, failed_spans = 0;
    for (const SpanEvent &event : tracer.collect()) {
        if (event.phase != SpanPhase::Cell)
            continue;
        ++cell_spans;
        failed_spans +=
            event.args.find("\"failed\":true") != std::string::npos;
    }
    EXPECT_EQ(cell_spans, expected_cell_spans);
    EXPECT_EQ(failed_spans, failed_attempts);

    // And the timeline they serialize into is still valid JSON.
    std::ostringstream out;
    writeChromeTrace(out, tracer);
    const JsonValue doc = parseJson(out.str());
    EXPECT_TRUE(doc.at("traceEvents").isArray());
}

/**
 * The --trace-out=off contract: a disabled ScopedSpan (including its
 * rename/arg refinements, when the labels fit in SSO strings) touches
 * the heap zero times.
 */
TEST(TraceSpan, DisabledSpansDoNotAllocate)
{
    TracerGuard guard;
    ASSERT_FALSE(SpanTracer::global().enabled());

    const uint64_t before = g_allocCount.load();
    for (unsigned i = 0; i < 1000; ++i) {
        ScopedSpan span(SpanPhase::SimLookup);
        span.rename("short-label");
        span.arg("i", uint64_t{i});
        span.arg("k", std::string("v"));
    }
    const uint64_t after = g_allocCount.load();
    EXPECT_EQ(after - before, 0u);

    // The coarse totals still accumulated (telemetry stays available
    // without a timeline), and nothing was buffered.
    const auto totals = SpanTracer::global().phaseTotals();
    EXPECT_GE(totals[static_cast<size_t>(SpanPhase::SimLookup)].count,
              1000u);
    EXPECT_TRUE(SpanTracer::global().collect().empty());
}

} // namespace
} // namespace ev8

// Counting replacements for the global allocation functions. Replacing
// ::operator new/delete is binary-wide; these forward to malloc/free so
// every other test behaves identically, just counted.
void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}
