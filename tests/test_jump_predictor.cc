/**
 * @file
 * Unit tests for the indirect-jump target predictor (Section 2).
 */

#include <gtest/gtest.h>

#include "frontend/jump_predictor.hh"
#include "workloads/suite.hh"

namespace ev8
{
namespace
{

TEST(JumpPredictor, ColdHasNoPrediction)
{
    JumpPredictor jp(8, 8);
    EXPECT_EQ(jp.predict(0x1000), 0u);
}

TEST(JumpPredictor, LearnsLastTarget)
{
    JumpPredictor jp(8, 8);
    jp.update(0x1000, 0x5000);
    EXPECT_EQ(jp.predict(0x1000), 0x5000u);
    jp.update(0x1000, 0x6000);
    EXPECT_EQ(jp.predict(0x1000), 0x6000u);
}

TEST(JumpPredictor, FirstUpdateCountsAsMiss)
{
    JumpPredictor jp(8, 8);
    jp.update(0x1000, 0x5000);
    EXPECT_EQ(jp.lookups(), 1u);
    EXPECT_EQ(jp.mispredicts(), 1u);
    jp.update(0x1000, 0x5000);
    EXPECT_EQ(jp.mispredicts(), 1u);
    EXPECT_DOUBLE_EQ(jp.accuracy(), 0.5);
}

TEST(JumpPredictor, TagsRejectAliases)
{
    JumpPredictor jp(4, 8);
    jp.update(0x1000, 0x5000);
    // 0x1400: line 0x500 folds to the same 4-bit index as line 0x400
    // ((l ^ l>>4) & 0xF == 0 for both), but the tags differ.
    const uint64_t alias = 0x1400;
    EXPECT_EQ(jp.predict(alias), 0u) << "tag must reject the alias";
}

TEST(JumpPredictor, UntaggedAliases)
{
    JumpPredictor jp(4, 0);
    jp.update(0x1000, 0x5000);
    const uint64_t alias = 0x1400; // same folded index as 0x1000
    EXPECT_EQ(jp.predict(alias), 0x5000u)
        << "tagless entries alias freely";
}

TEST(JumpPredictor, StorageBits)
{
    EXPECT_EQ(JumpPredictor(10, 8).storageBits(), 1024u * (43 + 8));
}

TEST(JumpPredictor, ClearForgets)
{
    JumpPredictor jp(8, 8);
    jp.update(0x1000, 0x5000);
    jp.clear();
    EXPECT_EQ(jp.predict(0x1000), 0u);
    EXPECT_EQ(jp.lookups(), 0u);
}

TEST(JumpPredictor, GoodOnStickyDispatchWorkload)
{
    // Our dispatch sites switch callee rarely (phases), so a last-
    // target predictor should do well on indirect calls.
    const Trace trace =
        generateTrace(findBenchmark("perl").profile, 60000);
    JumpPredictor jp(12, 8);
    uint64_t indirects = 0;
    for (const auto &rec : trace.records()) {
        if (rec.type == BranchType::Indirect) {
            ++indirects;
            jp.update(rec.pc, rec.target);
        }
    }
    ASSERT_GT(indirects, 500u);
    EXPECT_GT(jp.accuracy(), 0.80);
}

} // namespace
} // namespace ev8
