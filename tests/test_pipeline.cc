/**
 * @file
 * Unit tests for the coarse front-end timing model.
 */

#include <gtest/gtest.h>

#include "frontend/pipeline.hh"

namespace ev8
{
namespace
{

FetchBlock
block(uint64_t address, unsigned instrs, uint64_t next, bool taken_end)
{
    FetchBlock b;
    b.address = address;
    b.endPc = address + instrs * kInstrBytes;
    b.endsTaken = taken_end;
    b.takenTarget = taken_end ? next : 0;
    return b;
}

TEST(FrontEndPipeline, TwoBlocksPerCycle)
{
    FrontEndPipeline fe(8);
    // Sequential full rows: the line predictor's cold fallback predicts
    // sequential, so there are no line mispredicts.
    for (int i = 0; i < 10; ++i)
        fe.onBlock(block(0x1000 + i * 32, 8, 0, false), false);
    EXPECT_EQ(fe.stats().blocks, 10u);
    EXPECT_EQ(fe.stats().instructions, 80u);
    EXPECT_EQ(fe.stats().lineMispredicts, 0u);
    EXPECT_EQ(fe.stats().cycles, 5u);
    EXPECT_DOUBLE_EQ(fe.stats().fetchIpc(), 16.0);
}

TEST(FrontEndPipeline, LineMispredictCostsBubble)
{
    FrontEndPipeline fe(8, /*line penalty*/ 2, /*branch penalty*/ 14);
    fe.onBlock(block(0x1000, 8, 0, false), false);
    // Taken jump the cold line predictor cannot know about.
    fe.onBlock(block(0x1020, 8, 0x9000, true), false);
    fe.onBlock(block(0x9000, 8, 0, false), false); // line mispredict here
    const auto &s = fe.stats();
    EXPECT_EQ(s.lineMispredicts, 1u);
    // 2 cycles of fetch (blocks 1+2, then block 3 after redirect
    // restarts the pair) + 2 bubble cycles.
    EXPECT_EQ(s.cycles, 2u + 2u);
}

TEST(FrontEndPipeline, BranchMispredictDominates)
{
    FrontEndPipeline fe(8, 2, 14);
    fe.onBlock(block(0x1000, 8, 0, false), true);
    EXPECT_EQ(fe.stats().branchMispredicts, 1u);
    EXPECT_EQ(fe.stats().cycles, 1u + 14u);
}

TEST(FrontEndPipeline, LinePredictorLearnsStableFlow)
{
    FrontEndPipeline fe(10);
    // A stable 2-block loop: after one cold pass the line predictor
    // should be perfect.
    for (int iter = 0; iter < 50; ++iter) {
        fe.onBlock(block(0x1000, 8, 0x5000, true), false);
        fe.onBlock(block(0x5000, 4, 0x1000, true), false);
    }
    // Only the first transitions are cold.
    EXPECT_LE(fe.stats().lineMispredicts, 3u);
    EXPECT_GT(fe.stats().lineAccuracy(), 0.95);
}

TEST(FrontEndPipeline, ClearResets)
{
    FrontEndPipeline fe(8);
    fe.onBlock(block(0x1000, 8, 0, false), true);
    fe.clear();
    EXPECT_EQ(fe.stats().blocks, 0u);
    EXPECT_EQ(fe.stats().cycles, 0u);
}

} // namespace
} // namespace ev8
