/**
 * @file
 * Tests for the trace cache: once-per-key generation (also under
 * concurrency), the persistent disk layer, and the staleness armour --
 * version-stamped file names keyed on a full profile-content hash, with
 * corrupt or mismatched files regenerated rather than trusted.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/block_stream.hh"
#include "sim/phase/phase_map.hh"
#include "sim/trace_cache.hh"
#include "trace/trace_io.hh"
#include "workloads/suite.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kTinyBranches = 2000;

WorkloadProfile
testProfile()
{
    return findBenchmark("gcc").profile;
}

/** A scratch cache directory, removed on scope exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &leaf)
        : path_(std::filesystem::path(::testing::TempDir()) / leaf)
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }

    ~ScratchDir() { std::filesystem::remove_all(path_); }

    std::string str() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

std::string
serialize(const Trace &trace)
{
    std::ostringstream out;
    writeTrace(out, trace);
    return out.str();
}

TEST(TraceCache, GeneratesOncePerKey)
{
    TraceCache cache("");
    const Trace &a = cache.get(testProfile(), kTinyBranches);
    const Trace &b = cache.get(testProfile(), kTinyBranches);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.generatedCount(), 1u);
    EXPECT_EQ(a.stats().dynamicCondBranches, kTinyBranches);
}

TEST(TraceCache, DistinctBudgetsAreDistinctEntries)
{
    TraceCache cache("");
    const Trace &small = cache.get(testProfile(), kTinyBranches);
    const Trace &large = cache.get(testProfile(), 2 * kTinyBranches);
    EXPECT_NE(&small, &large);
    EXPECT_EQ(cache.generatedCount(), 2u);
    EXPECT_EQ(large.stats().dynamicCondBranches, 2 * kTinyBranches);
}

TEST(TraceCache, ConcurrentGetSynthesizesExactlyOnce)
{
    TraceCache cache("");
    std::vector<const Trace *> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&cache, &seen, t] {
            seen[t] = &cache.get(testProfile(), kTinyBranches);
        });
    }
    for (auto &t : threads)
        t.join();
    for (const Trace *trace : seen)
        EXPECT_EQ(trace, seen[0]);
    EXPECT_EQ(cache.generatedCount(), 1u);
}

TEST(TraceCache, ProfileHashCoversContentNotJustName)
{
    const WorkloadProfile base = testProfile();
    const uint64_t h0 = TraceCache::profileHash(base);

    WorkloadProfile reseeded = base;
    reseeded.seed += 1;
    EXPECT_NE(TraceCache::profileHash(reseeded), h0);

    WorkloadProfile reshaped = base;
    reshaped.shape.condFraction += 0.01;
    EXPECT_NE(TraceCache::profileHash(reshaped), h0);

    // Same content hashes the same, through an independent copy.
    EXPECT_EQ(TraceCache::profileHash(testProfile()), h0);
}

TEST(TraceCache, FilePathCarriesVersionStampAndBudget)
{
    TraceCache cache("/tmp/ev8-cache-naming-test");
    const std::string path = cache.filePath(testProfile(), kTinyBranches);
    EXPECT_NE(path.find("gcc-"), std::string::npos) << path;
    EXPECT_NE(path.find("-b2000-"), std::string::npos) << path;
    const std::string stamp =
        "-v" + std::to_string(TraceCache::kFormatVersion) + ".ev8t";
    EXPECT_NE(path.find(stamp), std::string::npos) << path;

    TraceCache memory_only("");
    EXPECT_EQ(memory_only.filePath(testProfile(), kTinyBranches), "");
}

TEST(TraceCache, DiskLayerPersistsAndReloads)
{
    ScratchDir dir("ev8_trace_cache_disk");

    TraceCache writer(dir.str());
    const Trace &generated = writer.get(testProfile(), kTinyBranches);
    EXPECT_EQ(writer.generatedCount(), 1u);
    EXPECT_EQ(writer.diskHitCount(), 0u);
    const std::string path =
        writer.filePath(testProfile(), kTinyBranches);
    ASSERT_TRUE(std::filesystem::exists(path)) << path;

    // A fresh cache over the same directory loads instead of
    // regenerating, and serves the identical trace bytes.
    TraceCache reader(dir.str());
    const Trace &loaded = reader.get(testProfile(), kTinyBranches);
    EXPECT_EQ(reader.generatedCount(), 0u);
    EXPECT_EQ(reader.diskHitCount(), 1u);
    EXPECT_EQ(serialize(loaded), serialize(generated));
}

TEST(TraceCache, ChangedProfileRegeneratesInsteadOfReusingStaleFile)
{
    ScratchDir dir("ev8_trace_cache_stale");

    TraceCache first(dir.str());
    first.get(testProfile(), kTinyBranches);
    EXPECT_EQ(first.generatedCount(), 1u);

    // Recalibrate the benchmark: same name, different behaviour. The
    // content hash moves, so the old file must not satisfy the new key.
    WorkloadProfile edited = testProfile();
    edited.shape.condFraction += 0.01;
    EXPECT_NE(first.filePath(edited, kTinyBranches),
              first.filePath(testProfile(), kTinyBranches));

    TraceCache second(dir.str());
    const Trace &regenerated = second.get(edited, kTinyBranches);
    EXPECT_EQ(second.diskHitCount(), 0u) << "stale file reused";
    EXPECT_EQ(second.generatedCount(), 1u);
    EXPECT_EQ(regenerated.stats().dynamicCondBranches, kTinyBranches);

    // Both variants now coexist on disk under distinct names.
    EXPECT_TRUE(std::filesystem::exists(
        second.filePath(edited, kTinyBranches)));
    EXPECT_TRUE(std::filesystem::exists(
        second.filePath(testProfile(), kTinyBranches)));
}

TEST(TraceCache, StreamDecodedOncePerKeyAndMatchesDirectDecode)
{
    TraceCache cache("");
    const BlockStream &a = cache.stream(testProfile(), kTinyBranches);
    const BlockStream &b = cache.stream(testProfile(), kTinyBranches);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.decodedCount(), 1u);
    EXPECT_EQ(cache.streamDiskHitCount(), 0u);
    EXPECT_EQ(a.branches(), kTinyBranches);
    EXPECT_TRUE(a
                == decodeBlockStream(cache.get(testProfile(),
                                               kTinyBranches)));
}

TEST(TraceCache, StreamFilePathCarriesBothVersionStamps)
{
    TraceCache cache("/tmp/ev8-cache-naming-test");
    const std::string path =
        cache.streamFilePath(testProfile(), kTinyBranches);
    EXPECT_NE(path.find("gcc-"), std::string::npos) << path;
    EXPECT_NE(path.find("-b2000-"), std::string::npos) << path;
    const std::string stamp = "-v"
        + std::to_string(TraceCache::kFormatVersion) + "-s"
        + std::to_string(TraceCache::kStreamFormatVersion) + ".ev8s";
    EXPECT_NE(path.find(stamp), std::string::npos) << path;

    TraceCache memory_only("");
    EXPECT_EQ(memory_only.streamFilePath(testProfile(), kTinyBranches),
              "");
}

TEST(TraceCache, WarmStreamDiskLayerSkipsSynthesisAndDecode)
{
    ScratchDir dir("ev8_stream_cache_disk");

    TraceCache writer(dir.str());
    const BlockStream &decoded =
        writer.stream(testProfile(), kTinyBranches);
    EXPECT_EQ(writer.decodedCount(), 1u);
    EXPECT_EQ(writer.generatedCount(), 1u);
    const std::string path =
        writer.streamFilePath(testProfile(), kTinyBranches);
    ASSERT_TRUE(std::filesystem::exists(path)) << path;

    // A fresh cache over the warm directory serves the identical stream
    // without synthesizing the trace or re-decoding it.
    TraceCache reader(dir.str());
    const BlockStream &loaded =
        reader.stream(testProfile(), kTinyBranches);
    EXPECT_EQ(reader.streamDiskHitCount(), 1u);
    EXPECT_EQ(reader.decodedCount(), 0u);
    EXPECT_EQ(reader.generatedCount(), 0u);
    EXPECT_TRUE(loaded == decoded);
}

TEST(TraceCache, CorruptStreamFileIsRedecoded)
{
    ScratchDir dir("ev8_stream_cache_corrupt");

    TraceCache writer(dir.str());
    const BlockStream expected =
        writer.stream(testProfile(), kTinyBranches);
    const std::string path =
        writer.streamFilePath(testProfile(), kTinyBranches);

    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << "EV8Sgarbage-not-a-stream";
    }

    TraceCache reader(dir.str());
    const BlockStream &recovered =
        reader.stream(testProfile(), kTinyBranches);
    EXPECT_EQ(reader.streamDiskHitCount(), 0u);
    EXPECT_EQ(reader.decodedCount(), 1u);
    EXPECT_TRUE(recovered == expected);

    // The re-decode also healed the on-disk copy.
    EXPECT_TRUE(readBlockStreamFile(path) == expected);
}

TEST(TraceCache, CorruptCacheFileIsRegenerated)
{
    ScratchDir dir("ev8_trace_cache_corrupt");

    TraceCache writer(dir.str());
    const std::string expected = serialize(
        writer.get(testProfile(), kTinyBranches));
    const std::string path =
        writer.filePath(testProfile(), kTinyBranches);

    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << "EV8Tgarbage-not-a-trace";
    }

    TraceCache reader(dir.str());
    const Trace &recovered = reader.get(testProfile(), kTinyBranches);
    EXPECT_EQ(reader.diskHitCount(), 0u);
    EXPECT_EQ(reader.generatedCount(), 1u);
    EXPECT_EQ(serialize(recovered), expected);

    // The regeneration also healed the on-disk copy.
    EXPECT_EQ(serialize(readTraceFile(path)), expected);
}

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

TEST(TraceCacheFaults, UnusableDirectoryDegradesToMemoryOperation)
{
    ScratchDir dir("ev8_trace_cache_unusable");
    // A cache rooted under a regular file: the construction probe must
    // fail (create_directories cannot make a directory there), whatever
    // the process's privileges -- a chmod-based test is a no-op for
    // root.
    const std::string file = dir.str() + "/plain-file";
    std::ofstream(file) << "x";

    TraceCache cache(file + "/sub");
    EXPECT_TRUE(cache.diskDisabled());
    EXPECT_TRUE(cache.dir().empty());
    EXPECT_EQ(cache.filePath(testProfile(), kTinyBranches), "");

    // And it still serves traces, purely from memory.
    const Trace &trace = cache.get(testProfile(), kTinyBranches);
    EXPECT_EQ(trace.stats().dynamicCondBranches, kTinyBranches);
    EXPECT_EQ(cache.generatedCount(), 1u);
}

TEST(TraceCacheFaults, InjectedReadFaultRegeneratesAndCounts)
{
    ScratchDir dir("ev8_trace_cache_read_fault");
    std::string expected;
    {
        TraceCache writer(dir.str());
        expected = serialize(writer.get(testProfile(), kTinyBranches));
    }

    // Every cache file's first read attempt fails.
    ScopedEnv spec("EV8_FAULT_SPEC", "cache_read/+1");
    TraceCache reader(dir.str());
    const Trace &recovered = reader.get(testProfile(), kTinyBranches);
    EXPECT_EQ(serialize(recovered), expected);
    EXPECT_EQ(reader.diskHitCount(), 0u);
    EXPECT_EQ(reader.generatedCount(), 1u);
    EXPECT_GE(reader.readErrorCount(), 1u);
    EXPECT_FALSE(reader.diskDisabled()); // read faults never disable disk
}

TEST(TraceCacheFaults, InjectedWriteFaultKeepsResultsInMemory)
{
    ScratchDir dir("ev8_trace_cache_write_fault");
    ScopedEnv spec("EV8_FAULT_SPEC", "cache_write+*");
    TraceCache cache(dir.str());
    const Trace &trace = cache.get(testProfile(), kTinyBranches);
    EXPECT_EQ(trace.stats().dynamicCondBranches, kTinyBranches);
    EXPECT_GE(cache.writeErrorCount(), 1u);
    EXPECT_FALSE(std::filesystem::exists(
        cache.filePath(testProfile(), kTinyBranches)));
}

TEST(TraceCacheFaults, CrashBeforeRenameLeavesNoVisibleCacheFile)
{
    ScratchDir dir("ev8_trace_cache_rename_fault");
    std::string path;
    {
        // The temp file is written, then the "crash" hits before the
        // atomic rename: the final path must never appear.
        ScopedEnv spec("EV8_FAULT_SPEC", "cache_rename+*");
        TraceCache cache(dir.str());
        cache.get(testProfile(), kTinyBranches);
        path = cache.filePath(testProfile(), kTinyBranches);
        EXPECT_FALSE(std::filesystem::exists(path)) << path;
        EXPECT_GE(cache.writeErrorCount(), 1u);
    }
    // A later fault-free cache simply regenerates and heals the disk.
    TraceCache healed(dir.str());
    healed.get(testProfile(), kTinyBranches);
    EXPECT_EQ(healed.generatedCount(), 1u);
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(TraceCacheFaults, TornStreamWriteIsRejectedOnReloadAndHealed)
{
    ScratchDir dir("ev8_stream_cache_torn");
    BlockStream expected;
    std::string path;
    {
        // The .ev8s stream file is truncated to half its size before
        // the rename: a torn write that survives the rename discipline.
        ScopedEnv spec("EV8_FAULT_SPEC", "cache_short_write/.ev8s+*");
        TraceCache writer(dir.str());
        expected = writer.stream(testProfile(), kTinyBranches);
        path = writer.streamFilePath(testProfile(), kTinyBranches);
        ASSERT_TRUE(std::filesystem::exists(path)) << path;
    }
    // The truncated file must fail verification mid-read and be
    // re-decoded -- never crash, never serve garbage.
    TraceCache reader(dir.str());
    const BlockStream &recovered =
        reader.stream(testProfile(), kTinyBranches);
    EXPECT_TRUE(recovered == expected);
    EXPECT_EQ(reader.streamDiskHitCount(), 0u);
    EXPECT_GE(reader.readErrorCount(), 1u);
    // And the reload healed the on-disk copy.
    EXPECT_TRUE(readBlockStreamFile(path) == expected);
}

constexpr uint64_t kPhaseWindow = 256;
constexpr uint32_t kPhaseCap = 4;

TEST(TraceCachePhases, SidecarPersistsAndReloads)
{
    ScratchDir dir("ev8_phase_sidecar_roundtrip");
    PhaseMap expected;
    std::string path;
    {
        TraceCache writer(dir.str());
        expected = writer.phases(testProfile(), kTinyBranches,
                                 kPhaseWindow, kPhaseCap);
        path = writer.phaseFilePath(testProfile(), kTinyBranches,
                                    kPhaseWindow, kPhaseCap);
        ASSERT_TRUE(std::filesystem::exists(path)) << path;
    }
    TraceCache reader(dir.str());
    const PhaseMap &loaded = reader.phases(testProfile(), kTinyBranches,
                                           kPhaseWindow, kPhaseCap);
    EXPECT_EQ(loaded, expected);
    EXPECT_EQ(reader.readErrorCount(), 0u);
}

TEST(TraceCachePhases, BuiltOncePerKeyAndDistinctPerKnobs)
{
    TraceCache cache("");
    const PhaseMap &a =
        cache.phases(testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);
    const PhaseMap &b =
        cache.phases(testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);
    EXPECT_EQ(&a, &b);
    // A different window budget or phase cap is a different map.
    const PhaseMap &c = cache.phases(testProfile(), kTinyBranches,
                                     2 * kPhaseWindow, kPhaseCap);
    EXPECT_NE(&a, &c);
    EXPECT_NE(a.windows.size(), c.windows.size());
}

TEST(TraceCachePhases, CorruptSidecarIsRebuiltAndHealed)
{
    ScratchDir dir("ev8_phase_sidecar_corrupt");
    PhaseMap expected;
    std::string path;
    {
        TraceCache writer(dir.str());
        expected = writer.phases(testProfile(), kTinyBranches,
                                 kPhaseWindow, kPhaseCap);
        path = writer.phaseFilePath(testProfile(), kTinyBranches,
                                    kPhaseWindow, kPhaseCap);
    }
    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << "EV8Pgarbage-not-a-phase-map";
    }
    TraceCache reader(dir.str());
    const PhaseMap &recovered = reader.phases(
        testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);
    EXPECT_EQ(recovered, expected);
    EXPECT_GE(reader.readErrorCount(), 1u);
    // The rebuild healed the on-disk copy.
    EXPECT_EQ(readPhaseMapFile(path), expected);
}

TEST(TraceCachePhases, StaleKeyMismatchSidecarIsRejected)
{
    ScratchDir dir("ev8_phase_sidecar_stale");
    TraceCache writer(dir.str());
    const PhaseMap expected = writer.phases(
        testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);
    const std::string path = writer.phaseFilePath(
        testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);

    // A well-formed sidecar whose *content* disagrees with the key its
    // filename claims (window budget swapped) -- e.g. a hand-copied
    // file. Must be rejected by verification, not trusted.
    PhaseMap impostor = expected;
    impostor.windowBranches = 2 * kPhaseWindow;
    writePhaseMapFile(path, impostor);

    TraceCache reader(dir.str());
    const PhaseMap &recovered = reader.phases(
        testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);
    EXPECT_EQ(recovered, expected);
    EXPECT_GE(reader.readErrorCount(), 1u);
}

TEST(TraceCachePhases, SidecarReadFaultRebuildsWithoutPoisoningExactPath)
{
    ScratchDir dir("ev8_phase_sidecar_read_fault");
    PhaseMap expected;
    BlockStream stream;
    {
        TraceCache writer(dir.str());
        expected = writer.phases(testProfile(), kTinyBranches,
                                 kPhaseWindow, kPhaseCap);
        stream = writer.stream(testProfile(), kTinyBranches);
    }

    // Every sidecar read attempt fails; the stream cache is untouched.
    ScopedEnv spec("EV8_FAULT_SPEC", "sidecar_read+*");
    TraceCache reader(dir.str());
    const PhaseMap &rebuilt = reader.phases(
        testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);
    EXPECT_EQ(rebuilt, expected);
    EXPECT_GE(reader.readErrorCount(), 1u);
    // The exact path still loads from its own disk layer: the sidecar
    // fault never forces trace regeneration or stream re-decode.
    EXPECT_TRUE(reader.stream(testProfile(), kTinyBranches) == stream);
    EXPECT_EQ(reader.streamDiskHitCount(), 1u);
    EXPECT_EQ(reader.generatedCount(), 0u);
}

TEST(TraceCachePhases, SidecarWriteFaultKeepsMapInMemory)
{
    ScratchDir dir("ev8_phase_sidecar_write_fault");
    ScopedEnv spec("EV8_FAULT_SPEC", "sidecar_write+*");
    TraceCache cache(dir.str());
    const PhaseMap &map = cache.phases(
        testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap);
    EXPECT_EQ(map.branches, kTinyBranches);
    EXPECT_GE(cache.writeErrorCount(), 1u);
    EXPECT_FALSE(std::filesystem::exists(cache.phaseFilePath(
        testProfile(), kTinyBranches, kPhaseWindow, kPhaseCap)));
    // The exact-path artifacts still persisted normally.
    EXPECT_TRUE(std::filesystem::exists(
        cache.streamFilePath(testProfile(), kTinyBranches)));
}

} // namespace
} // namespace ev8
