/**
 * @file
 * Unit tests for the bit-manipulation helpers in common/bits.hh.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace ev8
{
namespace
{

TEST(Bits, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffULL);
    EXPECT_EQ(mask(64), ~uint64_t{0});
}

TEST(Bits, BitExtraction)
{
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 3), 1u);
    EXPECT_EQ(bit(uint64_t{1} << 63, 63), 1u);
}

TEST(Bits, BitFieldExtraction)
{
    // The paper's (y6,y5) notation: bits 6..5.
    EXPECT_EQ(bits(0b1100000, 6, 5), 0b11u);
    EXPECT_EQ(bits(0b0100000, 6, 5), 0b01u);
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(~uint64_t{0}, 63, 0), ~uint64_t{0});
}

TEST(Bits, InsertBits)
{
    EXPECT_EQ(insertBits(0, 3, 0, 0xf), 0xfu);
    EXPECT_EQ(insertBits(0xff, 3, 0, 0), 0xf0u);
    EXPECT_EQ(insertBits(0, 7, 4, 0xa), 0xa0u);
    // Field wider than the slot is masked.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(Bits, RotationInverses)
{
    for (unsigned n : {3u, 8u, 16u, 21u, 63u}) {
        for (uint64_t raw : {uint64_t{1}, uint64_t{0x5a}, mask(n),
                             uint64_t{0x123456789abcdefULL}}) {
            const uint64_t v = raw & mask(n);
            for (unsigned k = 0; k <= n; ++k) {
                EXPECT_EQ(rotr(rotl(v, k, n), k, n), v)
                    << "n=" << n << " k=" << k << " v=" << v;
            }
        }
    }
}

TEST(Bits, RotlKnownValues)
{
    EXPECT_EQ(rotl(0b001, 1, 3), 0b010u);
    EXPECT_EQ(rotl(0b100, 1, 3), 0b001u);
    EXPECT_EQ(rotl(0b100, 3, 3), 0b100u); // full rotation
    EXPECT_EQ(rotl(0x80, 1, 8), 0x01u);
}

TEST(Bits, Parity)
{
    EXPECT_EQ(parity(0), 0u);
    EXPECT_EQ(parity(1), 1u);
    EXPECT_EQ(parity(0b11), 0u);
    EXPECT_EQ(parity(0b111), 1u);
    EXPECT_EQ(parity(~uint64_t{0}), 0u);
    EXPECT_EQ(parity(uint64_t{1} << 63), 1u);
}

TEST(Bits, XorFoldPreservesParity)
{
    // XOR-folding is linear: the parity of the folded value equals the
    // parity of the input for odd... not in general; instead verify the
    // defining property directly on examples.
    EXPECT_EQ(xorFold(0x0, 8), 0u);
    EXPECT_EQ(xorFold(0xff, 8), 0xffu);
    EXPECT_EQ(xorFold(0x1234, 8), 0x12u ^ 0x34u);
    EXPECT_EQ(xorFold(0xabcdef, 8), 0xabu ^ 0xcdu ^ 0xefu);
    // Folding to n bits always fits in n bits.
    for (unsigned n = 2; n < 24; ++n)
        EXPECT_EQ(xorFold(0xdeadbeefcafeULL, n) & ~mask(n), 0u);
}

TEST(Bits, XorFoldLinearity)
{
    // fold(a ^ b) == fold(a) ^ fold(b): the property the skewed index
    // functions rely on so single-bit history differences always move
    // the index.
    const uint64_t a = 0x123456789abcdefULL;
    const uint64_t b = 0xfedcba987654321ULL;
    for (unsigned n : {5u, 13u, 16u, 20u})
        EXPECT_EQ(xorFold(a ^ b, n), xorFold(a, n) ^ xorFold(b, n));
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(65536), 16u);
}

class SkewHTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SkewHTest, InverseRoundtrip)
{
    const unsigned n = GetParam();
    // Exhaustive for small widths, sampled for larger ones.
    const uint64_t limit = n <= 12 ? (uint64_t{1} << n) : 4096;
    for (uint64_t i = 0; i < limit; ++i) {
        const uint64_t v =
            n <= 12 ? i : (i * 0x9e3779b97f4a7c15ULL) & mask(n);
        EXPECT_EQ(skewHInv(skewH(v, n), n), v) << "n=" << n;
        EXPECT_EQ(skewH(skewHInv(v, n), n), v) << "n=" << n;
    }
}

TEST_P(SkewHTest, IsBijection)
{
    const unsigned n = GetParam();
    if (n > 12)
        GTEST_SKIP() << "exhaustive check limited to small widths";
    std::vector<bool> seen(size_t{1} << n, false);
    for (uint64_t v = 0; v < (uint64_t{1} << n); ++v) {
        const uint64_t y = skewH(v, n);
        ASSERT_LT(y, uint64_t{1} << n);
        EXPECT_FALSE(seen[y]) << "collision at " << v;
        seen[y] = true;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SkewHTest,
                         ::testing::Values(2u, 3u, 5u, 8u, 10u, 12u, 14u,
                                           16u, 20u));

TEST(Bits, SkewHPowComposition)
{
    const unsigned n = 16;
    const uint64_t v = 0xbeef & mask(n);
    EXPECT_EQ(skewHPow(v, 0, n), v);
    EXPECT_EQ(skewHPow(v, 3, n), skewH(skewH(skewH(v, n), n), n));
    EXPECT_EQ(skewHInvPow(skewHPow(v, 5, n), 5, n), v);
}

} // namespace
} // namespace ev8
