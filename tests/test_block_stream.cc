/**
 * @file
 * Tests for pre-decoded block streams and the devirtualized simulation
 * kernel built on them: decode equivalence against FetchBlockBuilder,
 * serialization round-trips with hostile-input rejection, and the
 * load-bearing property of the whole hot-path overhaul -- stream
 * simulation (specialized or generic kernel) is bit-for-bit the same
 * simulation as the original per-trace loop.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "frontend/fetch_block.hh"
#include "obs/event_trace.hh"
#include "predictors/factory.hh"
#include "sim/block_stream.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "workloads/suite.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kBranches = 4000;

const Trace &
testTrace()
{
    static const Trace trace =
        generateTrace(findBenchmark("gcc").profile, kBranches);
    return trace;
}

std::vector<FetchBlock>
builderBlocks(const Trace &trace)
{
    std::vector<FetchBlock> blocks;
    auto sink = [&blocks](const FetchBlock &b) { blocks.push_back(b); };
    FetchBlockBuilder builder;
    builder.begin(trace.startPc());
    for (const auto &rec : trace.records())
        builder.feed(rec, sink);
    builder.flush(sink);
    return blocks;
}

TEST(BlockStream, DecodeMatchesFetchBlockBuilderExactly)
{
    const Trace &trace = testTrace();
    const BlockStream stream = decodeBlockStream(trace);
    const std::vector<FetchBlock> blocks = builderBlocks(trace);

    ASSERT_EQ(stream.blocks(), blocks.size());
    EXPECT_EQ(stream.name(), trace.name());
    EXPECT_EQ(stream.instructions(), trace.instructionCount());

    uint64_t total_branches = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
        const FetchBlock &ref = blocks[b];
        EXPECT_EQ(stream.blockAddr(b), ref.address);
        EXPECT_EQ(stream.blockInstrs(b), ref.numInstrs());
        EXPECT_EQ(stream.blockEndPc(b), ref.endPc);
        EXPECT_EQ(stream.blockEndsTaken(b), ref.endsTaken);
        ASSERT_EQ(stream.numBranches(b), ref.numBranches);
        for (unsigned k = 0; k < ref.numBranches; ++k) {
            EXPECT_EQ(stream.branchPc(b, k), ref.branches[k].pc);
            EXPECT_EQ(stream.branchTakenIn(b, k), ref.branches[k].taken);
        }
        total_branches += ref.numBranches;
    }
    EXPECT_EQ(stream.branches(), total_branches);
    EXPECT_EQ(stream.branches(), kBranches);
}

TEST(BlockStream, DecodeIsDeterministic)
{
    EXPECT_TRUE(decodeBlockStream(testTrace())
                == decodeBlockStream(testTrace()));
}

TEST(BlockStream, SerializationRoundTrips)
{
    const BlockStream original = decodeBlockStream(testTrace());
    std::stringstream buffer;
    writeBlockStream(buffer, original);
    const BlockStream reloaded = readBlockStream(buffer);
    EXPECT_TRUE(reloaded == original);
}

TEST(BlockStream, RejectsBadMagicAndTruncation)
{
    {
        std::stringstream bad("EV8Xgarbage");
        EXPECT_THROW(readBlockStream(bad), TraceIoError);
    }

    std::stringstream buffer;
    writeBlockStream(buffer, decodeBlockStream(testTrace()));
    const std::string bytes = buffer.str();
    // Truncate inside the block payload (past the header).
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(readBlockStream(truncated), TraceIoError);
}

/** Everything a simulation produced, for exact comparison. */
struct RunOutput
{
    SimResult result;
    std::vector<MispredictEvent> events;
};

RunOutput
runOnce(bool use_stream, HistoryMode history, bool generic)
{
    SimConfig config;
    config.history = history;
    config.historyAge = history == HistoryMode::Ghist ? 0 : 3;
    config.assignBanks = history != HistoryMode::Ghist;
    config.forceGenericKernel = generic;
    BufferedEventSink sink;
    config.events = &sink;

    PredictorPtr predictor = make2BcGskew512K();
    RunOutput out;
    if (use_stream) {
        const BlockStream stream = decodeBlockStream(testTrace());
        out.result = simulateStream(stream, *predictor, config);
    } else {
        out.result = simulateTrace(testTrace(), *predictor, config);
    }
    out.events = sink.take();
    return out;
}

void
expectIdentical(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.result.condBranches, b.result.condBranches);
    EXPECT_EQ(a.result.fetchBlocks, b.result.fetchBlocks);
    EXPECT_EQ(a.result.lghistBits, b.result.lghistBits);
    EXPECT_EQ(a.result.branchesPerBlock, b.result.branchesPerBlock);
    EXPECT_EQ(a.result.stats.lookups(), b.result.stats.lookups());
    EXPECT_EQ(a.result.stats.mispredictions(),
              b.result.stats.mispredictions());
    EXPECT_EQ(a.result.stats.instructions(),
              b.result.stats.instructions());

    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        const MispredictEvent &x = a.events[i];
        const MispredictEvent &y = b.events[i];
        EXPECT_EQ(x.branchSeq, y.branchSeq);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.blockAddr, y.blockAddr);
        EXPECT_EQ(x.ghist, y.ghist);
        EXPECT_EQ(x.indexHist, y.indexHist);
        EXPECT_EQ(x.bank, y.bank);
        EXPECT_EQ(x.taken, y.taken);
        EXPECT_EQ(x.predicted, y.predicted);
        EXPECT_EQ(x.votesValid, y.votesValid);
        EXPECT_EQ(x.voteBim, y.voteBim);
        EXPECT_EQ(x.voteG0, y.voteG0);
        EXPECT_EQ(x.voteG1, y.voteG1);
        EXPECT_EQ(x.voteMeta, y.voteMeta);
        EXPECT_EQ(x.voteMajority, y.voteMajority);
    }
}

TEST(StreamKernel, StreamSimulationEqualsTraceSimulation)
{
    for (HistoryMode mode :
         {HistoryMode::Ghist, HistoryMode::LghistPath}) {
        expectIdentical(runOnce(false, mode, false),
                        runOnce(true, mode, false));
    }
}

TEST(StreamKernel, DevirtualizedKernelEqualsGenericKernel)
{
    for (HistoryMode mode :
         {HistoryMode::Ghist, HistoryMode::LghistPath}) {
        expectIdentical(runOnce(true, mode, false),
                        runOnce(true, mode, true));
    }
}

TEST(StreamKernel, TimingFlagDoesNotChangeResults)
{
    SimConfig plain = SimConfig::ev8();
    SimConfig timed = plain;
    timed.profileTiming = true;

    const BlockStream stream = decodeBlockStream(testTrace());
    PredictorPtr a = make2BcGskew512K();
    PredictorPtr b = make2BcGskew512K();
    const SimResult ra = simulateStream(stream, *a, plain);
    const SimResult rb = simulateStream(stream, *b, timed);
    EXPECT_EQ(ra.stats.mispredictions(), rb.stats.mispredictions());
    EXPECT_EQ(ra.condBranches, rb.condBranches);
    EXPECT_EQ(rb.timing.lookup.calls, rb.condBranches);
}

} // namespace
} // namespace ev8
