/**
 * @file
 * Tests for fused multi-configuration simulation: the guarantee that a
 * fused walk -- one stream pass driving N predictor lanes -- produces
 * *exactly* what N independent simulateStream() calls produce, for any
 * lane mix, any lane cap and either EV8_FUSED mode, down to the bytes
 * of the merged metric registry and the sampled event stream.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "predictors/factory.hh"
#include "sim/block_stream.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "sim/suite_runner.hh"
#include "workloads/suite.hh"

#include "scoped_env.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kTinyScale = 3000;

/** A mixed-type lane set: every fused dispatch bucket is exercised. */
std::vector<std::string>
laneSpecs()
{
    return {
        "gshare:12:8",             // FusedLaneIndexed, shared walk
        "gshare:12:12",            // second lane of the same bucket
        "bimodal:10",              // FusedLaneIndexed, history-free
        "2bcgskew:12:0:13:14:15",  // FusedSteppable
        "egskew:12:10",            // FusedSteppable
        "yags:10:10:10",           // devirtualized predict/update
        "bimode:10:10:10",         // devirtualized predict/update
        "perceptron:10:16",        // generic (virtual) bucket
    };
}

void
expectSameResult(const SimResult &fused, const SimResult &ref,
                 const std::string &label)
{
    EXPECT_EQ(fused.stats.lookups(), ref.stats.lookups()) << label;
    EXPECT_EQ(fused.stats.mispredictions(), ref.stats.mispredictions())
        << label;
    EXPECT_EQ(fused.stats.instructions(), ref.stats.instructions())
        << label;
    EXPECT_EQ(fused.fetchBlocks, ref.fetchBlocks) << label;
    EXPECT_EQ(fused.lghistBits, ref.lghistBits) << label;
    EXPECT_EQ(fused.condBranches, ref.condBranches) << label;
    EXPECT_EQ(fused.branchesPerBlock, ref.branchesPerBlock) << label;
}

class FusedKernelTest : public ::testing::TestWithParam<SimConfig>
{
};

/**
 * The core contract, checked at the simulateStreamFused() level: a
 * heterogeneous lane set over one stream equals lane-by-lane
 * simulateStream(), for the paper's history configurations.
 */
TEST_P(FusedKernelTest, MatchesPerLaneSimulation)
{
    const Trace trace =
        generateTrace(findBenchmark("gcc").profile, kTinyScale);
    const BlockStream stream = decodeBlockStream(trace);
    const SimConfig config = GetParam();

    std::vector<PredictorPtr> fused_preds, ref_preds;
    std::vector<FusedLane> lanes;
    for (const std::string &spec : laneSpecs()) {
        fused_preds.push_back(makePredictor(spec));
        ref_preds.push_back(makePredictor(spec));
        lanes.push_back({fused_preds.back().get(), nullptr, nullptr});
    }

    const auto fused = simulateStreamFused(stream, lanes, config);
    ASSERT_EQ(fused.size(), lanes.size());
    for (size_t i = 0; i < lanes.size(); ++i) {
        const SimResult ref =
            simulateStream(stream, *ref_preds[i], config);
        expectSameResult(fused[i], ref, laneSpecs()[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    HistoryModes, FusedKernelTest,
    ::testing::Values(SimConfig::ghist(), SimConfig::ev8()),
    [](const ::testing::TestParamInfo<SimConfig> &info) {
        return info.param.history == HistoryMode::Ghist ? "ghist"
                                                        : "ev8";
    });

/** A single-lane fused call is the degenerate case; it must also match. */
TEST(FusedKernel, SingleLaneMatchesSimulateStream)
{
    const Trace trace =
        generateTrace(findBenchmark("go").profile, kTinyScale);
    const BlockStream stream = decodeBlockStream(trace);

    auto fused_pred = makePredictor("gshare:12:10");
    auto ref_pred = makePredictor("gshare:12:10");
    const auto fused = simulateStreamFused(
        stream, {{fused_pred.get(), nullptr, nullptr}},
        SimConfig::ghist());
    const SimResult ref =
        simulateStream(stream, *ref_pred, SimConfig::ghist());
    ASSERT_EQ(fused.size(), 1u);
    expectSameResult(fused[0], ref, "gshare:12:10");
}

/** Per-lane metric sinks match what simulateStream publishes. */
TEST(FusedKernel, PerLaneMetricsMatchPerCellMetrics)
{
    const Trace trace =
        generateTrace(findBenchmark("gcc").profile, kTinyScale);
    const BlockStream stream = decodeBlockStream(trace);
    SimConfig config = SimConfig::ev8();

    std::vector<PredictorPtr> preds;
    std::vector<std::unique_ptr<MetricRegistry>> regs;
    std::vector<FusedLane> lanes;
    for (const std::string &spec : {std::string("2bcgskew:12:0:13:14:15"),
                                    std::string("gshare:12:12")}) {
        preds.push_back(makePredictor(spec));
        regs.push_back(std::make_unique<MetricRegistry>());
        lanes.push_back({preds.back().get(), regs.back().get(), nullptr});
    }
    simulateStreamFused(stream, lanes, config);

    for (size_t i = 0; i < lanes.size(); ++i) {
        auto ref_pred = makePredictor(
            i == 0 ? "2bcgskew:12:0:13:14:15" : "gshare:12:12");
        MetricRegistry ref_reg;
        SimConfig ref_config = config;
        ref_config.metrics = &ref_reg;
        simulateStream(stream, *ref_pred, ref_config);

        std::ostringstream fused_json, ref_json;
        writeRegistryJson(fused_json, *regs[i]);
        writeRegistryJson(ref_json, ref_reg);
        EXPECT_EQ(fused_json.str(), ref_json.str()) << "lane " << i;
    }
}

/** One full observed grid run: merged metrics JSON + events JSONL. */
struct ObservedGrid
{
    std::vector<std::vector<BenchResult>> results;
    std::string metricsJson;
    std::string eventsJsonl;
};

ObservedGrid
observedGrid(unsigned jobs)
{
    SuiteRunner runner(kTinyScale, jobs);
    MetricRegistry metrics;
    std::ostringstream events;
    EventTraceSink sink(events, 8);

    std::vector<GridRow> rows;
    for (const std::string &spec : laneSpecs()) {
        GridRow row;
        row.factory = [spec] { return makePredictor(spec); };
        row.config = SimConfig::ghist();
        row.config.metrics = &metrics;
        row.config.events = &sink;
        rows.push_back(std::move(row));
    }
    ObservedGrid run;
    run.results = runner.runGrid(rows).results;
    std::ostringstream metrics_json;
    writeRegistryJson(metrics_json, metrics);
    run.metricsJson = metrics_json.str();
    run.eventsJsonl = events.str();
    EXPECT_GT(sink.emitted(), 0u);
    return run;
}

void
expectSameGrid(const ObservedGrid &a, const ObservedGrid &b)
{
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t r = 0; r < a.results.size(); ++r) {
        ASSERT_EQ(a.results[r].size(), b.results[r].size());
        for (size_t i = 0; i < a.results[r].size(); ++i) {
            EXPECT_EQ(a.results[r][i].bench, b.results[r][i].bench);
            expectSameResult(a.results[r][i].sim, b.results[r][i].sim,
                             a.results[r][i].bench);
        }
    }
    EXPECT_EQ(a.metricsJson, b.metricsJson);
    EXPECT_EQ(a.eventsJsonl, b.eventsJsonl);
}

/**
 * The engine-level guarantee: EV8_FUSED=1 and EV8_FUSED=0 produce
 * byte-identical merged registries and event streams, serial and
 * parallel.
 */
TEST(FusedEngine, FusedGridIsByteIdenticalToPerCellGrid)
{
    ObservedGrid fused_j1, fused_j4, percell_j1, percell_j4;
    {
        ScopedEnv env("EV8_FUSED", "1");
        fused_j1 = observedGrid(1);
        fused_j4 = observedGrid(4);
    }
    {
        ScopedEnv env("EV8_FUSED", "0");
        percell_j1 = observedGrid(1);
        percell_j4 = observedGrid(4);
    }
    expectSameGrid(fused_j1, percell_j1);
    expectSameGrid(fused_j4, percell_j1);
    expectSameGrid(percell_j4, percell_j1);
}

/** And the lane cap is invisible: 1, 2 or 8 lanes per fused job. */
TEST(FusedEngine, LaneWidthDoesNotChangeAnyByte)
{
    ScopedEnv fused("EV8_FUSED", "1");
    ObservedGrid reference;
    {
        ScopedEnv lanes("EV8_FUSED_LANES", nullptr);
        reference = observedGrid(1);
    }
    for (const char *cap : {"1", "2", "8"}) {
        ScopedEnv lanes("EV8_FUSED_LANES", cap);
        ObservedGrid capped = observedGrid(1);
        expectSameGrid(capped, reference);
    }
}

/**
 * The SIMD dispatch contract (ISSUE 8): sweeping the vector backend
 * (EV8_SIMD), the lane cap and the worker count changes no byte of the
 * grid results, the merged metric registry or the sampled event
 * stream. The reference is the scalar per-lane steppers at the default
 * lane width; "avx2" joins the sweep when the build and CPU allow it.
 */
TEST(FusedEngine, SimdBackendLaneCapJobsDoNotChangeAnyByte)
{
    ScopedEnv fused("EV8_FUSED", "1");
    ObservedGrid reference;
    {
        ScopedEnv simd_env("EV8_SIMD", "0");
        ScopedEnv lanes("EV8_FUSED_LANES", nullptr);
        reference = observedGrid(1);
    }
    std::vector<const char *> backends{"0", "scalar"};
    if (simd::builtWithAvx2() && simd::cpuHasAvx2())
        backends.push_back("avx2");
    for (const char *backend : backends) {
        ScopedEnv simd_env("EV8_SIMD", backend);
        for (const char *cap : {"1", "3", "8", "16", "64"}) {
            ScopedEnv lanes("EV8_FUSED_LANES", cap);
            for (const unsigned jobs : {1u, 4u}) {
                const ObservedGrid run = observedGrid(jobs);
                expectSameGrid(run, reference);
            }
        }
    }
}

/** The forced-generic kernel path fuses identically too. */
TEST(FusedEngine, GenericKernelGridMatchesDevirtualizedGrid)
{
    ScopedEnv fused("EV8_FUSED", "1");
    const ObservedGrid devirt = observedGrid(1);
    ScopedEnv generic("EV8_GENERIC_KERNEL", "1");
    const ObservedGrid forced = observedGrid(1);
    expectSameGrid(forced, devirt);
}

} // namespace
} // namespace ev8
