/**
 * @file
 * Wire framing tests for the serve transport: a BlockStream framed by
 * StreamFramer and reassembled by StreamAssembler must round-trip
 * bit-for-bit at any packet granularity (including one block per
 * packet), and the assembler must reject every protocol violation --
 * out-of-order sequence numbers, a duplicate Hello, Blocks before
 * Hello, truncated payloads, totals that disagree -- with a
 * PacketError rather than a corrupt stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/packet.hh"
#include "sim/suite_runner.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kTinyScale = 3000;

/** One shared tiny suite (trace synthesis amortized across tests). */
SuiteRunner &
runner()
{
    static SuiteRunner instance(kTinyScale, 2);
    return instance;
}

/** Frames @p stream into packets at @p blocks_per_packet granularity. */
std::vector<Packet>
frameAll(const BlockStream &stream, size_t blocks_per_packet)
{
    StreamFramer framer(stream, blocks_per_packet);
    std::vector<Packet> packets;
    Packet p;
    while (framer.next(p))
        packets.push_back(p);
    return packets;
}

BlockStream
reassemble(const std::vector<Packet> &packets)
{
    StreamAssembler assembler;
    for (const Packet &p : packets)
        assembler.accept(p);
    EXPECT_TRUE(assembler.done());
    return assembler.take();
}

TEST(Packet, RoundTripsBitForBitAtSeveralGranularities)
{
    const BlockStream &original = runner().blockStream(0);
    ASSERT_GT(original.blocks(), 0u);

    for (const size_t bpp : {size_t{1}, size_t{7}, size_t{256},
                             original.blocks(), original.blocks() + 100}) {
        const std::vector<Packet> packets = frameAll(original, bpp);
        ASSERT_GE(packets.size(), 3u) << bpp; // Hello + Blocks... + End
        EXPECT_EQ(packets.front().type, Packet::Type::Hello);
        EXPECT_EQ(packets.back().type, Packet::Type::End);
        const BlockStream copy = reassemble(packets);
        EXPECT_TRUE(copy == original) << "blocks_per_packet=" << bpp;
    }
}

TEST(Packet, RoundTripsEveryBenchmark)
{
    for (size_t b = 0; b < runner().size(); ++b) {
        const BlockStream &original = runner().blockStream(b);
        const BlockStream copy =
            reassemble(frameAll(original, 512));
        EXPECT_TRUE(copy == original) << runner().name(b);
    }
}

TEST(Packet, FramerIsExhaustedAfterEnd)
{
    StreamFramer framer(runner().blockStream(0), 128);
    Packet p;
    size_t frames = 0;
    while (framer.next(p))
        ++frames;
    EXPECT_GT(frames, 0u);
    EXPECT_FALSE(framer.next(p)); // stays exhausted
}

TEST(Packet, RejectsOutOfOrderSequence)
{
    const std::vector<Packet> packets =
        frameAll(runner().blockStream(0), 64);
    ASSERT_GE(packets.size(), 4u);
    StreamAssembler assembler;
    assembler.accept(packets[0]);
    EXPECT_THROW(assembler.accept(packets[2]), PacketError); // skipped 1
}

TEST(Packet, RejectsDuplicateHello)
{
    const std::vector<Packet> packets =
        frameAll(runner().blockStream(0), 64);
    StreamAssembler assembler;
    assembler.accept(packets[0]);
    Packet again = packets[0];
    again.seq = 1; // right sequence number, wrong packet type
    EXPECT_THROW(assembler.accept(again), PacketError);
}

TEST(Packet, RejectsBlocksBeforeHello)
{
    const std::vector<Packet> packets =
        frameAll(runner().blockStream(0), 64);
    ASSERT_GE(packets.size(), 2u);
    StreamAssembler assembler;
    Packet blocks = packets[1];
    blocks.seq = 0;
    EXPECT_THROW(assembler.accept(blocks), PacketError);
}

TEST(Packet, RejectsTruncatedPayload)
{
    const std::vector<Packet> packets =
        frameAll(runner().blockStream(0), 64);
    StreamAssembler assembler;
    assembler.accept(packets[0]);
    Packet torn = packets[1];
    ASSERT_GT(torn.payload.size(), 2u);
    torn.payload.resize(torn.payload.size() / 2);
    EXPECT_THROW(assembler.accept(torn), PacketError);
}

TEST(Packet, RejectsTotalsMismatch)
{
    // Frame a one-block-short prefix, then append the full stream's End
    // packet: the accumulated totals disagree with the announced ones.
    const BlockStream &original = runner().blockStream(0);
    const std::vector<Packet> packets = frameAll(original, 1);
    ASSERT_GE(packets.size(), 4u); // Hello, >=2 Blocks, End
    StreamAssembler assembler;
    const size_t lastBlocks = packets.size() - 2;
    for (size_t i = 0; i < lastBlocks; ++i)
        assembler.accept(packets[i]); // all but the last Blocks packet
    Packet end = packets.back();
    end.seq = lastBlocks; // re-sequenced so only the totals disagree
    EXPECT_THROW(assembler.accept(end), PacketError);
}

TEST(Packet, TakeBeforeDoneThrows)
{
    const std::vector<Packet> packets =
        frameAll(runner().blockStream(0), 64);
    StreamAssembler assembler;
    assembler.accept(packets[0]);
    EXPECT_FALSE(assembler.done());
    EXPECT_THROW(assembler.take(), PacketError);
}

} // namespace
} // namespace ev8
