/**
 * @file
 * Tests for the skewed-indexing hash family ([17] style): index range,
 * sensitivity to every information bit, and the inter-bank dispersion
 * property that makes skewed predictors work.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bits.hh"
#include "common/random.hh"
#include "predictors/skew.hh"

namespace ev8
{
namespace
{

TEST(Skew, IndicesStayInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t addr = rng.next();
        const uint64_t hist = rng.next();
        for (unsigned t = 0; t < 4; ++t) {
            for (unsigned n : {10u, 14u, 16u, 20u}) {
                EXPECT_EQ(skewIndex(t, addr, hist, 21, n) & ~mask(n), 0u);
            }
        }
    }
}

TEST(Skew, HistoryLengthZeroIgnoresHistory)
{
    EXPECT_EQ(skewIndex(1, 0x4000, 0xdead, 0, 14),
              skewIndex(1, 0x4000, 0xbeef, 0, 14));
}

TEST(Skew, SingleHistoryBitAlwaysMovesIndex)
{
    // xorFold linearity guarantees any single history-bit flip changes
    // the index -- the de-aliasing property for close histories.
    Rng rng(2);
    const unsigned n = 14;
    for (int trial = 0; trial < 200; ++trial) {
        const uint64_t addr = rng.next() & mask(30);
        const uint64_t hist = rng.next() & mask(21);
        for (unsigned b = 0; b < 21; ++b) {
            for (unsigned t = 1; t <= 3; ++t) {
                EXPECT_NE(skewIndex(t, addr, hist, 21, n),
                          skewIndex(t, addr, hist ^ (1ull << b), 21, n))
                    << "table " << t << " bit " << b;
            }
        }
    }
}

TEST(Skew, TablesDisagreeOnIndices)
{
    // Different tables use different bijections; for random inputs they
    // should rarely produce the same index.
    Rng rng(3);
    int same01 = 0, same12 = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        const uint64_t addr = rng.next();
        const uint64_t hist = rng.next();
        same01 += skewIndex(1, addr, hist, 21, 14)
            == skewIndex(2, addr, hist, 21, 14);
        same12 += skewIndex(2, addr, hist, 21, 14)
            == skewIndex(3, addr, hist, 21, 14);
    }
    // Expected collision rate ~ 1/2^14.
    EXPECT_LT(same01, 5);
    EXPECT_LT(same12, 5);
}

TEST(Skew, InterBankDispersion)
{
    // The skewed-cache property: pairs of inputs that collide in one
    // table should mostly NOT collide in the others ([17], and the
    // index-function principle 3 of Section 7.5).
    Rng rng(4);
    const unsigned n = 10; // small tables to force collisions
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> first_in_t1;
    int collisions_t1 = 0, also_t2 = 0;
    for (int i = 0; i < 40000; ++i) {
        const uint64_t addr = rng.next() & mask(24);
        const uint64_t hist = rng.next() & mask(16);
        const uint64_t i1 = skewIndex(1, addr, hist, 16, n);
        auto [it, fresh] = first_in_t1.try_emplace(i1,
                                                   std::make_pair(addr,
                                                                  hist));
        if (fresh)
            continue;
        const auto [a0, h0] = it->second;
        if (a0 == addr && h0 == hist)
            continue;
        ++collisions_t1;
        if (skewIndex(2, a0, h0, 16, n)
            == skewIndex(2, addr, hist, 16, n))
            ++also_t2;
    }
    ASSERT_GT(collisions_t1, 1000) << "test needs collisions to matter";
    // Far fewer double collisions than single ones.
    EXPECT_LT(also_t2 * 20, collisions_t1);
}

TEST(Skew, AddressIndexFoldsHighBits)
{
    EXPECT_EQ(addressIndex(0x1000, 14), (0x1000u >> 2) & mask(14));
    // Addresses differing only above the fold width still separate.
    EXPECT_NE(addressIndex(0x1000, 10), addressIndex(0x1000 + (1 << 14),
                                                     10));
}

TEST(Skew, SlicesCoverBothComponents)
{
    const SkewSlices s = makeSkewSlices(0xabcd00, 0x1f2f3f, 22, 16);
    EXPECT_NE(s.v1, 0u);
    EXPECT_NE(s.v2, 0u);
    EXPECT_EQ(s.v1 & ~mask(16), 0u);
    EXPECT_EQ(s.v2 & ~mask(16), 0u);
}

} // namespace
} // namespace ev8
