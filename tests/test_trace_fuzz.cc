/**
 * @file
 * Robustness fuzzing of the trace deserializer: randomly corrupted and
 * truncated inputs must either parse (if the corruption is benign) or
 * throw TraceIoError -- never crash, hang, or allocate absurdly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.hh"
#include "trace/trace_io.hh"

namespace ev8
{
namespace
{

std::string
serializedTrace(size_t records)
{
    Rng rng(0xf00d);
    Trace t("fuzz", 0x120000000ULL);
    uint64_t flow = t.startPc();
    for (size_t i = 0; i < records; ++i) {
        BranchRecord r;
        r.pc = flow + rng.below(8) * kInstrBytes;
        r.type = static_cast<BranchType>(rng.below(5));
        r.target = 0x120000000ULL + rng.below(1 << 14) * kInstrBytes;
        r.taken = r.isConditional() ? rng.chance(0.4) : true;
        t.append(r);
        flow = r.nextPc();
    }
    std::stringstream out;
    writeTrace(out, t);
    return out.str();
}

TEST(TraceFuzz, SingleByteCorruptionsNeverCrash)
{
    const std::string base = serializedTrace(200);
    Rng rng(0xfeed);
    for (int trial = 0; trial < 400; ++trial) {
        std::string data = base;
        const size_t pos = rng.below(data.size());
        data[pos] = static_cast<char>(rng.next());
        std::stringstream in(data);
        try {
            const Trace t = readTrace(in);
            // Benign corruption: whatever parsed must be bounded.
            EXPECT_LE(t.size(), 1u << 22);
        } catch (const TraceIoError &) {
            // Expected for malignant corruption.
        }
    }
}

TEST(TraceFuzz, TruncationsAtEveryLengthNeverCrash)
{
    const std::string base = serializedTrace(50);
    for (size_t len = 0; len < base.size(); ++len) {
        std::stringstream in(base.substr(0, len));
        try {
            const Trace t = readTrace(in);
            EXPECT_LE(t.size(), 50u);
        } catch (const TraceIoError &) {
        }
    }
}

TEST(TraceFuzz, RandomGarbageNeverCrashes)
{
    Rng rng(0xdead);
    for (int trial = 0; trial < 200; ++trial) {
        std::string data(rng.below(300), '\0');
        for (auto &c : data)
            c = static_cast<char>(rng.next());
        // Keep a valid magic on some trials so parsing goes deeper.
        if (trial % 2 == 0 && data.size() >= 8) {
            data[0] = 'E';
            data[1] = 'V';
            data[2] = '8';
            data[3] = 'T';
            data[4] = 1;
            data[5] = data[6] = data[7] = 0;
        }
        std::stringstream in(data);
        try {
            (void)readTrace(in);
        } catch (const TraceIoError &) {
        }
    }
}

TEST(TraceFuzz, ImplausibleCountsAreBounded)
{
    // A huge declared record count over a tiny payload must fail with
    // an exception, not attempt to materialize the count.
    std::stringstream out;
    out.write("EV8T", 4);
    const char version[4] = {1, 0, 0, 0};
    out.write(version, 4);
    const char namelen[4] = {0, 0, 0, 0};
    out.write(namelen, 4);
    out.put(0); // startPc varint
    // count varint: ~2^35
    out.put(static_cast<char>(0xff));
    out.put(static_cast<char>(0xff));
    out.put(static_cast<char>(0xff));
    out.put(static_cast<char>(0xff));
    out.put(0x7f);
    std::stringstream in(out.str());
    EXPECT_THROW((void)readTrace(in), TraceIoError);
}

} // namespace
} // namespace ev8
