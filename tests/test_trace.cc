/**
 * @file
 * Unit tests for the branch-trace container and its derived statistics.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"

namespace ev8
{
namespace
{

BranchRecord
rec(uint64_t pc, uint64_t target, BranchType type, bool taken)
{
    BranchRecord r;
    r.pc = pc;
    r.target = target;
    r.type = type;
    r.taken = taken;
    return r;
}

TEST(BranchRecord, NextPcFollowsOutcome)
{
    const auto taken = rec(0x100, 0x200, BranchType::Conditional, true);
    EXPECT_EQ(taken.nextPc(), 0x200u);
    const auto fallthru = rec(0x100, 0x200, BranchType::Conditional, false);
    EXPECT_EQ(fallthru.nextPc(), 0x104u);
}

TEST(BranchRecord, OnlyConditionalIsPredicted)
{
    EXPECT_TRUE(rec(0, 0, BranchType::Conditional, true).isConditional());
    EXPECT_FALSE(rec(0, 0, BranchType::Call, true).isConditional());
    EXPECT_FALSE(rec(0, 0, BranchType::Return, true).isConditional());
    EXPECT_FALSE(rec(0, 0, BranchType::Indirect, true).isConditional());
}

TEST(BranchTypeName, AllNamed)
{
    EXPECT_STREQ(branchTypeName(BranchType::Conditional), "cond");
    EXPECT_STREQ(branchTypeName(BranchType::Unconditional), "uncond");
    EXPECT_STREQ(branchTypeName(BranchType::Call), "call");
    EXPECT_STREQ(branchTypeName(BranchType::Return), "return");
    EXPECT_STREQ(branchTypeName(BranchType::Indirect), "indirect");
}

TEST(Trace, InstructionCountCoversSequentialRuns)
{
    Trace t("t", 0x1000);
    // 0x1000..0x1008: 3 instructions up to the branch at 0x1008.
    t.append(rec(0x1008, 0x2000, BranchType::Conditional, true));
    // From 0x2000, 1 instruction (the branch itself at 0x2000).
    t.append(rec(0x2000, 0x3000, BranchType::Unconditional, true));
    EXPECT_EQ(t.instructionCount(), 3u + 1u);
}

TEST(Trace, EmptyTrace)
{
    Trace t("empty", 0x1000);
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.instructionCount(), 0u);
    const TraceStats s = t.stats();
    EXPECT_EQ(s.dynamicCondBranches, 0u);
    EXPECT_EQ(s.instructions, 0u);
}

TEST(Trace, StatsCountStaticAndDynamic)
{
    Trace t("t", 0x1000);
    t.append(rec(0x1000, 0x2000, BranchType::Conditional, false));
    t.append(rec(0x1004, 0x2000, BranchType::Conditional, true));
    t.append(rec(0x2000, 0x1000, BranchType::Unconditional, true));
    t.append(rec(0x1000, 0x2000, BranchType::Conditional, false));
    const TraceStats s = t.stats();
    EXPECT_EQ(s.dynamicCondBranches, 3u);
    EXPECT_EQ(s.staticCondBranches, 2u); // 0x1000 and 0x1004
    EXPECT_EQ(s.dynamicBranches, 4u);
    EXPECT_EQ(s.takenCondBranches, 1u);
    EXPECT_NEAR(s.takenRate(), 1.0 / 3.0, 1e-12);
}

TEST(Trace, WellFormedAcceptsValidFlow)
{
    Trace t("ok", 0x1000);
    t.append(rec(0x1008, 0x2000, BranchType::Conditional, false));
    t.append(rec(0x100c, 0x2000, BranchType::Unconditional, true));
    t.append(rec(0x2004, 0x1000, BranchType::Return, true));
    EXPECT_TRUE(t.isWellFormed());
}

TEST(Trace, WellFormedRejectsBackwardFlow)
{
    Trace t("bad", 0x1000);
    t.append(rec(0x1008, 0x2000, BranchType::Conditional, false));
    t.append(rec(0x1004, 0x2000, BranchType::Conditional, false));
    EXPECT_FALSE(t.isWellFormed());
}

TEST(Trace, WellFormedRejectsMisalignedPc)
{
    Trace t("bad", 0x1000);
    t.append(rec(0x1001, 0x2000, BranchType::Conditional, true));
    EXPECT_FALSE(t.isWellFormed());
}

TEST(Trace, WellFormedRejectsNotTakenUnconditional)
{
    Trace t("bad", 0x1000);
    t.append(rec(0x1000, 0x2000, BranchType::Unconditional, false));
    EXPECT_FALSE(t.isWellFormed());
}

} // namespace
} // namespace ev8
