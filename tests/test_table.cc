/**
 * @file
 * Unit tests for the ASCII table / bar chart renderer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/table.hh"

namespace ev8
{
namespace
{

TEST(Fmt, Precision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmt(-2.5, 1), "-2.5");
}

TEST(Fmt, NonFiniteValuesPrintDashes)
{
    EXPECT_EQ(fmt(std::nan(""), 2), "--");
    EXPECT_EQ(fmt(std::numeric_limits<double>::infinity(), 3), "--");
    EXPECT_EQ(fmt(-std::numeric_limits<double>::infinity(), 0), "--");
    EXPECT_EQ(fmt(std::numeric_limits<double>::quiet_NaN(), 1), "--");
}

TEST(BarChart, NonFiniteValuesRenderDashesAndEmptyBars)
{
    const double inf = std::numeric_limits<double>::infinity();
    const std::string out =
        renderBarChart("t", {"a", "b", "c"}, {1.0, std::nan(""), inf},
                       10);
    // The finite value still gets a full-scale bar; non-finite entries
    // print "--" with no bar instead of poisoning the scale.
    EXPECT_NE(out.find("a |########## 1.000"), std::string::npos) << out;
    EXPECT_NE(out.find("b | --"), std::string::npos) << out;
    EXPECT_NE(out.find("c | --"), std::string::npos) << out;
}

TEST(TextTable, RendersHeaderRuleAndRows)
{
    TextTable t;
    t.header({"bench", "a", "b"});
    t.row({"gcc", "1.0", "2.0"});
    t.row({"go", "10.5", "3.25"});
    const std::string out = t.render();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("gcc"), std::string::npos);
    EXPECT_NE(out.find("10.5"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t;
    t.header({"x", "value"});
    t.row({"longlabel", "1.0"});
    t.row({"s", "22.0"});
    const std::string out = t.render();
    // Each line has the same length (alignment padding).
    size_t first_len = out.find('\n');
    size_t pos = 0;
    int lines = 0;
    while (pos < out.size()) {
        size_t next = out.find('\n', pos);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - pos, first_len) << "line " << lines;
        pos = next + 1;
        ++lines;
    }
    EXPECT_GE(lines, 4);
}

TEST(TextTable, RowValuesFormatsDoubles)
{
    TextTable t;
    t.rowValues("gcc", {1.234, 5.678}, 1);
    const std::string out = t.render();
    EXPECT_NE(out.find("1.2"), std::string::npos);
    EXPECT_NE(out.find("5.7"), std::string::npos);
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"only-one"});
    EXPECT_NO_THROW({ auto s = t.render(); (void)s; });
}

TEST(BarChart, BarsScaleWithValues)
{
    const std::string out = renderBarChart("title", {"x", "y"},
                                           {1.0, 2.0}, 10);
    // y's bar should be twice as long as x's.
    const size_t x_line = out.find("x |");
    const size_t y_line = out.find("y |");
    ASSERT_NE(x_line, std::string::npos);
    ASSERT_NE(y_line, std::string::npos);
    auto count_hashes = [&](size_t from) {
        size_t n = 0;
        for (size_t i = out.find('|', from) + 1; out[i] == '#'; ++i)
            ++n;
        return n;
    };
    EXPECT_EQ(count_hashes(x_line), 5u);
    EXPECT_EQ(count_hashes(y_line), 10u);
}

TEST(BarChart, ZeroValuesRenderEmptyBars)
{
    const std::string out = renderBarChart("t", {"a"}, {0.0}, 10);
    EXPECT_NE(out.find("a |"), std::string::npos);
}

} // namespace
} // namespace ev8
