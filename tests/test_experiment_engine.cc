/**
 * @file
 * Tests for the parallel experiment engine: pool sizing, parallelFor
 * coverage and exception propagation, and -- the load-bearing guarantee
 * -- that suite runs, merged metric registries and sampled event
 * streams are byte-identical whatever the worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "predictors/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"
#include "sim/sweep.hh"

namespace ev8
{
namespace
{

constexpr uint64_t kTinyScale = 3000;

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

TEST(ExperimentEngine, DefaultJobsHonoursEnvVariable)
{
    {
        ScopedEnv env("EV8_JOBS", "3");
        EXPECT_EQ(ExperimentEngine::defaultJobs(), 3u);
        ExperimentEngine engine; // jobs = 0 resolves through the env
        EXPECT_EQ(engine.jobs(), 3u);
    }
    {
        ScopedEnv env("EV8_JOBS", nullptr);
        EXPECT_GE(ExperimentEngine::defaultJobs(), 1u);
    }
}

TEST(ExperimentEngineDeathTest, DefaultJobsRejectsInvalidEnvVariable)
{
    // A set-but-invalid EV8_JOBS is a hard configuration error: the
    // process exits 2 with a message naming the variable, rather than
    // silently running at some other width.
    for (const char *bad : {"0", "-1", "garbage", "8x"}) {
        ScopedEnv env("EV8_JOBS", bad);
        EXPECT_EXIT(ExperimentEngine::defaultJobs(),
                    ::testing::ExitedWithCode(2), "EV8_JOBS")
            << "EV8_JOBS='" << bad << "'";
    }
}

TEST(ExperimentEngine, ParseJobsAcceptsStrictDecimalCounts)
{
    EXPECT_EQ(ExperimentEngine::parseJobs("1"), 1u);
    EXPECT_EQ(ExperimentEngine::parseJobs("8"), 8u);
    EXPECT_EQ(ExperimentEngine::parseJobs("007"), 7u);
    EXPECT_EQ(ExperimentEngine::parseJobs("4096"), 4096u);
}

TEST(ExperimentEngine, ParseJobsRejectsEverythingElse)
{
    for (const char *bad :
         {"", "0", "-1", "+4", " 4", "4 ", "4x", "x4", "3.5", "0x10",
          "4097", "18446744073709551616", "999999999999999999999"}) {
        EXPECT_THROW(ExperimentEngine::parseJobs(bad),
                     std::invalid_argument)
            << "'" << bad << "'";
    }
}

TEST(ExperimentEngine, FusedLaneCapParsesAndClamps)
{
    {
        ScopedEnv env("EV8_FUSED_LANES", nullptr);
        EXPECT_EQ(ExperimentEngine::fusedLaneCap(), kMaxFusedLanes);
    }
    {
        ScopedEnv env("EV8_FUSED_LANES", "2");
        EXPECT_EQ(ExperimentEngine::fusedLaneCap(), 2u);
    }
    {
        // Values above the kernel's lane array are clamped, not errors.
        ScopedEnv env("EV8_FUSED_LANES", "4096");
        EXPECT_EQ(ExperimentEngine::fusedLaneCap(), kMaxFusedLanes);
    }
}

TEST(ExperimentEngineDeathTest, FusedLaneCapRejectsInvalidEnvVariable)
{
    ScopedEnv env("EV8_FUSED_LANES", "zero");
    EXPECT_EXIT(ExperimentEngine::fusedLaneCap(),
                ::testing::ExitedWithCode(2), "EV8_FUSED_LANES");
}

TEST(ExperimentEngine, ParallelForRunsEveryIndexExactlyOnce)
{
    ExperimentEngine engine(4);
    constexpr size_t n = 97; // not a multiple of the pool width
    std::vector<std::atomic<int>> hits(n);
    engine.parallelFor(n, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ExperimentEngine, ParallelForIsReusableAcrossBatches)
{
    ExperimentEngine engine(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<size_t> sum{0};
        engine.parallelFor(10, [&](size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 55u) << "round " << round;
    }
}

TEST(ExperimentEngine, ParallelForPropagatesException)
{
    ExperimentEngine engine(4);
    std::atomic<int> completed{0};
    try {
        engine.parallelFor(16, [&](size_t i) {
            if (i == 7)
                throw std::runtime_error("job 7 failed");
            completed.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected the job's exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 7 failed");
    }
    // The batch still ran to completion: the other 15 jobs finished.
    EXPECT_EQ(completed.load(), 15);

    // And the engine is still usable after a failed batch.
    std::atomic<int> ok{0};
    engine.parallelFor(4, [&](size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 4);
}

TEST(ExperimentEngine, SerialWidthRunsInline)
{
    ExperimentEngine engine(1);
    EXPECT_EQ(engine.jobs(), 1u);
    std::vector<size_t> order;
    engine.parallelFor(5, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

/** One suite run with full observability, at the given pool width. */
struct ObservedRun
{
    std::vector<BenchResult> results;
    std::string metricsJson;
    std::string eventsJsonl;
};

ObservedRun
observedRun(unsigned jobs)
{
    SuiteRunner runner(kTinyScale, jobs);
    MetricRegistry metrics;
    std::ostringstream events;
    EventTraceSink sink(events, 8);

    SimConfig config = SimConfig::ghist();
    config.metrics = &metrics;
    config.events = &sink;

    ObservedRun run;
    run.results = runner.run(
        [] { return makePredictor("2bcgskew:12:0:13:14:15"); }, config);
    std::ostringstream metrics_json;
    writeRegistryJson(metrics_json, metrics);
    run.metricsJson = metrics_json.str();
    run.eventsJsonl = events.str();
    EXPECT_GT(sink.emitted(), 0u);
    return run;
}

TEST(ExperimentEngine, SuiteRunIsByteIdenticalAcrossPoolWidths)
{
    const ObservedRun serial = observedRun(1);
    const ObservedRun parallel = observedRun(8);

    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].bench, parallel.results[i].bench);
        EXPECT_EQ(serial.results[i].sim.stats.mispredictions(),
                  parallel.results[i].sim.stats.mispredictions());
        EXPECT_EQ(serial.results[i].sim.stats.instructions(),
                  parallel.results[i].sim.stats.instructions());
    }
    // The merged registry serializes to the same bytes: counters added
    // and gauges overwritten in submission order match the serial run.
    EXPECT_EQ(serial.metricsJson, parallel.metricsJson);
    // The sampled JSONL stream is byte-identical: buffered events
    // replay through the shared sink in submission order, so the global
    // 1-in-N sampling counter sees the identical event sequence.
    EXPECT_EQ(serial.eventsJsonl, parallel.eventsJsonl);
}

TEST(ExperimentEngine, GridRunMatchesRowByRowRuns)
{
    SuiteRunner parallel(kTinyScale, 8);
    std::vector<GridRow> rows;
    for (const char *spec : {"bimodal:10", "gshare:12:10"}) {
        GridRow row;
        row.factory = [spec] { return makePredictor(spec); };
        row.config = SimConfig::ghist();
        rows.push_back(std::move(row));
    }
    const GridOutcome outcome = parallel.runGrid(rows);
    EXPECT_TRUE(outcome.ok());
    const auto &grid = outcome.results;

    SuiteRunner serial(kTinyScale, 1);
    ASSERT_EQ(grid.size(), 2u);
    for (size_t r = 0; r < rows.size(); ++r) {
        const auto expected =
            serial.run(rows[r].factory, SimConfig::ghist());
        ASSERT_EQ(grid[r].size(), expected.size());
        for (size_t b = 0; b < expected.size(); ++b) {
            EXPECT_EQ(grid[r][b].bench, expected[b].bench);
            EXPECT_EQ(grid[r][b].sim.stats.mispredictions(),
                      expected[b].sim.stats.mispredictions());
        }
    }
}

TEST(ExperimentEngine, HistorySweepIsWidthIndependent)
{
    auto sweep = [](unsigned jobs) {
        SuiteRunner runner(kTinyScale, jobs);
        return sweepHistoryLengths(
            runner,
            [](unsigned len) {
                return makePredictor("gshare:12:" + std::to_string(len));
            },
            {0, 4, 8, 12}, SimConfig::ghist());
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].histLen, parallel[i].histLen);
        EXPECT_DOUBLE_EQ(serial[i].avgMispKI, parallel[i].avgMispKI);
    }
}

} // namespace
} // namespace ev8
