/**
 * @file
 * Tests for the physical banked-array model of Section 7.1.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/physical_storage.hh"
#include "frontend/bank_scheduler.hh"

namespace ev8
{
namespace
{

TEST(PhysicalStorage, TotalBudgetIs352Kbits)
{
    // 208 Kbits prediction + 144 Kbits hysteresis (Section 4.7).
    EXPECT_EQ(Ev8PhysicalStorage::storageBits(), 352u * 1024);
    uint64_t pred = 0, hyst = 0;
    for (unsigned t = 0; t < kNumTables; ++t) {
        const auto id = static_cast<TableId>(t);
        pred += uint64_t{4} * kEv8Wordlines * ev8PredColumns(id) * 8;
        hyst += uint64_t{4} * kEv8Wordlines * ev8HystColumns(id) * 8;
    }
    EXPECT_EQ(pred, 208u * 1024);
    EXPECT_EQ(hyst, 144u * 1024);
}

TEST(PhysicalStorage, GeometryMatchesSection71)
{
    // Each wordline: 32 8-bit words for G0/G1/Meta, 8 for BIM.
    EXPECT_EQ(ev8PredColumns(BIM), 8u);
    EXPECT_EQ(ev8PredColumns(G0), 32u);
    EXPECT_EQ(ev8PredColumns(G1), 32u);
    EXPECT_EQ(ev8PredColumns(META), 32u);
    // Hysteresis: half columns for G0 and Meta (Table 1).
    EXPECT_EQ(ev8HystColumns(BIM), 8u);
    EXPECT_EQ(ev8HystColumns(G0), 16u);
    EXPECT_EQ(ev8HystColumns(G1), 32u);
    EXPECT_EQ(ev8HystColumns(META), 16u);
}

TEST(PhysicalStorage, InitialStateIsWeaklyNotTaken)
{
    Ev8PhysicalStorage arrays;
    const Ev8WordCoords c{1, 10, 3, 0};
    for (TableId t : {BIM, G0, G1, META}) {
        EXPECT_FALSE(arrays.readPredBit(t, c, 0));
        EXPECT_TRUE(arrays.readHystBit(t, c, 0));
    }
}

TEST(PhysicalStorage, ReadWriteRoundtrip)
{
    Ev8PhysicalStorage arrays;
    const Ev8WordCoords c{2, 33, 17, 0};
    arrays.writePredBit(G1, c, 5, true);
    EXPECT_TRUE(arrays.readPredBit(G1, c, 5));
    EXPECT_FALSE(arrays.readPredBit(G1, c, 4));
    arrays.writePredBit(G1, c, 5, false);
    EXPECT_FALSE(arrays.readPredBit(G1, c, 5));

    arrays.writeHystBit(G1, c, 3, false);
    EXPECT_FALSE(arrays.readHystBit(G1, c, 3));
    EXPECT_TRUE(arrays.readHystBit(G1, c, 2));
}

TEST(PhysicalStorage, CellsAreIndependent)
{
    Ev8PhysicalStorage arrays;
    arrays.writePredBit(G0, {0, 0, 0, 0}, 0, true);
    EXPECT_FALSE(arrays.readPredBit(G0, {0, 0, 1, 0}, 0));
    EXPECT_FALSE(arrays.readPredBit(G0, {0, 1, 0, 0}, 0));
    EXPECT_FALSE(arrays.readPredBit(G0, {1, 0, 0, 0}, 0));
    EXPECT_FALSE(arrays.readPredBit(G0, {0, 0, 0, 0}, 1));
    EXPECT_FALSE(arrays.readPredBit(G1, {0, 0, 0, 0}, 0));
}

TEST(PhysicalStorage, ReadPredWordGathersEightBits)
{
    Ev8PhysicalStorage arrays;
    const Ev8WordCoords c{3, 63, 31, 0};
    arrays.writePredBit(META, c, 0, true);
    arrays.writePredBit(META, c, 7, true);
    EXPECT_EQ(arrays.readPredWord(META, c), 0x81);
}

TEST(PhysicalStorage, HysteresisSharingDropsColumnMsb)
{
    // For G0 and Meta, prediction columns c and c+16 share one
    // hysteresis entry (Section 4.4: same index minus its MSB).
    Ev8PhysicalStorage arrays;
    const Ev8WordCoords low{1, 5, 7, 0};
    const Ev8WordCoords high{1, 5, 7 + 16, 0};
    arrays.writeHystBit(G0, low, 2, false);
    EXPECT_FALSE(arrays.readHystBit(G0, high, 2))
        << "G0 columns 16 apart must share hysteresis";
    arrays.writeHystBit(META, high, 4, false);
    EXPECT_FALSE(arrays.readHystBit(META, low, 4));

    // G1 and BIM hysteresis are full size: no sharing.
    Ev8PhysicalStorage fresh;
    fresh.writeHystBit(G1, low, 2, false);
    EXPECT_TRUE(fresh.readHystBit(G1, high, 2));
}

TEST(PhysicalStorage, ResetRestoresInitialState)
{
    Ev8PhysicalStorage arrays;
    const Ev8WordCoords c{0, 1, 2, 0};
    arrays.writePredBit(BIM, c, 1, true);
    arrays.writeHystBit(BIM, c, 1, false);
    arrays.reset();
    EXPECT_FALSE(arrays.readPredBit(BIM, c, 1));
    EXPECT_TRUE(arrays.readHystBit(BIM, c, 1));
}

TEST(SinglePortChecker, DetectsSecondAccessToSameBank)
{
    SinglePortChecker checker;
    checker.beginCycle();
    EXPECT_TRUE(checker.access(0));
    EXPECT_TRUE(checker.access(1));
    EXPECT_FALSE(checker.access(0)) << "single-ported cell re-accessed";
    checker.beginCycle();
    EXPECT_TRUE(checker.access(0));
}

TEST(SinglePortChecker, BankSchedulerStreamIsAlwaysClean)
{
    // The integration of Sections 6.2 and 7.1: banks assigned by the
    // scheduler, two blocks per cycle, never a port conflict.
    SinglePortChecker checker;
    Rng rng(99);
    unsigned prev_bank = 99;
    for (int cycle = 0; cycle < 20000; ++cycle) {
        checker.beginCycle();
        for (int slot = 0; slot < 2; ++slot) {
            const unsigned y65 = unsigned(rng.below(4));
            const unsigned bank = computeBankNumber(
                uint64_t{y65} << 5, prev_bank == 99 ? 0 : prev_bank);
            ASSERT_TRUE(checker.access(bank));
            prev_bank = bank;
        }
    }
}

} // namespace
} // namespace ev8
