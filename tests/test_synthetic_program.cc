/**
 * @file
 * Unit and property tests for the synthetic CFG program generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/suite.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{
namespace
{

WorkloadProfile
smallProfile(uint64_t seed = 0xabc)
{
    WorkloadProfile p;
    p.name = "test";
    p.seed = seed;
    p.shape.numFunctions = 6;
    p.shape.minBlocksPerFunction = 8;
    p.shape.maxBlocksPerFunction = 20;
    p.mix.biased = 0.5;
    p.mix.globalCorrelated = 0.3;
    p.mix.random = 0.2;
    return p;
}

TEST(SyntheticProgram, CfgStructureInvariants)
{
    SyntheticProgram prog(smallProfile());
    const auto &blocks = prog.blocks();
    const auto &entries = prog.functionEntries();
    ASSERT_EQ(entries.size(), 6u);
    ASSERT_FALSE(blocks.empty());

    for (size_t f = 0; f < entries.size(); ++f) {
        const int first = entries[f];
        const int last = (f + 1 < entries.size()
                          ? entries[f + 1] : int(blocks.size())) - 1;
        ASSERT_LE(first, last);
        // Last block of function 0 jumps back to its entry; all other
        // functions end in a return.
        if (f == 0) {
            EXPECT_EQ(blocks[last].term, TermKind::Jump);
            EXPECT_EQ(blocks[last].target, entries[0]);
        } else {
            EXPECT_EQ(blocks[last].term, TermKind::Return);
        }
        // Cond/Jump targets stay within the function.
        for (int i = first; i <= last; ++i) {
            const BasicBlock &b = blocks[size_t(i)];
            if (b.term == TermKind::Cond
                || (b.term == TermKind::Jump && !(f == 0 && i == last))) {
                EXPECT_GE(b.target, first);
                EXPECT_LE(b.target, last);
                if (b.term == TermKind::Cond) {
                    EXPECT_NE(b.target, i + 1)
                        << "taken target equals fall-through";
                }
            }
            if (b.term == TermKind::Cond) {
                EXPECT_GE(b.behavior, 0);
            }
        }
    }
}

TEST(SyntheticProgram, CallSetsTargetFunctionEntries)
{
    SyntheticProgram prog(smallProfile());
    const auto &blocks = prog.blocks();
    std::set<int> entry_set(prog.functionEntries().begin(),
                            prog.functionEntries().end());
    for (const auto &b : blocks) {
        if (b.term != TermKind::Call)
            continue;
        ASSERT_GE(b.target, 0);
        ASSERT_LT(size_t(b.target), prog.callTargetSets().size());
        const auto &callees = prog.callTargetSets()[size_t(b.target)];
        ASSERT_FALSE(callees.empty());
        for (int callee : callees)
            EXPECT_TRUE(entry_set.count(callee)) << "callee not an entry";
    }
}

TEST(SyntheticProgram, AddressesAreMonotoneAndAligned)
{
    SyntheticProgram prog(smallProfile());
    const auto &blocks = prog.blocks();
    uint64_t prev_end = 0;
    for (const auto &b : blocks) {
        EXPECT_EQ(b.pc % kInstrBytes, 0u);
        EXPECT_GE(b.pc, prev_end);
        prev_end = b.endPc();
    }
    // Function entries are aligned to 32-byte fetch rows.
    for (int e : prog.functionEntries())
        EXPECT_EQ(blocks[size_t(e)].pc % 32, 0u);
}

TEST(SyntheticProgram, RunIsDeterministic)
{
    SyntheticProgram prog(smallProfile());
    const Trace a = prog.run(5000);
    const Trace b = prog.run(5000);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.records(), b.records());
}

TEST(SyntheticProgram, DifferentSeedsDiffer)
{
    const Trace a = generateTrace(smallProfile(1), 2000);
    const Trace b = generateTrace(smallProfile(2), 2000);
    EXPECT_NE(a.records(), b.records());
}

TEST(SyntheticProgram, TraceIsWellFormed)
{
    const Trace t = generateTrace(smallProfile(), 20000);
    EXPECT_TRUE(t.isWellFormed());
}

TEST(SyntheticProgram, HitsRequestedBranchCount)
{
    const Trace t = generateTrace(smallProfile(), 12345);
    EXPECT_EQ(t.stats().dynamicCondBranches, 12345u);
}

TEST(SyntheticProgram, PrefixProperty)
{
    // A longer run begins with exactly the records of a shorter run.
    SyntheticProgram prog(smallProfile());
    const Trace small = prog.run(1000);
    const Trace big = prog.run(3000);
    ASSERT_GE(big.size(), small.size());
    for (size_t i = 0; i < small.size(); ++i)
        ASSERT_EQ(big.records()[i], small.records()[i]) << "record " << i;
}

TEST(SyntheticProgram, CallsAndReturnsBalance)
{
    const Trace t = generateTrace(smallProfile(), 30000);
    int64_t depth = 0;
    int64_t max_depth = 0;
    for (const auto &rec : t.records()) {
        if (rec.type == BranchType::Call
            || rec.type == BranchType::Indirect)
            ++depth;
        else if (rec.type == BranchType::Return)
            --depth;
        ASSERT_GE(depth, 0) << "return without call";
        max_depth = std::max(max_depth, depth);
    }
    // Acyclic call graph: depth bounded by the function count.
    EXPECT_LE(max_depth, 6);
}

TEST(SyntheticProgram, DispatchSpreadsCoverage)
{
    // With dispatch, a long trace must execute branches in many
    // functions, not just the driver.
    WorkloadProfile p = smallProfile();
    p.shape.driverDispatchWidth = 5;
    p.shape.driverCallFraction = 0.3;
    SyntheticProgram prog(p);
    const Trace t = prog.run(50000);

    std::set<size_t> funcs_hit;
    const auto &entries = prog.functionEntries();
    const auto &blocks = prog.blocks();
    for (const auto &rec : t.records()) {
        if (!rec.isConditional())
            continue;
        // Find the function whose block range covers this pc.
        for (size_t f = 0; f < entries.size(); ++f) {
            const uint64_t lo = blocks[size_t(entries[f])].pc;
            const uint64_t hi = f + 1 < entries.size()
                ? blocks[size_t(entries[f + 1])].pc : ~uint64_t{0};
            if (rec.pc >= lo && rec.pc < hi) {
                funcs_hit.insert(f);
                break;
            }
        }
    }
    EXPECT_GE(funcs_hit.size(), 4u) << "dispatch failed to spread";
}

TEST(SyntheticProgram, StaticFootprintScalesWithShape)
{
    WorkloadProfile small = smallProfile();
    WorkloadProfile big = smallProfile();
    big.shape.numFunctions = 40;
    EXPECT_GT(SyntheticProgram(big).staticCondBranches(),
              SyntheticProgram(small).staticCondBranches() * 3);
}

TEST(GenerateTrace, MatchesProgramRun)
{
    const WorkloadProfile p = smallProfile();
    SyntheticProgram prog(p);
    EXPECT_EQ(generateTrace(p, 500).records(), prog.run(500).records());
}

} // namespace
} // namespace ev8
