/**
 * @file
 * Tests for the grid checkpoint journal: exact round-tripping of cell
 * records (u64s past 2^53, doubles by bit pattern, events, histograms),
 * tolerance of corrupt/torn/foreign journals, and the engine-level
 * guarantee -- a resumed grid run produces byte-identical merged
 * metrics and event streams while re-running zero cells.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "predictors/factory.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

namespace ev8
{
namespace
{

namespace fs = std::filesystem;

constexpr uint64_t kTinyScale = 3000;

/** Sets an environment variable for one scope, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

/** A unique directory under /tmp, removed on scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/ev8-ckpt-test-XXXXXX";
        path_ = ::mkdtemp(tmpl);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** A cell output exercising every field the journal must round-trip. */
struct CellFixture
{
    BenchResult result;
    MetricRegistry metrics;
    std::vector<MispredictEvent> events;

    CellFixture()
    {
        result.bench = "gcc";
        // u64 values past 2^53 prove the decimal-string encoding; a
        // plain JSON number would come back rounded.
        result.sim.stats.tally((1ULL << 60) + 3, (1ULL << 54) + 1);
        result.sim.stats.setInstructions(123456789012345678ULL);
        result.sim.fetchBlocks = 42;
        result.sim.lghistBits = 7;
        result.sim.condBranches = 999;
        for (size_t i = 0; i < result.sim.branchesPerBlock.size(); ++i)
            result.sim.branchesPerBlock[i] = i * i + 1;
        result.sim.timing.lookup.calls = 10;
        result.sim.timing.lookup.ns = 1111;
        result.sim.timing.update.calls = 20;
        result.sim.timing.update.ns = 2222;
        result.sim.timing.history.calls = 30;
        result.sim.timing.history.ns = 3333;

        metrics.counter("sim.fetch_blocks").inc(12345);
        // 0.1 has no exact binary representation; the bit-pattern
        // encoding must reproduce the stored double to the last bit.
        metrics.gauge("sim.time.total_s").set(0.1);
        metrics.histogram("pred.conf", {1.0, 2.5, 10.0}).observe(0.1);
        metrics.histogram("pred.conf", {1.0, 2.5, 10.0}).observe(7.0, 3);

        MispredictEvent ev;
        ev.branchSeq = (1ULL << 55) + 9;
        ev.pc = 0x400123;
        ev.blockAddr = 0x400100;
        ev.ghist = 0xdeadbeefcafef00dULL;
        ev.indexHist = 0x123456789abcdef0ULL;
        ev.bank = 3;
        ev.taken = true;
        ev.predicted = false;
        ev.votesValid = true;
        ev.voteBim = true;
        ev.voteG1 = true;
        ev.voteMajority = true;
        events.push_back(ev);
        MispredictEvent ev2; // all-defaults event: flags byte 0
        events.push_back(ev2);
    }
};

std::string
registryJson(const MetricRegistry &metrics)
{
    std::ostringstream out;
    writeRegistryJson(out, metrics);
    return out.str();
}

void
expectSameCell(const GridCheckpoint::RestoredCell &restored,
               const CellFixture &expected)
{
    EXPECT_EQ(restored.result.bench, expected.result.bench);
    EXPECT_FALSE(restored.result.failed);
    const SimResult &a = restored.result.sim;
    const SimResult &b = expected.result.sim;
    EXPECT_EQ(a.stats.lookups(), b.stats.lookups());
    EXPECT_EQ(a.stats.mispredictions(), b.stats.mispredictions());
    EXPECT_EQ(a.stats.instructions(), b.stats.instructions());
    EXPECT_EQ(a.fetchBlocks, b.fetchBlocks);
    EXPECT_EQ(a.lghistBits, b.lghistBits);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.branchesPerBlock, b.branchesPerBlock);
    EXPECT_EQ(a.timing.lookup.calls, b.timing.lookup.calls);
    EXPECT_EQ(a.timing.lookup.ns, b.timing.lookup.ns);
    EXPECT_EQ(a.timing.update.calls, b.timing.update.calls);
    EXPECT_EQ(a.timing.update.ns, b.timing.update.ns);
    EXPECT_EQ(a.timing.history.calls, b.timing.history.calls);
    EXPECT_EQ(a.timing.history.ns, b.timing.history.ns);

    // The restored registry serializes to the same bytes.
    EXPECT_EQ(registryJson(restored.metrics),
              registryJson(expected.metrics));

    ASSERT_EQ(restored.events.size(), expected.events.size());
    for (size_t i = 0; i < restored.events.size(); ++i) {
        const MispredictEvent &x = restored.events[i];
        const MispredictEvent &y = expected.events[i];
        EXPECT_EQ(x.branchSeq, y.branchSeq) << "event " << i;
        EXPECT_EQ(x.pc, y.pc) << "event " << i;
        EXPECT_EQ(x.blockAddr, y.blockAddr) << "event " << i;
        EXPECT_EQ(x.ghist, y.ghist) << "event " << i;
        EXPECT_EQ(x.indexHist, y.indexHist) << "event " << i;
        EXPECT_EQ(x.bank, y.bank) << "event " << i;
        EXPECT_EQ(x.taken, y.taken) << "event " << i;
        EXPECT_EQ(x.predicted, y.predicted) << "event " << i;
        EXPECT_EQ(x.votesValid, y.votesValid) << "event " << i;
        EXPECT_EQ(x.voteBim, y.voteBim) << "event " << i;
        EXPECT_EQ(x.voteG0, y.voteG0) << "event " << i;
        EXPECT_EQ(x.voteG1, y.voteG1) << "event " << i;
        EXPECT_EQ(x.voteMeta, y.voteMeta) << "event " << i;
        EXPECT_EQ(x.voteMajority, y.voteMajority) << "event " << i;
    }
}

TEST(GridCheckpoint, EmptyDirDisablesTheJournal)
{
    GridCheckpoint ckpt("", 0x1234, 4);
    EXPECT_FALSE(ckpt.enabled());
    EXPECT_TRUE(ckpt.path().empty());
    EXPECT_TRUE(ckpt.load().empty());
    CellFixture cell; // append must be a harmless no-op
    ckpt.append(0, cell.result, cell.metrics, cell.events);
}

TEST(GridCheckpoint, DefaultDirReadsTheEnvironment)
{
    {
        ScopedEnv env("EV8_CHECKPOINT_DIR", "/some/dir");
        EXPECT_EQ(GridCheckpoint::defaultDir(), "/some/dir");
    }
    {
        ScopedEnv env("EV8_CHECKPOINT_DIR", nullptr);
        EXPECT_EQ(GridCheckpoint::defaultDir(), "");
    }
}

TEST(GridCheckpoint, RecordsRoundTripExactly)
{
    TempDir dir;
    CellFixture cell;
    {
        GridCheckpoint ckpt(dir.path(), 0xfeed, 4);
        ASSERT_TRUE(ckpt.enabled());
        EXPECT_TRUE(ckpt.load().empty());
        ckpt.append(2, cell.result, cell.metrics, cell.events);
    }
    GridCheckpoint reopened(dir.path(), 0xfeed, 4);
    auto restored = reopened.load();
    ASSERT_EQ(restored.size(), 1u);
    ASSERT_TRUE(restored.count(2));
    expectSameCell(restored.at(2), cell);
}

TEST(GridCheckpoint, ForeignGridHashUsesADifferentFile)
{
    TempDir dir;
    CellFixture cell;
    {
        GridCheckpoint ckpt(dir.path(), 0x1111, 4);
        ckpt.load();
        ckpt.append(0, cell.result, cell.metrics, cell.events);
    }
    // Same directory, different grid: a different file name entirely,
    // so nothing restores and the old journal is untouched.
    GridCheckpoint other(dir.path(), 0x2222, 4);
    EXPECT_NE(other.path(), GridCheckpoint(dir.path(), 0x1111, 4).path());
    EXPECT_TRUE(other.load().empty());
    GridCheckpoint original(dir.path(), 0x1111, 4);
    EXPECT_EQ(original.load().size(), 1u);
}

TEST(GridCheckpoint, MismatchedFormatHeaderStartsFresh)
{
    TempDir dir;
    CellFixture cell;
    std::string path;
    {
        GridCheckpoint ckpt(dir.path(), 0x3333, 4);
        path = ckpt.path();
        ckpt.load();
        ckpt.append(1, cell.result, cell.metrics, cell.events);
    }
    // Forge a header from a hypothetical other build: same file name,
    // wrong format field. The loader must not trust any record in it.
    {
        const std::string body = slurp(path);
        const std::string record = body.substr(body.find('\n') + 1);
        std::ofstream out(path, std::ios::trunc);
        out << "{\"schema\":\"ev8-checkpoint-v1\",\"format\":\"999\","
               "\"grid\":\"0000000000003333\",\"cells\":\"4\"}\n"
            << record;
    }
    GridCheckpoint reopened(dir.path(), 0x3333, 4);
    EXPECT_TRUE(reopened.load().empty());
    // And load() rewrote a valid header for the current format.
    const std::string fresh = slurp(path);
    EXPECT_NE(fresh.find("\"format\":\"1\""), std::string::npos) << fresh;
}

TEST(GridCheckpoint, WrongCellCountStartsFresh)
{
    TempDir dir;
    CellFixture cell;
    {
        GridCheckpoint ckpt(dir.path(), 0x4444, 4);
        ckpt.load();
        ckpt.append(0, cell.result, cell.metrics, cell.events);
    }
    // A journal written for a 4-cell batch must not feed an 8-cell one,
    // even when the file name matches (same hash, different count --
    // belt and braces; the hash normally covers the shape).
    GridCheckpoint reopened(dir.path(), 0x4444, 8);
    EXPECT_TRUE(reopened.load().empty());
}

TEST(GridCheckpoint, CorruptAndTornLinesAreSkippedIndividually)
{
    TempDir dir;
    CellFixture cell;
    std::string path;
    {
        GridCheckpoint ckpt(dir.path(), 0x5555, 4);
        path = ckpt.path();
        ckpt.load();
        ckpt.append(0, cell.result, cell.metrics, cell.events);
        ckpt.append(3, cell.result, cell.metrics, cell.events);
    }
    {
        // Garbage between records and a torn (half) record at the
        // tail, as a crash mid-append would leave.
        const std::string body = slurp(path);
        const size_t rec0 = body.find("\n{\"cell\":\"0\"");
        const size_t rec3 = body.find("\n{\"cell\":\"3\"");
        ASSERT_NE(rec0, std::string::npos);
        ASSERT_NE(rec3, std::string::npos);
        const std::string record0 =
            body.substr(rec0 + 1, rec3 - rec0 - 1);
        std::ofstream out(path, std::ios::app);
        out << "not json at all\n";
        out << "{\"cell\":\"1\",\"bench\":\"go\"}\n"; // parses, wrong shape
        out << record0.substr(0, record0.size() / 2); // torn tail
    }
    GridCheckpoint reopened(dir.path(), 0x5555, 4);
    auto restored = reopened.load();
    EXPECT_EQ(restored.size(), 2u);
    EXPECT_TRUE(restored.count(0));
    EXPECT_TRUE(restored.count(3));
    expectSameCell(restored.at(0), cell);
}

TEST(GridCheckpoint, FirstRecordWinsOnDuplicates)
{
    TempDir dir;
    CellFixture first;
    CellFixture second;
    second.result.bench = "vortex";
    {
        GridCheckpoint ckpt(dir.path(), 0x6666, 4);
        ckpt.load();
        ckpt.append(0, first.result, first.metrics, first.events);
        ckpt.append(0, second.result, second.metrics, second.events);
    }
    GridCheckpoint reopened(dir.path(), 0x6666, 4);
    auto restored = reopened.load();
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored.at(0).result.bench, "gcc");
}

TEST(GridCheckpoint, UnwritableDirectoryDegradesGracefully)
{
    // A path under a regular file: create_directories must fail. (A
    // chmod-based unwritable directory is useless here -- root ignores
    // permission bits.)
    TempDir dir;
    const std::string file = dir.path() + "/plain-file";
    std::ofstream(file) << "x";
    GridCheckpoint ckpt(file + "/sub", 0x8888, 4);
    ASSERT_TRUE(ckpt.enabled());
    EXPECT_TRUE(ckpt.load().empty());
    CellFixture cell; // appends silently become no-ops, never throw
    ckpt.append(0, cell.result, cell.metrics, cell.events);
}

/** One checkpointed grid run with full observability. */
struct ObservedGrid
{
    std::vector<std::vector<BenchResult>> results;
    std::string metricsJson;
    std::string eventsJsonl;
    uint64_t resumedCells = 0;
};

ObservedGrid
observedGrid(unsigned jobs)
{
    SuiteRunner runner(kTinyScale, jobs);
    MetricRegistry metrics;
    std::ostringstream events;
    EventTraceSink sink(events, 8);

    std::vector<GridRow> rows;
    for (const char *spec : {"gshare:12:10", "2bcgskew:12:0:13:14:15"}) {
        GridRow row;
        row.factory = [spec] { return makePredictor(spec); };
        row.config = SimConfig::ghist();
        row.config.metrics = &metrics;
        row.config.events = &sink;
        row.label = spec;
        rows.push_back(std::move(row));
    }
    const GridOutcome outcome = runner.runGrid(rows);
    EXPECT_TRUE(outcome.ok());

    ObservedGrid run;
    run.results = outcome.results;
    run.resumedCells = outcome.resumedCells;
    std::ostringstream metrics_json;
    writeRegistryJson(metrics_json, metrics);
    run.metricsJson = metrics_json.str();
    run.eventsJsonl = events.str();
    return run;
}

/**
 * The tentpole guarantee, at the engine level: a second run of the same
 * grid under EV8_CHECKPOINT_DIR restores every cell from the journal --
 * zero re-simulation -- and still produces byte-identical merged
 * metrics and event streams, at any pool width. And checkpointing
 * itself must not perturb the artifacts relative to an unjournaled run.
 */
TEST(GridCheckpointResume, ResumedGridIsByteIdentical)
{
    const ObservedGrid bare = observedGrid(2); // no checkpoint dir

    TempDir dir;
    ScopedEnv env("EV8_CHECKPOINT_DIR", dir.path().c_str());
    const ObservedGrid cold = observedGrid(2);
    EXPECT_EQ(cold.resumedCells, 0u);
    const ObservedGrid warm = observedGrid(2);
    const ObservedGrid warm_serial = observedGrid(1);

    ASSERT_FALSE(cold.results.empty());
    const uint64_t cells = cold.results.size() * cold.results[0].size();
    EXPECT_EQ(warm.resumedCells, cells);
    EXPECT_EQ(warm_serial.resumedCells, cells);

    for (const ObservedGrid *other : {&cold, &warm, &warm_serial}) {
        ASSERT_EQ(other->results.size(), bare.results.size());
        for (size_t r = 0; r < bare.results.size(); ++r) {
            ASSERT_EQ(other->results[r].size(), bare.results[r].size());
            for (size_t b = 0; b < bare.results[r].size(); ++b) {
                EXPECT_EQ(other->results[r][b].bench,
                          bare.results[r][b].bench);
                EXPECT_EQ(
                    other->results[r][b].sim.stats.mispredictions(),
                    bare.results[r][b].sim.stats.mispredictions());
                EXPECT_EQ(other->results[r][b].sim.stats.instructions(),
                          bare.results[r][b].sim.stats.instructions());
            }
        }
        EXPECT_EQ(other->metricsJson, bare.metricsJson);
        EXPECT_EQ(other->eventsJsonl, bare.eventsJsonl);
    }
}

/** A different grid (other rows) maps to a different journal file. */
TEST(GridCheckpointResume, DifferentGridDoesNotResume)
{
    TempDir dir;
    ScopedEnv env("EV8_CHECKPOINT_DIR", dir.path().c_str());
    observedGrid(2);

    SuiteRunner runner(kTinyScale, 2);
    std::vector<GridRow> rows;
    GridRow row;
    row.factory = [] { return makePredictor("bimodal:10"); };
    row.config = SimConfig::ghist();
    row.label = "bimodal";
    rows.push_back(std::move(row));
    const GridOutcome outcome = runner.runGrid(rows);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.resumedCells, 0u);
}

} // namespace
} // namespace ev8
