/**
 * @file
 * White-box tests of the shared 2Bc-gskew combination and partial-update
 * policy (Section 4.2), run against a mock bank recorder so every write
 * the policy performs is visible.
 */

#include <gtest/gtest.h>

#include <vector>

#include "predictors/gskew_policy.hh"

namespace ev8
{
namespace
{

/** Mock banks: fixed predictions, recorded writes. */
struct MockBanks
{
    struct Write
    {
        enum Kind { Strengthen, Update } kind;
        TableId table;
        size_t idx;
        bool value; // for Update

        bool operator==(const Write &) const = default;
    };

    bool preds[kNumTables] = {};
    mutable std::vector<Write> writes;

    bool taken(TableId t, size_t) const { return preds[t]; }

    void
    strengthen(TableId t, size_t idx)
    {
        writes.push_back({Write::Strengthen, t, idx, false});
    }

    void
    update(TableId t, size_t idx, bool v)
    {
        writes.push_back({Write::Update, t, idx, v});
        if (t == META)
            preds[META] = v; // meta may flip; the policy re-reads it
    }

    bool wrote(TableId t) const
    {
        for (const auto &w : writes)
            if (w.table == t)
                return true;
        return false;
    }
};

GskewLookup
lookupFor(const MockBanks &banks)
{
    GskewLookup look;
    look.idx = {0, 1, 2, 3};
    computeGskewVotes(banks, look);
    return look;
}

TEST(GskewVotes, MajorityAndSelection)
{
    MockBanks banks;
    banks.preds[BIM] = true;
    banks.preds[G0] = true;
    banks.preds[G1] = false;
    banks.preds[META] = true; // majority selected
    const GskewLookup look = lookupFor(banks);
    EXPECT_TRUE(look.majority);
    EXPECT_TRUE(look.overall);

    banks.preds[META] = false; // bimodal selected
    const GskewLookup look2 = lookupFor(banks);
    EXPECT_TRUE(look2.overall); // BIM says taken

    banks.preds[BIM] = false;
    const GskewLookup look3 = lookupFor(banks);
    EXPECT_FALSE(look3.majority) << "1 of 3 votes taken";
    EXPECT_FALSE(look3.overall);
}

TEST(PartialUpdate, Rationale1_NoWriteWhenAllAgreeAndCorrect)
{
    MockBanks banks;
    banks.preds[BIM] = banks.preds[G0] = banks.preds[G1] = true;
    banks.preds[META] = true;
    const GskewLookup look = lookupFor(banks);
    gskewPartialUpdate(banks, look, /*taken=*/true);
    EXPECT_TRUE(banks.writes.empty())
        << "all-agreeing correct prediction must not touch any counter";
}

TEST(PartialUpdate, CorrectViaBimodal_StrengthensOnlyBim)
{
    MockBanks banks;
    banks.preds[BIM] = true;             // correct
    banks.preds[G0] = banks.preds[G1] = false;
    banks.preds[META] = false;           // bimodal selected
    const GskewLookup look = lookupFor(banks);
    // majority = false, bim = true -> predictions differ -> Meta
    // strengthened; BIM (the used, correct one) strengthened.
    gskewPartialUpdate(banks, look, true);
    ASSERT_EQ(banks.writes.size(), 2u);
    EXPECT_EQ(banks.writes[0].table, META);
    EXPECT_EQ(banks.writes[0].kind, MockBanks::Write::Strengthen);
    EXPECT_EQ(banks.writes[1].table, BIM);
    EXPECT_EQ(banks.writes[1].kind, MockBanks::Write::Strengthen);
}

TEST(PartialUpdate, CorrectViaMajority_StrengthensCorrectVotersOnly)
{
    MockBanks banks;
    banks.preds[BIM] = false; // wrong voter
    banks.preds[G0] = true;
    banks.preds[G1] = true;
    banks.preds[META] = true; // majority selected
    const GskewLookup look = lookupFor(banks);
    gskewPartialUpdate(banks, look, true);
    // Meta strengthened (predictions differed) + G0 + G1; never BIM.
    EXPECT_TRUE(banks.wrote(META));
    EXPECT_TRUE(banks.wrote(G0));
    EXPECT_TRUE(banks.wrote(G1));
    EXPECT_FALSE(banks.wrote(BIM))
        << "a wrong voter must not be strengthened";
    for (const auto &w : banks.writes)
        EXPECT_EQ(w.kind, MockBanks::Write::Strengthen);
}

TEST(PartialUpdate, CorrectSameComponents_NoMetaStrengthen)
{
    MockBanks banks;
    banks.preds[BIM] = true;
    banks.preds[G0] = true;
    banks.preds[G1] = false; // disagreement inside the vote
    banks.preds[META] = true;
    const GskewLookup look = lookupFor(banks);
    // bim == majority == taken: Meta gave no distinguishing choice.
    gskewPartialUpdate(banks, look, true);
    EXPECT_FALSE(banks.wrote(META));
    EXPECT_TRUE(banks.wrote(BIM));
    EXPECT_TRUE(banks.wrote(G0));
    EXPECT_FALSE(banks.wrote(G1));
}

TEST(PartialUpdate, Rationale2_ChooserFlipRescuesPrediction)
{
    MockBanks banks;
    banks.preds[BIM] = false;       // bimodal wrong... actually correct:
    banks.preds[G0] = true;         // outcome will be false
    banks.preds[G1] = true;
    banks.preds[META] = true;       // majority (taken) selected -> wrong
    GskewLookup look = lookupFor(banks);
    ASSERT_TRUE(look.overall);
    gskewPartialUpdate(banks, look, /*taken=*/false);

    // First write: Meta full update toward "bimodal was right" (false).
    ASSERT_FALSE(banks.writes.empty());
    EXPECT_EQ(banks.writes[0].table, META);
    EXPECT_EQ(banks.writes[0].kind, MockBanks::Write::Update);
    EXPECT_FALSE(banks.writes[0].value);

    // The mock flips meta immediately, so the recomputed prediction is
    // BIM = false = correct: only BIM gets strengthened, G0/G1 (wrong)
    // are left alone -- no stealing (Rationale 2).
    EXPECT_TRUE(banks.wrote(BIM));
    EXPECT_FALSE(banks.wrote(G0));
    EXPECT_FALSE(banks.wrote(G1));
    EXPECT_EQ(banks.writes[1].kind, MockBanks::Write::Strengthen);
}

TEST(PartialUpdate, MispredictBothComponentsWrong_UpdatesAllBanks)
{
    MockBanks banks;
    banks.preds[BIM] = true;
    banks.preds[G0] = true;
    banks.preds[G1] = true;
    banks.preds[META] = false;
    const GskewLookup look = lookupFor(banks);
    gskewPartialUpdate(banks, look, /*taken=*/false);
    // Predictions agree (both taken) -> no chooser signal; all three
    // prediction banks retrain toward not-taken.
    EXPECT_FALSE(banks.wrote(META));
    int updates = 0;
    for (const auto &w : banks.writes) {
        EXPECT_EQ(w.kind, MockBanks::Write::Update);
        EXPECT_FALSE(w.value);
        ++updates;
    }
    EXPECT_EQ(updates, 3);
}

TEST(PartialUpdate, ChooserUpdateInsufficient_UpdatesAllBanks)
{
    // Meta update that does NOT flip the selection: banks must retrain.
    struct StickyBanks : MockBanks
    {
        void
        update(TableId t, size_t idx, bool v)
        {
            writes.push_back({Write::Update, t, idx, v});
            // meta stays strong: selection unchanged
        }
    } banks;
    banks.preds[BIM] = false;
    banks.preds[G0] = true;
    banks.preds[G1] = true;
    banks.preds[META] = true; // majority selected, strongly
    const GskewLookup look = lookupFor(banks);
    gskewPartialUpdate(banks, look, /*taken=*/false);
    // Meta updated first, then all three banks.
    EXPECT_TRUE(banks.wrote(META));
    EXPECT_TRUE(banks.wrote(BIM));
    EXPECT_TRUE(banks.wrote(G0));
    EXPECT_TRUE(banks.wrote(G1));
}

TEST(TotalUpdate, AlwaysWritesAllPredictionBanks)
{
    MockBanks banks;
    banks.preds[BIM] = banks.preds[G0] = banks.preds[G1] = true;
    banks.preds[META] = true;
    const GskewLookup look = lookupFor(banks);
    gskewTotalUpdate(banks, look, true);
    EXPECT_TRUE(banks.wrote(BIM));
    EXPECT_TRUE(banks.wrote(G0));
    EXPECT_TRUE(banks.wrote(G1));
    EXPECT_FALSE(banks.wrote(META)) << "agreeing components: no signal";
}

TEST(TotalUpdate, TrainsChooserWhenComponentsDiffer)
{
    MockBanks banks;
    banks.preds[BIM] = false;
    banks.preds[G0] = true;
    banks.preds[G1] = true;
    banks.preds[META] = false;
    const GskewLookup look = lookupFor(banks);
    gskewTotalUpdate(banks, look, true);
    EXPECT_TRUE(banks.wrote(META));
}

} // namespace
} // namespace ev8
