/**
 * @file
 * Unit tests for binary trace serialization (roundtrip + error paths).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/random.hh"
#include "trace/trace_io.hh"

namespace ev8
{
namespace
{

Trace
makeRandomTrace(uint64_t seed, size_t records)
{
    Rng rng(seed);
    Trace t("random-" + std::to_string(seed), 0x120000000ULL);
    uint64_t flow = t.startPc();
    for (size_t i = 0; i < records; ++i) {
        BranchRecord r;
        r.pc = flow + rng.below(16) * kInstrBytes;
        r.type = static_cast<BranchType>(rng.below(5));
        const bool forward = rng.chance(0.7);
        const uint64_t dist = (1 + rng.below(4000)) * kInstrBytes;
        r.target = forward ? r.pc + dist
                           : (r.pc > dist ? r.pc - dist : r.pc + dist);
        r.taken = r.isConditional() ? rng.chance(0.4) : true;
        t.append(r);
        flow = r.nextPc();
    }
    return t;
}

TEST(TraceIo, RoundtripEmpty)
{
    Trace t("empty", 0x1000);
    std::stringstream buf;
    writeTrace(buf, t);
    const Trace back = readTrace(buf);
    EXPECT_EQ(back.name(), "empty");
    EXPECT_EQ(back.startPc(), 0x1000u);
    EXPECT_TRUE(back.empty());
}

TEST(TraceIo, RoundtripSmall)
{
    Trace t("small", 0x2000);
    BranchRecord r;
    r.pc = 0x2010;
    r.target = 0x3000;
    r.type = BranchType::Conditional;
    r.taken = true;
    t.append(r);
    std::stringstream buf;
    writeTrace(buf, t);
    const Trace back = readTrace(buf);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back.records()[0], r);
}

class TraceIoRoundtrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(TraceIoRoundtrip, RandomTraces)
{
    const Trace t = makeRandomTrace(GetParam(), GetParam() * 37 + 10);
    std::stringstream buf;
    writeTrace(buf, t);
    const Trace back = readTrace(buf);
    ASSERT_EQ(back.size(), t.size());
    EXPECT_EQ(back.name(), t.name());
    EXPECT_EQ(back.startPc(), t.startPc());
    for (size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(back.records()[i], t.records()[i]) << "record " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TraceIoRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 50, 200));

TEST(TraceIo, FileRoundtrip)
{
    const Trace t = makeRandomTrace(99, 500);
    const std::string path = ::testing::TempDir() + "/ev8_trace_test.evt";
    writeTraceFile(path, t);
    const Trace back = readTraceFile(path);
    EXPECT_EQ(back.size(), t.size());
    EXPECT_EQ(back.records(), t.records());
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOPE this is not a trace";
    EXPECT_THROW(readTrace(buf), TraceIoError);
}

TEST(TraceIo, RejectsTruncatedHeader)
{
    std::stringstream buf;
    buf << "EV8T";
    EXPECT_THROW(readTrace(buf), TraceIoError);
}

TEST(TraceIo, RejectsTruncatedRecords)
{
    const Trace t = makeRandomTrace(7, 100);
    std::stringstream buf;
    writeTrace(buf, t);
    std::string data = buf.str();
    data.resize(data.size() / 2); // chop the record stream
    std::stringstream cut(data);
    EXPECT_THROW(readTrace(cut), TraceIoError);
}

TEST(TraceIo, RejectsUnsupportedVersion)
{
    const Trace t = makeRandomTrace(3, 5);
    std::stringstream buf;
    writeTrace(buf, t);
    std::string data = buf.str();
    data[4] = 99; // version field, little-endian low byte
    std::stringstream bad(data);
    EXPECT_THROW(readTrace(bad), TraceIoError);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path/trace.evt"),
                 TraceIoError);
}

} // namespace
} // namespace ev8
