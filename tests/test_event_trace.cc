/**
 * @file
 * Tests for the sampled misprediction event sink: deterministic 1-in-N
 * sampling, JSONL validity, hex encoding of 64-bit fields, classifier
 * labelling, and byte-identical output across repeated simulations.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/json.hh"
#include "predictors/factory.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace ev8
{
namespace
{

MispredictEvent
simpleEvent(uint64_t pc)
{
    MispredictEvent e;
    e.branchSeq = 17;
    e.pc = pc;
    e.blockAddr = pc & ~uint64_t{0x1f};
    e.ghist = 0xa5;
    e.indexHist = 0x5a;
    e.bank = 2;
    e.taken = true;
    e.predicted = false;
    return e;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

TEST(EventTraceSink, SamplesEveryNthStartingWithFirst)
{
    std::ostringstream out;
    EventTraceSink sink(out, 3);
    int written = 0;
    for (int i = 0; i < 7; ++i)
        written += sink.onMispredict(simpleEvent(0x1000 + i)) ? 1 : 0;
    EXPECT_EQ(written, 3); // mispredictions 0, 3, 6
    EXPECT_EQ(sink.seen(), 7u);
    EXPECT_EQ(sink.emitted(), 3u);
    EXPECT_EQ(lines(out.str()).size(), 3u);
}

TEST(EventTraceSink, SampleEveryZeroClampsToOne)
{
    std::ostringstream out;
    EventTraceSink sink(out, 0);
    EXPECT_EQ(sink.sampleEvery(), 1u);
    sink.onMispredict(simpleEvent(0x10));
    sink.onMispredict(simpleEvent(0x20));
    EXPECT_EQ(sink.emitted(), 2u);
}

TEST(EventTraceSink, RecordsAreValidJsonWithHexAddresses)
{
    std::ostringstream out;
    EventTraceSink sink(out, 1);
    sink.setBench("gcc");
    sink.onMispredict(simpleEvent(0xdeadbeef));

    const auto all = lines(out.str());
    ASSERT_EQ(all.size(), 1u);
    const JsonValue doc = parseJson(all[0]);
    EXPECT_EQ(doc.at("bench").text, "gcc");
    EXPECT_EQ(doc.at("pc").text, "0xdeadbeef");
    EXPECT_EQ(doc.at("block").text, "0xdeadbee0");
    EXPECT_EQ(doc.at("ghist").text, "0xa5");
    EXPECT_EQ(doc.at("index_hist").text, "0x5a");
    EXPECT_DOUBLE_EQ(doc.at("bank").number, 2.0);
    EXPECT_DOUBLE_EQ(doc.at("branch").number, 17.0);
    EXPECT_TRUE(doc.at("taken").boolean);
    EXPECT_FALSE(doc.at("pred").boolean);
    // No classifier attached, no votes: those keys must be absent.
    EXPECT_EQ(doc.find("class"), nullptr);
    EXPECT_EQ(doc.find("votes"), nullptr);
}

TEST(EventTraceSink, ClassifierAndVotesAppearWhenProvided)
{
    std::ostringstream out;
    EventTraceSink sink(out, 1);
    BranchClassMap classes{{0xdeadbeef, "loop"}};
    sink.setClassifier(&classes);

    MispredictEvent e = simpleEvent(0xdeadbeef);
    e.votesValid = true;
    e.voteBim = true;
    e.voteG1 = true;
    e.voteMajority = true;
    sink.onMispredict(e);
    sink.setClassifier(nullptr);
    sink.onMispredict(simpleEvent(0xdeadbeef));

    const auto all = lines(out.str());
    ASSERT_EQ(all.size(), 2u);
    const JsonValue first = parseJson(all[0]);
    EXPECT_EQ(first.at("class").text, "loop");
    EXPECT_TRUE(first.at("votes").at("bim").boolean);
    EXPECT_FALSE(first.at("votes").at("g0").boolean);
    EXPECT_TRUE(first.at("votes").at("g1").boolean);
    EXPECT_TRUE(first.at("votes").at("majority").boolean);
    EXPECT_EQ(parseJson(all[1]).find("class"), nullptr);
}

TEST(EventTraceSink, RepeatedSimulationsProduceByteIdenticalTraces)
{
    const Trace trace = generateTrace(findBenchmark("gcc").profile, 4000);

    auto capture = [&trace] {
        std::ostringstream out;
        EventTraceSink sink(out, 16);
        sink.setBench("gcc");
        auto predictor = make2BcGskew512K();
        SimConfig config = SimConfig::ghist();
        config.events = &sink;
        simulateTrace(trace, *predictor, config);
        EXPECT_GT(sink.emitted(), 0u);
        return out.str();
    };

    const std::string first = capture();
    const std::string second = capture();
    EXPECT_EQ(first, second); // no RNG in the sampler
    // Every line is a standalone JSON object carrying table votes
    // (the 2Bc-gskew family exposes them).
    for (const auto &line : lines(first)) {
        const JsonValue doc = parseJson(line);
        EXPECT_NE(doc.find("votes"), nullptr) << line;
    }
}

TEST(BufferedEventSink, CapturesEveryEventUnsampled)
{
    BufferedEventSink buffer;
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(buffer.onMispredict(simpleEvent(0x2000 + 4 * i)));
    ASSERT_EQ(buffer.events().size(), 5u);
    EXPECT_EQ(buffer.events()[0].pc, 0x2000u);
    EXPECT_EQ(buffer.events()[4].pc, 0x2010u);

    const auto taken = buffer.take();
    EXPECT_EQ(taken.size(), 5u);
    EXPECT_TRUE(buffer.events().empty()) << "take() must drain";
}

TEST(BufferedEventSink, ReplayMatchesDirectFeedByteForByte)
{
    // The engine's merge path: a worker buffers *all* mispredictions,
    // then replays them through the shared sampling sink. The output
    // must equal feeding the sink directly (same 1-in-N decisions,
    // same bytes) -- this is what makes parallel JSONL deterministic.
    std::vector<MispredictEvent> events;
    for (int i = 0; i < 23; ++i) {
        MispredictEvent e = simpleEvent(0x3000 + 4 * i);
        e.branchSeq = i;
        events.push_back(e);
    }

    std::ostringstream direct_out;
    EventTraceSink direct(direct_out, 5);
    direct.setBench("go");
    for (const auto &e : events)
        direct.onMispredict(e);

    std::ostringstream replay_out;
    EventTraceSink replayed(replay_out, 5);
    BufferedEventSink buffer;
    for (const auto &e : events)
        buffer.onMispredict(e);
    replayed.setBench("go");
    buffer.replayInto(replayed);

    EXPECT_EQ(replay_out.str(), direct_out.str());
    EXPECT_EQ(replayed.seen(), direct.seen());
    EXPECT_EQ(replayed.emitted(), direct.emitted());
}

TEST(BufferedEventSink, WorksAsSimulationSink)
{
    const Trace trace = generateTrace(findBenchmark("gcc").profile, 4000);
    auto predictor = make2BcGskew512K();
    SimConfig config = SimConfig::ghist();
    BufferedEventSink buffer;
    config.events = &buffer;
    const SimResult result = simulateTrace(trace, *predictor, config);

    // Unsampled: the buffer holds exactly every misprediction.
    EXPECT_EQ(buffer.events().size(),
              result.stats.mispredictions());
    for (const auto &e : buffer.events())
        EXPECT_NE(e.taken, e.predicted);
}

} // namespace
} // namespace ev8
