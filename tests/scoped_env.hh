/**
 * @file
 * Scoped environment-variable override for tests that exercise the
 * EV8_* runtime knobs (EV8_FUSED, EV8_FUSED_LANES, EV8_SIMD, ...).
 */

#ifndef EV8_TESTS_SCOPED_ENV_HH
#define EV8_TESTS_SCOPED_ENV_HH

#include <cstdlib>
#include <string>

namespace ev8
{

/** Sets an environment variable for one scope, restoring on exit.
 *  A nullptr value unsets the variable for the scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        else
            hadValue_ = false;
        if (value)
            ::setenv(name, value, /*overwrite=*/1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadValue_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = true;
};

} // namespace ev8

#endif // EV8_TESTS_SCOPED_ENV_HH
