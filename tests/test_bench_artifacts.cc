/**
 * @file
 * End-to-end schema test for the bench artifact pipeline: spawns the
 * real bench_fig5_schemes binary with --json/--csv/--events at a small
 * branch budget and validates the emitted ev8-bench-v1 document, the
 * CSV header, and the JSONL event trace. EV8_BENCH_DIR points at the
 * build tree's bench/ directory (set by tests/CMakeLists.txt); the test
 * skips when the binary is missing.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "artifact_test_util.hh"
#include "obs/json.hh"

namespace ev8
{
namespace
{

using test_util::maskTimingDependent;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(BenchArtifacts, Fig5EmitsValidSchemaWithCountersAndTiming)
{
#ifndef EV8_BENCH_DIR
    GTEST_SKIP() << "EV8_BENCH_DIR not configured";
#else
    const std::string binary = std::string(EV8_BENCH_DIR)
                               + "/bench_fig5_schemes";
    if (!std::ifstream(binary).good())
        GTEST_SKIP() << "bench binary not built: " << binary;

    const std::string dir = ::testing::TempDir();
    const std::string json_path = dir + "ev8_fig5_artifact.json";
    const std::string csv_path = dir + "ev8_fig5_artifact.csv";
    const std::string events_path = dir + "ev8_fig5_artifact.jsonl";
    const std::string cmd = binary + " --branches=2000 --sample=32"
                            + " --json=" + json_path
                            + " --csv=" + csv_path
                            + " --events=" + events_path
                            + " > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    const JsonValue doc = parseJson(slurp(json_path));
    EXPECT_EQ(doc.at("schema").text, "ev8-bench-v1");
    EXPECT_EQ(doc.at("experiment").at("id").text, "Fig. 5");
    EXPECT_DOUBLE_EQ(
        doc.at("workload").at("branches_per_benchmark").number, 2000.0);
    EXPECT_FALSE(doc.at("workload").at("benchmarks").items.empty());

    // Every scheme row reports a finite suite average and its storage.
    const auto &rows = doc.at("rows").items;
    ASSERT_GE(rows.size(), 4u);
    for (const auto &row : rows) {
        EXPECT_FALSE(row.at("label").text.empty());
        EXPECT_GT(row.at("storage_bits").number, 0.0);
        const JsonValue &amean = row.at("values").at("amean");
        ASSERT_TRUE(amean.isNumber());
        EXPECT_TRUE(std::isfinite(amean.number));
        EXPECT_GT(amean.number, 0.0);
    }

    // The registry made it into the artifact: simulator tallies plus
    // the per-bank 2Bc-gskew conflict counters.
    const JsonValue &counters = doc.at("metrics").at("counters");
    EXPECT_GT(counters.at("sim.fetch_blocks").number, 0.0);
    EXPECT_GT(counters.at("sim.cond_branches").number, 0.0);
    bool saw_bank_conflicts[4] = {};
    for (const auto &[name, value] : counters.members) {
        for (int k = 0; k < 4; ++k) {
            const std::string tail = ".bank" + std::to_string(k)
                                     + ".conflicts";
            if (name.size() > tail.size()
                && name.compare(name.size() - tail.size(), tail.size(),
                                tail) == 0
                && name.rfind("pred.", 0) == 0) {
                saw_bank_conflicts[k] = true;
                (void)value;
            }
        }
    }
    for (int k = 0; k < 4; ++k)
        EXPECT_TRUE(saw_bank_conflicts[k]) << "missing bank" << k;

    // Timing was profiled (artifacts requested => profileTiming on).
    const JsonValue &lookup = doc.at("timing").at("lookup");
    EXPECT_GT(lookup.at("calls").number, 0.0);
    EXPECT_GT(lookup.at("ns_per_call").number, 0.0);
    EXPECT_GT(doc.at("timing").at("update").at("calls").number, 0.0);

    // CSV: golden header and one line per JSON row.
    std::istringstream csv(slurp(csv_path));
    std::string header;
    ASSERT_TRUE(std::getline(csv, header));
    EXPECT_EQ(header.rfind("label,storage_bits,", 0), 0u) << header;
    size_t csv_rows = 0;
    for (std::string line; std::getline(csv, line);)
        csv_rows += !line.empty();
    EXPECT_EQ(csv_rows, rows.size());

    // JSONL events: non-empty, one parseable object per line, labelled
    // with a benchmark name.
    std::istringstream events(slurp(events_path));
    size_t event_lines = 0;
    for (std::string line; std::getline(events, line);) {
        const JsonValue event = parseJson(line);
        EXPECT_FALSE(event.at("bench").text.empty());
        EXPECT_EQ(event.at("pc").text.rfind("0x", 0), 0u);
        ++event_lines;
    }
    EXPECT_GT(event_lines, 0u);
#endif
}

TEST(BenchArtifacts, ParallelRunsAreByteIdenticalToSerial)
{
#ifndef EV8_BENCH_DIR
    GTEST_SKIP() << "EV8_BENCH_DIR not configured";
#else
    const std::string binary = std::string(EV8_BENCH_DIR)
                               + "/bench_fig6_history_length";
    if (!std::ifstream(binary).good())
        GTEST_SKIP() << "bench binary not built: " << binary;

    // --no-timing keeps wall-clock noise out of the JSON; everything
    // else the binary emits must not depend on the worker count.
    const std::string dir = ::testing::TempDir();
    auto artifacts = [&](const std::string &tag, unsigned jobs) {
        const std::string base = dir + "ev8_fig6_det_" + tag;
        const std::string cmd =
            binary + " --branches=2000 --sample=16 --no-timing"
            + " --jobs=" + std::to_string(jobs)
            + " --json=" + base + ".json"
            + " --csv=" + base + ".csv"
            + " --events=" + base + ".jsonl"
            + " > /dev/null 2>&1";
        EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
        return std::array<std::string, 3>{slurp(base + ".json"),
                                          slurp(base + ".csv"),
                                          slurp(base + ".jsonl")};
    };

    const auto serial = artifacts("j1", 1);
    const auto parallel = artifacts("j8", 8);
    ASSERT_FALSE(serial[0].empty());
    ASSERT_FALSE(serial[2].empty()) << "no events sampled";
    // The telemetry block is wall-clock data, masked by design; every
    // other JSON byte must match.
    EXPECT_EQ(maskTimingDependent(serial[0]),
              maskTimingDependent(parallel[0]))
        << "JSON differs across --jobs";
    EXPECT_EQ(serial[1], parallel[1]) << "CSV differs across --jobs";
    EXPECT_EQ(serial[2], parallel[2]) << "JSONL differs across --jobs";
#endif
}

TEST(BenchArtifacts, GenericKernelIsByteIdenticalToDevirtualized)
{
#ifndef EV8_BENCH_DIR
    GTEST_SKIP() << "EV8_BENCH_DIR not configured";
#else
    const std::string binary = std::string(EV8_BENCH_DIR)
                               + "/bench_fig6_history_length";
    if (!std::ifstream(binary).good())
        GTEST_SKIP() << "bench binary not built: " << binary;

    // The devirtualized kernel specializations must be a pure speed
    // change: forcing the virtual-dispatch instantiation through
    // EV8_GENERIC_KERNEL has to reproduce every artifact byte.
    const std::string dir = ::testing::TempDir();
    auto artifacts = [&](const std::string &tag, const char *env) {
        const std::string base = dir + "ev8_fig6_kern_" + tag;
        const std::string cmd =
            std::string(env)
            + binary + " --branches=2000 --sample=16 --no-timing"
            + " --jobs=1"
            + " --json=" + base + ".json"
            + " --csv=" + base + ".csv"
            + " --events=" + base + ".jsonl"
            + " > /dev/null 2>&1";
        EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
        return std::array<std::string, 3>{slurp(base + ".json"),
                                          slurp(base + ".csv"),
                                          slurp(base + ".jsonl")};
    };

    const auto fast = artifacts("devirt", "EV8_GENERIC_KERNEL=0 ");
    const auto generic = artifacts("generic", "EV8_GENERIC_KERNEL=1 ");
    ASSERT_FALSE(fast[0].empty());
    ASSERT_FALSE(fast[2].empty()) << "no events sampled";
    EXPECT_EQ(maskTimingDependent(fast[0]),
              maskTimingDependent(generic[0]))
        << "JSON differs across kernels";
    EXPECT_EQ(fast[1], generic[1]) << "CSV differs across kernels";
    EXPECT_EQ(fast[2], generic[2]) << "JSONL differs across kernels";
#endif
}

TEST(BenchArtifacts, FusedRunsAreByteIdenticalToPerCell)
{
#ifndef EV8_BENCH_DIR
    GTEST_SKIP() << "EV8_BENCH_DIR not configured";
#else
    const std::string binary = std::string(EV8_BENCH_DIR)
                               + "/bench_fig6_history_length";
    if (!std::ifstream(binary).good())
        GTEST_SKIP() << "bench binary not built: " << binary;

    // Grid fusion is a pure speed change: EV8_FUSED=0 (one walk per
    // cell) and EV8_FUSED=1 (one walk per fused lane group) must emit
    // identical artifact bytes at any worker count.
    const std::string dir = ::testing::TempDir();
    auto artifacts = [&](const std::string &tag, const char *env,
                         unsigned jobs) {
        const std::string base = dir + "ev8_fig6_fused_" + tag;
        const std::string cmd =
            std::string(env)
            + binary + " --branches=2000 --sample=16 --no-timing"
            + " --jobs=" + std::to_string(jobs)
            + " --json=" + base + ".json"
            + " --csv=" + base + ".csv"
            + " --events=" + base + ".jsonl"
            + " > /dev/null 2>&1";
        EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
        return std::array<std::string, 3>{slurp(base + ".json"),
                                          slurp(base + ".csv"),
                                          slurp(base + ".jsonl")};
    };

    auto percell = artifacts("percell_j1", "EV8_FUSED=0 ", 1);
    auto fused_j1 = artifacts("fused_j1", "EV8_FUSED=1 ", 1);
    auto fused_j4 = artifacts("fused_j4", "EV8_FUSED=1 ", 4);
    auto narrow =
        artifacts("fused_l2", "EV8_FUSED=1 EV8_FUSED_LANES=2 ", 1);
    ASSERT_FALSE(percell[0].empty());
    ASSERT_FALSE(percell[2].empty()) << "no events sampled";
    for (auto *run : {&percell, &fused_j1, &fused_j4, &narrow})
        (*run)[0] = maskTimingDependent((*run)[0]);
    for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(percell[k], fused_j1[k])
            << "fused --jobs=1 changed artifact " << k;
        EXPECT_EQ(percell[k], fused_j4[k])
            << "fused --jobs=4 changed artifact " << k;
        EXPECT_EQ(percell[k], narrow[k])
            << "lane cap 2 changed artifact " << k;
    }
#endif
}

TEST(BenchArtifacts, BadJobsValueIsARejectedHardError)
{
#ifndef EV8_BENCH_DIR
    GTEST_SKIP() << "EV8_BENCH_DIR not configured";
#else
    const std::string binary = std::string(EV8_BENCH_DIR)
                               + "/bench_fig6_history_length";
    if (!std::ifstream(binary).good())
        GTEST_SKIP() << "bench binary not built: " << binary;

    for (const char *bad : {"0", "-1", "4x", "garbage", "4097"}) {
        const std::string cmd = binary + " --jobs=" + bad
                                + " > /dev/null 2>&1";
        const int status = std::system(cmd.c_str());
        ASSERT_TRUE(WIFEXITED(status)) << cmd;
        EXPECT_EQ(WEXITSTATUS(status), 2) << cmd;
    }
#endif
}

TEST(BenchArtifacts, WarmStreamCacheIsByteIdenticalToFreshDecode)
{
#ifndef EV8_BENCH_DIR
    GTEST_SKIP() << "EV8_BENCH_DIR not configured";
#else
    const std::string binary = std::string(EV8_BENCH_DIR)
                               + "/bench_fig6_history_length";
    if (!std::ifstream(binary).good())
        GTEST_SKIP() << "bench binary not built: " << binary;

    const std::string dir = ::testing::TempDir();
    const std::string cache_dir = dir + "ev8_stream_cache_e2e";
    std::system(("rm -rf " + cache_dir).c_str());

    auto artifacts = [&](const std::string &tag, bool cached) {
        const std::string base = dir + "ev8_fig6_cache_" + tag;
        const std::string env = cached
            ? "EV8_TRACE_CACHE_DIR=" + cache_dir + " "
            : std::string();
        const std::string cmd =
            env + binary + " --branches=2000 --sample=16 --no-timing"
            + " --jobs=1"
            + " --json=" + base + ".json"
            + " --csv=" + base + ".csv"
            + " --events=" + base + ".jsonl"
            + " > /dev/null 2>&1";
        EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
        return std::array<std::string, 3>{slurp(base + ".json"),
                                          slurp(base + ".csv"),
                                          slurp(base + ".jsonl")};
    };

    // Fresh decode, cold cache (fills it), warm cache (loads streams).
    auto fresh = artifacts("fresh", false);
    auto cold = artifacts("cold", true);
    auto warm = artifacts("warm", true);
    std::system(("rm -rf " + cache_dir).c_str());

    ASSERT_FALSE(fresh[0].empty());
    for (auto *run : {&fresh, &cold, &warm})
        (*run)[0] = maskTimingDependent((*run)[0]);
    for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(fresh[k], cold[k]) << "cold cache changed artifact " << k;
        EXPECT_EQ(fresh[k], warm[k]) << "warm cache changed artifact " << k;
    }
#endif
}

} // namespace
} // namespace ev8
