/**
 * @file
 * Tests for the baseline predictors: a parameterized contract suite
 * every scheme must pass, plus scheme-specific unit tests.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/egskew.hh"
#include "predictors/factory.hh"
#include "predictors/gas.hh"
#include "predictors/gshare.hh"
#include "predictors/local.hh"
#include "predictors/perceptron.hh"
#include "predictors/yags.hh"

namespace ev8
{
namespace
{

BranchSnapshot
snap(uint64_t pc, uint64_t hist = 0)
{
    BranchSnapshot s;
    s.pc = pc;
    s.blockAddr = pc & ~uint64_t{31};
    s.hist.ghist = hist;
    s.hist.indexHist = hist;
    return s;
}

/** Drives one (predict, update) round and returns the prediction. */
bool
step(ConditionalBranchPredictor &p, const BranchSnapshot &s, bool taken)
{
    const bool pred = p.predict(s);
    p.update(s, taken, pred);
    return pred;
}

// ---------------------------------------------------------------------
// Contract tests run against every factory spec.
// ---------------------------------------------------------------------

class PredictorContract : public ::testing::TestWithParam<const char *>
{
  protected:
    PredictorPtr make() const { return makePredictor(GetParam()); }
};

TEST_P(PredictorContract, LearnsAlwaysTaken)
{
    // The evolving history means history-indexed schemes touch a fresh
    // (cold) entry on each of the first ~64 lookups, so only the
    // steady-state window counts.
    auto p = make();
    HistoryRegister ghist;
    int wrong_late = 0;
    for (int i = 0; i < 300; ++i) {
        auto s = snap(0x1000, ghist.raw());
        const bool pred = step(*p, s, true);
        if (i >= 200)
            wrong_late += !pred;
        ghist.push(true);
    }
    EXPECT_LT(wrong_late, 5) << p->name();
}

TEST_P(PredictorContract, LearnsAlwaysNotTaken)
{
    auto p = make();
    HistoryRegister ghist;
    int wrong_late = 0;
    for (int i = 0; i < 300; ++i) {
        auto s = snap(0x2040, ghist.raw());
        const bool pred = step(*p, s, false);
        if (i >= 200)
            wrong_late += pred;
        ghist.push(false);
    }
    EXPECT_LT(wrong_late, 5) << p->name();
}

TEST_P(PredictorContract, DeterministicAcrossReset)
{
    auto p = make();
    Rng rng(7);
    std::vector<bool> first;
    for (int round = 0; round < 2; ++round) {
        p->reset();
        Rng seq(42);
        HistoryRegister ghist;
        for (int i = 0; i < 500; ++i) {
            const uint64_t pc = 0x1000 + (seq.below(64) << 2);
            const bool taken = seq.chance(0.5);
            auto s = snap(pc, ghist.raw());
            const bool pred = step(*p, s, taken);
            if (round == 0)
                first.push_back(pred);
            else
                ASSERT_EQ(pred, first[size_t(i)]) << p->name() << " @" << i;
            ghist.push(taken);
        }
    }
}

TEST_P(PredictorContract, ReportsStorageAndName)
{
    auto p = make();
    EXPECT_GT(p->storageBits(), 0u);
    EXPECT_FALSE(p->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PredictorContract,
    ::testing::Values("bimodal:12", "gshare:12:12", "gshare:12:20",
                      "gas:12:6", "agree:12:10", "egskew:12:14",
                      "bimode:12:10:12", "yags:12:10:12",
                      "2bcgskew:12:0:9:11:14", "perceptron:10:16",
                      "local:10:8:10", "tournament", "ev8size",
                      "fig5-gshare2M", "fig5-yags288",
                      "fig5-2bcgskew256"));

// ---------------------------------------------------------------------
// History-driven learnability: any global-history scheme must learn an
// alternating branch that a bimodal cannot.
// ---------------------------------------------------------------------

class GlobalSchemes : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GlobalSchemes, LearnsAlternation)
{
    auto p = makePredictor(GetParam());
    HistoryRegister ghist;
    int wrong_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool taken = (i % 2) == 0;
        auto s = snap(0x1000, ghist.raw());
        const bool pred = step(*p, s, taken);
        if (i >= 300)
            wrong_late += pred != taken;
        ghist.push(taken);
    }
    EXPECT_LT(wrong_late, 15) << p->name();
}

TEST_P(GlobalSchemes, LearnsHistoryParityFunction)
{
    auto p = makePredictor(GetParam());
    Rng rng(5);
    HistoryRegister ghist;
    // Warm-up history.
    for (int i = 0; i < 64; ++i)
        ghist.push(rng.chance(0.5));
    int wrong_late = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        // A "driver" branch with random outcome followed by a branch
        // whose outcome copies the driver: classic correlation.
        const bool driver = rng.chance(0.5);
        auto d = snap(0x2000, ghist.raw());
        step(*p, d, driver);
        ghist.push(driver);

        auto s = snap(0x3000, ghist.raw());
        const bool pred = step(*p, s, driver);
        if (i > n / 2)
            wrong_late += pred != driver;
        ghist.push(driver);
    }
    EXPECT_LT(wrong_late / double(n / 2), 0.12) << p->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllGlobal, GlobalSchemes,
    ::testing::Values("gshare:12:12", "gas:12:8", "agree:12:10",
                      "egskew:12:12", "bimode:12:10:12", "yags:12:10:12",
                      "2bcgskew:12:0:9:11:14", "perceptron:10:16",
                      "tournament"));

// ---------------------------------------------------------------------
// Scheme-specific behaviour.
// ---------------------------------------------------------------------

TEST(Bimodal, StorageIsTwoBitsPerEntry)
{
    EXPECT_EQ(BimodalPredictor(14).storageBits(), (1u << 14) * 2);
}

TEST(Bimodal, DistinctBranchesIndependent)
{
    BimodalPredictor p(10);
    for (int i = 0; i < 10; ++i) {
        step(p, snap(0x1000), true);
        step(p, snap(0x1004), false);
    }
    EXPECT_TRUE(p.predict(snap(0x1000)));
    EXPECT_FALSE(p.predict(snap(0x1004)));
}

TEST(Gshare, HistoryDisambiguatesSamePc)
{
    GsharePredictor p(12, 8);
    // Same branch, two history contexts, opposite outcomes.
    for (int i = 0; i < 20; ++i) {
        step(p, snap(0x1000, 0x0f), true);
        step(p, snap(0x1000, 0xf0), false);
    }
    EXPECT_TRUE(p.predict(snap(0x1000, 0x0f)));
    EXPECT_FALSE(p.predict(snap(0x1000, 0xf0)));
}

TEST(Gshare, StorageMatchesFig5Configuration)
{
    // The paper's 1M-entry gshare is 2 Mbits.
    EXPECT_EQ(makeGshare2M()->storageBits(), 2u * 1024 * 1024);
}

TEST(Gas, ConcatenatesPcAndHistory)
{
    GasPredictor p(12, 4);
    for (int i = 0; i < 20; ++i) {
        step(p, snap(0x1000, 0b0011), true);
        step(p, snap(0x1000, 0b1100), false);
    }
    EXPECT_TRUE(p.predict(snap(0x1000, 0b0011)));
    EXPECT_FALSE(p.predict(snap(0x1000, 0b1100)));
}

TEST(Agree, BiasSetOnFirstExecution)
{
    AgreePredictor p(10, 8, 10);
    // First execution taken: bias becomes taken; the agree counter
    // (initialized weakly-disagree = weakly not-taken counter) adapts.
    auto s = snap(0x1000, 0);
    for (int i = 0; i < 10; ++i)
        step(p, s, true);
    EXPECT_TRUE(p.predict(s));
}

TEST(Agree, ConstructiveAliasing)
{
    // Two branches sharing an agree entry but with opposite biases both
    // predict correctly -- the scheme's raison d'etre.
    AgreePredictor p(4, 0, 10); // tiny agree table, no history
    auto a = snap(0x1000), b = snap(0x1400);
    // Same agree index (pc bits fold onto 4 bits; choose aliasing pcs).
    for (int i = 0; i < 20; ++i) {
        step(p, a, true);  // taken-biased
        step(p, b, false); // not-taken-biased
    }
    EXPECT_TRUE(p.predict(a));
    EXPECT_FALSE(p.predict(b));
}

TEST(Egskew, MajorityVoteOverridesOneBank)
{
    EgskewPredictor p(10, 10);
    HistoryRegister h;
    // Train strongly on one context.
    for (int i = 0; i < 50; ++i)
        step(p, snap(0x1000, 0xaa), true);
    EXPECT_TRUE(p.predict(snap(0x1000, 0xaa)));
}

TEST(Egskew, PartialVsTotalUpdateDiffer)
{
    EgskewPredictor partial(8, 8, true);
    EgskewPredictor total(8, 8, false);
    Rng rng(9);
    HistoryRegister gh;
    int diffs = 0;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t pc = 0x1000 + (rng.below(256) << 2);
        const bool taken = rng.chance(0.3);
        auto s = snap(pc, gh.raw());
        const bool a = step(partial, s, taken);
        const bool b = step(total, s, taken);
        diffs += a != b;
        gh.push(taken);
    }
    EXPECT_GT(diffs, 0) << "policies should be observably different";
}

TEST(Bimode, SegregatesBiasedSubstreams)
{
    // Direction tables smaller than the choice table: the two branches
    // alias in the direction tables (same low 10 index bits) but have
    // distinct choice entries -- the bias segregation must keep them
    // from destroying each other.
    BimodePredictor p(10, 12, 8);
    const auto a = snap(0x1000, 0x55);
    const auto b = snap(0x1000 + (1 << 12), 0x55);
    for (int i = 0; i < 50; ++i) {
        step(p, a, true);
        step(p, b, false);
    }
    EXPECT_TRUE(p.predict(a));
    EXPECT_FALSE(p.predict(b));
}

TEST(Yags, ExceptionCacheOverridesBias)
{
    YagsPredictor p(10, 8, 6, 6);
    // Branch biased taken, except in one history context.
    for (int i = 0; i < 30; ++i) {
        step(p, snap(0x1000, 0x00), true);
        step(p, snap(0x1000, 0xff), false); // the exception
    }
    EXPECT_TRUE(p.predict(snap(0x1000, 0x00)));
    EXPECT_FALSE(p.predict(snap(0x1000, 0xff)));
}

TEST(Yags, StorageAccountsTags)
{
    // choice 2^c * 2 bits + 2 caches * 2^k * (2 + tag) bits.
    YagsPredictor p(14, 14, 23, 6);
    EXPECT_EQ(p.storageBits(),
              (1u << 14) * 2 + 2u * (1u << 14) * (2 + 6));
    // That is the paper's 288 Kbit configuration.
    EXPECT_EQ(p.storageBits(), 288u * 1024);
}

TEST(Perceptron, LearnsLinearlySeparableFunction)
{
    PerceptronPredictor p(8, 12);
    Rng rng(11);
    uint64_t hist = 0;
    int wrong_late = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        // Outcome = history bit 3 (trivially linearly separable).
        hist = (hist << 1) | (rng.chance(0.5) ? 1 : 0);
        const bool taken = ((hist >> 3) & 1) != 0;
        auto s = snap(0x1000, hist);
        const bool pred = step(p, s, taken);
        if (i > n / 2)
            wrong_late += pred != taken;
    }
    EXPECT_LT(wrong_late / double(n / 2), 0.05);
}

TEST(Perceptron, ThresholdFollowsJimenezFormula)
{
    PerceptronPredictor p(8, 20);
    EXPECT_EQ(p.threshold(), int(1.93 * 20 + 14));
}

TEST(Local, LearnsShortPeriodicPatternWithoutGlobalHistory)
{
    LocalPredictor p(10, 10, 12);
    // Period-3 pattern, invisible to a bimodal, trivial for local
    // history.
    const bool pattern[3] = {true, true, false};
    int wrong_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool taken = pattern[i % 3];
        auto s = snap(0x1000, 0); // no global history provided
        const bool pred = step(p, s, taken);
        if (i >= 300)
            wrong_late += pred != taken;
    }
    EXPECT_LT(wrong_late, 10);
}

TEST(Tournament, PicksTheBetterComponent)
{
    TournamentPredictor p;
    // Periodic local pattern: the local component wins; the chooser
    // should learn to use it.
    const bool pattern[4] = {true, true, true, false};
    int wrong_late = 0;
    HistoryRegister gh;
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const bool taken = pattern[i % 4];
        auto s = snap(0x1000, gh.raw());
        const bool pred = step(p, s, taken);
        if (i >= 1000)
            wrong_late += pred != taken;
        gh.push(taken);
    }
    EXPECT_LT(wrong_late / 1000.0, 0.05);
}

TEST(Factory, RejectsUnknownAndMalformedSpecs)
{
    EXPECT_THROW(makePredictor(""), std::invalid_argument);
    EXPECT_THROW(makePredictor("nosuch:1:2"), std::invalid_argument);
    EXPECT_THROW(makePredictor("gshare"), std::invalid_argument);
    EXPECT_THROW(makePredictor("gshare:12"), std::invalid_argument);
}

TEST(Factory, KnownSpecListNonEmpty)
{
    EXPECT_GE(knownPredictorSpecs().size(), 10u);
}

TEST(Factory, Fig5ConfigurationsMatchPaperBudgets)
{
    EXPECT_EQ(make2BcGskew256K()->storageBits(), 256u * 1024);
    EXPECT_EQ(make2BcGskew512K()->storageBits(), 512u * 1024);
    EXPECT_EQ(makeGshare2M()->storageBits(), 2u * 1024 * 1024);
    EXPECT_EQ(makeYags288K()->storageBits(), 288u * 1024);
    EXPECT_EQ(makeYags576K()->storageBits(), 576u * 1024);
    EXPECT_EQ(make2BcGskewEv8Size()->storageBits(), 352u * 1024);
    EXPECT_EQ(make2BcGskew4M()->storageBits(), 8u * 1024 * 1024);
    // Bi-mode: 2x128K direction + 16K choice = 544 Kbits.
    EXPECT_EQ(makeBimode544K()->storageBits(), 544u * 1024);
}

} // namespace
} // namespace ev8
