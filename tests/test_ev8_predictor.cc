/**
 * @file
 * Tests for the hardware-constrained EV8 predictor: equivalence of the
 * physical model against a logical mirror, block-wide prediction, and
 * behavioural checks.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/ev8_predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{
namespace
{

BranchSnapshot
randomSnapshot(Rng &rng, uint64_t hist_mask = mask(21))
{
    BranchSnapshot s;
    s.blockAddr = (0x120000000ULL + (rng.below(1 << 18) << 2))
        & ~uint64_t{0}; // arbitrary text addresses
    s.pc = s.blockAddr + rng.below(8) * 4;
    s.hist.indexHist = rng.next() & hist_mask;
    s.hist.pathZ = 0x120000000ULL + (rng.below(1 << 18) << 2);
    s.bank = uint8_t(rng.below(4));
    return s;
}

TEST(Ev8Predictor, StorageIs352Kbits)
{
    Ev8Predictor p;
    EXPECT_EQ(p.storageBits(), 352u * 1024);
}

/**
 * Logical mirror: the same §4.2 policy over SplitCounterArrays indexed
 * with the same flat EV8 indices. If the physical banked model and this
 * logical model ever disagree on a prediction, the physical mapping is
 * wrong.
 */
class LogicalMirror
{
  public:
    LogicalMirror()
    {
        for (unsigned t = 0; t < kNumTables; ++t) {
            const auto id = static_cast<TableId>(t);
            banks[t] = SplitCounterArray(
                size_t{1} << ev8IndexBits(id),
                (size_t{1} << ev8IndexBits(id))
                    / (ev8PredColumns(id) / ev8HystColumns(id)));
        }
    }

    struct Facade
    {
        std::array<SplitCounterArray, kNumTables> &arrays;
        bool taken(TableId t, size_t i) const { return arrays[t].taken(i); }
        void strengthen(TableId t, size_t i) { arrays[t].strengthen(i); }
        void update(TableId t, size_t i, bool v) { arrays[t].update(i, v); }
    };

    bool
    step(const Ev8Predictor &ref, const BranchSnapshot &snap, bool taken)
    {
        GskewLookup look;
        for (unsigned t = 0; t < kNumTables; ++t)
            look.idx[t] = ref.tableIndex(static_cast<TableId>(t), snap);
        Facade facade{banks};
        computeGskewVotes(facade, look);
        gskewPartialUpdate(facade, look, taken);
        return look.overall;
    }

  private:
    std::array<SplitCounterArray, kNumTables> banks;
};

TEST(Ev8Predictor, PhysicalModelMatchesLogicalMirror)
{
    Ev8Predictor physical;
    LogicalMirror logical;
    Rng rng(42);
    for (int i = 0; i < 30000; ++i) {
        const BranchSnapshot s = randomSnapshot(rng);
        const bool taken = rng.chance(0.4);
        const bool phys_pred = physical.predict(s);
        physical.update(s, taken, phys_pred);
        const bool logical_pred = logical.step(physical, s, taken);
        ASSERT_EQ(phys_pred, logical_pred) << "diverged at branch " << i;
    }
}

TEST(Ev8Predictor, HysteresisSharingIsVisibleInMapping)
{
    // Two G0 prediction indices differing only in the index MSB (the
    // top column bit) share a hysteresis entry: verify through the
    // logical-mirror geometry used above.
    LogicalMirror mirror;
    SplitCounterArray g0(size_t{1} << 16, size_t{1} << 15);
    EXPECT_EQ(g0.hystIndex(0x0abc), g0.hystIndex(0x8abc));
}

TEST(Ev8Predictor, PredictBlockAgreesWithPerBranchPredictions)
{
    Ev8Predictor p;
    Rng rng(7);
    // Train a little first so predictions are non-trivial.
    for (int i = 0; i < 20000; ++i) {
        const BranchSnapshot s = randomSnapshot(rng);
        p.update(s, rng.chance(0.5), p.predict(s));
    }
    for (int i = 0; i < 2000; ++i) {
        const BranchSnapshot base = randomSnapshot(rng);
        Ev8IndexInput in;
        in.blockAddr = base.blockAddr;
        in.hist = base.hist.indexHist;
        in.zAddr = base.hist.pathZ;
        in.bank = base.bank;
        const Ev8BlockPrediction block = p.predictBlock(in);
        for (unsigned slot = 0; slot < 8; ++slot) {
            BranchSnapshot s = base;
            s.pc = base.blockAddr + slot * 4;
            const unsigned offset = unsigned(s.pc >> 2) & 7;
            ASSERT_EQ(block.takenAtOffset[offset], p.predict(s))
                << "slot " << slot;
        }
    }
}

TEST(Ev8Predictor, LearnsBiasedBranches)
{
    Ev8Predictor p;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        BranchSnapshot s;
        s.blockAddr = 0x120000040ULL;
        s.pc = s.blockAddr + 8;
        s.hist.indexHist = 0x155555; // steady context
        s.bank = 1;
        const bool pred = p.predict(s);
        p.update(s, true, pred);
        wrong += !pred;
    }
    EXPECT_LT(wrong, 5);
}

TEST(Ev8Predictor, LearnsHistoryCorrelation)
{
    Ev8Predictor p;
    Rng rng(11);
    uint64_t lghist = 0;
    int wrong_late = 0;
    const int n = 6000;
    for (int i = 0; i < n; ++i) {
        const bool context = rng.chance(0.5);
        lghist = ((lghist << 1) | (context ? 1 : 0)) & mask(21);
        BranchSnapshot s;
        s.blockAddr = 0x120000100ULL;
        s.pc = s.blockAddr + 4;
        s.hist.indexHist = lghist;
        s.bank = unsigned(i) & 3;
        const bool pred = p.predict(s);
        p.update(s, context, pred);
        if (i > n / 2)
            wrong_late += pred != context;
    }
    EXPECT_LT(wrong_late / double(n / 2), 0.08);
}

TEST(Ev8Predictor, WordlineModeChangesBehaviour)
{
    Ev8Config addr_cfg;
    addr_cfg.wordline = WordlineMode::AddressOnly;
    Ev8Predictor ev8_mode;
    Ev8Predictor addr_mode(addr_cfg);
    BranchSnapshot a;
    a.blockAddr = 0x120000000ULL;
    a.pc = a.blockAddr;
    a.hist.indexHist = 0x5;
    // With history in the wordline, different histories may select
    // different wordlines; with address-only they cannot.
    BranchSnapshot b = a;
    b.hist.indexHist = 0xa;
    EXPECT_NE(ev8_mode.tableIndex(BIM, a), ev8_mode.tableIndex(BIM, b));
    EXPECT_EQ(addr_mode.tableIndex(BIM, a), addr_mode.tableIndex(BIM, b));
}

TEST(Ev8Predictor, TotalUpdateConfigObservablyDifferent)
{
    Ev8Config total_cfg;
    total_cfg.partialUpdate = false;
    Ev8Predictor partial;
    Ev8Predictor total(total_cfg);
    Rng rng(13);
    int diffs = 0;
    for (int i = 0; i < 20000; ++i) {
        const BranchSnapshot s = randomSnapshot(rng, mask(12));
        const bool taken = rng.chance(0.3);
        const bool a = partial.predict(s);
        partial.update(s, taken, a);
        const bool b = total.predict(s);
        total.update(s, taken, b);
        diffs += a != b;
    }
    EXPECT_GT(diffs, 0);
}

TEST(Ev8Predictor, ResetRestoresColdState)
{
    Ev8Predictor p;
    Rng rng(15);
    const BranchSnapshot probe = randomSnapshot(rng);
    const bool cold = p.predict(probe);
    for (int i = 0; i < 5000; ++i) {
        const BranchSnapshot s = randomSnapshot(rng);
        p.update(s, true, p.predict(s));
    }
    p.reset();
    EXPECT_EQ(p.predict(probe), cold);
}

TEST(Ev8Predictor, NameAndConfig)
{
    Ev8Predictor p;
    EXPECT_EQ(p.name(), "EV8");
    EXPECT_TRUE(p.config().partialUpdate);
    EXPECT_EQ(p.config().wordline, WordlineMode::Ev8);
}

} // namespace
} // namespace ev8
