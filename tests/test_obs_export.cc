/**
 * @file
 * Tests for the machine-readable bench artifacts: JSON writer/parser
 * round-trips, the ev8-bench-v1 document structure, the CSV golden
 * format, and the non-finite-value policy (JSON null, CSV "--").
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace ev8
{
namespace
{

BenchExport
sampleExport()
{
    BenchExport data;
    data.experimentId = "Fig. T";
    data.title = "unit \"quoted\" title";
    data.branchesPerBenchmark = 2000;
    data.benchmarks = {"compress", "gcc"};
    data.rows.push_back({"gshare", 1024, {"compress", "gcc", "amean"},
                         {4.25, 8.5, 6.375}});
    data.rows.push_back({"empty-row", 0, {"compress", "gcc", "amean"},
                         {std::nan(""),
                          std::numeric_limits<double>::infinity(), 0.5}});
    return data;
}

TEST(JsonWriter, EscapesAndNestsCorrectly)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("s");
    w.value("a\"b\\c\nd");
    w.key("arr");
    w.beginArray();
    w.value(uint64_t{7});
    w.value(true);
    w.valueNull();
    w.endArray();
    w.endObject();

    const JsonValue doc = parseJson(out.str());
    EXPECT_EQ(doc.at("s").text, "a\"b\\c\nd");
    ASSERT_EQ(doc.at("arr").items.size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("arr").items[0].number, 7.0);
    EXPECT_TRUE(doc.at("arr").items[1].boolean);
    EXPECT_EQ(doc.at("arr").items[2].kind, JsonValue::Kind::Null);
}

TEST(JsonWriter, NonFiniteDoublesEmitNull)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginArray();
    w.value(std::nan(""));
    w.value(std::numeric_limits<double>::infinity());
    w.value(1.5);
    w.endArray();
    EXPECT_EQ(out.str(), "[null,null,1.5]");
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), std::runtime_error);
    EXPECT_THROW(parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW(parseJson("{} trailing"), std::runtime_error);
    EXPECT_THROW(parseJson(""), std::runtime_error);
}

TEST(BenchJson, DocumentRoundTripsThroughParser)
{
    BenchExport data = sampleExport();
    MetricRegistry registry;
    registry.counter("sim.fetch_blocks").inc(123);
    registry.gauge("sim.time.lookup.ns_per_call").set(42.5);
    registry.histogram("sim.branches_per_block", {0.0, 1.0})
        .observe(1.0, 9);
    data.metrics = &registry;
    data.timing.lookup.add(100);
    data.timing.lookup.add(300);

    std::ostringstream out;
    writeBenchJson(out, data);
    const JsonValue doc = parseJson(out.str());

    EXPECT_EQ(doc.at("schema").text, "ev8-bench-v1");
    EXPECT_EQ(doc.at("experiment").at("id").text, "Fig. T");
    EXPECT_EQ(doc.at("experiment").at("title").text,
              "unit \"quoted\" title");
    EXPECT_DOUBLE_EQ(
        doc.at("workload").at("branches_per_benchmark").number, 2000.0);
    ASSERT_EQ(doc.at("workload").at("benchmarks").items.size(), 2u);

    const auto &rows = doc.at("rows").items;
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].at("label").text, "gshare");
    EXPECT_DOUBLE_EQ(rows[0].at("storage_bits").number, 1024.0);
    EXPECT_DOUBLE_EQ(rows[0].at("values").at("amean").number, 6.375);
    // Non-finite values land as JSON null, not as literal nan/inf.
    EXPECT_EQ(rows[1].at("values").at("compress").kind,
              JsonValue::Kind::Null);
    EXPECT_EQ(rows[1].at("values").at("gcc").kind,
              JsonValue::Kind::Null);

    const JsonValue &metrics = doc.at("metrics");
    EXPECT_DOUBLE_EQ(
        metrics.at("counters").at("sim.fetch_blocks").number, 123.0);
    EXPECT_DOUBLE_EQ(
        metrics.at("gauges").at("sim.time.lookup.ns_per_call").number,
        42.5);
    const JsonValue &hist =
        metrics.at("histograms").at("sim.branches_per_block");
    EXPECT_DOUBLE_EQ(hist.at("count").number, 9.0);
    ASSERT_EQ(hist.at("buckets").items.size(), 3u); // 2 bounds + overflow
    EXPECT_DOUBLE_EQ(hist.at("buckets").items[1].at("count").number, 9.0);

    const JsonValue &lookup = doc.at("timing").at("lookup");
    EXPECT_DOUBLE_EQ(lookup.at("calls").number, 2.0);
    EXPECT_DOUBLE_EQ(lookup.at("ns").number, 400.0);
    EXPECT_DOUBLE_EQ(lookup.at("ns_per_call").number, 200.0);
}

TEST(BenchCsv, GoldenFormat)
{
    std::ostringstream out;
    writeBenchCsv(out, sampleExport());
    EXPECT_EQ(out.str(),
              "label,storage_bits,compress,gcc,amean\n"
              "gshare,1024,4.25,8.5,6.375\n"
              "empty-row,0,--,--,0.5\n");
}

TEST(RegistryJson, StandaloneObjectParses)
{
    MetricRegistry registry;
    registry.counter("a.count").inc(2);
    registry.gauge("b.gauge").set(-1.25);

    std::ostringstream out;
    writeRegistryJson(out, registry);
    const JsonValue doc = parseJson(out.str());
    EXPECT_DOUBLE_EQ(doc.at("counters").at("a.count").number, 2.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("b.gauge").number, -1.25);
    EXPECT_TRUE(doc.at("histograms").members.empty());
}

} // namespace
} // namespace ev8
