/**
 * @file
 * Tests for the Section 9 backup-predictor hierarchy.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictors/bimodal.hh"
#include "predictors/factory.hh"
#include "predictors/hierarchy.hh"
#include "predictors/perceptron.hh"

namespace ev8
{
namespace
{

BranchSnapshot
snap(uint64_t pc, uint64_t hist)
{
    BranchSnapshot s;
    s.pc = pc;
    s.blockAddr = pc & ~uint64_t{31};
    s.hist.indexHist = hist;
    return s;
}

HierarchyPredictor
makeHierarchy()
{
    return HierarchyPredictor(
        std::make_unique<BimodalPredictor>(10),
        std::make_unique<PerceptronPredictor>(8, 16), 10, "bim+perc");
}

TEST(Hierarchy, StorageSumsComponentsAndChooser)
{
    auto h = makeHierarchy();
    const uint64_t bim = BimodalPredictor(10).storageBits();
    const uint64_t perc = PerceptronPredictor(8, 16).storageBits();
    EXPECT_EQ(h.storageBits(), bim + perc + (1u << 10) * 2);
}

TEST(Hierarchy, NameCombinesOrUsesLabel)
{
    EXPECT_EQ(makeHierarchy().name(), "bim+perc");
    HierarchyPredictor unlabeled(std::make_unique<BimodalPredictor>(4),
                                 std::make_unique<BimodalPredictor>(5),
                                 4, "");
    EXPECT_NE(unlabeled.name().find("bimodal"), std::string::npos);
}

TEST(Hierarchy, ChooserMigratesToTheBetterComponent)
{
    // A branch only the backup (history-based perceptron) can predict:
    // outcome = history bit 2. The bimodal primary is ~50%; the chooser
    // must learn to trust the backup.
    auto h = makeHierarchy();
    Rng rng(3);
    uint64_t hist = 0;
    int wrong_late = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        hist = (hist << 1) | (rng.chance(0.5) ? 1 : 0);
        const bool taken = ((hist >> 2) & 1) != 0;
        auto s = snap(0x1000, hist);
        const bool pred = h.predict(s);
        h.update(s, taken, pred);
        if (i > n / 2)
            wrong_late += pred != taken;
    }
    EXPECT_LT(wrong_late / double(n / 2), 0.10);
    EXPECT_GT(h.backupUseRate(), 0.2);
}

TEST(Hierarchy, KeepsPrimaryForBiasedBranches)
{
    // A constant branch: both components are right, the chooser has no
    // disagreement signal and keeps its (primary-leaning) reset state.
    auto h = makeHierarchy();
    int wrong = 0;
    uint64_t hist = 0;
    for (int i = 0; i < 200; ++i) {
        auto s = snap(0x2000, hist);
        const bool pred = h.predict(s);
        h.update(s, true, pred);
        wrong += !pred;
        hist = (hist << 1) | 1;
    }
    EXPECT_LT(wrong, 10);
}

TEST(Hierarchy, ResetRestoresBothComponents)
{
    auto h = makeHierarchy();
    const auto probe = snap(0x3000, 0x55);
    const bool cold = h.predict(probe);
    for (int i = 0; i < 500; ++i) {
        auto s = snap(0x3000 + (i % 7) * 4, i);
        h.update(s, (i % 3) == 0, h.predict(s));
    }
    h.reset();
    EXPECT_EQ(h.predict(probe), cold);
    EXPECT_DOUBLE_EQ(h.backupUseRate(), 0.0);
}

TEST(Hierarchy, BeatsEitherComponentOnMixedWork)
{
    // Half the branches are PC-biased (primary's home turf), half are
    // history-driven (backup's). The hierarchy should beat both solo
    // runs.
    auto run = [](ConditionalBranchPredictor &p) {
        Rng rng(9);
        uint64_t hist = 0;
        int wrong = 0;
        const int n = 8000;
        for (int i = 0; i < n; ++i) {
            hist = (hist << 1) | (rng.chance(0.5) ? 1 : 0);
            // biased branch
            const uint64_t pc_b = 0x1000 + ((i % 64) << 2);
            const bool taken_b = (pc_b >> 2) % 2 == 0;
            auto sb = snap(pc_b, hist);
            const bool predb = p.predict(sb);
            p.update(sb, taken_b, predb);
            wrong += predb != taken_b;
            // history branch
            const bool taken_h = ((hist >> 3) & 1) != 0;
            auto sh = snap(0x9000, hist);
            const bool predh = p.predict(sh);
            p.update(sh, taken_h, predh);
            wrong += predh != taken_h;
        }
        return wrong;
    };

    BimodalPredictor bim(10);
    PerceptronPredictor perc(8, 16);
    auto hier = makeHierarchy();
    const int bim_wrong = run(bim);
    const int perc_wrong = run(perc);
    const int hier_wrong = run(hier);
    EXPECT_LT(hier_wrong, bim_wrong);
    EXPECT_LE(hier_wrong, perc_wrong * 1.05);
}

} // namespace
} // namespace ev8
