#!/usr/bin/env python3
"""CI guard: the serve daemon must not leak across client sessions.

Starts one bench_serve daemon on an AF_UNIX socket, drives it with
hundreds of sequential bench_serve_load sessions (fresh client process
per session, unique session names -- the pattern a long-lived daemon
sees in practice), and asserts the daemon's resident set stays flat:

 * A warm-up batch of sessions first brings allocator pools, the trace
   cache and per-grid state to steady state; RSS is sampled *after*
   it, so one-time growth is not charged to the soak.
 * During the soak RSS is sampled every few sessions (the trajectory
   lands in the report); the gate compares the final sample against
   the post-warm-up sample with a fixed slack.  The slack (default
   8 MB) is far below what a per-session leak of even a few KB would
   accumulate over 500 sessions, while tolerating allocator noise.
 * The daemon is shut down through the protocol ({"op":"shutdown"})
   and must exit cleanly; its stats must count every session served.

RSS is read from /proc/<pid>/status (VmRSS), so this gate is
Linux-only -- exactly where CI runs.

--report writes a JSON summary with the RSS trajectory and verdict.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time


def rss_kb(pid):
    """VmRSS of @p pid in KB, from /proc/<pid>/status."""
    with open(f"/proc/{pid}/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError(f"no VmRSS line for pid {pid}")


def daemon_call(sock_path, payload):
    """One request/reply round-trip on the daemon socket."""
    s = socket.socket(socket.AF_UNIX)
    s.connect(sock_path)
    s.sendall(json.dumps(payload).encode() + b"\n")
    reply = json.loads(s.makefile().readline())
    s.close()
    return reply


def run_session(load, grid, sock_path, name, branches, env):
    """One sequential client session; raises on non-zero exit."""
    subprocess.run(
        [load, f"--grid={grid}", f"--connect={sock_path}",
         f"--session={name}", f"--branches={branches}",
         "--no-timing", "--quiet"],
        check=True, env=env, stdout=subprocess.DEVNULL)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True,
                        help="path to bench_serve")
    parser.add_argument("--load", required=True,
                        help="path to bench_serve_load")
    parser.add_argument("--grid", default="fig5",
                        help="grid id each session runs (default fig5)")
    parser.add_argument("--branches", type=int, default=1000,
                        help="per-benchmark branch budget per session")
    parser.add_argument("--warmup-sessions", type=int, default=50,
                        help="sessions before the reference RSS sample")
    parser.add_argument("--sessions", type=int, default=500,
                        help="measured soak sessions after warm-up")
    parser.add_argument("--slack-kb", type=int, default=8192,
                        help="allowed RSS growth over the soak, in KB")
    parser.add_argument("--jobs", type=int, default=2,
                        help="daemon worker threads")
    parser.add_argument("--report", default=None,
                        help="write a JSON measurement report here")
    args = parser.parse_args()

    report = {
        "grid": args.grid,
        "branches": args.branches,
        "warmup_sessions": args.warmup_sessions,
        "sessions": args.sessions,
        "slack_kb": args.slack_kb,
        "rss_samples_kb": [],
    }

    def finish(code):
        report["passed"] = code == 0
        if args.report:
            with open(args.report, "w") as f:
                json.dump(report, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"report written to {args.report}")
        return code

    with tempfile.TemporaryDirectory(prefix="serve_soak_") as workdir:
        env = dict(os.environ)
        env["EV8_TRACE_CACHE_DIR"] = os.path.join(workdir, "trace_cache")
        sock_path = os.path.join(workdir, "ev8.sock")

        daemon = subprocess.Popen(
            [args.serve, f"--socket={sock_path}", "--quiet",
             f"--branches={args.branches}", f"--jobs={args.jobs}"],
            env=env, stdout=subprocess.DEVNULL)
        try:
            for _ in range(100):
                if os.path.exists(sock_path):
                    break
                time.sleep(0.1)
            else:
                print("FAIL: daemon socket never appeared",
                      file=sys.stderr)
                return finish(1)

            for i in range(args.warmup_sessions):
                run_session(args.load, args.grid, sock_path,
                            f"warm{i}", args.branches, env)
            base_kb = rss_kb(daemon.pid)
            report["rss_after_warmup_kb"] = base_kb
            print(f"RSS after {args.warmup_sessions} warm-up sessions: "
                  f"{base_kb} KB")

            sample_every = max(1, args.sessions // 10)
            for i in range(args.sessions):
                run_session(args.load, args.grid, sock_path,
                            f"soak{i}", args.branches, env)
                if (i + 1) % sample_every == 0:
                    sample = rss_kb(daemon.pid)
                    report["rss_samples_kb"].append(sample)
                    print(f"session {i + 1}/{args.sessions}: "
                          f"RSS {sample} KB")

            final_kb = rss_kb(daemon.pid)
            report["rss_final_kb"] = final_kb
            growth = final_kb - base_kb
            report["rss_growth_kb"] = growth

            stats = daemon_call(sock_path, {"op": "stats"})
            report["sessions_done"] = stats.get("sessions_done")
            expected = args.warmup_sessions + args.sessions
            if stats.get("sessions_done") != expected:
                print(f"FAIL: daemon served "
                      f"{stats.get('sessions_done')} sessions, "
                      f"expected {expected}", file=sys.stderr)
                return finish(1)

            daemon_call(sock_path, {"op": "shutdown"})
            daemon.wait(timeout=30)
            report["daemon_exit"] = daemon.returncode
            if daemon.returncode != 0:
                print(f"FAIL: daemon exited {daemon.returncode}",
                      file=sys.stderr)
                return finish(1)

            print(f"RSS growth over {args.sessions} sessions: "
                  f"{growth} KB (slack {args.slack_kb} KB)")
            if growth > args.slack_kb:
                print(f"FAIL: daemon RSS grew {growth} KB over the "
                      f"soak, above the {args.slack_kb} KB slack",
                      file=sys.stderr)
                return finish(1)
            print("serve soak OK: RSS flat, every session served, "
                  "clean shutdown")
            return finish(0)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
