#!/usr/bin/env python3
"""CI guard: the serve daemon must not leak across client sessions.

Starts one bench_serve daemon on an AF_UNIX socket, drives it with
hundreds of sequential bench_serve_load sessions (fresh client process
per session, unique session names -- the pattern a long-lived daemon
sees in practice), and asserts the daemon's resident set stays flat:

 * A warm-up batch of sessions first brings allocator pools, the trace
   cache and per-grid state to steady state; RSS is sampled *after*
   it, so one-time growth is not charged to the soak.
 * During the soak RSS is sampled every few sessions (the trajectory
   lands in the report); the gate compares the final sample against
   the post-warm-up sample with a fixed slack.  The slack (default
   8 MB) is far below what a per-session leak of even a few KB would
   accumulate over 500 sessions, while tolerating allocator noise.
 * The daemon is shut down through the protocol ({"op":"shutdown"})
   and must exit cleanly; its stats must count every session served.

--chaos-clients N switches to the concurrent chaos soak instead: one
daemon on BOTH transports (AF_UNIX + TCP), N concurrent clean clients
per round racing a victim of every fault class (conn_drop client whose
connection vanishes, partial_write / garbage_frame clients whose
streams are corrupted, slow_peer client on a glacial link), with the
session-lease reaper armed.  The gate then asserts the documented
failure semantics end to end:

 * every clean client exits 0 on both transports, every round, no
   matter what happens to the victims next to it;
 * conn_drop victims exit 4 (connection lost mid-run), torn/garbage
   victims exit 3 (structured cell failures), slow_peer victims exit 0
   (timing-only);
 * the abandoned sessions of vanished clients are lease-expired and
   surfaced in stats;
 * daemon RSS stays flat across the chaos rounds;
 * a final SIGTERM drains: the daemon exits 3 (it did record cell
   failures) within the drain deadline.

RSS is read from /proc/<pid>/status (VmRSS), so this gate is
Linux-only -- exactly where CI runs.

--report writes a JSON summary with the RSS trajectory and verdict.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def rss_kb(pid):
    """VmRSS of @p pid in KB, from /proc/<pid>/status."""
    with open(f"/proc/{pid}/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError(f"no VmRSS line for pid {pid}")


def daemon_call(sock_path, payload):
    """One request/reply round-trip on the daemon socket."""
    s = socket.socket(socket.AF_UNIX)
    s.connect(sock_path)
    s.sendall(json.dumps(payload).encode() + b"\n")
    reply = json.loads(s.makefile().readline())
    s.close()
    return reply


def run_session(load, grid, sock_path, name, branches, env):
    """One sequential client session; raises on non-zero exit."""
    subprocess.run(
        [load, f"--grid={grid}", f"--connect={sock_path}",
         f"--session={name}", f"--branches={branches}",
         "--no-timing", "--quiet"],
        check=True, env=env, stdout=subprocess.DEVNULL)


class Client(threading.Thread):
    """One bench_serve_load process, run to completion on a thread."""

    def __init__(self, load, grid, endpoint, name, branches, env,
                 expect):
        super().__init__()
        self.cmd = [load, f"--grid={grid}", endpoint,
                    f"--session={name}", f"--branches={branches}",
                    "--timeout=120000", "--no-timing", "--quiet"]
        self.env = env
        self.name_ = name
        self.expect = expect
        self.exit = None

    def run(self):
        proc = subprocess.run(self.cmd, env=self.env,
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
        self.exit = proc.returncode

    def verdict(self):
        """None when the exit matched expectations, else a message."""
        if self.exit in self.expect:
            return None
        return (f"client {self.name_} exited {self.exit}, "
                f"expected one of {sorted(self.expect)}")


def chaos_soak(args, report, finish):
    """The concurrent chaos mode (see module docstring)."""
    with tempfile.TemporaryDirectory(prefix="serve_chaos_") as workdir:
        env = dict(os.environ)
        env["EV8_TRACE_CACHE_DIR"] = os.path.join(workdir, "trace_cache")
        sock_path = os.path.join(workdir, "ev8.sock")
        port_file = os.path.join(workdir, "port.txt")

        daemon_env = dict(env)
        # Every fault class at once, keyed by victim session-name
        # prefixes so clean sessions never match:
        #  - conn_drop/drop: replies to drop* sessions vanish (the
        #    client observes a mid-run connection loss; the abandoned
        #    session is left for the lease reaper);
        #  - partial_write/torn + garbage_frame/garb: torn* / garb*
        #    sessions get corrupted streams (structured cell failures);
        #  - slow_peer/slow: slow* replies are delayed (timing only).
        daemon_env["EV8_FAULT_SPEC"] = (
            "conn_drop/drop+*,partial_write/torn+*,"
            "garbage_frame/garb+*,slow_peer/slow+*")
        daemon_env["EV8_SERVE_IDLE_TIMEOUT_MS"] = "1500"
        daemon_env["EV8_SERVE_HEARTBEAT_MS"] = "100"
        daemon_env["EV8_SERVE_DRAIN_MS"] = "20000"

        daemon = subprocess.Popen(
            [args.serve, f"--socket={sock_path}", "--tcp=127.0.0.1:0",
             f"--port-file={port_file}", "--quiet",
             f"--branches={args.branches}", f"--jobs={args.jobs}",
             "--max-sessions=16"],
            env=daemon_env, stdout=subprocess.DEVNULL)
        try:
            for _ in range(100):
                if os.path.exists(sock_path) and os.path.exists(
                        port_file):
                    break
                time.sleep(0.1)
            else:
                print("FAIL: daemon listeners never appeared",
                      file=sys.stderr)
                return finish(1)
            with open(port_file) as f:
                tcp = f"--connect-tcp=127.0.0.1:{int(f.read())}"
            unix = f"--connect={sock_path}"

            def spawn(name, expect, round_idx, transport=None):
                if transport is None:
                    transport = unix if round_idx % 2 else tcp
                return Client(args.load, args.grid, transport, name,
                              args.branches, env, expect)

            failures = []

            def run_round(clients):
                for c in clients:
                    c.start()
                for c in clients:
                    c.join()
                    bad = c.verdict()
                    if bad:
                        failures.append(bad)
                        print(f"FAIL: {bad}", file=sys.stderr)

            # Phase 1: clean concurrency across both transports.
            for r in range(args.chaos_rounds):
                run_round([
                    spawn(f"clean{r}c{i}", {0}, r + i)
                    for i in range(args.chaos_clients)
                ])
            base_kb = rss_kb(daemon.pid)
            report["rss_after_clean_kb"] = base_kb
            print(f"RSS after clean concurrent rounds: {base_kb} KB")

            # Phase 2: every round races clean clients against one
            # victim of each fault class.
            for r in range(args.chaos_rounds):
                run_round([
                    spawn(f"chaos{r}c{i}", {0}, r + i)
                    for i in range(args.chaos_clients)
                ] + [
                    spawn(f"drop{r}", {4}, r),
                    spawn(f"torn{r}", {3}, r),
                    spawn(f"garb{r}", {3}, r),
                    spawn(f"slow{r}", {0}, r),
                ])

            # The vanished clients' sessions must be lease-reclaimed.
            deadline = time.time() + 30
            expired = 0
            while time.time() < deadline:
                stats = daemon_call(sock_path, {"op": "stats"})
                expired = stats.get("sessions_expired", 0)
                if expired >= args.chaos_rounds:
                    break
                time.sleep(0.5)
            report["sessions_expired"] = expired
            report["sessions_shed"] = stats.get("sessions_shed")
            report["expired_records"] = stats.get("expired")
            if expired < args.chaos_rounds:
                failures.append(
                    f"only {expired} sessions lease-expired, expected "
                    f">= {args.chaos_rounds}")
                print(f"FAIL: {failures[-1]}", file=sys.stderr)

            final_kb = rss_kb(daemon.pid)
            growth = final_kb - base_kb
            report["rss_final_kb"] = final_kb
            report["rss_growth_kb"] = growth
            print(f"RSS growth over chaos rounds: {growth} KB "
                  f"(slack {args.slack_kb} KB)")
            if growth > args.slack_kb:
                failures.append(
                    f"daemon RSS grew {growth} KB, above the "
                    f"{args.slack_kb} KB slack")
                print(f"FAIL: {failures[-1]}", file=sys.stderr)

            # SIGTERM -> graceful drain. The daemon recorded cell
            # failures (torn/garb victims), so its fate is exit 3.
            daemon.send_signal(signal.SIGTERM)
            try:
                daemon.wait(timeout=40)
            except subprocess.TimeoutExpired:
                failures.append("daemon did not drain after SIGTERM")
                print(f"FAIL: {failures[-1]}", file=sys.stderr)
                daemon.kill()
                daemon.wait()
            report["daemon_exit"] = daemon.returncode
            if daemon.returncode != 3:
                failures.append(
                    f"daemon exited {daemon.returncode} after the "
                    f"drain, expected 3 (recorded cell failures)")
                print(f"FAIL: {failures[-1]}", file=sys.stderr)

            report["failures"] = failures
            if failures:
                return finish(1)
            print("serve chaos soak OK: clean clients clean, victims "
                  "failed typed, leases reclaimed, RSS flat, drained")
            return finish(0)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True,
                        help="path to bench_serve")
    parser.add_argument("--load", required=True,
                        help="path to bench_serve_load")
    parser.add_argument("--grid", default="fig5",
                        help="grid id each session runs (default fig5)")
    parser.add_argument("--branches", type=int, default=1000,
                        help="per-benchmark branch budget per session")
    parser.add_argument("--warmup-sessions", type=int, default=50,
                        help="sessions before the reference RSS sample")
    parser.add_argument("--sessions", type=int, default=500,
                        help="measured soak sessions after warm-up")
    parser.add_argument("--slack-kb", type=int, default=8192,
                        help="allowed RSS growth over the soak, in KB")
    parser.add_argument("--jobs", type=int, default=2,
                        help="daemon worker threads")
    parser.add_argument("--chaos-clients", type=int, default=0,
                        help="concurrent clean clients per chaos round "
                             "(> 0 selects the chaos mode)")
    parser.add_argument("--chaos-rounds", type=int, default=3,
                        help="chaos rounds per phase")
    parser.add_argument("--report", default=None,
                        help="write a JSON measurement report here")
    args = parser.parse_args()

    report = {
        "grid": args.grid,
        "branches": args.branches,
        "warmup_sessions": args.warmup_sessions,
        "sessions": args.sessions,
        "slack_kb": args.slack_kb,
        "rss_samples_kb": [],
    }

    def finish(code):
        report["passed"] = code == 0
        if args.report:
            with open(args.report, "w") as f:
                json.dump(report, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"report written to {args.report}")
        return code

    if args.chaos_clients > 0:
        report["chaos_clients"] = args.chaos_clients
        report["chaos_rounds"] = args.chaos_rounds
        return chaos_soak(args, report, finish)

    with tempfile.TemporaryDirectory(prefix="serve_soak_") as workdir:
        env = dict(os.environ)
        env["EV8_TRACE_CACHE_DIR"] = os.path.join(workdir, "trace_cache")
        sock_path = os.path.join(workdir, "ev8.sock")

        daemon = subprocess.Popen(
            [args.serve, f"--socket={sock_path}", "--quiet",
             f"--branches={args.branches}", f"--jobs={args.jobs}"],
            env=env, stdout=subprocess.DEVNULL)
        try:
            for _ in range(100):
                if os.path.exists(sock_path):
                    break
                time.sleep(0.1)
            else:
                print("FAIL: daemon socket never appeared",
                      file=sys.stderr)
                return finish(1)

            for i in range(args.warmup_sessions):
                run_session(args.load, args.grid, sock_path,
                            f"warm{i}", args.branches, env)
            base_kb = rss_kb(daemon.pid)
            report["rss_after_warmup_kb"] = base_kb
            print(f"RSS after {args.warmup_sessions} warm-up sessions: "
                  f"{base_kb} KB")

            sample_every = max(1, args.sessions // 10)
            for i in range(args.sessions):
                run_session(args.load, args.grid, sock_path,
                            f"soak{i}", args.branches, env)
                if (i + 1) % sample_every == 0:
                    sample = rss_kb(daemon.pid)
                    report["rss_samples_kb"].append(sample)
                    print(f"session {i + 1}/{args.sessions}: "
                          f"RSS {sample} KB")

            final_kb = rss_kb(daemon.pid)
            report["rss_final_kb"] = final_kb
            growth = final_kb - base_kb
            report["rss_growth_kb"] = growth

            stats = daemon_call(sock_path, {"op": "stats"})
            report["sessions_done"] = stats.get("sessions_done")
            expected = args.warmup_sessions + args.sessions
            if stats.get("sessions_done") != expected:
                print(f"FAIL: daemon served "
                      f"{stats.get('sessions_done')} sessions, "
                      f"expected {expected}", file=sys.stderr)
                return finish(1)

            daemon_call(sock_path, {"op": "shutdown"})
            daemon.wait(timeout=30)
            report["daemon_exit"] = daemon.returncode
            if daemon.returncode != 0:
                print(f"FAIL: daemon exited {daemon.returncode}",
                      file=sys.stderr)
                return finish(1)

            print(f"RSS growth over {args.sessions} sessions: "
                  f"{growth} KB (slack {args.slack_kb} KB)")
            if growth > args.slack_kb:
                print(f"FAIL: daemon RSS grew {growth} KB over the "
                      f"soak, above the {args.slack_kb} KB slack",
                      file=sys.stderr)
                return finish(1)
            print("serve soak OK: RSS flat, every session served, "
                  "clean shutdown")
            return finish(0)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
