#!/usr/bin/env python3
"""CI guard: fused simulation must stay meaningfully faster than per-cell.

Times bench_fig6_history_length (the sweep the lane-fused kernel was
built for) in both execution modes -- EV8_FUSED=0 (one stream walk per
grid cell) and EV8_FUSED=1 (one walk per fused lane group) -- and fails
if the wall-clock speedup falls below the committed baseline minus its
tolerance. The fused mode also runs once with EV8_SIMD=0 (the scalar
steppers) for an informational vector-vs-scalar A/B, and every mode's
artifacts are byte-compared: per-cell vs fused vs scalar-stepped fused
must be identical (JSON telemetry masked), so the speedup is only
admissible when the SIMD dispatch cannot change a single output byte.

Methodology, tuned for noisy shared runners:

 * A throwaway warm-up run populates the persistent trace cache, so
   trace synthesis (identical in both modes) is not charged to
   whichever mode happens to run first.
 * Modes alternate 0,1,1,0,... and the minimum wall-clock per mode is
   compared: the fastest repetition is the one with the least
   interference, and alternation cancels slow drift.
 * Runs use --no-timing: per-call timing profiling forces the fused
   kernel onto the per-lane observed path (every lane needs its own
   timer), so a timed run measures the profiler, not the simulator.

--report writes a JSON summary carrying the raw samples, the active
SIMD backend and lane width (read from the artifact telemetry), and
the verdict; CI uploads it with the run artifacts. --compare-only
skips the timing floor but keeps the byte-compares -- the mode for the
scalar-forced (EV8_SIMD=scalar) job, whose emulated vector path trades
speed for portability by design.

The tolerance in the baseline file is deliberately wide (~30%): this
gate exists to catch a change that erases the fusion win entirely, not
to detect single-digit regressions on shared hardware.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from strip_telemetry import mask_timing_dependent  # noqa: E402


def run_once(bench, branches, jobs, fused, workdir, tag, simd=None):
    """One timed bench run; returns (seconds, json_path, csv_path).

    simd=None inherits the caller's EV8_SIMD (so a scalar-forced CI job
    applies to every run); a string forces that backend for this run.
    """
    json_path = os.path.join(workdir, f"{tag}.json")
    csv_path = os.path.join(workdir, f"{tag}.csv")
    env = dict(os.environ)
    env["EV8_FUSED"] = fused
    if simd is not None:
        env["EV8_SIMD"] = simd
    env["EV8_TRACE_CACHE_DIR"] = os.path.join(workdir, "trace_cache")
    cmd = [
        bench,
        f"--branches={branches}",
        f"--jobs={jobs}",
        "--no-timing",
        f"--json={json_path}",
        f"--csv={csv_path}",
    ]
    start = time.monotonic()
    subprocess.run(cmd, check=True, env=env,
                   stdout=subprocess.DEVNULL)
    return time.monotonic() - start, json_path, csv_path


def artifact_simd(json_path):
    """The telemetry "simd" member of a produced artifact."""
    with open(json_path) as f:
        doc = json.load(f)
    return doc.get("telemetry", {}).get("simd",
                                        {"backend": "?", "lanes": 0})


def compare_artifacts(label_a, paths_a, label_b, paths_b):
    """Byte-compare two runs' (json, csv) pairs, telemetry masked."""
    for kind in (0, 1):
        a = open(paths_a[kind], "rb").read()
        b = open(paths_b[kind], "rb").read()
        if kind == 0:
            # The JSON telemetry block is wall-clock (and EV8_SIMD)
            # data; compare it masked (every other byte must match).
            a = mask_timing_dependent(a.decode()).encode()
            b = mask_timing_dependent(b.decode()).encode()
        if a != b:
            print(f"FAIL: {label_a} and {label_b} artifacts differ",
                  file=sys.stderr)
            return False
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to bench_fig6_history_length")
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON with expected_speedup and "
                             "tolerance")
    parser.add_argument("--report", default=None,
                        help="write a JSON measurement report here")
    parser.add_argument("--compare-only", action="store_true",
                        help="run the byte-compare gates but skip the "
                             "timing floor (scalar-forced CI job)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    branches = base["branches"]
    jobs = base["jobs"]
    repeats = base["repeats"]
    expected = base["expected_speedup"]
    tolerance = base["tolerance"]
    floor = expected * (1.0 - tolerance)

    report = {
        "benchmark": base.get("benchmark", os.path.basename(args.bench)),
        "branches": branches,
        "jobs": jobs,
        "repeats": repeats,
        "expected_speedup": expected,
        "tolerance": tolerance,
        "floor": floor,
        "compare_only": args.compare_only,
    }

    def finish(code):
        report["passed"] = code == 0
        if args.report:
            with open(args.report, "w") as f:
                json.dump(report, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"report written to {args.report}")
        return code

    with tempfile.TemporaryDirectory(prefix="fused_speedup_") as workdir:
        # Warm the trace cache so synthesis cost lands on no mode.
        run_once(args.bench, branches, jobs, "1", workdir, "warmup")

        times = {"0": [], "1": []}
        artifacts = {}
        # Alternate 0,1,1,0,... so slow machine drift cancels.
        order = []
        for r in range(repeats):
            order += ["0", "1"] if r % 2 == 0 else ["1", "0"]
        for i, mode in enumerate(order):
            secs, json_path, csv_path = run_once(
                args.bench, branches, jobs, mode, workdir,
                f"run{i}_fused{mode}")
            times[mode].append(secs)
            artifacts[mode] = (json_path, csv_path)
            print(f"run {i}: EV8_FUSED={mode}  {secs:.3f}s")

        # One fused run on the scalar steppers: the dispatch-invariance
        # gate (byte-identical artifacts) plus the vector-vs-scalar A/B.
        simd0_secs, simd0_json, simd0_csv = run_once(
            args.bench, branches, jobs, "1", workdir, "fused_simd0",
            simd="0")
        print(f"A/B: EV8_FUSED=1 EV8_SIMD=0  {simd0_secs:.3f}s")

        report["simd"] = artifact_simd(artifacts["1"][0])
        report["percell_s"] = times["0"]
        report["fused_s"] = times["1"]
        report["fused_simd0_s"] = [simd0_secs]
        print(f"active SIMD backend: {report['simd']['backend']} "
              f"(x{report['simd']['lanes']} lanes)")

        if not compare_artifacts("per-cell", artifacts["0"],
                                 "fused", artifacts["1"]):
            return finish(1)
        if not compare_artifacts("fused", artifacts["1"],
                                 "fused(EV8_SIMD=0)",
                                 (simd0_json, simd0_csv)):
            return finish(1)

        percell = min(times["0"])
        fused = min(times["1"])
        speedup = percell / fused
        report["percell_min_s"] = percell
        report["fused_min_s"] = fused
        report["speedup"] = speedup
        report["simd_speedup"] = simd0_secs / fused
        print(f"per-cell min {percell:.3f}s  fused min {fused:.3f}s  "
              f"speedup {speedup:.3f}x  (floor {floor:.3f}x, baseline "
              f"{expected}x - {tolerance:.0%})")
        print(f"vector-vs-scalar A/B: fused(EV8_SIMD=0) {simd0_secs:.3f}s"
              f" / fused {fused:.3f}s = {report['simd_speedup']:.3f}x "
              f"(informational)")
        if args.compare_only:
            print("compare-only: artifacts identical, timing floor "
                  "skipped")
            return finish(0)
        if speedup < floor:
            print(f"FAIL: fused speedup {speedup:.3f}x below floor "
                  f"{floor:.3f}x", file=sys.stderr)
            return finish(1)
        print("fused speedup OK")
        return finish(0)


if __name__ == "__main__":
    sys.exit(main())
