#!/usr/bin/env python3
"""CI guard: fused simulation must stay meaningfully faster than per-cell.

Times bench_fig6_history_length (the sweep the lane-fused kernel was
built for) in both execution modes -- EV8_FUSED=0 (one stream walk per
grid cell) and EV8_FUSED=1 (one walk per fused lane group) -- and fails
if the wall-clock speedup falls below the committed baseline minus its
tolerance.

Methodology, tuned for noisy shared runners:

 * A throwaway warm-up run populates the persistent trace cache, so
   trace synthesis (identical in both modes) is not charged to
   whichever mode happens to run first.
 * Modes alternate 0,1,1,0,... and the minimum wall-clock per mode is
   compared: the fastest repetition is the one with the least
   interference, and alternation cancels slow drift.
 * Runs use --no-timing: per-call timing profiling forces the fused
   kernel onto the per-lane observed path (every lane needs its own
   timer), so a timed run measures the profiler, not the simulator.
 * The two modes' artifacts are byte-compared while we are at it --
   the speedup is only admissible if the outputs are identical.

The tolerance in the baseline file is deliberately wide (~30%): this
gate exists to catch a change that erases the fusion win entirely, not
to detect single-digit regressions on shared hardware.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from strip_telemetry import mask_timing_dependent  # noqa: E402


def run_once(bench, branches, jobs, fused, workdir, tag):
    """One timed bench run; returns (seconds, json_path, csv_path)."""
    json_path = os.path.join(workdir, f"{tag}.json")
    csv_path = os.path.join(workdir, f"{tag}.csv")
    env = dict(os.environ)
    env["EV8_FUSED"] = fused
    env["EV8_TRACE_CACHE_DIR"] = os.path.join(workdir, "trace_cache")
    cmd = [
        bench,
        f"--branches={branches}",
        f"--jobs={jobs}",
        "--no-timing",
        f"--json={json_path}",
        f"--csv={csv_path}",
    ]
    start = time.monotonic()
    subprocess.run(cmd, check=True, env=env,
                   stdout=subprocess.DEVNULL)
    return time.monotonic() - start, json_path, csv_path


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to bench_fig6_history_length")
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON with expected_speedup and "
                             "tolerance")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    branches = base["branches"]
    jobs = base["jobs"]
    repeats = base["repeats"]
    expected = base["expected_speedup"]
    tolerance = base["tolerance"]
    floor = expected * (1.0 - tolerance)

    with tempfile.TemporaryDirectory(prefix="fused_speedup_") as workdir:
        # Warm the trace cache so synthesis cost lands on no mode.
        run_once(args.bench, branches, jobs, "1", workdir, "warmup")

        times = {"0": [], "1": []}
        artifacts = {}
        # Alternate 0,1,1,0,... so slow machine drift cancels.
        order = []
        for r in range(repeats):
            order += ["0", "1"] if r % 2 == 0 else ["1", "0"]
        for i, mode in enumerate(order):
            secs, json_path, csv_path = run_once(
                args.bench, branches, jobs, mode, workdir,
                f"run{i}_fused{mode}")
            times[mode].append(secs)
            artifacts[mode] = (json_path, csv_path)
            print(f"run {i}: EV8_FUSED={mode}  {secs:.3f}s")

        for kind in (0, 1):
            a = open(artifacts["0"][kind], "rb").read()
            b = open(artifacts["1"][kind], "rb").read()
            if kind == 0:
                # The JSON telemetry block is wall-clock data; compare
                # it masked (every other byte must still match).
                a = mask_timing_dependent(a.decode()).encode()
                b = mask_timing_dependent(b.decode()).encode()
            if a != b:
                print("FAIL: fused and per-cell artifacts differ",
                      file=sys.stderr)
                return 1

        percell = min(times["0"])
        fused = min(times["1"])
        speedup = percell / fused
        print(f"per-cell min {percell:.3f}s  fused min {fused:.3f}s  "
              f"speedup {speedup:.3f}x  (floor {floor:.3f}x, baseline "
              f"{expected}x - {tolerance:.0%})")
        if speedup < floor:
            print(f"FAIL: fused speedup {speedup:.3f}x below floor "
                  f"{floor:.3f}x", file=sys.stderr)
            return 1
        print("fused speedup OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
