#!/usr/bin/env python3
"""CI guard: phase-aware sampling must stay fast *and* accurate.

Drives bench_fig6_history_length (the sweep the sampling layer was
built for) through three gates against a committed baseline:

 1. Accuracy -- at the reference scale (1M branches, where an exact
    run is still cheap) an exact run and a sampled run with the
    baseline's knobs are compared cell by cell over every misp/KI
    column, and the maximum absolute error must stay under the
    committed bound.  The bound in the baseline (0.15 misp/KI) is
    ~1% of the fig6 misp/KI scale and carries ~70% margin over the
    measured error of the committed knob set.
 2. Determinism -- the same sampled configuration is run with
    --jobs=1 and --jobs=4 and the artifacts are byte-compared
    (telemetry and attempt_ns masked; the "sampling" block is NOT
    masked, so the extrapolated estimates and CIs themselves must be
    byte-identical across worker counts).
 3. Speedup -- at the paper scale (16M branches) one exact run is
    timed against min-of-N sampled runs; the wall-clock speedup must
    clear both the ISSUE floor (5x) and the committed baseline minus
    its tolerance.

Methodology notes, tuned for noisy shared runners:

 * A throwaway sampled warm-up run populates the persistent trace
   cache (streams and phase-map sidecars), so synthesis and phase
   classification are not charged to whichever mode runs first.
 * The exact 16M run is long enough (minutes) that scheduler noise
   averages out; the short sampled runs take the min of `repeats`.
 * Runs use --no-timing for the same reason as the fused gate:
   per-call profiling would measure the profiler, not the simulator.

--report writes a JSON summary carrying the raw samples, the
per-column worst error, and the verdict; CI uploads it with the run
artifacts.  --compare-only keeps the accuracy and determinism gates
but skips the 16M timing floor (quick local runs, scalar-forced CI).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from strip_telemetry import mask_member  # noqa: E402


def mask_wallclock(text):
    """Mask telemetry/attempt_ns but keep the "sampling" block live:
    unlike exact-vs-sampled compares, the jobs-determinism gate wants
    the sampled estimates themselves byte-compared."""
    text = mask_member(text, "telemetry", "{", "}")
    text = mask_member(text, "attempt_ns", "[", "]")
    return text


def run_once(bench, branches, jobs, workdir, tag, sample=None):
    """One timed bench run; returns (seconds, json_path, csv_path).

    sample=None runs exact mode; a dict with window/warmup/seed/budget
    runs phase-sampled mode with those knobs.
    """
    json_path = os.path.join(workdir, f"{tag}.json")
    csv_path = os.path.join(workdir, f"{tag}.csv")
    env = dict(os.environ)
    env["EV8_TRACE_CACHE_DIR"] = os.path.join(workdir, "trace_cache")
    cmd = [
        bench,
        f"--branches={branches}",
        f"--jobs={jobs}",
        "--no-timing",
        f"--json={json_path}",
        f"--csv={csv_path}",
    ]
    if sample is not None:
        env["EV8_SAMPLE_WINDOW"] = str(sample["window"])
        env["EV8_SAMPLE_WARMUP"] = str(sample["warmup"])
        env["EV8_SAMPLE_SEED"] = str(sample["seed"])
        cmd += ["--sample-mode=phase",
                f"--sample-budget={sample['budget']}"]
    start = time.monotonic()
    subprocess.run(cmd, check=True, env=env,
                   stdout=subprocess.DEVNULL)
    return time.monotonic() - start, json_path, csv_path


def max_mispki_error(exact_json, sampled_json):
    """Worst |sampled - exact| over every row value whose column key
    mentions misp/KI; returns (error, "row/column" tag)."""
    with open(exact_json) as f:
        exact = json.load(f)
    with open(sampled_json) as f:
        sampled = json.load(f)
    worst, tag = 0.0, "none"
    for row_e, row_s in zip(exact["rows"], sampled["rows"]):
        for key, val_e in row_e["values"].items():
            if "mispki" not in key:
                continue
            err = abs(val_e - row_s["values"][key])
            if err > worst:
                worst, tag = err, f"{row_e['label']}/{key}"
    return worst, tag


def compare_artifacts(label_a, paths_a, label_b, paths_b):
    """Byte-compare two sampled runs' (json, csv) pairs; only the
    wall-clock members are masked -- sampling estimates included."""
    for kind in (0, 1):
        a = open(paths_a[kind], "rb").read()
        b = open(paths_b[kind], "rb").read()
        if kind == 0:
            a = mask_wallclock(a.decode()).encode()
            b = mask_wallclock(b.decode()).encode()
        if a != b:
            print(f"FAIL: {label_a} and {label_b} artifacts differ",
                  file=sys.stderr)
            return False
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to bench_fig6_history_length")
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON with the sampling knobs, "
                             "accuracy bound and speedup floor")
    parser.add_argument("--report", default=None,
                        help="write a JSON measurement report here")
    parser.add_argument("--compare-only", action="store_true",
                        help="run the accuracy and determinism gates "
                             "but skip the 16M timing floor")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    jobs = base["jobs"]
    sample = base["sample"]
    acc = base["accuracy"]
    spd = base["speedup"]
    floor = max(spd["min_speedup"],
                spd["expected_speedup"] * (1.0 - spd["tolerance"]))

    report = {
        "benchmark": base.get("benchmark", os.path.basename(args.bench)),
        "jobs": jobs,
        "sample": sample,
        "accuracy_branches": acc["branches"],
        "max_abs_error_bound": acc["max_abs_error"],
        "speedup_branches": spd["branches"],
        "expected_speedup": spd["expected_speedup"],
        "tolerance": spd["tolerance"],
        "min_speedup": spd["min_speedup"],
        "floor": floor,
        "compare_only": args.compare_only,
    }

    def finish(code):
        report["passed"] = code == 0
        if args.report:
            with open(args.report, "w") as f:
                json.dump(report, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"report written to {args.report}")
        return code

    with tempfile.TemporaryDirectory(prefix="sampling_acc_") as workdir:
        # Warm the trace cache (streams + phase sidecars) so synthesis
        # and classification cost lands on no measured run.
        run_once(args.bench, acc["branches"], jobs, workdir, "warmup",
                 sample=sample)

        # Gate 1: accuracy at the reference scale.
        exact_s, exact_json, _ = run_once(
            args.bench, acc["branches"], jobs, workdir, "acc_exact")
        samp_s, samp_json, samp_csv = run_once(
            args.bench, acc["branches"], jobs, workdir, "acc_sampled",
            sample=sample)
        err, err_tag = max_mispki_error(exact_json, samp_json)
        report["accuracy_exact_s"] = exact_s
        report["accuracy_sampled_s"] = samp_s
        report["max_abs_error"] = err
        report["max_abs_error_cell"] = err_tag
        print(f"accuracy @{acc['branches']}: exact {exact_s:.3f}s, "
              f"sampled {samp_s:.3f}s, max |err| {err:.4f} misp/KI "
              f"({err_tag}; bound {acc['max_abs_error']})")
        if err > acc["max_abs_error"]:
            print(f"FAIL: sampled misp/KI error {err:.4f} exceeds "
                  f"bound {acc['max_abs_error']}", file=sys.stderr)
            return finish(1)

        # Gate 2: worker-count determinism of the sampled artifacts.
        _, jobs1_json, jobs1_csv = run_once(
            args.bench, acc["branches"], 1, workdir, "acc_jobs1",
            sample=sample)
        if not compare_artifacts(f"sampled --jobs={jobs}",
                                 (samp_json, samp_csv),
                                 "sampled --jobs=1",
                                 (jobs1_json, jobs1_csv)):
            return finish(1)
        print(f"determinism: sampled --jobs=1 vs --jobs={jobs} "
              "byte-identical (sampling block compared unmasked)")

        if args.compare_only:
            print("compare-only: accuracy and determinism OK, 16M "
                  "timing floor skipped")
            return finish(0)

        # Gate 3: speedup at the paper scale.  A sampled warm-up first
        # builds the 16M streams and phase sidecars so synthesis lands
        # on no timed run, then one exact run (long enough to average
        # out runner noise) vs min-of-N sampled.
        run_once(args.bench, spd["branches"], jobs, workdir,
                 "spd_warmup", sample=sample)
        exact16_s, _, _ = run_once(
            args.bench, spd["branches"], jobs, workdir, "spd_exact")
        print(f"speedup @{spd['branches']}: exact {exact16_s:.3f}s")
        sampled_times = []
        for r in range(spd["repeats"]):
            secs, _, _ = run_once(
                args.bench, spd["branches"], jobs, workdir,
                f"spd_sampled{r}", sample=sample)
            sampled_times.append(secs)
            print(f"speedup @{spd['branches']}: sampled run {r} "
                  f"{secs:.3f}s")
        speedup = exact16_s / min(sampled_times)
        report["speedup_exact_s"] = exact16_s
        report["speedup_sampled_s"] = sampled_times
        report["speedup"] = speedup
        print(f"speedup {speedup:.2f}x (floor {floor:.2f}x, baseline "
              f"{spd['expected_speedup']}x - {spd['tolerance']:.0%}, "
              f"hard minimum {spd['min_speedup']}x)")
        if speedup < floor:
            print(f"FAIL: sampled speedup {speedup:.2f}x below floor "
                  f"{floor:.2f}x", file=sys.stderr)
            return finish(1)
        print("sampling accuracy and speedup OK")
        return finish(0)


if __name__ == "__main__":
    sys.exit(main())
