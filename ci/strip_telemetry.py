#!/usr/bin/env python3
"""Masked byte-comparison for ev8-bench-v1 JSON artifacts.

The artifact schema carries two members whose *values* are wall-clock
dependent while their *presence* is deterministic: the top-level
"telemetry" object and the per-failure "attempt_ns" arrays. The CI
determinism gates therefore compare JSON artifacts with those values
masked (replaced by an empty object/array); every other byte must still
match. CSV and JSONL artifacts carry no timing members and stay under
plain `cmp`. The C++ twin of this helper is
tests/artifact_test_util.hh.

Usage:
    strip_telemetry.py FILE            # print the masked document
    strip_telemetry.py FILE_A FILE_B   # exit 1 iff they differ masked
"""

import sys


def mask_member(text, key, open_ch, close_ch):
    """Replace every `"<key>": <open>...<close>` value with an empty
    container, tracking string literals and escapes so braces inside
    string values cannot truncate the match."""
    needle = f'"{key}":'
    out = []
    pos = 0
    while True:
        hit = text.find(needle, pos)
        if hit < 0:
            out.append(text[pos:])
            break
        value = hit + len(needle)
        while value < len(text) and text[value].isspace():
            value += 1
        if value >= len(text) or text[value] != open_ch:
            out.append(text[pos:value])
            pos = value
            continue
        end = value
        depth = 0
        in_str = esc = False
        while end < len(text):
            c = text[end]
            end += 1
            if in_str:
                if esc:
                    esc = False
                elif c == "\\":
                    esc = True
                elif c == '"':
                    in_str = False
            elif c == '"':
                in_str = True
            elif c == open_ch:
                depth += 1
            elif c == close_ch:
                depth -= 1
                if depth == 0:
                    break
        out.append(text[pos:value])
        out.append(open_ch + close_ch)
        pos = end
    return "".join(out)


def mask_timing_dependent(text):
    """Mask the wall-clock members ("telemetry", "attempt_ns") plus the
    mode-dependent "sampling" block (present only in sampled runs, so
    exact-vs-sampled comparisons need it masked; its values are
    deterministic and compared directly by check_sampling_accuracy.py)."""
    text = mask_member(text, "telemetry", "{", "}")
    text = mask_member(text, "attempt_ns", "[", "]")
    text = mask_member(text, "sampling", "{", "}")
    return text


def main(argv):
    if len(argv) == 2:
        sys.stdout.write(mask_timing_dependent(open(argv[1]).read()))
        return 0
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a = mask_timing_dependent(open(argv[1]).read())
    b = mask_timing_dependent(open(argv[2]).read())
    if a != b:
        print(f"FAIL: {argv[1]} and {argv[2]} differ beyond the "
              "masked telemetry/attempt_ns members", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
