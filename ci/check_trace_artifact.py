#!/usr/bin/env python3
"""CI gate: the --trace-out timeline is valid and complete.

Runs bench_fig6_history_length with --trace-out --progress --quiet at
--jobs=4 (the documented CI invocation) and validates:

 * the file is valid JSON in the Chrome trace_event "JSON Object
   Format": {"displayTimeUnit": ..., "traceEvents": [...]};
 * every event is either "M" metadata or an "X" complete event with
   numeric ts/dur and string cat/name, categories drawn from the span
   tracer's fixed phase names;
 * per-worker thread_name metadata exists for every tid that carries
   spans (the Perfetto timeline renders one labelled track per worker);
 * the number of "cell" spans matches the run's own telemetry
   (cell_duration_ms.count and pool.grid_cells) -- no span is lost or
   double-counted, regardless of the fused grouping in effect;
 * the JSON artifact of a traced --jobs=4 run still byte-matches an
   untraced --jobs=1 run once the telemetry/attempt_ns members are
   masked: tracing must not perturb the simulation.

Usage: check_trace_artifact.py --bench ./build/bench/bench_fig6_...
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from strip_telemetry import mask_timing_dependent  # noqa: E402

PHASE_NAMES = {
    "grid.setup", "cell", "fused.walk", "fused.demote", "decode",
    "cache.load", "checkpoint", "merge", "sim.time.lookup",
    "sim.time.update", "sim.time.history", "serve.accept",
    "serve.enqueue", "serve.stall", "serve.session_run",
    "serve.snapshot",
}

ARGS = ["--branches=2000", "--sample=16", "--no-timing"]


def run(bench, workdir, tag, jobs, trace=False):
    json_path = os.path.join(workdir, f"{tag}.json")
    cmd = [bench, *ARGS, f"--jobs={jobs}", f"--json={json_path}"]
    if trace:
        cmd += [f"--trace-out={os.path.join(workdir, tag)}.trace.json",
                "--progress", "--quiet"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return json_path


def check_trace(trace_path, telemetry):
    doc = json.load(open(trace_path))
    events = doc["traceEvents"]
    assert isinstance(events, list) and events, "no trace events"

    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(spans) + len(meta) == len(events), \
        "unexpected event phase in timeline"

    for e in spans:
        assert isinstance(e["ts"], (int, float)), e
        assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0, e
        assert isinstance(e["name"], str) and e["name"], e
        assert e["cat"] in PHASE_NAMES, f"unknown category: {e}"

    named_tids = {e["tid"] for e in meta
                  if e.get("name") == "thread_name"}
    span_tids = {e["tid"] for e in spans}
    assert span_tids <= named_tids, \
        f"spans on unnamed threads: {sorted(span_tids - named_tids)}"
    workers = sum(e["args"]["name"].startswith("worker-") for e in meta
                  if e.get("name") == "thread_name")
    assert workers >= 1, "no named worker tracks"

    cells = [e for e in spans if e["cat"] == "cell"]
    for e in cells:
        args = e.get("args", {})
        assert "bench" in args and "config" in args, e
        assert "lanes" in args and "attempt" in args, e

    grid_cells = telemetry["pool"]["grid_cells"]
    hist_count = telemetry["cell_duration_ms"]["count"]
    assert grid_cells > 0, telemetry["pool"]
    # A clean run: one cell span and one histogram observation per grid
    # cell, in every fused/per-cell mix the run chose.
    assert len(cells) == grid_cells == hist_count, \
        (len(cells), grid_cells, hist_count)

    return len(spans), len(cells), workers


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to bench_fig6_history_length")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="ev8_trace_gate_") as work:
        traced = run(args.bench, work, "traced_j4", jobs=4, trace=True)
        ref = run(args.bench, work, "ref_j1", jobs=1)

        doc = json.load(open(traced))
        telemetry = doc["telemetry"]
        for key in ("wall_ns", "cpu_user_ns", "peak_rss_bytes",
                    "phases", "cell_duration_ms", "pool"):
            assert key in telemetry, f"telemetry missing {key}"
        assert telemetry["wall_ns"] > 0
        assert telemetry["pool"]["workers"] == 4

        spans, cells, workers = check_trace(
            os.path.join(work, "traced_j4.trace.json"), telemetry)

        masked_traced = mask_timing_dependent(open(traced).read())
        masked_ref = mask_timing_dependent(open(ref).read())
        if masked_traced != masked_ref:
            print("FAIL: tracing perturbed the masked JSON artifact",
                  file=sys.stderr)
            return 1

        print(f"trace artifact OK: {spans} spans ({cells} cell spans "
              f"over {telemetry['pool']['grid_cells']} grid cells, "
              f"{workers} worker tracks), masked artifact identical "
              "to untraced --jobs=1 run")
        return 0


if __name__ == "__main__":
    sys.exit(main())
