#include "obs/trace_span.hh"

#include <algorithm>
#include <cstdio>

#include "obs/json.hh"

namespace ev8
{

const char *
spanPhaseName(SpanPhase phase)
{
    switch (phase) {
      case SpanPhase::GridSetup: return "grid.setup";
      case SpanPhase::Cell: return "cell";
      case SpanPhase::FusedWalk: return "fused.walk";
      case SpanPhase::FusedDemote: return "fused.demote";
      case SpanPhase::Decode: return "decode";
      case SpanPhase::CacheLoad: return "cache.load";
      case SpanPhase::Checkpoint: return "checkpoint";
      case SpanPhase::Merge: return "merge";
      case SpanPhase::SimLookup: return "sim.time.lookup";
      case SpanPhase::SimUpdate: return "sim.time.update";
      case SpanPhase::SimHistory: return "sim.time.history";
      case SpanPhase::Accept: return "serve.accept";
      case SpanPhase::Enqueue: return "serve.enqueue";
      case SpanPhase::Stall: return "serve.stall";
      case SpanPhase::SessionRun: return "serve.session_run";
      case SpanPhase::Snapshot: return "serve.snapshot";
      case SpanPhase::None: break;
    }
    return "none";
}

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

SpanTracer::~SpanTracer() = default;

SpanTracer &
SpanTracer::global()
{
    static SpanTracer tracer;
    return tracer;
}

uint64_t
SpanTracer::nowNs() const
{
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
}

namespace
{

struct ThreadBufCache
{
    void *buf = nullptr;    //!< SpanTracer::ThreadBuf*
    const void *owner = nullptr; //!< the tracer the cache belongs to
    uint64_t gen = 0;       //!< tracer epochGen_ at registration
};

thread_local ThreadBufCache tl_cache;

} // namespace

SpanTracer::ThreadBuf &
SpanTracer::threadBuf()
{
    // clear() bumps epochGen_, invalidating cached pointers into the
    // buffers it destroyed.
    if (tl_cache.buf && tl_cache.owner == this
        && tl_cache.gen == epochGen_.load(std::memory_order_acquire))
        return *static_cast<ThreadBuf *>(tl_cache.buf);
    std::lock_guard<std::mutex> lock(mutex_);
    auto buf = std::make_unique<ThreadBuf>();
    buf->tid = static_cast<uint32_t>(bufs_.size());
    char name[32];
    std::snprintf(name, sizeof(name), "thread-%u", buf->tid);
    buf->name = name;
    bufs_.push_back(std::move(buf));
    tl_cache.buf = bufs_.back().get();
    tl_cache.owner = this;
    tl_cache.gen = epochGen_.load(std::memory_order_relaxed);
    return *bufs_.back();
}

void
SpanTracer::record(SpanPhase phase, std::string name, std::string args,
                   uint64_t start_ns, uint64_t dur_ns)
{
    if (!enabled())
        return;
    ThreadBuf &buf = threadBuf();
    Chunk *chunk = buf.cur;
    if (!chunk
        || chunk->used.load(std::memory_order_relaxed) == kChunkSize) {
        auto fresh = std::make_unique<Chunk>();
        std::lock_guard<std::mutex> lock(buf.mutex);
        buf.chunks.push_back(std::move(fresh));
        chunk = buf.cur = buf.chunks.back().get();
    }
    const size_t slot = chunk->used.load(std::memory_order_relaxed);
    SpanEvent &event = chunk->events[slot];
    event.startNs = start_ns;
    event.durNs = dur_ns;
    event.tid = buf.tid;
    event.phase = phase;
    event.name = std::move(name);
    event.args = std::move(args);
    chunk->used.store(slot + 1, std::memory_order_release);
}

void
SpanTracer::setThreadName(const std::string &name)
{
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> lock(mutex_);
    buf.name = name;
}

std::vector<SpanEvent>
SpanTracer::collect() const
{
    std::vector<SpanEvent> events;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buf : bufs_) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        for (const auto &chunk : buf->chunks) {
            const size_t used =
                chunk->used.load(std::memory_order_acquire);
            for (size_t i = 0; i < used; ++i)
                events.push_back(chunk->events[i]);
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         return a.startNs < b.startNs;
                     });
    return events;
}

std::vector<SpanThreadInfo>
SpanTracer::threads() const
{
    std::vector<SpanThreadInfo> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(bufs_.size());
    for (const auto &buf : bufs_)
        out.push_back(SpanThreadInfo{buf->tid, buf->name});
    return out;
}

std::array<SpanPhaseTotal, kSpanPhaseCount>
SpanTracer::phaseTotals() const
{
    std::array<SpanPhaseTotal, kSpanPhaseCount> out{};
    for (size_t i = 0; i < kSpanPhaseCount; ++i) {
        out[i].count = phases_[i].count.load(std::memory_order_relaxed);
        out[i].wallNs = phases_[i].ns.load(std::memory_order_relaxed);
    }
    return out;
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    bufs_.clear();
    epochGen_.fetch_add(1, std::memory_order_release);
    for (auto &phase : phases_) {
        phase.count.store(0, std::memory_order_relaxed);
        phase.ns.store(0, std::memory_order_relaxed);
    }
}

void
ScopedSpan::appendKey(const char *key)
{
    if (!args_.empty())
        args_ += ',';
    args_ += '"';
    args_ += key;
    args_ += "\":";
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (!recording_)
        return;
    appendKey(key);
    args_ += '"';
    args_ += escapeJson(value);
    args_ += '"';
}

void
ScopedSpan::arg(const char *key, uint64_t value)
{
    if (!recording_)
        return;
    appendKey(key);
    args_ += std::to_string(value);
}

} // namespace ev8
