/**
 * @file
 * Machine-readable artifact export for the bench harness: every
 * table/figure reproduction can land as a JSON document (results +
 * metric registry + timing) and/or a CSV of its result rows, so the
 * BENCH_* trajectory, CI and regression tooling can consume what the
 * human-facing text tables show.
 *
 * JSON schema ("ev8-bench-v1"):
 *
 *     {
 *       "schema": "ev8-bench-v1",
 *       "experiment": {"id": "Fig. 5", "title": "..."},
 *       "workload": {"branches_per_benchmark": N,
 *                    "benchmarks": ["compress", ...]},
 *       "sampling": {"mode": "phase", "budget": N,
 *                    "window_branches": N, "warmup_branches": N,
 *                    "seed": N, "max_phases": N,
 *                    "cells": [{"row_label": "...", "bench": "...",
 *                        "phases": N, "windows_total": N,
 *                        "windows_simulated": N,
 *                        "branches_simulated": N,
 *                        "ci95_misp_ki": x}]},
 *       "rows": [{"label": "...", "storage_bits": N,
 *                 "values": {"compress": x, ..., "amean": x}}],
 *       "failures": [{"row_label": "...", "bench": "...",
 *                     "attempts": N, "error": "...",
 *                     "attempt_ns": [N, ...]}],
 *       "metrics": {"counters": {name: N, ...},
 *                   "gauges": {name: x, ...},
 *                   "histograms": {name: {"count": N, "sum": x,
 *                       "buckets": [{"le": b, "count": N}, ...]}}},
 *       "timing": {"lookup":  {"calls": N, "ns": N, "ns_per_call": x},
 *                  "update":  {...}, "history": {...}},
 *       "telemetry": {"wall_ns": N, "cpu_user_ns": N, "cpu_sys_ns": N,
 *                     "peak_rss_bytes": N,
 *                     "phases": {"cell": {"count": N, "wall_ns": N},
 *                                ... one member per span phase ...},
 *                     "cell_duration_ms": {"count": N, "sum": x,
 *                         "buckets": [{"le": b, "count": N}, ...]},
 *                     "trace_cache": {"trace_requests": N,
 *                         "trace_disk_hits": N, "traces_generated": N,
 *                         "stream_requests": N, "stream_disk_hits": N,
 *                         "streams_decoded": N, "stream_hit_ratio": x},
 *                     "pool": {"workers": N, "grid_cells": N,
 *                              "busy_ns": N, "wall_ns": N,
 *                              "utilization": x}}
 *     }
 *
 * Non-finite values serialize as JSON null ("--" in the CSV).
 *
 * The "failures" member is present only when cells failed: a complete
 * run's artifact is byte-identical to what it was before failure
 * reporting existed, and a degraded run's artifact names exactly which
 * (row, benchmark) cells are missing and why. The CSV gains a second
 * "failures" block (blank-line separated) under the same condition.
 */

#ifndef EV8_OBS_EXPORT_HH
#define EV8_OBS_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/timer.hh"

namespace ev8
{

/** One exported result row: a labelled configuration's named values. */
struct BenchRowExport
{
    std::string label;
    uint64_t storageBits = 0; //!< 0 = not applicable
    std::vector<std::string> columns;
    std::vector<double> values; //!< parallel to columns
};

/**
 * One grid cell that failed permanently (obs-layer mirror of the sim
 * layer's CellFailure, so exporters stay below the simulator).
 */
struct BenchFailureExport
{
    std::string rowLabel;
    std::string bench;
    unsigned attempts = 0;
    std::string error;

    /**
     * Wall time of each attempt, in submission order -- the JSON
     * failures entries gain an "attempt_ns" array so the artifact shows
     * time lost to retries, not just counts. Timing-dependent: masked
     * (like the telemetry block) in byte-identity comparisons. The CSV
     * failures block is unchanged.
     */
    std::vector<uint64_t> attemptNs;
};

/** One cell's sampled-run summary, in deterministic grid order. */
struct SamplingCellExport
{
    std::string rowLabel;
    std::string bench;
    uint64_t phases = 0;
    uint64_t windowsTotal = 0;
    uint64_t windowsSimulated = 0;
    uint64_t branchesSimulated = 0;
    double ci95MispKI = 0.0;
};

/**
 * The artifact's "sampling" block: the stratified-sampling knobs plus
 * each cell's coverage and confidence interval. Present only when
 * sampling is active, so exact-mode artifact bytes are untouched by
 * the sampling layer. Every member is a deterministic function of the
 * (trace, spec) inputs -- byte-identical across --jobs -- but the
 * block is still masked in exact-vs-sampled byte-compare gates, like
 * the telemetry block, because it only exists on one side.
 */
struct SamplingExport
{
    bool active = false;
    std::string mode;             //!< "phase"
    uint64_t budget = 0;          //!< suite-relative measured branches
    uint64_t windowBranches = 0;
    uint64_t warmupBranches = 0;
    uint64_t seed = 0;
    uint64_t maxPhases = 0;
    std::vector<SamplingCellExport> cells;
};

/** Everything one bench binary exports. */
struct BenchExport
{
    std::string experimentId;
    std::string title;
    uint64_t branchesPerBenchmark = 0;
    std::vector<std::string> benchmarks;
    std::vector<BenchRowExport> rows;
    std::vector<BenchFailureExport> failures; //!< empty on a clean run
    SamplingExport sampling; //!< written only when sampling.active
    const MetricRegistry *metrics = nullptr;  //!< optional
    SimTiming timing;                         //!< all-zero when unprofiled

    /**
     * Optional run telemetry (resource usage, phase times, pool
     * utilization). The bench harness always attaches it, so presence
     * is deterministic per artifact even though the values are not.
     */
    const TelemetryExport *telemetry = nullptr;
};

/** Writes the full JSON artifact described above. */
void writeBenchJson(std::ostream &out, const BenchExport &data);

/**
 * Writes the result rows as CSV: a header of
 * "label,storage_bits,<columns...>" (columns from the first row) and
 * one line per row. Non-finite values print as "--".
 */
void writeBenchCsv(std::ostream &out, const BenchExport &data);

/** Writes just the registry as a JSON object (the "metrics" member). */
void writeRegistryJson(std::ostream &out, const MetricRegistry &registry);

} // namespace ev8

#endif // EV8_OBS_EXPORT_HH
