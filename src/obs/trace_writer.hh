/**
 * @file
 * Serializes a SpanTracer's collected spans as Chrome trace_event JSON
 * (the JSON Array Format wrapped in an object), loadable in Perfetto or
 * chrome://tracing. Each span becomes one "X" (complete) event with
 * microsecond ts/dur; registered threads get "M" thread_name metadata
 * so the timeline renders one labelled track per worker.
 */

#ifndef EV8_OBS_TRACE_WRITER_HH
#define EV8_OBS_TRACE_WRITER_HH

#include <ostream>
#include <string>

namespace ev8
{

class SpanTracer;

/**
 * Writes @p tracer's buffered spans to @p out as
 * {"displayTimeUnit":"ms","traceEvents":[...]}.
 */
void writeChromeTrace(std::ostream &out, const SpanTracer &tracer,
                      const std::string &process_name = "ev8bp");

/**
 * Writes the trace to @p path (truncating). Returns false (and reports
 * to stderr) when the file cannot be opened or written.
 */
bool writeChromeTraceFile(const std::string &path,
                          const SpanTracer &tracer,
                          const std::string &process_name = "ev8bp");

} // namespace ev8

#endif // EV8_OBS_TRACE_WRITER_HH
