/**
 * @file
 * Sampled misprediction event tracing.
 *
 * The aggregate tables say *how many* mispredictions a configuration
 * takes; classifying which branches mispredict and why needs the events
 * themselves. The sink emits one JSONL record per sampled misprediction:
 * pc, fetch-block address, history snapshots, EV8 bank number, the
 * 2Bc-gskew per-table votes when the scheme exposes them, and the
 * behaviour class of the synthetic static branch when a classifier map
 * is attached.
 *
 * Sampling is a deterministic 1-in-N counter (every Nth misprediction,
 * starting with the first): no RNG is consumed, so the same simulation
 * produces byte-identical JSONL -- which is what makes event traces
 * diffable across commits and usable in regression tooling.
 *
 * Two sink flavours share the MispredictSink interface:
 *
 *  - EventTraceSink writes JSONL directly; it owns the sampling counter
 *    and the bench/classifier labels, so it must only be fed from one
 *    thread at a time.
 *  - BufferedEventSink records the raw event structs. The experiment
 *    engine gives every parallel (benchmark, config) job its own buffer
 *    and replays the buffers into the shared EventTraceSink in
 *    submission order, which keeps the emitted stream byte-identical to
 *    a serial run no matter how many worker threads executed the jobs.
 */

#ifndef EV8_OBS_EVENT_TRACE_HH
#define EV8_OBS_EVENT_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace ev8
{

/** pc-of-branch -> behaviour-class-name ("loop", "gcorr", ...). */
using BranchClassMap = std::unordered_map<uint64_t, std::string>;

/** One misprediction, as the simulator observed it. */
struct MispredictEvent
{
    uint64_t branchSeq = 0;  //!< dynamic conditional-branch index
    uint64_t pc = 0;
    uint64_t blockAddr = 0;
    uint64_t ghist = 0;      //!< conventional global history at lookup
    uint64_t indexHist = 0;  //!< history the index functions consumed
    unsigned bank = 0;       //!< EV8 bank number (0 when unassigned)
    bool taken = false;
    bool predicted = false;

    // Per-table votes of the 2Bc-gskew family; valid only when the
    // predictor exposes vote structure (votesValid).
    bool votesValid = false;
    bool voteBim = false;
    bool voteG0 = false;
    bool voteG1 = false;
    bool voteMeta = false;   //!< true: chooser selected the e-gskew side
    bool voteMajority = false;
};

/**
 * Destination for misprediction events. The simulator only calls
 * onMispredict(); harness code labels the stream via setBench() and
 * setClassifier(), which sinks without label state ignore.
 */
class MispredictSink
{
  public:
    virtual ~MispredictSink() = default;

    /**
     * Offers one misprediction to the sink. Returns true when the event
     * was recorded (sampling sinks drop the rest).
     */
    virtual bool onMispredict(const MispredictEvent &event) = 0;

    /** Names the benchmark subsequent events belong to. */
    virtual void setBench(std::string) {}

    /** Attaches a pc -> behaviour-class map (nullptr detaches). */
    virtual void setClassifier(const BranchClassMap *) {}
};

/**
 * JSONL misprediction sink with deterministic 1-in-N sampling. Attach
 * one to SimConfig::events; the experiment engine labels each benchmark
 * via setBench()/setClassifier() while merging per-job buffers.
 */
class EventTraceSink : public MispredictSink
{
  public:
    /**
     * @param out destination stream (one JSON object per line)
     * @param sample_every emit every Nth misprediction (>= 1)
     */
    explicit EventTraceSink(std::ostream &out, uint64_t sample_every = 64);

    void setBench(std::string name) override { bench = std::move(name); }
    void setClassifier(const BranchClassMap *map) override
    {
        classes = map;
    }

    /**
     * Offers one misprediction to the sampler; emits it if selected.
     * Returns true when the event was written.
     */
    bool onMispredict(const MispredictEvent &event) override;

    uint64_t seen() const { return seen_; }
    uint64_t emitted() const { return emitted_; }
    uint64_t sampleEvery() const { return every; }

  private:
    std::ostream &out_;
    uint64_t every;
    uint64_t seen_ = 0;
    uint64_t emitted_ = 0;
    std::string bench;
    const BranchClassMap *classes = nullptr;
};

/**
 * Records every offered event verbatim. One per parallel job: the
 * engine replays buffers into the real (sampling) sink in submission
 * order, so the sampling counter observes the exact misprediction
 * stream a serial run would have produced.
 */
class BufferedEventSink : public MispredictSink
{
  public:
    bool
    onMispredict(const MispredictEvent &event) override
    {
        events_.push_back(event);
        return true;
    }

    const std::vector<MispredictEvent> &events() const { return events_; }

    /** Moves the buffer out (leaves this sink empty). */
    std::vector<MispredictEvent>
    take()
    {
        return std::move(events_);
    }

    /** Replays every buffered event into @p sink, in recorded order. */
    void
    replayInto(MispredictSink &sink) const
    {
        for (const MispredictEvent &event : events_)
            sink.onMispredict(event);
    }

  private:
    std::vector<MispredictEvent> events_;
};

} // namespace ev8

#endif // EV8_OBS_EVENT_TRACE_HH
