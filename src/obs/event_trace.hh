/**
 * @file
 * Sampled misprediction event tracing.
 *
 * The aggregate tables say *how many* mispredictions a configuration
 * takes; classifying which branches mispredict and why needs the events
 * themselves. The sink emits one JSONL record per sampled misprediction:
 * pc, fetch-block address, history snapshots, EV8 bank number, the
 * 2Bc-gskew per-table votes when the scheme exposes them, and the
 * behaviour class of the synthetic static branch when a classifier map
 * is attached.
 *
 * Sampling is a deterministic 1-in-N counter (every Nth misprediction,
 * starting with the first): no RNG is consumed, so the same simulation
 * produces byte-identical JSONL -- which is what makes event traces
 * diffable across commits and usable in regression tooling.
 */

#ifndef EV8_OBS_EVENT_TRACE_HH
#define EV8_OBS_EVENT_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>

namespace ev8
{

/** pc-of-branch -> behaviour-class-name ("loop", "gcorr", ...). */
using BranchClassMap = std::unordered_map<uint64_t, std::string>;

/** One misprediction, as the simulator observed it. */
struct MispredictEvent
{
    uint64_t branchSeq = 0;  //!< dynamic conditional-branch index
    uint64_t pc = 0;
    uint64_t blockAddr = 0;
    uint64_t ghist = 0;      //!< conventional global history at lookup
    uint64_t indexHist = 0;  //!< history the index functions consumed
    unsigned bank = 0;       //!< EV8 bank number (0 when unassigned)
    bool taken = false;
    bool predicted = false;

    // Per-table votes of the 2Bc-gskew family; valid only when the
    // predictor exposes vote structure (votesValid).
    bool votesValid = false;
    bool voteBim = false;
    bool voteG0 = false;
    bool voteG1 = false;
    bool voteMeta = false;   //!< true: chooser selected the e-gskew side
    bool voteMajority = false;
};

/**
 * JSONL misprediction sink with deterministic 1-in-N sampling. Attach
 * one to SimConfig::events; the suite runner labels each benchmark via
 * setBench()/setClassifier() before simulating it.
 */
class EventTraceSink
{
  public:
    /**
     * @param out destination stream (one JSON object per line)
     * @param sample_every emit every Nth misprediction (>= 1)
     */
    explicit EventTraceSink(std::ostream &out, uint64_t sample_every = 64);

    /** Names the benchmark subsequent events belong to. */
    void setBench(std::string name) { bench = std::move(name); }

    /** Attaches a pc -> behaviour-class map (nullptr detaches). */
    void setClassifier(const BranchClassMap *map) { classes = map; }

    /**
     * Offers one misprediction to the sampler; emits it if selected.
     * Returns true when the event was written.
     */
    bool onMispredict(const MispredictEvent &event);

    uint64_t seen() const { return seen_; }
    uint64_t emitted() const { return emitted_; }
    uint64_t sampleEvery() const { return every; }

  private:
    std::ostream &out_;
    uint64_t every;
    uint64_t seen_ = 0;
    uint64_t emitted_ = 0;
    std::string bench;
    const BranchClassMap *classes = nullptr;
};

} // namespace ev8

#endif // EV8_OBS_EVENT_TRACE_HH
