#include "obs/progress.hh"

#include <algorithm>
#include <cstdio>

#include "obs/trace_span.hh"

namespace ev8
{

namespace
{

/** Minimum interval between stderr renders. */
constexpr uint64_t kRenderIntervalNs = 100'000'000; // 100 ms

/** How many per-worker current-cell labels fit on the line. */
constexpr size_t kMaxShownWorkers = 4;

/** Lazily assigned dense display slot for the calling worker. */
thread_local int tl_slot = -1;

} // namespace

ProgressMeter &
ProgressMeter::global()
{
    static ProgressMeter meter;
    return meter;
}

void
ProgressMeter::beginBatch(size_t cells)
{
    if (!enabled())
        return;
    total_.fetch_add(cells, std::memory_order_relaxed);
    render(true);
}

void
ProgressMeter::endBatch()
{
    if (!enabled())
        return;
    render(true);
}

void
ProgressMeter::noteCurrent(const std::string &label)
{
    if (!enabled())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tl_slot < 0) {
            tl_slot = static_cast<int>(current_.size());
            current_.emplace_back();
        }
        current_[static_cast<size_t>(tl_slot)] = label;
    }
    render(false);
}

void
ProgressMeter::noteDone(uint64_t dur_ns, bool failed)
{
    if (!enabled())
        return;
    done_.fetch_add(1, std::memory_order_relaxed);
    if (failed)
        failed_.fetch_add(1, std::memory_order_relaxed);
    else
        sumDurNs_.fetch_add(dur_ns, std::memory_order_relaxed);
    render(false);
}

void
ProgressMeter::noteRetried()
{
    if (!enabled())
        return;
    retried_.fetch_add(1, std::memory_order_relaxed);
    render(false);
}

void
ProgressMeter::finishLine()
{
    if (!enabled())
        return;
    render(true);
    if (rendered_.load(std::memory_order_relaxed)) {
        std::fputc('\n', stderr);
        std::fflush(stderr);
    }
}

double
ProgressMeter::etaSeconds(uint64_t total, uint64_t done, uint64_t failed,
                          uint64_t sum_dur_ns, size_t workers)
{
    if (done < failed || total <= done || total == 1)
        return -1.0;
    const uint64_t completed = done - failed;
    if (completed == 0 || sum_dur_ns == 0)
        return -1.0;
    const uint64_t remaining = total - done;
    const uint64_t lanes =
        std::min<uint64_t>(std::max<size_t>(workers, 1), remaining);
    const double avgNs =
        static_cast<double>(sum_dur_ns) / static_cast<double>(completed);
    return avgNs * static_cast<double>(remaining)
        / static_cast<double>(lanes) / 1e9;
}

void
ProgressMeter::render(bool force)
{
    const uint64_t now = SpanTracer::global().nowNs();
    uint64_t last = lastRenderNs_.load(std::memory_order_relaxed);
    if (!force && now - last < kRenderIntervalNs)
        return;
    if (!lastRenderNs_.compare_exchange_strong(
            last, now, std::memory_order_relaxed))
        if (!force)
            return; // another thread just rendered

    const uint64_t total = total_.load(std::memory_order_relaxed);
    const uint64_t done = done_.load(std::memory_order_relaxed);
    const uint64_t failed = failed_.load(std::memory_order_relaxed);
    const uint64_t retried = retried_.load(std::memory_order_relaxed);
    const uint64_t sumDur = sumDurNs_.load(std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(mutex_);

    char head[160];
    int len = std::snprintf(head, sizeof(head),
                            "[ev8] %llu/%llu cells",
                            static_cast<unsigned long long>(done),
                            static_cast<unsigned long long>(total));
    std::string line(head, len > 0 ? static_cast<size_t>(len) : 0);
    if (failed || retried) {
        len = std::snprintf(head, sizeof(head),
                            "  %llu failed  %llu retried",
                            static_cast<unsigned long long>(failed),
                            static_cast<unsigned long long>(retried));
        line.append(head, len > 0 ? static_cast<size_t>(len) : 0);
    }

    const double etaSec =
        etaSeconds(total, done, failed, sumDur, current_.size());
    if (etaSec >= 0.0) {
        len = std::snprintf(head, sizeof(head), "  ETA %.0fs", etaSec);
        line.append(head, len > 0 ? static_cast<size_t>(len) : 0);
    }

    size_t shown = 0;
    for (const std::string &label : current_) {
        if (label.empty())
            continue;
        if (shown == kMaxShownWorkers) {
            line += " ...";
            break;
        }
        line += shown == 0 ? "  | " : " ";
        line += label;
        ++shown;
    }

    // Overwrite the previous render in place, padding out leftovers.
    std::string padded = line;
    if (padded.size() < lastLineLen_)
        padded.append(lastLineLen_ - padded.size(), ' ');
    lastLineLen_ = line.size();
    std::fprintf(stderr, "\r%s", padded.c_str());
    std::fflush(stderr);
    rendered_.store(true, std::memory_order_relaxed);
}

} // namespace ev8
