/**
 * @file
 * Minimal JSON support for the instrumentation layer: a streaming writer
 * for the exporters and event sink, and a small recursive-descent parser
 * so tests (and tools) can round-trip the artifacts without external
 * dependencies.
 *
 * The writer emits RFC 8259 JSON with one deliberate policy: non-finite
 * doubles (NaN/inf) serialize as null, since JSON has no spelling for
 * them and zero-instruction rows do produce NaN misp/KI values.
 */

#ifndef EV8_OBS_JSON_HH
#define EV8_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ev8
{

/** Escapes @p text for inclusion inside a JSON string literal. */
std::string escapeJson(const std::string &text);

/**
 * Streaming JSON writer. Commas and nesting are tracked internally, so
 * callers just alternate key()/value() inside objects:
 *
 *     JsonWriter w(out);
 *     w.beginObject();
 *     w.key("rows"); w.beginArray(); w.value(1.5); w.endArray();
 *     w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    void key(const std::string &name);
    void value(const std::string &text);
    void value(const char *text);
    void value(double number); //!< non-finite emits null
    void value(uint64_t number);
    void value(int number);
    void value(bool flag);
    void valueNull();

    /**
     * Splices @p json verbatim as one value. The caller guarantees it
     * is a complete, well-formed JSON value (used to embed
     * pre-serialized span args without re-parsing).
     */
    void rawValue(const std::string &json);

  private:
    void separate(); //!< comma/space before a new element

    std::ostream &out_;
    std::vector<bool> firstInScope{true}; //!< per nesting level
    bool pendingKey = false;
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items; //!< Array elements
    std::vector<std::pair<std::string, JsonValue>> members; //!< Object

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Object member access; throws std::out_of_range when absent. */
    const JsonValue &at(const std::string &name) const;
};

/**
 * Parses one JSON document from @p text (trailing whitespace allowed,
 * trailing garbage not). Throws std::runtime_error on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace ev8

#endif // EV8_OBS_JSON_HH
