#include "obs/export.hh"

#include <cmath>

#include "obs/json.hh"

namespace ev8
{

namespace
{

void
writeRegistryMembers(JsonWriter &w, const MetricRegistry &registry)
{
    const auto entries = registry.entries();

    w.key("counters");
    w.beginObject();
    for (const auto &e : entries) {
        if (e.kind != MetricKind::Counter)
            continue;
        w.key(*e.name);
        w.value(e.counter->value());
    }
    w.endObject();

    w.key("gauges");
    w.beginObject();
    for (const auto &e : entries) {
        if (e.kind != MetricKind::Gauge)
            continue;
        w.key(*e.name);
        w.value(e.gauge->value());
    }
    w.endObject();

    w.key("histograms");
    w.beginObject();
    for (const auto &e : entries) {
        if (e.kind != MetricKind::Histogram)
            continue;
        w.key(*e.name);
        w.beginObject();
        w.key("count");
        w.value(e.histogram->count());
        w.key("sum");
        w.value(e.histogram->sum());
        w.key("buckets");
        w.beginArray();
        const auto &bounds = e.histogram->bounds();
        const auto &counts = e.histogram->bucketCounts();
        for (size_t i = 0; i < counts.size(); ++i) {
            w.beginObject();
            w.key("le");
            if (i < bounds.size())
                w.value(bounds[i]);
            else
                w.value("inf"); // the overflow bucket
            w.key("count");
            w.value(counts[i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

void
writeTimingStat(JsonWriter &w, const TimingStat &stat)
{
    w.beginObject();
    w.key("calls");
    w.value(stat.calls);
    w.key("ns");
    w.value(stat.ns);
    w.key("ns_per_call");
    w.value(stat.nsPerCall());
    w.endObject();
}

void
writeTelemetryMember(JsonWriter &w, const TelemetryExport &tel)
{
    w.key("telemetry");
    w.beginObject();

    w.key("wall_ns");
    w.value(tel.wallNs);
    w.key("cpu_user_ns");
    w.value(tel.cpuUserNs);
    w.key("cpu_sys_ns");
    w.value(tel.cpuSysNs);
    w.key("peak_rss_bytes");
    w.value(tel.peakRssBytes);

    w.key("phases");
    w.beginObject();
    for (const auto &phase : tel.phases) {
        w.key(phase.name);
        w.beginObject();
        w.key("count");
        w.value(phase.count);
        w.key("wall_ns");
        w.value(phase.wallNs);
        w.endObject();
    }
    w.endObject();

    w.key("cell_duration_ms");
    w.beginObject();
    w.key("count");
    w.value(tel.cellCount);
    w.key("sum");
    w.value(tel.cellSumMs);
    w.key("buckets");
    w.beginArray();
    for (size_t i = 0; i < tel.cellBucketCounts.size(); ++i) {
        w.beginObject();
        w.key("le");
        if (i < tel.cellBoundsMs.size())
            w.value(tel.cellBoundsMs[i]);
        else
            w.value("inf"); // the overflow bucket
        w.key("count");
        w.value(tel.cellBucketCounts[i]);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("trace_cache");
    w.beginObject();
    w.key("trace_requests");
    w.value(tel.traceRequests);
    w.key("trace_disk_hits");
    w.value(tel.traceDiskHits);
    w.key("traces_generated");
    w.value(tel.tracesGenerated);
    w.key("stream_requests");
    w.value(tel.streamRequests);
    w.key("stream_disk_hits");
    w.value(tel.streamDiskHits);
    w.key("streams_decoded");
    w.value(tel.streamsDecoded);
    w.key("stream_hit_ratio");
    w.value(tel.streamHitRatio);
    w.endObject();

    w.key("pool");
    w.beginObject();
    w.key("workers");
    w.value(tel.poolWorkers);
    w.key("grid_cells");
    w.value(tel.poolGridCells);
    w.key("busy_ns");
    w.value(tel.poolBusyNs);
    w.key("wall_ns");
    w.value(tel.poolWallNs);
    w.key("utilization");
    w.value(tel.poolUtilization);
    w.endObject();

    w.key("simd");
    w.beginObject();
    w.key("backend");
    w.value(tel.simdBackend);
    w.key("lanes");
    w.value(static_cast<uint64_t>(tel.simdLanes));
    w.endObject();

    w.endObject();
}

} // namespace

void
writeRegistryJson(std::ostream &out, const MetricRegistry &registry)
{
    JsonWriter w(out);
    w.beginObject();
    writeRegistryMembers(w, registry);
    w.endObject();
}

void
writeBenchJson(std::ostream &out, const BenchExport &data)
{
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value("ev8-bench-v1");

    w.key("experiment");
    w.beginObject();
    w.key("id");
    w.value(data.experimentId);
    w.key("title");
    w.value(data.title);
    w.endObject();

    w.key("workload");
    w.beginObject();
    w.key("branches_per_benchmark");
    w.value(data.branchesPerBenchmark);
    w.key("benchmarks");
    w.beginArray();
    for (const auto &b : data.benchmarks)
        w.value(b);
    w.endArray();
    w.endObject();

    if (data.sampling.active) {
        const SamplingExport &s = data.sampling;
        w.key("sampling");
        w.beginObject();
        w.key("mode");
        w.value(s.mode);
        w.key("budget");
        w.value(s.budget);
        w.key("window_branches");
        w.value(s.windowBranches);
        w.key("warmup_branches");
        w.value(s.warmupBranches);
        w.key("seed");
        w.value(s.seed);
        w.key("max_phases");
        w.value(s.maxPhases);
        w.key("cells");
        w.beginArray();
        for (const auto &cell : s.cells) {
            w.beginObject();
            w.key("row_label");
            w.value(cell.rowLabel);
            w.key("bench");
            w.value(cell.bench);
            w.key("phases");
            w.value(cell.phases);
            w.key("windows_total");
            w.value(cell.windowsTotal);
            w.key("windows_simulated");
            w.value(cell.windowsSimulated);
            w.key("branches_simulated");
            w.value(cell.branchesSimulated);
            w.key("ci95_misp_ki");
            w.value(cell.ci95MispKI);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.key("rows");
    w.beginArray();
    for (const auto &row : data.rows) {
        w.beginObject();
        w.key("label");
        w.value(row.label);
        if (row.storageBits != 0) {
            w.key("storage_bits");
            w.value(row.storageBits);
        }
        w.key("values");
        w.beginObject();
        for (size_t i = 0;
             i < row.columns.size() && i < row.values.size(); ++i) {
            w.key(row.columns[i]);
            w.value(row.values[i]);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();

    if (!data.failures.empty()) {
        w.key("failures");
        w.beginArray();
        for (const auto &f : data.failures) {
            w.beginObject();
            w.key("row_label");
            w.value(f.rowLabel);
            w.key("bench");
            w.value(f.bench);
            w.key("attempts");
            w.value(uint64_t{f.attempts});
            w.key("error");
            w.value(f.error);
            if (!f.attemptNs.empty()) {
                w.key("attempt_ns");
                w.beginArray();
                for (const uint64_t ns : f.attemptNs)
                    w.value(ns);
                w.endArray();
            }
            w.endObject();
        }
        w.endArray();
    }

    if (data.metrics) {
        w.key("metrics");
        w.beginObject();
        writeRegistryMembers(w, *data.metrics);
        w.endObject();
    }

    w.key("timing");
    w.beginObject();
    w.key("lookup");
    writeTimingStat(w, data.timing.lookup);
    w.key("update");
    writeTimingStat(w, data.timing.update);
    w.key("history");
    writeTimingStat(w, data.timing.history);
    w.endObject();

    if (data.telemetry)
        writeTelemetryMember(w, *data.telemetry);

    w.endObject();
    out << '\n';
}

namespace
{

/** CSV field quoting: quote when the text contains , " or newline. */
std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
csvNumber(double v)
{
    if (!std::isfinite(v))
        return "--";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

void
writeBenchCsv(std::ostream &out, const BenchExport &data)
{
    out << "label,storage_bits";
    if (!data.rows.empty()) {
        for (const auto &col : data.rows.front().columns)
            out << ',' << csvField(col);
    }
    out << '\n';
    for (const auto &row : data.rows) {
        out << csvField(row.label) << ',' << row.storageBits;
        for (size_t i = 0;
             i < row.columns.size() && i < row.values.size(); ++i)
            out << ',' << csvNumber(row.values[i]);
        out << '\n';
    }
    if (!data.failures.empty()) {
        out << "\nfailures\nrow_label,bench,attempts,error\n";
        for (const auto &f : data.failures) {
            out << csvField(f.rowLabel) << ',' << csvField(f.bench)
                << ',' << f.attempts << ',' << csvField(f.error)
                << '\n';
        }
    }
}

} // namespace ev8
