/**
 * @file
 * Lightweight wall-clock profiling for the simulation hot paths:
 * an accumulating (calls, nanoseconds) pair per measured phase and a
 * scope guard that feeds it. The simulator wraps predictor lookup,
 * predictor update and history maintenance with these when
 * SimConfig::profileTiming is set; with the flag off the hot loop pays
 * only an untaken branch.
 */

#ifndef EV8_OBS_TIMER_HH
#define EV8_OBS_TIMER_HH

#include <chrono>
#include <cstdint>

namespace ev8
{

/** Accumulated time of one measured phase. */
struct TimingStat
{
    uint64_t calls = 0;
    uint64_t ns = 0;

    void
    add(uint64_t nanos)
    {
        ++calls;
        ns += nanos;
    }

    void
    merge(const TimingStat &other)
    {
        calls += other.calls;
        ns += other.ns;
    }

    double
    nsPerCall() const
    {
        return calls == 0
            ? 0.0
            : static_cast<double>(ns) / static_cast<double>(calls);
    }
};

/** The three phases the simulator distinguishes. */
struct SimTiming
{
    TimingStat lookup;  //!< ConditionalBranchPredictor::predict
    TimingStat update;  //!< ConditionalBranchPredictor::update
    TimingStat history; //!< lghist/delayed-view/path maintenance

    void
    merge(const SimTiming &other)
    {
        lookup.merge(other.lookup);
        update.merge(other.update);
        history.merge(other.history);
    }
};

/** RAII guard adding its scope's duration to a TimingStat. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimingStat &stat)
        : stat_(stat), start(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        stat_.add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
    }

  private:
    TimingStat &stat_;
    std::chrono::steady_clock::time_point start;
};

} // namespace ev8

#endif // EV8_OBS_TIMER_HH
