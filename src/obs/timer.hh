/**
 * @file
 * Lightweight wall-clock profiling for the simulation hot paths:
 * an accumulating (calls, nanoseconds) pair per measured phase and a
 * scope guard that feeds it. The simulator wraps predictor lookup,
 * predictor update and history maintenance with these when
 * SimConfig::profileTiming is set; with the flag off the hot loop pays
 * only an untaken branch.
 */

#ifndef EV8_OBS_TIMER_HH
#define EV8_OBS_TIMER_HH

#include <chrono>
#include <cstdint>

#include "obs/trace_span.hh"

namespace ev8
{

/** Accumulated time of one measured phase. */
struct TimingStat
{
    uint64_t calls = 0;
    uint64_t ns = 0;

    void
    add(uint64_t nanos)
    {
        ++calls;
        ns += nanos;
    }

    void
    merge(const TimingStat &other)
    {
        calls += other.calls;
        ns += other.ns;
    }

    double
    nsPerCall() const
    {
        return calls == 0
            ? 0.0
            : static_cast<double>(ns) / static_cast<double>(calls);
    }
};

/** The three phases the simulator distinguishes. */
struct SimTiming
{
    TimingStat lookup;  //!< ConditionalBranchPredictor::predict
    TimingStat update;  //!< ConditionalBranchPredictor::update
    TimingStat history; //!< lghist/delayed-view/path maintenance

    void
    merge(const SimTiming &other)
    {
        lookup.merge(other.lookup);
        update.merge(other.update);
        history.merge(other.history);
    }
};

/**
 * RAII guard adding its scope's duration to a TimingStat. When a
 * SpanPhase is given and tracing is enabled, the same measurement also
 * feeds the span tracer's coarse phase totals, so PR 1 phase timers and
 * spans share one clock and one naming scheme (TimingStat "lookup" ==
 * span phase "sim.time.lookup"). With tracing disabled the routing
 * costs one relaxed atomic load.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimingStat &stat,
                         SpanPhase phase = SpanPhase::None)
        : stat_(stat), phase_(phase),
          start(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        const auto ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
        stat_.add(ns);
        if (phase_ != SpanPhase::None) {
            SpanTracer &tracer = SpanTracer::global();
            if (tracer.enabled())
                tracer.addPhase(phase_, ns);
        }
    }

  private:
    TimingStat &stat_;
    SpanPhase phase_;
    std::chrono::steady_clock::time_point start;
};

} // namespace ev8

#endif // EV8_OBS_TIMER_HH
