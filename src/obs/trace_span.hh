/**
 * @file
 * Low-overhead span tracing for the experiment engine. A SpanTracer
 * collects begin/end scoped spans (category, name, free-form JSON args)
 * into per-thread lock-free buffers that are flushed once at run end
 * into a Chrome trace_event timeline (see trace_writer.hh), loadable in
 * Perfetto or chrome://tracing.
 *
 * Gate discipline matches the rest of the obs layer: recording is off
 * by default and a disabled ScopedSpan costs two clock reads plus one
 * relaxed atomic add (no allocation, no locking). The clock reads feed
 * the always-on coarse per-phase wall-time totals that back the JSON
 * export's telemetry block, so phase attribution works even when no
 * timeline is being recorded.
 *
 * Thread safety: each thread appends to its own chunked buffer. An
 * entry is published with a release store of the chunk's `used` count
 * after the slot is fully written; collect() reads `used` with acquire
 * ordering, so it may be called concurrently with recording and sees
 * only complete entries. Chunk-list growth and thread registration take
 * a mutex, but only once per 256 spans / once per thread.
 */

#ifndef EV8_OBS_TRACE_SPAN_HH
#define EV8_OBS_TRACE_SPAN_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ev8
{

/**
 * The fixed span categories. Every span belongs to one; the enum also
 * names the always-on coarse phase accumulators exported in the JSON
 * telemetry block. Names are stable (CI validates them).
 */
enum class SpanPhase : uint8_t
{
    GridSetup,   //!< checkpoint restore + fused grouping before dispatch
    Cell,        //!< one (row, benchmark) cell execution attempt
    FusedWalk,   //!< one fused multi-lane BlockStream walk
    FusedDemote, //!< a fused group falling back to per-cell execution
    Decode,      //!< trace -> BlockStream decode
    CacheLoad,   //!< trace-cache disk probe/load (hit or miss)
    Checkpoint,  //!< checkpoint journal write / restore
    Merge,       //!< submission-order merge of per-job outputs
    SimLookup,   //!< ScopedTimer sim.time.lookup routing
    SimUpdate,   //!< ScopedTimer sim.time.update routing
    SimHistory,  //!< ScopedTimer sim.time.history routing
    Accept,      //!< serve: accepting/admitting a client session
    Enqueue,     //!< serve: producer framing + ring push of one packet
    Stall,       //!< serve: blocked on ring backpressure (either side)
    SessionRun,  //!< serve: one session's cell grid, end to end
    Snapshot,    //!< serve: building a live session snapshot reply
    None,        //!< sentinel: not a phase, never accumulated
};

constexpr size_t kSpanPhaseCount = static_cast<size_t>(SpanPhase::None);

/** Stable category/phase name ("cell", "sim.time.lookup", ...). */
const char *spanPhaseName(SpanPhase phase);

/** One completed span as stored in the per-thread buffers. */
struct SpanEvent
{
    uint64_t startNs = 0; //!< tracer-epoch-relative start
    uint64_t durNs = 0;
    uint32_t tid = 0;     //!< tracer-assigned small thread id
    SpanPhase phase = SpanPhase::None;
    std::string name;
    std::string args;     //!< pre-serialized JSON object body ("" = none)
};

/** A registered recording thread, for timeline metadata. */
struct SpanThreadInfo
{
    uint32_t tid = 0;
    std::string name; //!< "main", "worker-3", ...
};

/** Coarse always-on accumulation for one phase. */
struct SpanPhaseTotal
{
    uint64_t count = 0;
    uint64_t wallNs = 0;
};

class SpanTracer
{
  public:
    SpanTracer();
    ~SpanTracer();

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** The process-wide tracer every ScopedSpan records into. */
    static SpanTracer &global();

    /** Starts buffering full span events (--trace-out). */
    void enable() { enabled_.store(true, std::memory_order_relaxed); }
    void disable() { enabled_.store(false, std::memory_order_relaxed); }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since the tracer's construction (steady clock). */
    uint64_t nowNs() const;

    /**
     * Appends one completed span to the calling thread's buffer.
     * Lock-free except on chunk growth / first call per thread. No-op
     * when recording is disabled. @p args is either empty or the inner
     * body of a JSON object (without braces).
     */
    void record(SpanPhase phase, std::string name, std::string args,
                uint64_t start_ns, uint64_t dur_ns);

    /** Adds to the always-on coarse totals (any thread, any time). */
    void
    addPhase(SpanPhase phase, uint64_t dur_ns)
    {
        if (phase == SpanPhase::None)
            return;
        auto &total = phases_[static_cast<size_t>(phase)];
        total.count.fetch_add(1, std::memory_order_relaxed);
        total.ns.fetch_add(dur_ns, std::memory_order_relaxed);
    }

    /** Names the calling thread in the emitted timeline. */
    void setThreadName(const std::string &name);

    /**
     * Snapshots every published span, sorted by start time. Safe to
     * call while other threads record (sees only complete entries).
     */
    std::vector<SpanEvent> collect() const;

    /** Registered threads, by tid. */
    std::vector<SpanThreadInfo> threads() const;

    /** Coarse totals for every phase, indexed by SpanPhase. */
    std::array<SpanPhaseTotal, kSpanPhaseCount> phaseTotals() const;

    /**
     * Drops all buffered spans, thread registrations and phase totals.
     * Test/run-boundary API: callers must ensure no thread is recording
     * concurrently (worker threads joined or quiescent).
     */
    void clear();

  private:
    static constexpr size_t kChunkSize = 256;

    struct Chunk
    {
        std::atomic<size_t> used{0};
        std::array<SpanEvent, kChunkSize> events;
    };

    struct ThreadBuf
    {
        uint32_t tid = 0;
        std::string name;
        Chunk *cur = nullptr; //!< owner-thread fast-path cursor
        mutable std::mutex mutex; //!< guards chunks growth vs. collect
        std::vector<std::unique_ptr<Chunk>> chunks;
    };

    struct PhaseAtomic
    {
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> ns{0};
    };

    ThreadBuf &threadBuf();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
    std::array<PhaseAtomic, kSpanPhaseCount> phases_;

    mutable std::mutex mutex_; //!< guards bufs_ registration
    std::vector<std::unique_ptr<ThreadBuf>> bufs_;

    /** Bumped by clear(); invalidates the thread_local buffer cache. */
    std::atomic<uint64_t> epochGen_{0};
};

/**
 * RAII span: construction stamps the start, destruction computes the
 * duration, feeds the coarse phase totals, and -- when the tracer was
 * recording at construction -- appends a full SpanEvent. Destruction on
 * exception unwind still closes the span, so an injected cell fault
 * cannot leave a dangling begin.
 *
 * The default name is the phase name; rename()/arg() refine it and are
 * no-ops (no allocation) when not recording.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanPhase phase, const char *name = nullptr)
        : phase_(phase), staticName_(name),
          recording_(SpanTracer::global().enabled()),
          startNs_(SpanTracer::global().nowNs())
    {}

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        SpanTracer &tracer = SpanTracer::global();
        const uint64_t dur = tracer.nowNs() - startNs_;
        tracer.addPhase(phase_, dur);
        if (recording_) {
            tracer.record(phase_,
                          name_.empty()
                              ? std::string(staticName_
                                                ? staticName_
                                                : spanPhaseName(phase_))
                              : std::move(name_),
                          std::move(args_), startNs_, dur);
        }
    }

    bool recording() const { return recording_; }

    /** Replaces the span's display name (dynamic labels). */
    void
    rename(std::string name)
    {
        if (recording_)
            name_ = std::move(name);
    }

    /** Adds a string argument to the span's args object. */
    void arg(const char *key, const std::string &value);

    /** Adds an unsigned integer argument. */
    void arg(const char *key, uint64_t value);

  private:
    void appendKey(const char *key);

    SpanPhase phase_;
    const char *staticName_;
    bool recording_;
    uint64_t startNs_;
    std::string name_;
    std::string args_;
};

} // namespace ev8

#endif // EV8_OBS_TRACE_SPAN_HH
