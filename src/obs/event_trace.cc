#include "obs/event_trace.hh"

#include <algorithm>
#include <cstdio>

#include "obs/json.hh"

namespace ev8
{

EventTraceSink::EventTraceSink(std::ostream &out, uint64_t sample_every)
    : out_(out), every(std::max<uint64_t>(1, sample_every))
{
}

namespace
{

std::string
hex(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

bool
EventTraceSink::onMispredict(const MispredictEvent &event)
{
    const bool take = seen_ % every == 0;
    ++seen_;
    if (!take)
        return false;
    ++emitted_;

    JsonWriter w(out_);
    w.beginObject();
    w.key("seq");
    w.value(emitted_ - 1);
    w.key("branch");
    w.value(event.branchSeq);
    if (!bench.empty()) {
        w.key("bench");
        w.value(bench);
    }
    // 64-bit addresses and history words go out as hex strings: JSON
    // numbers are doubles and cannot hold them losslessly.
    w.key("pc");
    w.value(hex(event.pc));
    w.key("block");
    w.value(hex(event.blockAddr));
    w.key("bank");
    w.value(static_cast<uint64_t>(event.bank));
    w.key("taken");
    w.value(event.taken);
    w.key("pred");
    w.value(event.predicted);
    w.key("ghist");
    w.value(hex(event.ghist));
    w.key("index_hist");
    w.value(hex(event.indexHist));
    if (classes) {
        const auto it = classes->find(event.pc);
        if (it != classes->end()) {
            w.key("class");
            w.value(it->second);
        }
    }
    if (event.votesValid) {
        w.key("votes");
        w.beginObject();
        w.key("bim");
        w.value(event.voteBim);
        w.key("g0");
        w.value(event.voteG0);
        w.key("g1");
        w.value(event.voteG1);
        w.key("meta");
        w.value(event.voteMeta);
        w.key("majority");
        w.value(event.voteMajority);
        w.endObject();
    }
    w.endObject();
    out_ << '\n';
    return true;
}

} // namespace ev8
