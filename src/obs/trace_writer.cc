#include "obs/trace_writer.hh"

#include <cstdio>
#include <fstream>

#include "obs/json.hh"
#include "obs/trace_span.hh"

namespace ev8
{

namespace
{

/** ts/dur are microseconds in the trace_event format. */
double
toMicros(uint64_t ns)
{
    return static_cast<double>(ns) / 1000.0;
}

void
writeMetadataEvent(JsonWriter &w, const char *name, uint32_t tid,
                   const char *arg_key, const std::string &arg_value)
{
    w.beginObject();
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(uint64_t{1});
    w.key("tid");
    w.value(uint64_t{tid});
    w.key("name");
    w.value(name);
    w.key("args");
    w.beginObject();
    w.key(arg_key);
    w.value(arg_value);
    w.endObject();
    w.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &out, const SpanTracer &tracer,
                 const std::string &process_name)
{
    JsonWriter w(out);
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ms");
    w.key("traceEvents");
    w.beginArray();

    writeMetadataEvent(w, "process_name", 0, "name", process_name);
    for (const SpanThreadInfo &thread : tracer.threads())
        writeMetadataEvent(w, "thread_name", thread.tid, "name",
                           thread.name);

    for (const SpanEvent &event : tracer.collect()) {
        w.beginObject();
        w.key("ph");
        w.value("X");
        w.key("pid");
        w.value(uint64_t{1});
        w.key("tid");
        w.value(uint64_t{event.tid});
        w.key("ts");
        w.value(toMicros(event.startNs));
        w.key("dur");
        w.value(toMicros(event.durNs));
        w.key("cat");
        w.value(spanPhaseName(event.phase));
        w.key("name");
        w.value(event.name);
        if (!event.args.empty()) {
            w.key("args");
            w.rawValue("{" + event.args + "}");
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    out << '\n';
}

bool
writeChromeTraceFile(const std::string &path, const SpanTracer &tracer,
                     const std::string &process_name)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "ev8: cannot open trace file %s\n",
                     path.c_str());
        return false;
    }
    writeChromeTrace(out, tracer, process_name);
    out.flush();
    if (!out) {
        std::fprintf(stderr, "ev8: error writing trace file %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

} // namespace ev8
