#include "obs/metrics.hh"

#include <algorithm>
#include <stdexcept>

namespace ev8
{

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::logic_error("histogram bounds must be ascending");
}

void
Histogram::addToSum(double delta)
{
    // compare_exchange loop instead of atomic<double>::fetch_add: the
    // latter is C++20 but not universally lowered to hardware, and this
    // path is end-of-run only.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
    }
}

void
Histogram::observe(double value, uint64_t count)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    counts_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
        count, std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
    addToSum(value * static_cast<double>(count));
}

void
Histogram::merge(const Histogram &other)
{
    if (other.bounds_ != bounds_)
        throw std::logic_error(
            "histogram merge with mismatched bounds");
    for (size_t i = 0; i < counts_.size(); ++i) {
        counts_[i].fetch_add(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    addToSum(other.sum());
}

void
Histogram::injectState(const std::vector<uint64_t> &bucket_counts,
                       uint64_t count, double sum)
{
    if (bucket_counts.size() != counts_.size()) {
        throw std::logic_error(
            "histogram state injection with mismatched bucket count");
    }
    for (size_t i = 0; i < counts_.size(); ++i) {
        counts_[i].fetch_add(bucket_counts[i],
                             std::memory_order_relaxed);
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    addToSum(sum);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

MetricRegistry::Holder &
MetricRegistry::find(const std::string &name, MetricKind kind)
{
    const auto it = items.find(name);
    if (it == items.end()) {
        Holder &h = items[name];
        h.kind = kind;
        return h;
    }
    if (it->second.kind != kind)
        throw std::logic_error("metric '" + name
                               + "' already registered as another kind");
    return it->second;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    Holder &h = find(name, MetricKind::Counter);
    if (!h.counter)
        h.counter = std::make_unique<Counter>();
    return *h.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    Holder &h = find(name, MetricKind::Gauge);
    if (!h.gauge)
        h.gauge = std::make_unique<Gauge>();
    return *h.gauge;
}

Histogram &
MetricRegistry::histogram(const std::string &name,
                          std::vector<double> upper_bounds)
{
    Holder &h = find(name, MetricKind::Histogram);
    if (!h.histogram) {
        h.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    } else if (h.histogram->bounds() != upper_bounds) {
        throw std::logic_error("histogram '" + name
                               + "' re-registered with different bounds");
    }
    return *h.histogram;
}

bool
MetricRegistry::has(const std::string &name) const
{
    return items.count(name) != 0;
}

uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    const auto it = items.find(name);
    if (it == items.end() || it->second.kind != MetricKind::Counter)
        return 0;
    return it->second.counter->value();
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const Entry &e : other.entries()) {
        switch (e.kind) {
          case MetricKind::Counter:
            counter(*e.name).inc(e.counter->value());
            break;
          case MetricKind::Gauge:
            gauge(*e.name).set(e.gauge->value());
            break;
          case MetricKind::Histogram:
            histogram(*e.name, e.histogram->bounds())
                .merge(*e.histogram);
            break;
        }
    }
}

std::vector<MetricRegistry::Entry>
MetricRegistry::entries() const
{
    std::vector<Entry> out;
    out.reserve(items.size());
    for (const auto &[name, holder] : items) {
        Entry e;
        e.name = &name;
        e.kind = holder.kind;
        e.counter = holder.counter.get();
        e.gauge = holder.gauge.get();
        e.histogram = holder.histogram.get();
        out.push_back(e);
    }
    return out; // std::map iteration is already name-ordered
}

} // namespace ev8
