#include "obs/metrics.hh"

#include <algorithm>
#include <stdexcept>

namespace ev8
{

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::logic_error("histogram bounds must be ascending");
}

void
Histogram::observe(double value, uint64_t count)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    counts_[static_cast<size_t>(it - bounds_.begin())] += count;
    count_ += count;
    sum_ += value * static_cast<double>(count);
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

MetricRegistry::Holder &
MetricRegistry::find(const std::string &name, MetricKind kind)
{
    const auto it = items.find(name);
    if (it == items.end()) {
        Holder &h = items[name];
        h.kind = kind;
        return h;
    }
    if (it->second.kind != kind)
        throw std::logic_error("metric '" + name
                               + "' already registered as another kind");
    return it->second;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    Holder &h = find(name, MetricKind::Counter);
    if (!h.counter)
        h.counter = std::make_unique<Counter>();
    return *h.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    Holder &h = find(name, MetricKind::Gauge);
    if (!h.gauge)
        h.gauge = std::make_unique<Gauge>();
    return *h.gauge;
}

Histogram &
MetricRegistry::histogram(const std::string &name,
                          std::vector<double> upper_bounds)
{
    Holder &h = find(name, MetricKind::Histogram);
    if (!h.histogram) {
        h.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    } else if (h.histogram->bounds() != upper_bounds) {
        throw std::logic_error("histogram '" + name
                               + "' re-registered with different bounds");
    }
    return *h.histogram;
}

bool
MetricRegistry::has(const std::string &name) const
{
    return items.count(name) != 0;
}

uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    const auto it = items.find(name);
    if (it == items.end() || it->second.kind != MetricKind::Counter)
        return 0;
    return it->second.counter->value();
}

std::vector<MetricRegistry::Entry>
MetricRegistry::entries() const
{
    std::vector<Entry> out;
    out.reserve(items.size());
    for (const auto &[name, holder] : items) {
        Entry e;
        e.name = &name;
        e.kind = holder.kind;
        e.counter = holder.counter.get();
        e.gauge = holder.gauge.get();
        e.histogram = holder.histogram.get();
        out.push_back(e);
    }
    return out; // std::map iteration is already name-ordered
}

} // namespace ev8
