/**
 * @file
 * The metric registry: named counters, gauges and fixed-bucket
 * histograms that components register into by name.
 *
 * Naming convention (dotted paths, lower_snake leaf names):
 *
 *     sim.fetch_blocks            counter, simulator-level tallies
 *     lghist.bits_inserted        counter, history-compression stats
 *     pred.<name>.bank<k>.*       counter, per-bank predictor internals
 *     frontend.banks.*            counter, bank-scheduler occupancy
 *     core.storage.<table>.*      counter/gauge, physical-array accesses
 *     sim.time.<phase>.*          counter/gauge, ScopedTimer results
 *
 * The registry hands out stable references: a Counter& stays valid for
 * the registry's lifetime, so hot paths can hold the pointer and bump it
 * without a map lookup. Registering the same name twice returns the same
 * metric; registering it as a different kind throws std::logic_error
 * (name collisions are bugs, not data).
 */

#ifndef EV8_OBS_METRICS_HH
#define EV8_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ev8
{

/** Monotonic event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { v += n; }
    uint64_t value() const { return v; }

  private:
    uint64_t v = 0;
};

/** Last-written point-in-time value. */
class Gauge
{
  public:
    void set(double value) { v = value; }
    double value() const { return v; }

  private:
    double v = 0.0;
};

/**
 * Fixed-bucket histogram: @p upper_bounds are ascending inclusive bucket
 * upper edges; one implicit overflow bucket catches everything above the
 * last bound (so bucketCounts().size() == bounds().size() + 1).
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upper_bounds);

    /** Records @p count observations of value @p value. */
    void observe(double value, uint64_t count = 1);

    const std::vector<double> &bounds() const { return bounds_; }
    const std::vector<uint64_t> &bucketCounts() const { return counts_; }
    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

class MetricRegistry
{
  public:
    /** Gets or creates the named counter. */
    Counter &counter(const std::string &name);

    /** Gets or creates the named gauge. */
    Gauge &gauge(const std::string &name);

    /**
     * Gets or creates the named histogram. Re-registration must repeat
     * the same bounds; a mismatch throws std::logic_error.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    bool has(const std::string &name) const;
    size_t size() const { return items.size(); }

    /** Value of a counter, or 0 if it was never registered. */
    uint64_t counterValue(const std::string &name) const;

    /** One registered metric, for exporters. */
    struct Entry
    {
        const std::string *name = nullptr;
        MetricKind kind = MetricKind::Counter;
        const Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const Histogram *histogram = nullptr;
    };

    /** All metrics in lexicographic name order (deterministic export). */
    std::vector<Entry> entries() const;

  private:
    struct Holder
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Holder &find(const std::string &name, MetricKind kind);

    std::map<std::string, Holder> items;
};

} // namespace ev8

#endif // EV8_OBS_METRICS_HH
