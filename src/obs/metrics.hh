/**
 * @file
 * The metric registry: named counters, gauges and fixed-bucket
 * histograms that components register into by name.
 *
 * Naming convention (dotted paths, lower_snake leaf names):
 *
 *     sim.fetch_blocks            counter, simulator-level tallies
 *     lghist.bits_inserted        counter, history-compression stats
 *     pred.<name>.bank<k>.*       counter, per-bank predictor internals
 *     frontend.banks.*            counter, bank-scheduler occupancy
 *     core.storage.<table>.*      counter/gauge, physical-array accesses
 *     sim.time.<phase>.*          counter/gauge, ScopedTimer results
 *
 * The registry hands out stable references: a Counter& stays valid for
 * the registry's lifetime, so hot paths can hold the pointer and bump it
 * without a map lookup. Registering the same name twice returns the same
 * metric; registering it as a different kind throws std::logic_error
 * (name collisions are bugs, not data).
 *
 * Concurrency model: *updates* to already-registered metrics (inc, set,
 * observe) are lock-free and safe from any number of threads --
 * counters, gauges and histogram buckets are atomics. *Registration*
 * (counter()/gauge()/histogram() creating a new name) mutates the map
 * and must be serialized by the caller. The experiment engine sidesteps
 * the distinction entirely: every parallel job gets a private registry,
 * merged into the shared one with merge() in deterministic submission
 * order.
 */

#ifndef EV8_OBS_METRICS_HH
#define EV8_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ev8
{

/** Monotonic event count. Concurrent inc() calls are lock-free. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { v.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v{0};
};

/** Last-written point-in-time value. Concurrent set() is lock-free. */
class Gauge
{
  public:
    void set(double value) { v.store(value, std::memory_order_relaxed); }
    double value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v{0.0};
};

/**
 * Fixed-bucket histogram: @p upper_bounds are ascending inclusive bucket
 * upper edges; one implicit overflow bucket catches everything above the
 * last bound (so bucketCounts().size() == bounds().size() + 1).
 * Concurrent observe() calls on a constructed histogram are lock-free.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upper_bounds);

    /** Records @p count observations of value @p value. */
    void observe(double value, uint64_t count = 1);

    /**
     * Folds @p other into this histogram (bucket counts, count and sum
     * add). Bounds must match exactly; a mismatch throws
     * std::logic_error.
     */
    void merge(const Histogram &other);

    /**
     * Adds a previously exported state verbatim: @p bucket_counts (one
     * entry per bound plus the overflow bucket) fold into the bucket
     * counters and @p count / @p sum into the totals. The
     * checkpoint/restore path uses this to rebuild a job's histogram
     * bit-exactly (the sum is restored from its serialized bit
     * pattern, not re-derived from observations). A bucket-count size
     * mismatch throws std::logic_error.
     */
    void injectState(const std::vector<uint64_t> &bucket_counts,
                     uint64_t count, double sum);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Snapshot of the per-bucket counts (bounds + overflow). */
    std::vector<uint64_t> bucketCounts() const;

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const;

  private:
    void addToSum(double delta);

    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> counts_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

class MetricRegistry
{
  public:
    /** Gets or creates the named counter. */
    Counter &counter(const std::string &name);

    /** Gets or creates the named gauge. */
    Gauge &gauge(const std::string &name);

    /**
     * Gets or creates the named histogram. Re-registration must repeat
     * the same bounds; a mismatch throws std::logic_error.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    bool has(const std::string &name) const;
    size_t size() const { return items.size(); }

    /** Value of a counter, or 0 if it was never registered. */
    uint64_t counterValue(const std::string &name) const;

    /**
     * Folds @p other into this registry: counters add, gauges take
     * @p other's value (last write wins), histograms add bucket-wise.
     * A name registered as different kinds in the two registries (or a
     * histogram bounds mismatch) throws std::logic_error. Calling
     * merge() per job in submission order makes a parallel run's
     * registry identical to the serial run's.
     */
    void merge(const MetricRegistry &other);

    /** One registered metric, for exporters. */
    struct Entry
    {
        const std::string *name = nullptr;
        MetricKind kind = MetricKind::Counter;
        const Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const Histogram *histogram = nullptr;
    };

    /** All metrics in lexicographic name order (deterministic export). */
    std::vector<Entry> entries() const;

  private:
    struct Holder
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Holder &find(const std::string &name, MetricKind kind);

    std::map<std::string, Holder> items;
};

} // namespace ev8

#endif // EV8_OBS_METRICS_HH
