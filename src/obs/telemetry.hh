/**
 * @file
 * Run-summary telemetry for the ev8-bench-v1 JSON artifact: resource
 * usage (CPU time, peak RSS), coarse per-phase wall times off the span
 * tracer, the per-cell duration histogram, trace-cache hit ratios and
 * thread-pool utilization. The block is additive to the schema and its
 * values are timing-dependent by design -- determinism gates compare
 * artifacts with the telemetry member masked, while its *schema*
 * (member names and shapes) is CI-validated.
 */

#ifndef EV8_OBS_TELEMETRY_HH
#define EV8_OBS_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ev8
{

/** Process resource usage snapshot. */
struct ResourceSample
{
    uint64_t cpuUserNs = 0;
    uint64_t cpuSysNs = 0;
    uint64_t peakRssBytes = 0;
};

/**
 * CPU time via getrusage(RUSAGE_SELF); peak RSS from /proc/self/status
 * VmHWM, falling back to ru_maxrss where procfs is unavailable.
 */
ResourceSample sampleResourceUsage();

/** One span phase's always-on coarse totals, by stable name. */
struct TelemetryPhase
{
    std::string name; //!< spanPhaseName(): "cell", "decode", ...
    uint64_t count = 0;
    uint64_t wallNs = 0;
};

/** Everything the "telemetry" JSON member serializes. */
struct TelemetryExport
{
    uint64_t wallNs = 0; //!< whole-process wall time (harness lifetime)
    uint64_t cpuUserNs = 0;
    uint64_t cpuSysNs = 0;
    uint64_t peakRssBytes = 0;

    std::vector<TelemetryPhase> phases; //!< every SpanPhase, in order

    /** Per-cell duration histogram (ms), engine-owned obs::Histogram. */
    std::vector<double> cellBoundsMs;
    std::vector<uint64_t> cellBucketCounts; //!< bounds + overflow
    uint64_t cellCount = 0;
    double cellSumMs = 0.0;

    /** Trace-cache effectiveness (stream layer ratio is the headline). */
    uint64_t traceRequests = 0;
    uint64_t traceDiskHits = 0;
    uint64_t tracesGenerated = 0;
    uint64_t streamRequests = 0;
    uint64_t streamDiskHits = 0;
    uint64_t streamsDecoded = 0;
    double streamHitRatio = 0.0; //!< streamDiskHits / streamRequests

    /** Pool utilization: busy / (workers x grid wall). */
    uint64_t poolWorkers = 0;
    uint64_t poolGridCells = 0;
    uint64_t poolBusyNs = 0;
    uint64_t poolWallNs = 0;
    double poolUtilization = 0.0;

    /**
     * Active fused-stepper SIMD backend ("off" / "scalar" / "avx2",
     * simd::backendName) and the lanes one vector op covers. Not
     * timing-dependent, but EV8_SIMD-dependent -- it lives in the
     * masked telemetry block so A/B runs stay byte-comparable.
     */
    std::string simdBackend;
    unsigned simdLanes = 0;
};

} // namespace ev8

#endif // EV8_OBS_TELEMETRY_HH
