#include "obs/telemetry.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/resource.h>

namespace ev8
{

namespace
{

uint64_t
timevalToNs(const timeval &tv)
{
    return static_cast<uint64_t>(tv.tv_sec) * 1'000'000'000ull
        + static_cast<uint64_t>(tv.tv_usec) * 1'000ull;
}

/** VmHWM ("high water mark" RSS) from /proc/self/status, in bytes. */
uint64_t
peakRssFromProc()
{
    std::ifstream status("/proc/self/status");
    if (!status)
        return 0;
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        unsigned long long kb = 0;
        if (std::sscanf(line.c_str(), "VmHWM: %llu kB", &kb) == 1)
            return static_cast<uint64_t>(kb) * 1024ull;
        return 0;
    }
    return 0;
}

} // namespace

ResourceSample
sampleResourceUsage()
{
    ResourceSample sample;
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        sample.cpuUserNs = timevalToNs(usage.ru_utime);
        sample.cpuSysNs = timevalToNs(usage.ru_stime);
        // ru_maxrss is kilobytes on Linux; the procfs value wins when
        // available (same quantity, and what the schema documents).
        sample.peakRssBytes =
            static_cast<uint64_t>(usage.ru_maxrss) * 1024ull;
    }
    if (const uint64_t hwm = peakRssFromProc())
        sample.peakRssBytes = hwm;
    return sample;
}

} // namespace ev8
