/**
 * @file
 * Live run progress for long experiment grids (--progress): a
 * rate-limited single-line stderr reporter fed by the experiment
 * engine. Shows cells done/total, failed/retried counts, an ETA
 * extrapolated from completed-cell durations, and the cell each worker
 * is currently executing. Output is explicitly timing-dependent and
 * never part of the byte-compared artifacts.
 *
 * Disabled (the default) every hook is a relaxed atomic load and an
 * untaken branch, matching the obs layer's gate discipline.
 */

#ifndef EV8_OBS_PROGRESS_HH
#define EV8_OBS_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ev8
{

class ProgressMeter
{
  public:
    /** The process-wide meter the engine reports into. */
    static ProgressMeter &global();

    void enable() { enabled_.store(true, std::memory_order_relaxed); }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** A grid batch of @p cells cells was submitted. */
    void beginBatch(size_t cells);

    /** A batch finished (forces a render so totals read current). */
    void endBatch();

    /** The calling worker started executing the cell named @p label. */
    void noteCurrent(const std::string &label);

    /**
     * A cell finished. @p dur_ns feeds the ETA estimate; failed cells
     * count separately and do not feed it.
     */
    void noteDone(uint64_t dur_ns, bool failed);

    /** A cell attempt failed and will be retried. */
    void noteRetried();

    /** Final render plus newline, so later output starts clean. */
    void finishLine();

    /**
     * Pure ETA estimate in seconds: the mean completed-cell duration
     * extrapolated over the remaining cells, spread across the workers
     * that can still run in parallel (never more than the cells left,
     * so the tail of a wide grid is not underestimated). Returns a
     * negative value when no meaningful estimate exists: nothing has
     * completed successfully, no duration has been observed, nothing
     * remains, or the grid is a single cell (the only sample would be
     * the cell being predicted).
     */
    static double etaSeconds(uint64_t total, uint64_t done,
                             uint64_t failed, uint64_t sum_dur_ns,
                             size_t workers);

  private:
    void render(bool force);

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> total_{0};
    std::atomic<uint64_t> done_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> retried_{0};
    std::atomic<uint64_t> sumDurNs_{0};
    std::atomic<uint64_t> lastRenderNs_{0};
    std::atomic<bool> rendered_{false};

    std::mutex mutex_; //!< guards current_ and the stderr line
    std::vector<std::string> current_; //!< per-worker current cell
    size_t lastLineLen_ = 0;
};

} // namespace ev8

#endif // EV8_OBS_PROGRESS_HH
