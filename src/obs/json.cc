#include "obs/json.hh"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ev8
{

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return; // the key already emitted its comma
    }
    if (!firstInScope.back())
        out_ << ',';
    firstInScope.back() = false;
}

void
JsonWriter::beginObject()
{
    separate();
    out_ << '{';
    firstInScope.push_back(true);
}

void
JsonWriter::endObject()
{
    firstInScope.pop_back();
    out_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out_ << '[';
    firstInScope.push_back(true);
}

void
JsonWriter::endArray()
{
    firstInScope.pop_back();
    out_ << ']';
}

void
JsonWriter::key(const std::string &name)
{
    if (!firstInScope.back())
        out_ << ',';
    firstInScope.back() = false;
    out_ << '"' << escapeJson(name) << "\":";
    pendingKey = true;
}

void
JsonWriter::value(const std::string &text)
{
    separate();
    out_ << '"' << escapeJson(text) << '"';
}

void
JsonWriter::value(const char *text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    separate();
    if (!std::isfinite(number)) {
        out_ << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    out_ << buf;
}

void
JsonWriter::value(uint64_t number)
{
    separate();
    out_ << number;
}

void
JsonWriter::value(int number)
{
    separate();
    out_ << number;
}

void
JsonWriter::value(bool flag)
{
    separate();
    out_ << (flag ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    separate();
    out_ << "null";
}

void
JsonWriter::rawValue(const std::string &json)
{
    separate();
    out_ << json;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, val] : members) {
        if (key == name)
            return &val;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &name) const
{
    const JsonValue *v = find(name);
    if (!v)
        throw std::out_of_range("json: no member '" + name + "'");
    return *v;
}

namespace
{

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json parse error at offset "
                                 + std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'
                   || s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeWord(const char *word)
    {
        size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        JsonValue v;
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"':
            v.kind = JsonValue::Kind::String;
            v.text = string();
            return v;
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Null;
            return v;
          default: return numberValue();
        }
    }

    JsonValue
    numberValue()
    {
        const size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E'
                   || s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            v.number = std::stod(s.substr(start, pos - start));
        } catch (const std::exception &) {
            fail("malformed number");
        }
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            const char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            const char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    fail("truncated \\u escape");
                const unsigned code = static_cast<unsigned>(
                    std::stoul(s.substr(pos, 4), nullptr, 16));
                pos += 4;
                // Basic-multilingual-plane only; enough for our ASCII
                // metric names and benchmark labels.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.items.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string name = string();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(name), value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

} // namespace ev8
