/**
 * @file
 * Coarse timing model of the EV8 instruction-fetch front end (Section 2).
 *
 * The EV8 fetches up to two 8-instruction blocks per cycle. A fast but
 * inaccurate line predictor produces next-block addresses within the
 * cycle; the 2-cycle PC address generator (which contains the
 * conditional branch predictor) verifies them, redirecting fetch with a
 * 2-cycle bubble on disagreement. Conditional branch mispredictions cost
 * at least 14 cycles (branch resolution happens at cycle 14 or later).
 *
 * This model is used by the front-end example and the banking bench to
 * translate predictor accuracy into fetch-bandwidth terms; it is not a
 * cycle-accurate EV8 (none exists publicly).
 */

#ifndef EV8_FRONTEND_PIPELINE_HH
#define EV8_FRONTEND_PIPELINE_HH

#include <cstdint>

#include "frontend/fetch_block.hh"
#include "frontend/line_predictor.hh"

namespace ev8
{

/** Aggregate results of a front-end simulation. */
struct FrontEndStats
{
    uint64_t blocks = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t lineMispredicts = 0;
    uint64_t branchMispredicts = 0;

    /** Fetch throughput in instructions per cycle. */
    double
    fetchIpc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions)
                               / static_cast<double>(cycles);
    }

    /** Fraction of blocks whose successor the line predictor got right. */
    double
    lineAccuracy() const
    {
        return blocks == 0 ? 0.0
                           : 1.0 - static_cast<double>(lineMispredicts)
                               / static_cast<double>(blocks);
    }
};

/**
 * Walks a fetch-block stream, charging cycles for fetch slots, line
 * mispredictions, and conditional-branch mispredictions.
 */
class FrontEndPipeline
{
  public:
    /**
     * @param line_log2_entries line predictor size
     * @param line_redirect_penalty bubble when PC-address-generation
     *        overrides the line prediction (2-cycle pipeline, Fig. 1)
     * @param branch_penalty minimum branch misprediction penalty
     */
    explicit FrontEndPipeline(unsigned line_log2_entries = 12,
                              unsigned line_redirect_penalty = 2,
                              unsigned branch_penalty = 14);

    /**
     * Accounts for one fetched block. @p branch_mispredicted says
     * whether the conditional branch predictor mispredicted any branch
     * in this block (the caller runs the predictor).
     */
    void onBlock(const FetchBlock &block, bool branch_mispredicted);

    const FrontEndStats &stats() const { return stats_; }
    const LinePredictor &linePredictor() const { return linePred; }

    void clear();

  private:
    LinePredictor linePred;
    unsigned lineRedirectPenalty;
    unsigned branchPenalty;
    FrontEndStats stats_;

    bool havePrev = false;
    uint64_t prevAddr = 0;
    uint64_t slotParity = 0; //!< two blocks share a cycle
};

} // namespace ev8

#endif // EV8_FRONTEND_PIPELINE_HH
