/**
 * @file
 * Return-address-stack predictor (Section 2: the EV8 PC address
 * generator includes "a return address stack predictor" next to the
 * conditional and jump predictors).
 *
 * Classic circular-overwrite stack: calls push their return address,
 * returns pop a prediction. Overflow silently wraps (overwriting the
 * oldest entries), underflow predicts garbage -- both the realistic
 * hardware behaviours whose cost the stats expose.
 */

#ifndef EV8_FRONTEND_RAS_HH
#define EV8_FRONTEND_RAS_HH

#include <cstdint>
#include <vector>

namespace ev8
{

class ReturnAddressStack
{
  public:
    /** @param depth entries in the circular stack (16-32 typical). */
    explicit ReturnAddressStack(unsigned depth = 16);

    /** A call at @p call_pc: pushes the sequential return address. */
    void pushCall(uint64_t call_pc);

    /**
     * A return: pops and returns the predicted return address (0 when
     * the stack has underflowed).
     */
    uint64_t popReturn();

    /** Records whether the popped prediction matched reality. */
    void
    recordOutcome(uint64_t predicted, uint64_t actual)
    {
        ++returns_;
        if (predicted != actual)
            ++mispredicts_;
    }

    /** Live entries (saturates at the stack depth). */
    unsigned occupancy() const { return occupancy_; }
    unsigned depth() const { return depth_; }
    uint64_t returnsSeen() const { return returns_; }
    uint64_t mispredicts() const { return mispredicts_; }

    double
    accuracy() const
    {
        return returns_ == 0
            ? 1.0
            : 1.0 - static_cast<double>(mispredicts_)
                  / static_cast<double>(returns_);
    }

    void clear();

  private:
    unsigned depth_;
    unsigned top = 0;        //!< index of the next free slot
    unsigned occupancy_ = 0;
    std::vector<uint64_t> stack;
    uint64_t returns_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace ev8

#endif // EV8_FRONTEND_RAS_HH
