/**
 * @file
 * Convenience helpers over the streaming FetchBlockBuilder.
 */

#ifndef EV8_FRONTEND_FETCH_BLOCK_UTIL_HH
#define EV8_FRONTEND_FETCH_BLOCK_UTIL_HH

#include <vector>

#include "frontend/fetch_block.hh"

namespace ev8
{

class Trace;

/**
 * Materializes the whole fetch-block sequence of @p trace. Convenient
 * for tests and small examples; large runs should stream through
 * FetchBlockBuilder::feed instead.
 */
std::vector<FetchBlock> buildFetchBlocks(const Trace &trace);

} // namespace ev8

#endif // EV8_FRONTEND_FETCH_BLOCK_UTIL_HH
