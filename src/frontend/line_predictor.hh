/**
 * @file
 * The EV8 line predictor model (Section 2).
 *
 * On every cycle the EV8 must produce the addresses of the next two
 * fetch blocks within a single cycle, which only leaves room for very
 * fast hardware: a set of tables indexed with the address of the most
 * recent fetch block through "very limited hashing logic". The
 * consequence is relatively low line-prediction accuracy, which is why
 * the line predictor is backed by the powerful (but 2-cycle) PC address
 * generator containing the conditional branch predictor this repository
 * is about.
 *
 * We model the line predictor as a direct-mapped next-fetch-block table:
 * index = low block-address bits (no de-aliasing tags -- mispredictions
 * from aliasing are precisely the realistic behaviour), trained with the
 * actual successor after the fact.
 */

#ifndef EV8_FRONTEND_LINE_PREDICTOR_HH
#define EV8_FRONTEND_LINE_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ev8
{

/**
 * Direct-mapped next-fetch-block-address predictor.
 */
class LinePredictor
{
  public:
    /** @param log2_entries table size; the EV8 line predictor was large
     *  but cheap per entry. */
    explicit LinePredictor(unsigned log2_entries = 12);

    /** Predicted address of the block following the one at @p addr. */
    uint64_t predict(uint64_t addr) const;

    /** Trains the entry for @p addr with the observed successor. */
    void train(uint64_t addr, uint64_t next_addr);

    /** Storage cost in bits (entries x stored address width). */
    uint64_t storageBits() const;

    void clear();

  private:
    size_t index(uint64_t addr) const;

    unsigned log2Entries;
    std::vector<uint64_t> table;
};

} // namespace ev8

#endif // EV8_FRONTEND_LINE_PREDICTOR_HH
