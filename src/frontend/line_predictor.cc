#include "frontend/line_predictor.hh"

#include "common/bits.hh"

namespace ev8
{

LinePredictor::LinePredictor(unsigned log2_entries)
    : log2Entries(log2_entries), table(size_t{1} << log2_entries, 0)
{
}

size_t
LinePredictor::index(uint64_t addr) const
{
    // "Very limited hashing": block-granular address bits with a single
    // XOR of a higher slice, nothing more.
    const uint64_t line = addr >> 2;
    return static_cast<size_t>(
        (line ^ (line >> log2Entries)) & mask(log2Entries));
}

uint64_t
LinePredictor::predict(uint64_t addr) const
{
    const uint64_t entry = table[index(addr)];
    // Empty entries fall back to sequential fetch.
    return entry != 0 ? entry : (addr & ~uint64_t{31}) + 32;
}

void
LinePredictor::train(uint64_t addr, uint64_t next_addr)
{
    table[index(addr)] = next_addr;
}

uint64_t
LinePredictor::storageBits() const
{
    // Model cost: each entry stores a 43-bit fetch-block address
    // (Alpha virtual addresses are 43-bit in EV6-era implementations).
    return (uint64_t{1} << log2Entries) * 43;
}

void
LinePredictor::clear()
{
    table.assign(table.size(), 0);
}

} // namespace ev8
