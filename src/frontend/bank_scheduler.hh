/**
 * @file
 * Conflict-free bank-number computation (Section 6.2).
 *
 * The EV8 predictor is 4-way bank interleaved with single-ported memory
 * cells, yet must serve predictions for two dynamically successive fetch
 * blocks every cycle. Instead of resolving conflicts, the EV8 computes
 * bank numbers such that conflicts never occur: the bank for fetch
 * block A is derived from the address of block Y (two slots earlier) and
 * the bank used by block Z (the immediately preceding slot):
 *
 *     if ((y6, y5) == Bz)  Ba = (y6, y5 XOR 1)   else  Ba = (y6, y5)
 *
 * Since the adjustment only ever flips the low bit away from Bz, any two
 * dynamically successive fetch blocks land in distinct banks, by
 * construction. The inputs are available one cycle before the predictor
 * access ("two-block ahead" computation [18]), so no latency is added.
 */

#ifndef EV8_FRONTEND_BANK_SCHEDULER_HH
#define EV8_FRONTEND_BANK_SCHEDULER_HH

#include <cstdint>

namespace ev8
{

/** Number of predictor banks on the EV8. */
constexpr unsigned kNumBanks = 4;

/**
 * The pure combinational function: bank for a block given the address of
 * the block two slots earlier (@p y_addr) and the bank of the previous
 * block (@p z_bank).
 */
constexpr unsigned
computeBankNumber(uint64_t y_addr, unsigned z_bank)
{
    const unsigned candidate =
        static_cast<unsigned>((y_addr >> 5) & 0x3); // (y6, y5)
    if (candidate == (z_bank & 0x3))
        return candidate ^ 0x1; // (y6, y5 XOR 1)
    return candidate;
}

/**
 * Stateful wrapper that walks a fetch-block stream assigning bank
 * numbers, tracking the one-slot (Z bank) and two-slot (Y address)
 * recurrences.
 */
class BankScheduler
{
  public:
    /**
     * Assigns the bank for the next fetch block. @p block_addr is that
     * block's own address, recorded so it can serve as the "Y address"
     * two slots later.
     */
    unsigned
    assign(uint64_t block_addr)
    {
        const unsigned bank = computeBankNumber(yAddr, zBank);
        yAddr = zAddr;
        zAddr = block_addr;
        zBank = bank;
        return bank;
    }

    unsigned lastBank() const { return zBank; }

    void
    clear()
    {
        yAddr = 0;
        zAddr = 0;
        zBank = 0;
    }

  private:
    uint64_t yAddr = 0; //!< address of the block two slots back
    uint64_t zAddr = 0; //!< address of the previous block
    unsigned zBank = 0; //!< bank used by the previous block
};

} // namespace ev8

#endif // EV8_FRONTEND_BANK_SCHEDULER_HH
