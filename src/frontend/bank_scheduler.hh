/**
 * @file
 * Conflict-free bank-number computation (Section 6.2).
 *
 * The EV8 predictor is 4-way bank interleaved with single-ported memory
 * cells, yet must serve predictions for two dynamically successive fetch
 * blocks every cycle. Instead of resolving conflicts, the EV8 computes
 * bank numbers such that conflicts never occur: the bank for fetch
 * block A is derived from the address of block Y (two slots earlier) and
 * the bank used by block Z (the immediately preceding slot):
 *
 *     if ((y6, y5) == Bz)  Ba = (y6, y5 XOR 1)   else  Ba = (y6, y5)
 *
 * Since the adjustment only ever flips the low bit away from Bz, any two
 * dynamically successive fetch blocks land in distinct banks, by
 * construction. The inputs are available one cycle before the predictor
 * access ("two-block ahead" computation [18]), so no latency is added.
 */

#ifndef EV8_FRONTEND_BANK_SCHEDULER_HH
#define EV8_FRONTEND_BANK_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <string>

namespace ev8
{

class MetricRegistry; // obs/metrics.hh

/** Number of predictor banks on the EV8. */
constexpr unsigned kNumBanks = 4;

/**
 * The pure combinational function: bank for a block given the address of
 * the block two slots earlier (@p y_addr) and the bank of the previous
 * block (@p z_bank).
 */
constexpr unsigned
computeBankNumber(uint64_t y_addr, unsigned z_bank)
{
    const unsigned candidate =
        static_cast<unsigned>((y_addr >> 5) & 0x3); // (y6, y5)
    if (candidate == (z_bank & 0x3))
        return candidate ^ 0x1; // (y6, y5 XOR 1)
    return candidate;
}

/**
 * Stateful wrapper that walks a fetch-block stream assigning bank
 * numbers, tracking the one-slot (Z bank) and two-slot (Y address)
 * recurrences.
 */
class BankScheduler
{
  public:
    /**
     * Assigns the bank for the next fetch block. @p block_addr is that
     * block's own address, recorded so it can serve as the "Y address"
     * two slots later.
     */
    unsigned
    assign(uint64_t block_addr)
    {
        const unsigned candidate =
            static_cast<unsigned>((yAddr >> 5) & 0x3);
        const unsigned bank = computeBankNumber(yAddr, zBank);
        ++assigns_;
        if (candidate != bank)
            ++adjustments_;
        ++occupancy_[bank];
        yAddr = zAddr;
        zAddr = block_addr;
        zBank = bank;
        return bank;
    }

    unsigned lastBank() const { return zBank; }

    /** Fetch blocks routed to each bank since the last clear(). */
    const std::array<uint64_t, kNumBanks> &
    bankOccupancy() const
    {
        return occupancy_;
    }

    /** Total assignments made since the last clear(). */
    uint64_t assigns() const { return assigns_; }

    /** Assignments where the conflict-avoidance rule flipped y5. */
    uint64_t adjustments() const { return adjustments_; }

    /**
     * Publishes counters "<prefix>.bank<k>.blocks" (occupancy per
     * bank), "<prefix>.assigns" and "<prefix>.adjustments".
     */
    void publishMetrics(MetricRegistry &registry,
                        const std::string &prefix) const;

    void
    clear()
    {
        yAddr = 0;
        zAddr = 0;
        zBank = 0;
        occupancy_.fill(0);
        assigns_ = 0;
        adjustments_ = 0;
    }

  private:
    uint64_t yAddr = 0; //!< address of the block two slots back
    uint64_t zAddr = 0; //!< address of the previous block
    unsigned zBank = 0; //!< bank used by the previous block

    std::array<uint64_t, kNumBanks> occupancy_{};
    uint64_t assigns_ = 0;
    uint64_t adjustments_ = 0;
};

} // namespace ev8

#endif // EV8_FRONTEND_BANK_SCHEDULER_HH
