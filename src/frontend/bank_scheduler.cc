#include "frontend/bank_scheduler.hh"

#include "obs/metrics.hh"

namespace ev8
{

static_assert(computeBankNumber(0x00, 0) == 1,
              "candidate equal to Z's bank must flip the low bit");
static_assert(computeBankNumber(0x20, 0) == 1, "(y6,y5) = 01");
static_assert(computeBankNumber(0x40, 0) == 2, "(y6,y5) = 10");
static_assert(computeBankNumber(0x60, 3) == 2,
              "conflict with bank 3 resolves to bank 2");

void
BankScheduler::publishMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    for (unsigned b = 0; b < kNumBanks; ++b) {
        registry.counter(prefix + ".bank" + std::to_string(b) + ".blocks")
            .inc(occupancy_[b]);
    }
    registry.counter(prefix + ".assigns").inc(assigns_);
    registry.counter(prefix + ".adjustments").inc(adjustments_);
}

} // namespace ev8
