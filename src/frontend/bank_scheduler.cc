// All of the bank scheduler is constexpr/inline in the header; this
// translation unit exists to give the header a home in the library and
// to force a standalone compile of its contents.
#include "frontend/bank_scheduler.hh"

namespace ev8
{

static_assert(computeBankNumber(0x00, 0) == 1,
              "candidate equal to Z's bank must flip the low bit");
static_assert(computeBankNumber(0x20, 0) == 1, "(y6,y5) = 01");
static_assert(computeBankNumber(0x40, 0) == 2, "(y6,y5) = 10");
static_assert(computeBankNumber(0x60, 3) == 2,
              "conflict with bank 3 resolves to bank 2");

} // namespace ev8
