// LghistTracker and DelayedHistory are header-only; this translation
// unit forces a standalone compile of the header's contents.
#include "frontend/lghist.hh"

namespace ev8
{

static_assert(kFetchBlockInstrs == 8, "EV8 fetches 8-instruction blocks");
static_assert(kFetchBlockBytes == 32, "8 x 4-byte instructions");

} // namespace ev8
