#include "frontend/fetch_block.hh"

#include "frontend/fetch_block_util.hh"
#include "trace/trace.hh"

namespace ev8
{

std::vector<FetchBlock>
buildFetchBlocks(const Trace &trace)
{
    std::vector<FetchBlock> blocks;
    FetchBlockBuilder builder;
    builder.begin(trace.startPc());
    auto sink = [&blocks](const FetchBlock &b) { blocks.push_back(b); };
    for (const auto &rec : trace.records())
        builder.feed(rec, sink);
    builder.flush(sink);
    return blocks;
}

void
FetchBlockBuilder::begin(uint64_t start_pc)
{
    resetAt(start_pc);
}

} // namespace ev8
