#include "frontend/jump_predictor.hh"

#include "common/bits.hh"

namespace ev8
{

JumpPredictor::JumpPredictor(unsigned log2_entries, unsigned tag_bits)
    : log2Entries(log2_entries), tagBits(tag_bits),
      table(size_t{1} << log2_entries)
{
}

size_t
JumpPredictor::index(uint64_t pc) const
{
    const uint64_t line = pc >> 2;
    return static_cast<size_t>((line ^ (line >> log2Entries))
                               & mask(log2Entries));
}

uint16_t
JumpPredictor::tagOf(uint64_t pc) const
{
    return static_cast<uint16_t>((pc >> (2 + log2Entries))
                                 & mask(tagBits));
}

uint64_t
JumpPredictor::predict(uint64_t pc) const
{
    const Entry &e = table[index(pc)];
    if (!e.valid || (tagBits > 0 && e.tag != tagOf(pc)))
        return 0;
    return e.target;
}

void
JumpPredictor::update(uint64_t pc, uint64_t actual_target)
{
    ++lookups_;
    Entry &e = table[index(pc)];
    const bool hit = e.valid && (tagBits == 0 || e.tag == tagOf(pc));
    if (!hit || e.target != actual_target)
        ++mispredicts_;
    e.valid = true;
    e.tag = tagOf(pc);
    e.target = actual_target;
}

uint64_t
JumpPredictor::storageBits() const
{
    // 43-bit Alpha-era virtual target + the partial tag per entry.
    return (uint64_t{1} << log2Entries) * (43 + tagBits);
}

void
JumpPredictor::clear()
{
    table.assign(table.size(), Entry{});
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace ev8
