/**
 * @file
 * Fetch-block reconstruction from a branch trace.
 *
 * Section 2 of the paper: "An instruction fetch block consists of all
 * consecutive valid instructions fetched from the I-cache: an
 * instruction fetch block ends either at the end of an aligned
 * 8-instruction block or on a taken control flow instruction. Not taken
 * conditional branches do not end a fetch block." Up to 8 conditional
 * branches may therefore live in one fetch block, and the EV8 predictor
 * predicts all of them with a single table access.
 */

#ifndef EV8_FRONTEND_FETCH_BLOCK_HH
#define EV8_FRONTEND_FETCH_BLOCK_HH

#include <array>
#include <cassert>
#include <cstdint>

#include "trace/branch_record.hh"

namespace ev8
{

/** Instructions per aligned fetch row (and max per fetch block). */
constexpr unsigned kFetchBlockInstrs = 8;

/** Byte span of an aligned fetch row. */
constexpr uint64_t kFetchBlockBytes = kFetchBlockInstrs * kInstrBytes;

/** A conditional branch inside a fetch block. */
struct BlockBranch
{
    uint64_t pc = 0;     //!< address of the conditional branch
    bool taken = false;  //!< its actual outcome
};

/**
 * One dynamic fetch block: up to 8 sequential instructions, with the
 * conditional branches it contains recorded in fetch order.
 */
struct FetchBlock
{
    uint64_t address = 0;      //!< address of the first instruction
    uint64_t endPc = 0;        //!< one past the last instruction
    bool endsTaken = false;    //!< ended by a taken CTI (vs. alignment)
    uint64_t takenTarget = 0;  //!< target of the ending CTI if endsTaken
    uint8_t numBranches = 0;   //!< conditional branches in the block
    std::array<BlockBranch, kFetchBlockInstrs> branches{};

    /** Instructions in the block (1..8). */
    unsigned
    numInstrs() const
    {
        return static_cast<unsigned>((endPc - address) / kInstrBytes);
    }

    /** Address of the fetch block following this one in fetch order. */
    uint64_t nextAddress() const { return endsTaken ? takenTarget : endPc; }

    /** The last conditional branch of the block (numBranches > 0). */
    const BlockBranch &
    lastBranch() const
    {
        assert(numBranches > 0);
        return branches[numBranches - 1u];
    }

    void
    addBranch(uint64_t pc, bool taken)
    {
        assert(numBranches < kFetchBlockInstrs);
        branches[numBranches++] = BlockBranch{pc, taken};
    }
};

/**
 * Incremental fetch-block builder. Feed it the trace's branch records in
 * order; it emits completed FetchBlocks through a caller-supplied sink
 * (any callable taking const FetchBlock &). Streaming keeps memory flat
 * regardless of trace length.
 */
class FetchBlockBuilder
{
  public:
    /** Starts (or restarts) block construction at @p start_pc. */
    void begin(uint64_t start_pc);

    /**
     * Consumes one branch record. All sequential instructions between
     * the previous record and this one are accounted for; each
     * alignment-closed block is emitted through @p sink, and if the
     * record is a taken CTI the block it terminates is emitted too.
     */
    template <typename Sink>
    void
    feed(const BranchRecord &rec, Sink &&sink)
    {
        assert(rec.pc >= blockStart && "records must run forward");

        // Close alignment-bounded blocks that end before this CTI.
        while (rowEnd(blockStart) <= rec.pc) {
            emitAligned(rowEnd(blockStart), sink);
        }

        if (rec.isConditional())
            current.addBranch(rec.pc, rec.taken);

        if (rec.taken) {
            // A taken CTI ends the fetch block at this instruction.
            current.address = blockStart;
            current.endPc = rec.pc + kInstrBytes;
            current.endsTaken = true;
            current.takenTarget = rec.target;
            sink(static_cast<const FetchBlock &>(current));
            resetAt(rec.target);
        } else if (rec.pc + kInstrBytes == rowEnd(blockStart)) {
            // Not-taken branch on the last slot of the aligned row: the
            // row boundary closes the block.
            emitAligned(rowEnd(blockStart), sink);
        }
    }

    /**
     * Emits the final partial block, if any instructions are pending.
     * Only meaningful at end of trace; the partial block is closed as if
     * by the alignment boundary.
     */
    template <typename Sink>
    void
    flush(Sink &&sink)
    {
        if (current.numBranches > 0) {
            current.address = blockStart;
            current.endPc = rowEnd(blockStart);
            current.endsTaken = false;
            current.takenTarget = 0;
            sink(static_cast<const FetchBlock &>(current));
        }
        resetAt(rowEnd(blockStart));
    }

    /** Address the next block will start at. */
    uint64_t currentBlockStart() const { return blockStart; }

  private:
    /** End address of the aligned 8-instruction row containing @p pc. */
    static uint64_t
    rowEnd(uint64_t pc)
    {
        return (pc & ~(kFetchBlockBytes - 1)) + kFetchBlockBytes;
    }

    template <typename Sink>
    void
    emitAligned(uint64_t end, Sink &&sink)
    {
        current.address = blockStart;
        current.endPc = end;
        current.endsTaken = false;
        current.takenTarget = 0;
        sink(static_cast<const FetchBlock &>(current));
        resetAt(end);
    }

    void
    resetAt(uint64_t pc)
    {
        blockStart = pc;
        current = FetchBlock{};
    }

    uint64_t blockStart = 0;
    FetchBlock current{};
};

} // namespace ev8

#endif // EV8_FRONTEND_FETCH_BLOCK_HH
