#include "frontend/pipeline.hh"

namespace ev8
{

FrontEndPipeline::FrontEndPipeline(unsigned line_log2_entries,
                                   unsigned line_redirect_penalty,
                                   unsigned branch_penalty)
    : linePred(line_log2_entries),
      lineRedirectPenalty(line_redirect_penalty),
      branchPenalty(branch_penalty)
{
}

void
FrontEndPipeline::onBlock(const FetchBlock &block, bool branch_mispredicted)
{
    ++stats_.blocks;
    stats_.instructions += block.numInstrs();

    // Two fetch blocks per cycle: charge one cycle every other block.
    if (slotParity == 0)
        ++stats_.cycles;
    slotParity ^= 1;

    // Line-prediction check: did the line predictor steer fetch from the
    // previous block to this one?
    if (havePrev) {
        if (linePred.predict(prevAddr) != block.address) {
            ++stats_.lineMispredicts;
            stats_.cycles += lineRedirectPenalty;
            slotParity = 0; // redirect restarts the fetch pair
        }
        linePred.train(prevAddr, block.address);
    }
    havePrev = true;
    prevAddr = block.address;

    if (branch_mispredicted) {
        ++stats_.branchMispredicts;
        stats_.cycles += branchPenalty;
        slotParity = 0;
    }
}

void
FrontEndPipeline::clear()
{
    linePred.clear();
    stats_ = FrontEndStats{};
    havePrev = false;
    prevAddr = 0;
    slotParity = 0;
}

} // namespace ev8
