/**
 * @file
 * Indirect-jump target predictor (Section 2: the PC address generator
 * includes "a jump predictor" for computed jumps and indirect calls).
 *
 * Modelled as a tagged, direct-mapped target cache: last-seen target
 * per (partial-tag) jump site. Dispatch-style indirect calls with
 * phase-sticky callees -- which is what our synthetic programs emit --
 * predict well; rapidly switching sites mispredict, as in hardware.
 */

#ifndef EV8_FRONTEND_JUMP_PREDICTOR_HH
#define EV8_FRONTEND_JUMP_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ev8
{

class JumpPredictor
{
  public:
    /**
     * @param log2_entries target-cache entries
     * @param tag_bits partial tag width (0 = untagged)
     */
    explicit JumpPredictor(unsigned log2_entries = 10,
                           unsigned tag_bits = 8);

    /**
     * Predicted target of the indirect jump at @p pc; 0 when the entry
     * is cold or the tag mismatches (no prediction).
     */
    uint64_t predict(uint64_t pc) const;

    /** Trains with the observed target and updates the statistics. */
    void update(uint64_t pc, uint64_t actual_target);

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    double
    accuracy() const
    {
        return lookups_ == 0
            ? 1.0
            : 1.0 - static_cast<double>(mispredicts_)
                  / static_cast<double>(lookups_);
    }

    /** Storage: target + tag bits per entry. */
    uint64_t storageBits() const;

    void clear();

  private:
    struct Entry
    {
        uint64_t target = 0;
        uint16_t tag = 0;
        bool valid = false;
    };

    size_t index(uint64_t pc) const;
    uint16_t tagOf(uint64_t pc) const;

    unsigned log2Entries;
    unsigned tagBits;
    std::vector<Entry> table;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace ev8

#endif // EV8_FRONTEND_JUMP_PREDICTOR_HH
