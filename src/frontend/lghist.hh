/**
 * @file
 * Block-compressed branch history -- the paper's "lghist" (Section 5.1).
 *
 * Instead of shifting up to 16 outcome bits per cycle into a global
 * history register, the EV8 inserts a single bit per fetch block that
 * contains at least one conditional branch: the outcome of the *last*
 * conditional branch in the block, exclusive-ORed with bit 4 of that
 * branch's PC. The PC bit injects path information, flattening the
 * taken/not-taken skew of optimized code into a more uniform history
 * distribution (and de-aliasing otherwise identical histories).
 */

#ifndef EV8_FRONTEND_LGHIST_HH
#define EV8_FRONTEND_LGHIST_HH

#include <cstdint>

#include "common/history.hh"
#include "frontend/fetch_block.hh"

namespace ev8
{

/**
 * Maintains the lghist register over a stream of fetch blocks.
 */
class LghistTracker
{
  public:
    /**
     * @param include_path if true (the EV8 choice), XOR the outcome with
     *        bit 4 of the last conditional branch's PC; if false, the
     *        "lghist, no path" variant of Fig. 7.
     */
    explicit LghistTracker(bool include_path = true)
        : includePath(include_path)
    {}

    /**
     * The history bit a block inserts, or no insertion for blocks
     * without conditional branches.
     */
    static bool
    blockBit(const FetchBlock &block, bool include_path)
    {
        const BlockBranch &last = block.lastBranch();
        bool value = last.taken;
        if (include_path)
            value ^= bit(last.pc, 4) != 0;
        return value;
    }

    /**
     * Advances the register past @p block. Returns true if a bit was
     * inserted (i.e. the block contained a conditional branch).
     */
    bool
    onBlock(const FetchBlock &block)
    {
        if (block.numBranches == 0)
            return false;
        onBranchBlock(block.lastBranch().pc, block.lastBranch().taken);
        return true;
    }

    /**
     * Block-stream variant of onBlock() for callers that no longer
     * materialize FetchBlocks: advances past a block whose *last*
     * conditional branch is (@p last_pc, @p last_taken). Only call for
     * blocks containing at least one conditional branch.
     */
    void
    onBranchBlock(uint64_t last_pc, bool last_taken)
    {
        bool value = last_taken;
        if (includePath)
            value ^= bit(last_pc, 4) != 0;
        reg.push(value);
        ++bitsInserted_;
    }

    /** Current register value, most recent block bit in bit 0. */
    uint64_t value() const { return reg.raw(); }

    const HistoryRegister &reg64() const { return reg; }

    /** Total lghist bits inserted so far (Table 3 denominator). */
    uint64_t bitsInserted() const { return bitsInserted_; }

    void
    clear()
    {
        reg.clear();
        bitsInserted_ = 0;
    }

  private:
    bool includePath;
    HistoryRegister reg;
    uint64_t bitsInserted_ = 0;
};

/**
 * A ring of recent history-register snapshots giving the "N fetch blocks
 * old" view the EV8 pipeline imposes (Section 5.1): predicting block D
 * may not see history bits from its three predecessors, so the predictor
 * indexes with the register as it stood after block D-4.
 *
 * age = 0 reproduces an ideally up-to-date history.
 */
class DelayedHistory
{
  public:
    /** @param age number of predecessor blocks whose bits are unseen. */
    explicit DelayedHistory(unsigned age) : age_(age)
    {
        assert(age < kMaxAge);
    }

    /**
     * History available for predicting the current block: the register
     * value as it stood after block (current - age - 1), i.e. excluding
     * the @ref age_ most recent blocks (zero until enough blocks have
     * been seen, matching a cleared register at program start).
     *
     * Call view() for block t before calling advance() for block t.
     */
    uint64_t
    view() const
    {
        return ring[slot];
    }

    /**
     * Records @p post_value, the register value after the current block
     * was processed, and rotates the window by one block slot. The value
     * becomes visible through view() after age_ + 1 advances, which is
     * exactly when the block age_ + 1 slots downstream is predicted.
     */
    void
    advance(uint64_t post_value)
    {
        ring[slot] = post_value;
        slot = (slot + 1) % (age_ + 1);
    }

    unsigned age() const { return age_; }

    void
    clear()
    {
        ring.fill(0);
        slot = 0;
    }

  private:
    static constexpr unsigned kMaxAge = 16;

    unsigned age_;
    unsigned slot = 0;
    std::array<uint64_t, kMaxAge> ring{};
};

} // namespace ev8

#endif // EV8_FRONTEND_LGHIST_HH
