#include "frontend/ras.hh"

#include "trace/branch_record.hh"

namespace ev8
{

ReturnAddressStack::ReturnAddressStack(unsigned depth)
    : depth_(depth), stack(depth, 0)
{
}

void
ReturnAddressStack::pushCall(uint64_t call_pc)
{
    stack[top] = call_pc + kInstrBytes;
    top = (top + 1) % depth_;
    if (occupancy_ < depth_)
        ++occupancy_;
}

uint64_t
ReturnAddressStack::popReturn()
{
    if (occupancy_ == 0)
        return 0; // underflow: no prediction
    top = (top + depth_ - 1) % depth_;
    --occupancy_;
    return stack[top];
}

void
ReturnAddressStack::clear()
{
    top = 0;
    occupancy_ = 0;
    stack.assign(depth_, 0);
    returns_ = 0;
    mispredicts_ = 0;
}

} // namespace ev8
