/**
 * @file
 * Stratified sampling plans over a PhaseMap.
 *
 * Given a measured-branch budget, the planner allocates windows to
 * phases proportionally to each phase's dynamic-branch weight (largest
 * remainder, every represented phase guaranteed at least one window
 * when the budget allows), picks evenly spaced representatives inside
 * each phase with a seeded deterministic offset, and prepends each
 * selected window with a warmup prefix of earlier blocks so the
 * predictor (and the shared history machinery) is primed before stats
 * are gated on.
 *
 * The plan is a pure function of (PhaseMap, SampleSpec): identical for
 * any --jobs width, which is what makes sampled artifacts
 * byte-identical for a fixed seed.
 *
 * Knobs (all strictly parsed; a malformed value is a usage error, exit
 * 2, matching EV8_SIMD / EV8_JOBS):
 *
 *  - EV8_SAMPLE_MODE:       "off" (default) or "phase"
 *  - EV8_SAMPLE_BUDGET:     measured branches per benchmark at the
 *                           base scale (required when mode=phase;
 *                           rescaled per benchmark exactly like
 *                           --branches)
 *  - EV8_SAMPLE_WINDOW:     branches per window (default 16384)
 *  - EV8_SAMPLE_WARMUP:     warmup branches before each measured
 *                           window (default: one window)
 *  - EV8_SAMPLE_SEED:       in-phase placement seed (default 1)
 *  - EV8_SAMPLE_MAX_PHASES: classifier phase cap (default 16, 1..256)
 */

#ifndef EV8_SIM_PHASE_SAMPLE_PLAN_HH
#define EV8_SIM_PHASE_SAMPLE_PLAN_HH

#include <cstdint>
#include <vector>

#include "sim/phase/phase_map.hh"

namespace ev8
{

/** The sampling configuration, shared by a whole grid run. */
struct SampleSpec
{
    static constexpr uint64_t kDefaultWindowBranches = 16384;

    bool active = false;         //!< mode == "phase"
    uint64_t budget = 0;         //!< measured branches (base scale)
    uint64_t windowBranches = kDefaultWindowBranches;
    uint64_t warmupBranches = kDefaultWindowBranches;
    uint64_t seed = 1;
    uint32_t maxPhases = 16;

    bool operator==(const SampleSpec &) const = default;
};

/**
 * Reads the EV8_SAMPLE_* knobs. Unset mode (or "off") returns an
 * inactive spec; mode=phase without EV8_SAMPLE_BUDGET, or any
 * malformed knob, is a hard usage error (stderr + exit 2).
 */
SampleSpec sampleSpecFromEnv();

/** One selected window plus its warmup prefix. */
struct SampledWindow
{
    uint32_t index = 0;           //!< index into PhaseMap::windows
    uint32_t phaseId = 0;
    uint64_t warmupBlockBegin = 0; //!< warmup runs [this, blockBegin)
    uint64_t blockBegin = 0;       //!< measured blocks [begin, end)
    uint64_t blockEnd = 0;
    uint64_t branchSeqBase = 0;    //!< flat branch index at blockBegin
    uint64_t branches = 0;         //!< measured branches
    uint64_t instrs = 0;           //!< measured instructions
};

struct SamplePlan
{
    /** Per-phase whole-trace totals (indexed by phase ID). */
    struct PhaseTotals
    {
        uint64_t windows = 0;
        uint64_t branches = 0;
        uint64_t instrs = 0;
    };

    uint32_t phases = 0;           //!< phases in the map
    uint64_t windowsTotal = 0;     //!< windows in the map
    uint64_t budget = 0;           //!< scaled measured-branch budget
    uint64_t warmupBranches = 0;   //!< spec echo
    uint64_t seed = 0;             //!< spec echo
    uint64_t totalBranches = 0;    //!< stream branch total
    uint64_t totalInstructions = 0;
    std::vector<PhaseTotals> totals;
    std::vector<SampledWindow> windows; //!< sorted by blockBegin

    /** Measured branches the plan will actually simulate. */
    uint64_t
    measuredBranches() const
    {
        uint64_t n = 0;
        for (const SampledWindow &w : windows)
            n += w.branches;
        return n;
    }
};

/**
 * Builds the plan for @p map at measured budget @p budget (already
 * rescaled for this benchmark). Deterministic in (map, budget, spec
 * seed/warmup). At least one window is always selected.
 */
SamplePlan buildSamplePlan(const PhaseMap &map, const SampleSpec &spec,
                           uint64_t budget);

} // namespace ev8

#endif // EV8_SIM_PHASE_SAMPLE_PLAN_HH
