/**
 * @file
 * Windowed predictability features over a pre-decoded BlockStream.
 *
 * Phase classification ("Workload Characterization for Branch
 * Predictability", PAPERS.md) rests on the observation that a program's
 * branch behaviour over a window of execution is summarized well by a
 * handful of cheap statistics: how often branches are taken, how often
 * individual static branches *change* outcome (a misprediction proxy --
 * a branch that flips constantly is hard for any counter-based scheme),
 * the per-static-branch outcome entropy, and which static branches are
 * live at all (the working set). Two windows with near-identical
 * feature vectors exercise a predictor near-identically, which is what
 * lets the stratified sampler simulate one and extrapolate the other.
 *
 * Everything here is computed from the stream alone -- no predictor is
 * involved -- so the features (and the phase map built from them) are a
 * pure function of the trace content, cacheable alongside it.
 */

#ifndef EV8_SIM_PHASE_FEATURES_HH
#define EV8_SIM_PHASE_FEATURES_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace ev8
{

class BlockStream; // sim/block_stream.hh

/** Hashed static-branch working-set signature width. */
constexpr size_t kPhaseSignatureBins = 32;

/** The feature vector of one execution window. */
struct WindowFeatures
{
    /** Fraction of dynamic branches taken, in [0,1]. */
    double takenRate = 0.0;

    /**
     * Fraction of per-static-branch outcome *transitions* (successive
     * executions of the same branch disagreeing), in [0,1]. The
     * misprediction proxy: saturating counters mispredict roughly once
     * per transition.
     */
    double transitionRate = 0.0;

    /**
     * Occurrence-weighted mean per-static-branch outcome entropy,
     * normalized to [0,1] (1 = every branch a coin flip).
     */
    double entropy = 0.0;

    /**
     * Static-branch working set, hashed into kPhaseSignatureBins bins
     * by branch PC and weighted by dynamic occurrence, L1-normalized.
     */
    std::array<double, kPhaseSignatureBins> signature{};
};

/**
 * Extracts the feature vector of blocks [block_begin, block_end) of
 * @p stream. Deterministic: aggregation over static branches runs in
 * PC order regardless of container iteration order.
 */
WindowFeatures extractWindowFeatures(const BlockStream &stream,
                                     size_t block_begin,
                                     size_t block_end);

/**
 * Euclidean distance between two feature vectors (scalar features and
 * signature bins concatenated). Symmetric, zero iff equal.
 */
double featureDistance(const WindowFeatures &a, const WindowFeatures &b);

} // namespace ev8

#endif // EV8_SIM_PHASE_FEATURES_HH
