/**
 * @file
 * The per-trace phase map: the stream tiled into fixed-branch-budget
 * windows, each labelled with a phase ID by the online classifier.
 *
 * A PhaseMap is a pure function of (stream content, window budget,
 * phase cap), which makes it cacheable next to the trace: TraceCache
 * persists it as a `phase-...` sidecar keyed by the same profile
 * content hash as the .ev8t/.ev8s files, with the same temp-file +
 * atomic-rename write discipline and the same trust-but-verify read
 * (name, branch total, window budget and phase cap must all match, or
 * the sidecar is discarded and rebuilt).
 *
 * The windows tile the stream exactly -- every block belongs to one
 * window -- so per-phase branch/instruction totals summed over the map
 * reproduce the stream totals, which is what the stratified
 * extrapolation (sample_plan.hh) relies on.
 */

#ifndef EV8_SIM_PHASE_PHASE_MAP_HH
#define EV8_SIM_PHASE_PHASE_MAP_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ev8
{

class BlockStream; // sim/block_stream.hh

/** One window of the tiling: blocks [blockBegin, blockEnd). */
struct PhaseWindow
{
    uint64_t blockBegin = 0;  //!< first block of the window
    uint64_t blockEnd = 0;    //!< one past the last block
    uint64_t branchBegin = 0; //!< flat branch index at blockBegin
    uint64_t branches = 0;    //!< conditional branches in the window
    uint64_t instrs = 0;      //!< instructions in the window
    uint32_t phaseId = 0;     //!< classifier label (dense, from 0)

    bool operator==(const PhaseWindow &) const = default;
};

struct PhaseMap
{
    /**
     * Bump when the feature extraction, the classifier, or the
     * serialized layout change: a stale sidecar must be rejected and
     * rebuilt, never trusted.
     */
    static constexpr uint32_t kFormatVersion = 1;

    std::string name;             //!< trace name (verification key)
    uint64_t branches = 0;        //!< stream branch total
    uint64_t instructions = 0;    //!< stream instruction total
    uint64_t windowBranches = 0;  //!< per-window branch budget
    uint32_t maxPhases = 0;       //!< classifier cap used
    uint32_t phases = 0;          //!< phases actually founded
    std::vector<PhaseWindow> windows;

    bool operator==(const PhaseMap &) const = default;
};

/**
 * Tiles @p stream into windows of ~@p window_branches conditional
 * branches (block-aligned; the last window absorbs the remainder),
 * extracts each window's features and classifies them online with at
 * most @p max_phases phases. Deterministic.
 */
PhaseMap buildPhaseMap(const BlockStream &stream,
                       uint64_t window_branches, uint32_t max_phases);

/**
 * Serializes @p map. Throws TraceIoError on I/O failure. Versioned;
 * readers of a different version reject the file.
 */
void writePhaseMap(std::ostream &out, const PhaseMap &map);
void writePhaseMapFile(const std::string &path, const PhaseMap &map);

/** Parses a serialized map. Throws TraceIoError on malformed input. */
PhaseMap readPhaseMap(std::istream &in);
PhaseMap readPhaseMapFile(const std::string &path);

} // namespace ev8

#endif // EV8_SIM_PHASE_PHASE_MAP_HH
