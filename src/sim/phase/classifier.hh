/**
 * @file
 * Online leader-follower phase classifier.
 *
 * Windows are presented in execution order; the first window whose
 * feature vector is farther than the join threshold from every existing
 * leader founds a new phase (up to the cap), otherwise it joins its
 * nearest leader and pulls that leader's centroid toward itself by a
 * running mean. Once the cap is reached every window joins its nearest
 * leader unconditionally.
 *
 * The single sequential pass makes the assignment deterministic: phase
 * IDs are founding order, and the centroid updates depend only on the
 * window sequence, never on thread scheduling or container iteration
 * order. That determinism is what lets the sampled artifacts be
 * byte-identical across --jobs widths.
 */

#ifndef EV8_SIM_PHASE_CLASSIFIER_HH
#define EV8_SIM_PHASE_CLASSIFIER_HH

#include <cstdint>
#include <vector>

#include "sim/phase/features.hh"

namespace ev8
{

class PhaseClassifier
{
  public:
    /** The default join threshold (featureDistance units). */
    static constexpr double kDefaultThreshold = 0.12;

    /**
     * @param max_phases hard cap on founded phases (>= 1)
     * @param threshold  join distance; smaller splits more phases
     */
    explicit PhaseClassifier(uint32_t max_phases,
                             double threshold = kDefaultThreshold);

    /**
     * Assigns @p features to a phase and returns its ID (IDs are dense,
     * founding order, starting at 0). Sequential use only.
     */
    uint32_t classify(const WindowFeatures &features);

    /** Phases founded so far. */
    uint32_t phases() const
    {
        return static_cast<uint32_t>(leaders_.size());
    }

  private:
    struct Leader
    {
        WindowFeatures centroid;
        uint64_t members = 0;
    };

    std::vector<Leader> leaders_;
    uint32_t maxPhases_;
    double threshold_;
};

} // namespace ev8

#endif // EV8_SIM_PHASE_CLASSIFIER_HH
