#include "sim/phase/sample_plan.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.hh"

namespace ev8
{

namespace
{

/** splitmix64 finalizer for the deterministic in-phase offset. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

SampleSpec
sampleSpecFromEnv()
{
    SampleSpec spec;
    const char *mode = std::getenv("EV8_SAMPLE_MODE");
    if (mode == nullptr || std::strcmp(mode, "off") == 0) {
        spec.active = false;
    } else if (std::strcmp(mode, "phase") == 0) {
        spec.active = true;
    } else {
        std::fprintf(stderr,
                     "EV8_SAMPLE_MODE: invalid value '%s'; expected "
                     "'off' or 'phase'\n",
                     mode);
        std::exit(2);
    }

    spec.windowBranches = strictEnvU64(
        "EV8_SAMPLE_WINDOW", 256, uint64_t{1} << 24,
        SampleSpec::kDefaultWindowBranches);
    spec.warmupBranches = strictEnvU64(
        "EV8_SAMPLE_WARMUP", 0, uint64_t{1} << 26, spec.windowBranches);
    spec.seed =
        strictEnvU64("EV8_SAMPLE_SEED", 0, uint64_t{1} << 62, 1);
    spec.maxPhases = static_cast<uint32_t>(
        strictEnvU64("EV8_SAMPLE_MAX_PHASES", 1, 256, 16));
    spec.budget =
        strictEnvU64("EV8_SAMPLE_BUDGET", 1, uint64_t{1} << 40, 0);
    if (spec.active && spec.budget == 0) {
        std::fprintf(stderr,
                     "EV8_SAMPLE_MODE=phase requires EV8_SAMPLE_BUDGET "
                     "(or --sample-budget): the measured-branch budget "
                     "per benchmark\n");
        std::exit(2);
    }
    return spec;
}

SamplePlan
buildSamplePlan(const PhaseMap &map, const SampleSpec &spec,
                uint64_t budget)
{
    SamplePlan plan;
    plan.phases = map.phases;
    plan.windowsTotal = map.windows.size();
    plan.budget = budget;
    plan.warmupBranches = spec.warmupBranches;
    plan.seed = spec.seed;
    plan.totalBranches = map.branches;
    plan.totalInstructions = map.instructions;
    plan.totals.resize(map.phases);
    if (map.windows.empty())
        return plan;

    std::vector<std::vector<uint32_t>> members(map.phases);
    for (size_t i = 0; i < map.windows.size(); ++i) {
        const PhaseWindow &w = map.windows[i];
        SamplePlan::PhaseTotals &t = plan.totals[w.phaseId];
        ++t.windows;
        t.branches += w.branches;
        t.instrs += w.instrs;
        members[w.phaseId].push_back(static_cast<uint32_t>(i));
    }

    // Window count the budget buys, clamped to the map.
    const uint64_t window_branches =
        map.windowBranches > 0 ? map.windowBranches : 1;
    uint64_t target = budget / window_branches;
    if (target < 1)
        target = 1;
    if (target > map.windows.size())
        target = map.windows.size();

    // Proportional allocation by dynamic-branch weight, largest
    // remainder. Ties break toward the lower phase ID: deterministic.
    std::vector<uint64_t> alloc(map.phases, 0);
    std::vector<std::pair<double, uint32_t>> remainder;
    uint64_t allocated = 0;
    for (uint32_t p = 0; p < map.phases; ++p) {
        if (plan.totals[p].windows == 0)
            continue;
        const double share = static_cast<double>(target)
            * static_cast<double>(plan.totals[p].branches)
            / static_cast<double>(map.branches);
        alloc[p] = static_cast<uint64_t>(share);
        allocated += alloc[p];
        remainder.emplace_back(share - static_cast<double>(alloc[p]), p);
    }
    std::sort(remainder.begin(), remainder.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    for (const auto &[frac, p] : remainder) {
        if (allocated >= target)
            break;
        ++alloc[p];
        ++allocated;
    }

    // Every represented phase gets at least one window while the
    // target allows, stealing from the largest allocation; then cap
    // each phase at its window population.
    auto largest = [&]() {
        uint32_t best = 0;
        uint64_t best_n = 0;
        for (uint32_t p = 0; p < map.phases; ++p) {
            if (alloc[p] > best_n) {
                best_n = alloc[p];
                best = p;
            }
        }
        return best;
    };
    for (uint32_t p = 0; p < map.phases; ++p) {
        if (plan.totals[p].windows == 0 || alloc[p] > 0)
            continue;
        const uint32_t donor = largest();
        if (alloc[donor] >= 2) {
            --alloc[donor];
            alloc[p] = 1;
        }
    }
    for (uint32_t p = 0; p < map.phases; ++p)
        alloc[p] = std::min<uint64_t>(alloc[p], members[p].size());

    // Evenly spaced in-phase picks with a seeded, phase-keyed offset:
    // representative coverage across the phase's lifetime without
    // always anchoring at its first occurrence.
    for (uint32_t p = 0; p < map.phases; ++p) {
        const uint64_t k = alloc[p];
        if (k == 0)
            continue;
        const uint64_t m = members[p].size();
        const uint64_t offset =
            mix64(spec.seed ^ (uint64_t{p} * 0x9e3779b97f4a7c15ULL))
            % m;
        for (uint64_t i = 0; i < k; ++i) {
            const uint64_t pick = (offset + i * m / k) % m;
            const uint32_t widx = members[p][pick];
            const PhaseWindow &w = map.windows[widx];
            SampledWindow s;
            s.index = widx;
            s.phaseId = p;
            s.blockBegin = w.blockBegin;
            s.blockEnd = w.blockEnd;
            s.branchSeqBase = w.branchBegin;
            s.branches = w.branches;
            s.instrs = w.instrs;

            // Warmup prefix: walk earlier windows back until the
            // warmup branch budget is covered (or the stream starts).
            uint64_t warm = 0;
            size_t first = widx;
            while (first > 0 && warm < spec.warmupBranches) {
                --first;
                warm += map.windows[first].branches;
            }
            s.warmupBlockBegin = map.windows[first].blockBegin;
            plan.windows.push_back(s);
        }
    }

    std::sort(plan.windows.begin(), plan.windows.end(),
              [](const SampledWindow &a, const SampledWindow &b) {
                  return a.blockBegin < b.blockBegin;
              });
    return plan;
}

} // namespace ev8
