#include "sim/phase/features.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "sim/block_stream.hh"
#include "trace/branch_record.hh"

namespace ev8
{

namespace
{

/** splitmix64 finalizer: spreads branch PCs across signature bins. */
uint64_t
mixPc(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Binary entropy of p in [0,1], normalized so h(0.5) == 1. */
double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

struct StaticBranch
{
    uint64_t occurrences = 0;
    uint64_t taken = 0;
    uint64_t transitions = 0;
    bool lastTaken = false;
};

} // namespace

WindowFeatures
extractWindowFeatures(const BlockStream &stream, size_t block_begin,
                      size_t block_end)
{
    std::unordered_map<uint64_t, StaticBranch> statics;

    uint64_t branches = 0, taken = 0;
    for (size_t b = block_begin; b < block_end; ++b) {
        const uint64_t block_addr = stream.blockAddr(b);
        const uint32_t first = stream.branchBegin(b);
        const uint32_t last = stream.branchBegin(b + 1);
        for (uint32_t j = first; j < last; ++j) {
            const uint8_t raw = stream.branchRaw(j);
            const bool br_taken = (raw & 1) != 0;
            const uint64_t pc =
                block_addr + uint64_t(raw >> 1) * kInstrBytes;
            StaticBranch &s = statics[pc];
            if (s.occurrences > 0 && s.lastTaken != br_taken)
                ++s.transitions;
            ++s.occurrences;
            s.taken += br_taken;
            s.lastTaken = br_taken;
            ++branches;
            taken += br_taken;
        }
    }

    WindowFeatures f;
    if (branches == 0)
        return f;
    f.takenRate =
        static_cast<double>(taken) / static_cast<double>(branches);

    // Per-static aggregation runs in PC order: floating-point sums must
    // not depend on hash-map iteration order.
    std::vector<std::pair<uint64_t, const StaticBranch *>> ordered;
    ordered.reserve(statics.size());
    for (const auto &kv : statics)
        ordered.emplace_back(kv.first, &kv.second);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    uint64_t transitions = 0, transition_chances = 0;
    double entropy = 0.0;
    for (const auto &[pc, s] : ordered) {
        transitions += s->transitions;
        transition_chances += s->occurrences - 1;
        const double p = static_cast<double>(s->taken)
            / static_cast<double>(s->occurrences);
        entropy += static_cast<double>(s->occurrences)
            * binaryEntropy(p);
        f.signature[mixPc(pc) % kPhaseSignatureBins] +=
            static_cast<double>(s->occurrences);
    }
    if (transition_chances > 0) {
        f.transitionRate = static_cast<double>(transitions)
            / static_cast<double>(transition_chances);
    }
    f.entropy = entropy / static_cast<double>(branches);
    for (double &bin : f.signature)
        bin /= static_cast<double>(branches);
    return f;
}

double
featureDistance(const WindowFeatures &a, const WindowFeatures &b)
{
    double d2 = 0.0;
    auto add = [&](double x, double y) {
        const double d = x - y;
        d2 += d * d;
    };
    add(a.takenRate, b.takenRate);
    add(a.transitionRate, b.transitionRate);
    add(a.entropy, b.entropy);
    for (size_t i = 0; i < kPhaseSignatureBins; ++i)
        add(a.signature[i], b.signature[i]);
    return std::sqrt(d2);
}

} // namespace ev8
