#include "sim/phase/classifier.hh"

#include <limits>

namespace ev8
{

PhaseClassifier::PhaseClassifier(uint32_t max_phases, double threshold)
    : maxPhases_(max_phases > 0 ? max_phases : 1), threshold_(threshold)
{
}

uint32_t
PhaseClassifier::classify(const WindowFeatures &features)
{
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < leaders_.size(); ++i) {
        const double d = featureDistance(leaders_[i].centroid, features);
        if (d < best_dist) {
            best_dist = d;
            best = i;
        }
    }

    if (best_dist > threshold_ && leaders_.size() < maxPhases_) {
        leaders_.push_back(Leader{features, 1});
        return static_cast<uint32_t>(leaders_.size() - 1);
    }

    // Join the nearest leader; the centroid follows as a running mean
    // so a slowly drifting phase keeps its identity.
    Leader &leader = leaders_[best];
    const double n = static_cast<double>(leader.members);
    const double w = 1.0 / (n + 1.0);
    auto blend = [&](double &c, double v) { c += (v - c) * w; };
    blend(leader.centroid.takenRate, features.takenRate);
    blend(leader.centroid.transitionRate, features.transitionRate);
    blend(leader.centroid.entropy, features.entropy);
    for (size_t i = 0; i < kPhaseSignatureBins; ++i)
        blend(leader.centroid.signature[i], features.signature[i]);
    ++leader.members;
    return static_cast<uint32_t>(best);
}

} // namespace ev8
