#include "sim/phase/phase_map.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "sim/block_stream.hh"
#include "sim/phase/classifier.hh"
#include "sim/phase/features.hh"
#include "trace/varint.hh"

namespace ev8
{

namespace
{

constexpr char kMagic[4] = {'E', 'V', '8', 'P'};

} // namespace

PhaseMap
buildPhaseMap(const BlockStream &stream, uint64_t window_branches,
              uint32_t max_phases)
{
    PhaseMap map;
    map.name = stream.name();
    map.branches = stream.branches();
    map.instructions = stream.instructions();
    map.windowBranches = window_branches;
    map.maxPhases = max_phases;

    if (window_branches == 0)
        window_branches = 1;

    // Tile: block-aligned windows closing as soon as the branch budget
    // is met. A final short window absorbs the tail so the tiling is
    // exact (every block in exactly one window).
    const size_t nblocks = stream.blocks();
    size_t begin = 0;
    while (begin < nblocks) {
        PhaseWindow w;
        w.blockBegin = begin;
        w.branchBegin = stream.branchBegin(begin);
        uint64_t branches = 0, instrs = 0;
        size_t b = begin;
        while (b < nblocks && branches < window_branches) {
            branches += stream.numBranches(b);
            instrs += stream.blockInstrs(b);
            ++b;
        }
        w.blockEnd = b;
        w.branches = branches;
        w.instrs = instrs;
        map.windows.push_back(w);
        begin = b;
    }

    PhaseClassifier classifier(max_phases);
    for (PhaseWindow &w : map.windows) {
        const WindowFeatures f = extractWindowFeatures(
            stream, static_cast<size_t>(w.blockBegin),
            static_cast<size_t>(w.blockEnd));
        w.phaseId = classifier.classify(f);
    }
    map.phases = classifier.phases();
    return map;
}

void
writePhaseMap(std::ostream &out, const PhaseMap &map)
{
    out.write(kMagic, sizeof(kMagic));
    putU32(out, PhaseMap::kFormatVersion);
    putU32(out, static_cast<uint32_t>(map.name.size()));
    out.write(map.name.data(),
              static_cast<std::streamsize>(map.name.size()));
    putVarint(out, map.branches);
    putVarint(out, map.instructions);
    putVarint(out, map.windowBranches);
    putU32(out, map.maxPhases);
    putU32(out, map.phases);
    putVarint(out, map.windows.size());
    for (const PhaseWindow &w : map.windows) {
        putVarint(out, w.blockBegin);
        putVarint(out, w.blockEnd);
        putVarint(out, w.branchBegin);
        putVarint(out, w.branches);
        putVarint(out, w.instrs);
        putVarint(out, w.phaseId);
    }
    if (!out)
        throw TraceIoError("phase map write failure");
}

void
writePhaseMapFile(const std::string &path, const PhaseMap &map)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw TraceIoError("cannot open '" + path + "' for writing");
    writePhaseMap(out, map);
    out.flush();
    if (!out)
        throw TraceIoError("short write to '" + path + "'");
}

PhaseMap
readPhaseMap(std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::char_traits<char>::compare(magic, kMagic, 4) != 0)
        throw TraceIoError("bad phase map magic");
    if (getU32(in) != PhaseMap::kFormatVersion)
        throw TraceIoError("unsupported phase map version");

    const uint32_t name_len = getU32(in);
    if (name_len > (1u << 20))
        throw TraceIoError("implausible phase map name length");
    PhaseMap map;
    map.name.assign(name_len, '\0');
    in.read(map.name.data(), name_len);
    if (!in)
        throw TraceIoError("truncated phase map name");

    map.branches = getVarint(in);
    map.instructions = getVarint(in);
    map.windowBranches = getVarint(in);
    map.maxPhases = getU32(in);
    map.phases = getU32(in);
    const uint64_t count = getVarint(in);
    if (count > (uint64_t{1} << 32))
        throw TraceIoError("implausible phase map window count");
    map.windows.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        PhaseWindow w;
        w.blockBegin = getVarint(in);
        w.blockEnd = getVarint(in);
        w.branchBegin = getVarint(in);
        w.branches = getVarint(in);
        w.instrs = getVarint(in);
        const uint64_t phase = getVarint(in);
        if (phase >= map.phases)
            throw TraceIoError("phase map window label out of range");
        w.phaseId = static_cast<uint32_t>(phase);
        map.windows.push_back(w);
    }
    if (!in)
        throw TraceIoError("truncated phase map");
    return map;
}

PhaseMap
readPhaseMapFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceIoError("cannot open '" + path + "' for reading");
    return readPhaseMap(in);
}

} // namespace ev8
