#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"
#include "obs/trace_span.hh"
#include "sim/fault_injection.hh"

namespace ev8
{

namespace
{

constexpr const char *kSchema = "ev8-checkpoint-v1";

/**
 * Exact-round-trip scalar encodings: u64 as decimal strings (JSON
 * numbers lose precision past 2^53), doubles as the 16-hex-digit bit
 * pattern of their IEEE-754 representation.
 */
std::string
u64s(uint64_t v)
{
    return std::to_string(v);
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
f64s(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return hex16(bits);
}

uint64_t
parseU64(const JsonValue &v, int base = 10)
{
    if (!v.isString() || v.text.empty())
        throw std::runtime_error("expected a string-encoded integer");
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(v.text.c_str(), &end, base);
    if (end != v.text.c_str() + v.text.size())
        throw std::runtime_error("malformed integer '" + v.text + "'");
    return parsed;
}

double
parseF64(const JsonValue &v)
{
    uint64_t bits = parseU64(v, 16);
    double out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

void
writeU64Array(JsonWriter &w, const std::vector<uint64_t> &values)
{
    w.beginArray();
    for (uint64_t v : values)
        w.value(u64s(v));
    w.endArray();
}

} // namespace

std::string
encodeCellRecord(size_t cell, const BenchResult &result,
                 const MetricRegistry &metrics,
                 const std::vector<MispredictEvent> &events)
{
    std::ostringstream line;
    JsonWriter w(line);
    w.beginObject();
    w.key("cell");
    w.value(u64s(cell));
    w.key("bench");
    w.value(result.bench);

    const SimResult &sim = result.sim;
    w.key("sim");
    w.beginObject();
    w.key("lookups");
    w.value(u64s(sim.stats.lookups()));
    w.key("mispredictions");
    w.value(u64s(sim.stats.mispredictions()));
    w.key("instructions");
    w.value(u64s(sim.stats.instructions()));
    w.key("fetch_blocks");
    w.value(u64s(sim.fetchBlocks));
    w.key("lghist_bits");
    w.value(u64s(sim.lghistBits));
    w.key("cond_branches");
    w.value(u64s(sim.condBranches));
    w.key("bpb");
    writeU64Array(w, {sim.branchesPerBlock.begin(),
                      sim.branchesPerBlock.end()});
    w.key("timing");
    writeU64Array(w, {sim.timing.lookup.calls, sim.timing.lookup.ns,
                      sim.timing.update.calls, sim.timing.update.ns,
                      sim.timing.history.calls, sim.timing.history.ns});
    // Written only for sampled cells so exact-mode journal bytes are
    // untouched by the sampling layer.
    if (sim.sampled.active) {
        w.key("sampled");
        writeU64Array(w, {uint64_t{sim.sampled.phases},
                          sim.sampled.windowsTotal,
                          sim.sampled.windowsSimulated,
                          sim.sampled.branchesSimulated,
                          sim.sampled.warmupBranches});
        w.key("sampled_ci95");
        w.value(f64s(sim.sampled.ci95MispKI));
    }
    w.endObject();

    const auto entries = metrics.entries();
    w.key("counters");
    w.beginObject();
    for (const auto &e : entries) {
        if (e.kind != MetricKind::Counter)
            continue;
        w.key(*e.name);
        w.value(u64s(e.counter->value()));
    }
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &e : entries) {
        if (e.kind != MetricKind::Gauge)
            continue;
        w.key(*e.name);
        w.value(f64s(e.gauge->value()));
    }
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &e : entries) {
        if (e.kind != MetricKind::Histogram)
            continue;
        w.key(*e.name);
        w.beginObject();
        w.key("bounds");
        w.beginArray();
        for (double b : e.histogram->bounds())
            w.value(f64s(b));
        w.endArray();
        w.key("counts");
        writeU64Array(w, e.histogram->bucketCounts());
        w.key("count");
        w.value(u64s(e.histogram->count()));
        w.key("sum");
        w.value(f64s(e.histogram->sum()));
        w.endObject();
    }
    w.endObject();

    w.key("events");
    w.beginArray();
    for (const MispredictEvent &ev : events) {
        const unsigned flags = (ev.taken ? 1u : 0u)
            | (ev.predicted ? 2u : 0u) | (ev.votesValid ? 4u : 0u)
            | (ev.voteBim ? 8u : 0u) | (ev.voteG0 ? 16u : 0u)
            | (ev.voteG1 ? 32u : 0u) | (ev.voteMeta ? 64u : 0u)
            | (ev.voteMajority ? 128u : 0u);
        w.beginArray();
        w.value(u64s(ev.branchSeq));
        w.value(u64s(ev.pc));
        w.value(u64s(ev.blockAddr));
        w.value(u64s(ev.ghist));
        w.value(u64s(ev.indexHist));
        w.value(uint64_t{ev.bank});
        w.value(uint64_t{flags});
        w.endArray();
    }
    w.endArray();

    w.endObject();
    return line.str();
}

size_t
decodeCellRecord(const std::string &line, size_t cells,
                 GridCheckpoint::RestoredCell &out)
{
    const JsonValue doc = parseJson(line);
    const size_t cell = parseU64(doc.at("cell"));
    if (cell >= cells)
        throw std::runtime_error("cell index out of range");

    out.result.bench = doc.at("bench").text;
    const JsonValue &sim = doc.at("sim");
    SimResult &r = out.result.sim;
    r.stats.tally(parseU64(sim.at("lookups")),
                  parseU64(sim.at("mispredictions")));
    r.stats.setInstructions(parseU64(sim.at("instructions")));
    r.fetchBlocks = parseU64(sim.at("fetch_blocks"));
    r.lghistBits = parseU64(sim.at("lghist_bits"));
    r.condBranches = parseU64(sim.at("cond_branches"));
    const JsonValue &bpb = sim.at("bpb");
    if (!bpb.isArray() || bpb.items.size() != r.branchesPerBlock.size())
        throw std::runtime_error("malformed bpb array");
    for (size_t i = 0; i < r.branchesPerBlock.size(); ++i)
        r.branchesPerBlock[i] = parseU64(bpb.items[i]);
    const JsonValue &timing = sim.at("timing");
    if (!timing.isArray() || timing.items.size() != 6)
        throw std::runtime_error("malformed timing array");
    r.timing.lookup.calls = parseU64(timing.items[0]);
    r.timing.lookup.ns = parseU64(timing.items[1]);
    r.timing.update.calls = parseU64(timing.items[2]);
    r.timing.update.ns = parseU64(timing.items[3]);
    r.timing.history.calls = parseU64(timing.items[4]);
    r.timing.history.ns = parseU64(timing.items[5]);
    if (const JsonValue *sampled = sim.find("sampled")) {
        if (!sampled->isArray() || sampled->items.size() != 5)
            throw std::runtime_error("malformed sampled array");
        r.sampled.active = true;
        r.sampled.phases =
            static_cast<uint32_t>(parseU64(sampled->items[0]));
        r.sampled.windowsTotal = parseU64(sampled->items[1]);
        r.sampled.windowsSimulated = parseU64(sampled->items[2]);
        r.sampled.branchesSimulated = parseU64(sampled->items[3]);
        r.sampled.warmupBranches = parseU64(sampled->items[4]);
        r.sampled.ci95MispKI = parseF64(sim.at("sampled_ci95"));
    }

    for (const auto &[name, v] : doc.at("counters").members)
        out.metrics.counter(name).inc(parseU64(v));
    for (const auto &[name, v] : doc.at("gauges").members)
        out.metrics.gauge(name).set(parseF64(v));
    for (const auto &[name, v] : doc.at("histograms").members) {
        std::vector<double> bounds;
        for (const JsonValue &b : v.at("bounds").items)
            bounds.push_back(parseF64(b));
        std::vector<uint64_t> counts;
        for (const JsonValue &c : v.at("counts").items)
            counts.push_back(parseU64(c));
        out.metrics.histogram(name, bounds)
            .injectState(counts, parseU64(v.at("count")),
                         parseF64(v.at("sum")));
    }

    const JsonValue &events = doc.at("events");
    if (!events.isArray())
        throw std::runtime_error("malformed events array");
    out.events.reserve(events.items.size());
    for (const JsonValue &e : events.items) {
        if (!e.isArray() || e.items.size() != 7)
            throw std::runtime_error("malformed event record");
        MispredictEvent ev;
        ev.branchSeq = parseU64(e.items[0]);
        ev.pc = parseU64(e.items[1]);
        ev.blockAddr = parseU64(e.items[2]);
        ev.ghist = parseU64(e.items[3]);
        ev.indexHist = parseU64(e.items[4]);
        ev.bank = static_cast<unsigned>(e.items[5].number);
        const unsigned flags = static_cast<unsigned>(e.items[6].number);
        ev.taken = flags & 1u;
        ev.predicted = flags & 2u;
        ev.votesValid = flags & 4u;
        ev.voteBim = flags & 8u;
        ev.voteG0 = flags & 16u;
        ev.voteG1 = flags & 32u;
        ev.voteMeta = flags & 64u;
        ev.voteMajority = flags & 128u;
        out.events.push_back(ev);
    }
    return cell;
}

std::string
GridCheckpoint::defaultDir()
{
    const char *env = std::getenv("EV8_CHECKPOINT_DIR");
    return env ? env : "";
}

GridCheckpoint::GridCheckpoint(std::string dir, uint64_t grid_hash,
                               size_t cells)
    : hash_(grid_hash), cells_(cells)
{
    if (!dir.empty()) {
        path_ = dir + "/grid-" + hex16(grid_hash) + "-v"
            + std::to_string(kFormatVersion) + ".ev8c";
    }
}

std::map<size_t, GridCheckpoint::RestoredCell>
GridCheckpoint::load()
{
    std::map<size_t, RestoredCell> restored;
    if (!enabled())
        return restored;

    ScopedSpan span(SpanPhase::Checkpoint, "checkpoint:load");
    bool fresh = true;
    try {
        FaultInjector::global().maybeThrow(FaultPoint::CkptRead, path_);
        std::ifstream in(path_);
        if (in) {
            std::string line;
            bool have_header = false;
            if (std::getline(in, line)) {
                try {
                    const JsonValue header = parseJson(line);
                    have_header =
                        header.at("schema").text == kSchema
                        && header.at("format").text
                               == std::to_string(kFormatVersion)
                        && header.at("grid").text == hex16(hash_)
                        && parseU64(header.at("cells")) == cells_;
                } catch (...) {
                    have_header = false;
                }
            }
            if (have_header) {
                fresh = false;
                while (std::getline(in, line)) {
                    try {
                        RestoredCell cell;
                        const size_t i =
                            decodeCellRecord(line, cells_, cell);
                        // First record wins; duplicates (a resumed run
                        // that re-ran a torn cell) are ignored.
                        restored.emplace(i, std::move(cell));
                    } catch (...) {
                        // Torn append or injected corruption: lose
                        // exactly this record, re-run that cell.
                    }
                }
            }
        }
    } catch (const std::exception &err) {
        // Unreadable journal: forget anything partially loaded and
        // start over -- a checkpoint problem must never fail the run.
        restored.clear();
        fresh = true;
        std::fprintf(stderr,
                     "ev8: checkpoint: cannot read '%s' (%s); starting "
                     "a fresh journal\n",
                     path_.c_str(), err.what());
    }

    std::lock_guard<std::mutex> lock(mutex_);
    try {
        namespace fs = std::filesystem;
        fs::create_directories(fs::path(path_).parent_path());
        out_.open(path_, fresh ? std::ios::trunc : std::ios::app);
        if (!out_)
            throw std::runtime_error("cannot open for append");
        if (fresh) {
            std::ostringstream header;
            JsonWriter w(header);
            w.beginObject();
            w.key("schema");
            w.value(kSchema);
            w.key("format");
            w.value(std::to_string(kFormatVersion));
            w.key("grid");
            w.value(hex16(hash_));
            w.key("cells");
            w.value(u64s(cells_));
            w.endObject();
            out_ << header.str() << '\n';
            out_.flush();
            if (!out_)
                throw std::runtime_error("cannot write header");
        }
        writable_ = true;
    } catch (const std::exception &err) {
        disableWrites(err.what());
    }
    span.arg("restored", static_cast<uint64_t>(restored.size()));
    return restored;
}

void
GridCheckpoint::disableWrites(const std::string &reason)
{
    writable_ = false;
    if (!warned_) {
        warned_ = true;
        std::fprintf(stderr,
                     "ev8: checkpoint: cannot journal to '%s' (%s); "
                     "continuing without checkpointing\n",
                     path_.c_str(), reason.c_str());
    }
}

void
GridCheckpoint::append(size_t cell, const BenchResult &result,
                       const MetricRegistry &metrics,
                       const std::vector<MispredictEvent> &events)
{
    if (!enabled())
        return;
    ScopedSpan span(SpanPhase::Checkpoint, "checkpoint:append");
    span.arg("cell", static_cast<uint64_t>(cell));
    const std::string line = encodeCellRecord(cell, result, metrics, events);

    std::lock_guard<std::mutex> lock(mutex_);
    if (!writable_)
        return;
    try {
        FaultInjector &faults = FaultInjector::global();
        faults.maybeThrow(FaultPoint::CkptWrite, path_);
        if (faults.fires(FaultPoint::CkptCorrupt, path_)) {
            // A torn append: half the record, as a crash mid-write
            // would leave. The loader must skip it.
            out_ << line.substr(0, line.size() / 2) << '\n';
        } else {
            out_ << line << '\n';
        }
        out_.flush();
        if (!out_)
            throw std::runtime_error("write failure");
    } catch (const std::exception &err) {
        disableWrites(err.what());
    }
}

} // namespace ev8
