#include "sim/block_stream.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>

#include "frontend/fetch_block.hh"
#include "obs/trace_span.hh"
#include "trace/trace.hh"
#include "trace/varint.hh"

namespace ev8
{

namespace
{

constexpr char kMagic[4] = {'E', 'V', '8', 'S'};

/**
 * Bump when the serialized layout changes. Semantic changes to the
 * decode itself (FetchBlockBuilder behaviour) are covered by
 * TraceCache::kStreamFormatVersion in the cache file name; this version
 * only guards the byte layout below.
 */
constexpr uint32_t kVersion = 1;

} // namespace

BlockStream
decodeBlockStream(const Trace &trace)
{
    ScopedSpan span(SpanPhase::Decode);
    span.rename("decode:" + trace.name());
    span.arg("bench", trace.name());
    BlockStream stream;
    stream.name_ = trace.name();
    stream.instructions_ = trace.instructionCount();

    auto on_block = [&stream](const FetchBlock &block) {
        stream.addr_.push_back(block.address);
        stream.info_.push_back(static_cast<uint8_t>(
            (block.numInstrs() << 1) | (block.endsTaken ? 1 : 0)));
        for (unsigned i = 0; i < block.numBranches; ++i) {
            const BlockBranch &br = block.branches[i];
            const uint64_t slot = (br.pc - block.address) / kInstrBytes;
            assert(slot < kFetchBlockInstrs);
            stream.branchSlot_.push_back(static_cast<uint8_t>(
                (slot << 1) | (br.taken ? 1 : 0)));
        }
        stream.branchBegin_.push_back(
            static_cast<uint32_t>(stream.branchSlot_.size()));
    };

    FetchBlockBuilder builder;
    builder.begin(trace.startPc());
    for (const auto &rec : trace.records())
        builder.feed(rec, on_block);
    builder.flush(on_block);

    // branchBegin_ is one-past-per-block so far; prepend the leading 0
    // to turn it into the [begin, end) prefix array the accessors use.
    stream.branchBegin_.insert(stream.branchBegin_.begin(), 0u);
    return stream;
}

void
writeBlockStream(std::ostream &out, const BlockStream &stream)
{
    out.write(kMagic, sizeof(kMagic));
    putU32(out, kVersion);
    putU32(out, static_cast<uint32_t>(stream.name().size()));
    out.write(stream.name().data(),
              static_cast<std::streamsize>(stream.name().size()));
    putVarint(out, stream.instructions());
    putVarint(out, stream.blocks());
    putVarint(out, stream.branches());

    uint64_t prev_addr = 0;
    for (size_t b = 0; b < stream.blocks(); ++b) {
        const uint64_t addr = stream.blockAddr(b);
        putVarint(out, zigzag((static_cast<int64_t>(addr)
                               - static_cast<int64_t>(prev_addr))
                              / static_cast<int64_t>(kInstrBytes)));
        out.put(static_cast<char>((stream.blockInstrs(b) << 1)
                                  | (stream.blockEndsTaken(b) ? 1 : 0)));
        const unsigned nbr = stream.numBranches(b);
        out.put(static_cast<char>(nbr));
        for (unsigned k = 0; k < nbr; ++k)
            out.put(static_cast<char>(
                stream.branchRaw(stream.branchBegin(b) + k)));
        prev_addr = addr;
    }
    if (!out)
        throw TraceIoError("block stream write failure");
}

BlockStream
readBlockStream(std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::char_traits<char>::compare(magic, kMagic, 4) != 0)
        throw TraceIoError("bad block stream magic");
    if (getU32(in) != kVersion)
        throw TraceIoError("unsupported block stream version");

    const uint32_t name_len = getU32(in);
    if (name_len > (1u << 20))
        throw TraceIoError("implausible name length");
    BlockStream stream;
    stream.name_.assign(name_len, '\0');
    in.read(stream.name_.data(), name_len);
    if (!in)
        throw TraceIoError("truncated block stream name");

    stream.instructions_ = getVarint(in);
    const uint64_t block_count = getVarint(in);
    const uint64_t branch_count = getVarint(in);
    // Untrusted header: cap the up-front reservations the same way
    // trace_io does, so a lying count fails at the first missing block
    // after bounded memory use.
    const size_t reserve_blocks =
        static_cast<size_t>(std::min<uint64_t>(block_count, 1u << 20));
    stream.addr_.reserve(reserve_blocks);
    stream.info_.reserve(reserve_blocks);
    stream.branchBegin_.reserve(reserve_blocks + 1);
    stream.branchSlot_.reserve(
        static_cast<size_t>(std::min<uint64_t>(branch_count, 1u << 20)));

    stream.branchBegin_.push_back(0);
    uint64_t prev_addr = 0;
    for (uint64_t b = 0; b < block_count; ++b) {
        const uint64_t addr = static_cast<uint64_t>(
            static_cast<int64_t>(prev_addr)
            + unzigzag(getVarint(in))
                  * static_cast<int64_t>(kInstrBytes));
        const int info = in.get();
        const int nbr = in.get();
        if (info == std::char_traits<char>::eof()
            || nbr == std::char_traits<char>::eof())
            throw TraceIoError("truncated block");
        const unsigned instrs = static_cast<unsigned>(info) >> 1;
        if (instrs < 1 || instrs > kFetchBlockInstrs)
            throw TraceIoError("bad block instruction count");
        if (nbr < 0 || static_cast<unsigned>(nbr) > instrs)
            throw TraceIoError("bad block branch count");
        stream.addr_.push_back(addr);
        stream.info_.push_back(static_cast<uint8_t>(info));
        for (int k = 0; k < nbr; ++k) {
            const int slot = in.get();
            if (slot == std::char_traits<char>::eof())
                throw TraceIoError("truncated branch");
            if ((static_cast<unsigned>(slot) >> 1) >= instrs)
                throw TraceIoError("branch slot outside block");
            stream.branchSlot_.push_back(static_cast<uint8_t>(slot));
        }
        stream.branchBegin_.push_back(
            static_cast<uint32_t>(stream.branchSlot_.size()));
        prev_addr = addr;
    }
    if (stream.branches() != branch_count)
        throw TraceIoError("branch count mismatch");
    return stream;
}

void
writeBlockStreamFile(const std::string &path, const BlockStream &stream)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw TraceIoError("cannot open for writing: " + path);
    try {
        writeBlockStream(out, stream);
        out.flush();
        if (!out)
            throw TraceIoError("write failure");
    } catch (const TraceIoError &err) {
        // Never leave a partial file behind under the target name: a
        // later reader would have to detect the truncation instead of
        // simply missing.
        out.close();
        std::error_code ec;
        std::filesystem::remove(path, ec);
        throw TraceIoError(std::string(err.what()) + " in " + path);
    }
}

BlockStream
readBlockStreamFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceIoError("cannot open: " + path);
    try {
        return readBlockStream(in);
    } catch (const TraceIoError &err) {
        // The low-level decoder cannot know the file name; re-throw
        // with the path so cache warnings and logs are actionable.
        throw TraceIoError(std::string(err.what()) + " in " + path);
    }
}

} // namespace ev8
