/**
 * @file
 * The parallel experiment engine.
 *
 * Every figure and table of the paper is a grid of (benchmark x
 * configuration) simulations, and the cells are independent: each one
 * simulates a cold predictor over an immutable cached trace. The engine
 * executes those cells on a fixed pool of worker threads with
 * work-stealing scheduling, while keeping every observable output
 * *deterministic*:
 *
 *  - results are index-stable: cell i writes slot i, so a grid's result
 *    rows come back in submission order regardless of which worker
 *    finished first;
 *  - each job gets a private MetricRegistry and a BufferedEventSink;
 *    after the batch, the engine folds them into the caller's shared
 *    sinks in submission order -- counters add, gauges last-write-win
 *    in the same order a serial loop would have written them, and
 *    buffered misprediction events replay through the shared sampling
 *    sink so the emitted JSONL is byte-identical to a serial run;
 *  - each job owns its benchmark's BranchClassMap (the pc -> behaviour
 *    class labels), so no classifier ever outlives or escapes its job.
 *
 * The pool is the calling thread plus (jobs - 1) workers; jobs = 1
 * degenerates to a plain serial loop with no threads, and any larger
 * width produces the same bytes.
 */

#ifndef EV8_SIM_EXPERIMENT_HH
#define EV8_SIM_EXPERIMENT_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/suite_runner.hh"

namespace ev8
{

class ExperimentEngine
{
  public:
    /**
     * The pool width used when a caller passes jobs = 0: the EV8_JOBS
     * environment variable when set (clamped to >= 1), otherwise
     * std::thread::hardware_concurrency().
     */
    static unsigned defaultJobs();

    /** @param jobs worker count; 0 resolves to defaultJobs(). */
    explicit ExperimentEngine(unsigned jobs = 0);
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Runs fn(0) .. fn(n-1) across the pool and returns when all calls
     * have finished. Indices are dealt round-robin to the per-worker
     * deques; idle workers steal from the back of busy workers' deques.
     * The first exception thrown by any call is rethrown here (the
     * remaining jobs still run). Not reentrant: one batch at a time.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Executes @p rows x suite-benchmarks simulation jobs and merges
     * per-job observability into each row's config sinks in submission
     * order (see file comment). Returns one suite-ordered result vector
     * per row.
     */
    std::vector<std::vector<BenchResult>> runGrid(
        SuiteRunner &runner, const std::vector<GridRow> &rows);

  private:
    struct TaskDeque
    {
        std::mutex mutex;
        std::deque<size_t> tasks;
    };

    void workerLoop(unsigned slot);
    void drain(unsigned slot, const std::function<void(size_t)> &fn);
    bool popTask(unsigned slot, size_t &task);

    unsigned jobs_;
    std::vector<std::unique_ptr<TaskDeque>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable batchDone_;
    uint64_t batchSeq_ = 0;
    const std::function<void(size_t)> *batchFn_ = nullptr;
    size_t pending_ = 0;   //!< tasks not yet completed in this batch
    unsigned busy_ = 0;    //!< workers currently draining this batch
    std::exception_ptr firstError_;
    bool stop_ = false;
};

} // namespace ev8

#endif // EV8_SIM_EXPERIMENT_HH
