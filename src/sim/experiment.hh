/**
 * @file
 * The parallel experiment engine.
 *
 * Every figure and table of the paper is a grid of (benchmark x
 * configuration) simulations, and the cells are independent: each one
 * simulates a cold predictor over an immutable cached trace. The engine
 * executes those cells on a fixed pool of worker threads with
 * work-stealing scheduling, while keeping every observable output
 * *deterministic*:
 *
 *  - results are index-stable: cell i writes slot i, so a grid's result
 *    rows come back in submission order regardless of which worker
 *    finished first;
 *  - each job gets a private MetricRegistry and a BufferedEventSink;
 *    after the batch, the engine folds them into the caller's shared
 *    sinks in submission order -- counters add, gauges last-write-win
 *    in the same order a serial loop would have written them, and
 *    buffered misprediction events replay through the shared sampling
 *    sink so the emitted JSONL is byte-identical to a serial run;
 *  - each job owns its benchmark's BranchClassMap (the pc -> behaviour
 *    class labels), so no classifier ever outlives or escapes its job.
 *
 * The pool is the calling thread plus (jobs - 1) workers; jobs = 1
 * degenerates to a plain serial loop with no threads, and any larger
 * width produces the same bytes.
 *
 * Fused execution: grid cells that share a benchmark and a history-walk
 * configuration (history mode, age, bank assignment, timing, sink
 * presence, kernel forcing) are grouped into one fused job that walks
 * the benchmark's BlockStream once for all of them via
 * simulateStreamFused(), instead of once per cell. Grouping follows
 * submission order, per-cell outputs stay private until the same
 * deterministic merge, and artifacts are byte-identical to the
 * per-cell path for any lane width and any worker count. EV8_FUSED=0
 * forces the per-cell path; EV8_FUSED_LANES caps lanes per fused job.
 *
 * Fault tolerance: a failing cell no longer poisons its batch. Each
 * cell runs under a retry loop (EV8_RETRY_MAX attempts with bounded
 * exponential backoff, EV8_RETRY_BASE_MS); a fused job whose walk
 * throws falls back to per-cell execution so one bad lane cannot take
 * its lane-mates down. A cell that exhausts its retries yields a
 * structured CellFailure in the returned GridOutcome while every other
 * cell completes normally. With EV8_CHECKPOINT_DIR set, completed cells
 * are journaled (see sim/checkpoint.hh) and a re-run of the same grid
 * resumes, skipping finished cells; restored and fresh outputs merge in
 * the same submission order, so resumed artifacts are byte-identical to
 * an uninterrupted run's. EV8_FAULT_SPEC (see sim/fault_injection.hh)
 * deterministically injects faults at the cell, cache and checkpoint
 * seams to test all of the above.
 *
 * The per-cell execution core (isolated sinks, retry/backoff, fault
 * hooks, spans) lives in sim/cell_executor.hh; the engine contributes
 * scheduling (the pool, fused grouping), checkpoint restore, and the
 * deterministic merge. Served sessions (serve/server.hh) reuse the same
 * CellExecutor, which is what keeps served artifacts byte-identical to
 * batch ones.
 */

#ifndef EV8_SIM_EXPERIMENT_HH
#define EV8_SIM_EXPERIMENT_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "sim/suite_runner.hh"

namespace ev8
{

class ExperimentEngine
{
  public:
    /**
     * The pool width used when a caller passes jobs = 0: the EV8_JOBS
     * environment variable when set, otherwise
     * std::thread::hardware_concurrency(). A set-but-invalid EV8_JOBS
     * (zero, negative, garbage, out of range) is a hard error: the
     * message is printed to stderr and the process exits with status 2
     * rather than silently falling back.
     */
    static unsigned defaultJobs();

    /**
     * Strictly parses a worker count: decimal digits only, value in
     * [1, 4096]. Throws std::invalid_argument with a human-readable
     * message on anything else (empty, signs, garbage, zero,
     * overflow). Shared by --jobs, EV8_JOBS and EV8_FUSED_LANES.
     */
    static unsigned parseJobs(const std::string &text);

    /**
     * Whether runGrid() fuses compatible grid cells into shared-walk
     * jobs. On by default; EV8_FUSED=0 forces the per-cell A/B escape
     * hatch (both paths are byte-identical by construction and by CI
     * gate). Strictly parsed: anything other than "0" or "1" is a hard
     * usage error (stderr + exit 2), matching EV8_JOBS.
     */
    static bool fusedEnabled();

    /**
     * Max lanes per fused job: EV8_FUSED_LANES (strictly parsed,
     * clamped to kMaxFusedLanes) or kMaxFusedLanes. Any value yields
     * identical artifacts; smaller caps trade walk sharing for more
     * parallelism across jobs.
     */
    static size_t fusedLaneCap();

    /**
     * Attempts per grid cell before it is declared failed: the
     * EV8_RETRY_MAX environment variable (strictly parsed, [1, 100]) or
     * 3. A set-but-invalid value is a hard error (stderr + exit 2),
     * matching EV8_JOBS.
     */
    static unsigned retryMax();

    /**
     * Backoff base in milliseconds between attempts of the same cell:
     * EV8_RETRY_BASE_MS (strictly parsed, [0, 10000]) or 10. Attempt k
     * sleeps base * 2^(k-1) ms, capped at 1000 ms; 0 disables sleeping
     * (tests). A set-but-invalid value is a hard error (stderr +
     * exit 2).
     */
    static unsigned retryBaseMs();

    /** @param jobs worker count; 0 resolves to defaultJobs(). */
    explicit ExperimentEngine(unsigned jobs = 0);
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Runs fn(0) .. fn(n-1) across the pool and returns when all calls
     * have finished. Indices are dealt round-robin to the per-worker
     * deques; idle workers steal from the back of busy workers' deques.
     * The first exception thrown by any call is rethrown here (the
     * remaining jobs still run). Not reentrant: one batch at a time.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Executes @p rows x suite-benchmarks simulation jobs and merges
     * per-job observability into each row's config sinks in submission
     * order (see file comment). Returns one suite-ordered result vector
     * per row plus the structured failures of cells that exhausted
     * their retries (those cells' BenchResult::failed is set and their
     * sinks receive nothing). With checkpointing enabled, loads any
     * matching journal first and only runs the remaining cells.
     */
    GridOutcome runGrid(SuiteRunner &runner,
                        const std::vector<GridRow> &rows);

    /**
     * Publishes grid-scheduling counters under @p prefix:
     * "<prefix>.grid_cells" (cells executed), "<prefix>.fused_jobs"
     * (multi-lane jobs dispatched), "<prefix>.fused_lane_cells"
     * (cells that rode a fused walk), "<prefix>.cells_failed" (cells
     * that exhausted retries), "<prefix>.cells_retried" (individual
     * re-attempts) and "<prefix>.cells_resumed" (cells restored from
     * checkpoint journals) -- the scheduling / fault-tolerance view of
     * grid execution. Values differ between EV8_FUSED modes (and
     * between faulty and clean runs) by design, so the bench harness
     * only exports them on request (EV8_CACHE_METRICS) to keep default
     * artifacts byte-identical.
     */
    void publishMetrics(MetricRegistry &registry,
                        const std::string &prefix) const;

    /**
     * Wall time of every completed cell (milliseconds), fused cells as
     * equal amortized slices of their shared walk. Feeds the telemetry
     * block's cell_duration_ms histogram; values are timing-dependent
     * and therefore masked in byte-identity comparisons.
     */
    const Histogram &cellDurations() const { return cellDurationsMs_; }

    /** Total worker-busy time (every attempt + fused walk), ns. */
    uint64_t
    poolBusyNs() const
    {
        return busyNs_.load(std::memory_order_relaxed);
    }

    /** Wall time spent inside runGrid(), summed across batches, ns. */
    uint64_t gridWallNs() const { return gridWallNs_; }

    /** Cells submitted across batches (including restored ones). */
    uint64_t gridCellCount() const { return gridCells_; }

  private:
    struct TaskDeque
    {
        std::mutex mutex;
        std::deque<size_t> tasks;
    };

    void workerLoop(unsigned slot);
    void drain(unsigned slot, const std::function<void(size_t)> &fn);
    bool popTask(unsigned slot, size_t &task);

    unsigned jobs_;
    std::vector<std::unique_ptr<TaskDeque>> queues_;
    std::vector<std::thread> workers_;

    // Grid-scheduling tallies; only runGrid()'s calling thread writes
    // them (one batch at a time), so plain counters suffice --
    // except cellsRetried_, which workers bump from inside jobs.
    uint64_t gridCells_ = 0;
    uint64_t fusedJobs_ = 0;
    uint64_t fusedLaneCells_ = 0;
    uint64_t cellsFailed_ = 0;
    uint64_t cellsResumed_ = 0;
    std::atomic<uint64_t> cellsRetried_{0};

    // Telemetry: completed-cell durations, worker busy time, and grid
    // wall time (see the public accessors above). The histogram and
    // busyNs_ are written by workers (thread-safe); gridWallNs_ only by
    // runGrid()'s calling thread.
    Histogram cellDurationsMs_;
    std::atomic<uint64_t> busyNs_{0};
    uint64_t gridWallNs_ = 0;

    /**
     * runGrid() invocations on this engine, in order: the batch index
     * that prefixes every cell key ("g<batch>/r<row>/<bench>") and
     * feeds the checkpoint grid hash. Deterministic across identical
     * process runs, which is what lets a resumed process find the
     * journal its predecessor wrote.
     */
    uint64_t batchIndex_ = 0;

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable batchDone_;
    uint64_t batchSeq_ = 0;
    const std::function<void(size_t)> *batchFn_ = nullptr;
    size_t pending_ = 0;   //!< tasks not yet completed in this batch
    unsigned busy_ = 0;    //!< workers currently draining this batch
    std::exception_ptr firstError_;
    bool stop_ = false;
};

} // namespace ev8

#endif // EV8_SIM_EXPERIMENT_HH
