/**
 * @file
 * Thread-safe, once-per-profile trace cache with an optional persistent
 * on-disk layer.
 *
 * Trace synthesis dominates a bench binary's startup and every
 * experiment grid replays the same eight suite traces, so traces are
 * generated exactly once per (profile, branch budget) key no matter how
 * many worker threads ask concurrently: the first caller generates (or
 * loads), everyone else blocks on the same std::once_flag and then
 * shares the immutable Trace.
 *
 * The disk layer (enabled by EV8_TRACE_CACHE_DIR or an explicit
 * directory argument) persists generated traces in the trace_io binary
 * format so repeated bench invocations skip synthesis entirely. Cache
 * keys are collision-proofed against staleness on three axes:
 *
 *  - a content hash over *every* field of the WorkloadProfile (name,
 *    seed, program shape, behaviour mix and tuning), so editing a
 *    benchmark's calibration invalidates its cached trace;
 *  - the branch budget, so rescaled runs never alias;
 *  - kFormatVersion, bumped whenever trace generation semantics or the
 *    serialized format change, so old cache directories age out instead
 *    of silently corrupting experiments.
 *
 * Unreadable, truncated or mismatched cache files are regenerated (and
 * rewritten) rather than trusted; disk writes go through a temp file +
 * atomic rename so concurrent processes cannot observe torn files.
 *
 * Failure semantics: the disk layer is strictly best-effort. A cache
 * directory that cannot be created or written degrades the cache to
 * in-memory operation with a single stderr warning (diskDisabled());
 * individual read/write failures are counted (readErrorCount(),
 * writeErrorCount()), warned about once each, and never propagate --
 * the experiment regenerates whatever the disk could not supply. The
 * cache_read/cache_write/cache_rename/cache_short_write points of
 * sim/fault_injection.hh exercise exactly these paths.
 */

#ifndef EV8_SIM_TRACE_CACHE_HH
#define EV8_SIM_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>

#include "sim/block_stream.hh"
#include "sim/phase/phase_map.hh"
#include "trace/trace.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{

class MetricRegistry;  // obs/metrics.hh
enum class FaultPoint; // sim/fault_injection.hh

class TraceCache
{
  public:
    /**
     * Bump when generateTrace() semantics or the on-disk encoding
     * change: stale files from older builds must miss, not load.
     */
    static constexpr unsigned kFormatVersion = 1;

    /**
     * Bump when fetch-block decode semantics (FetchBlockBuilder) or the
     * BlockStream on-disk encoding change. Stream cache file names carry
     * both versions: a stream is only as valid as the trace it was
     * decoded from.
     */
    static constexpr unsigned kStreamFormatVersion = 1;

    /** EV8_TRACE_CACHE_DIR, or "" (disk layer disabled). */
    static std::string defaultDir();

    /**
     * Stable content hash over every profile field. Two profiles that
     * could generate different traces hash differently.
     */
    static uint64_t profileHash(const WorkloadProfile &profile);

    /**
     * @param dir on-disk cache directory; "" keeps the cache in-memory
     *        only. A non-empty directory is probed up front (created if
     *        absent, then a probe file is written and removed); if the
     *        probe fails the cache warns once on stderr and degrades to
     *        in-memory operation instead of failing every experiment
     *        that touches it.
     */
    explicit TraceCache(std::string dir = defaultDir());

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace of @p profile at @p branches dynamic conditional
     * branches. Thread-safe; the returned reference stays valid for the
     * cache's lifetime.
     */
    const Trace &get(const WorkloadProfile &profile, uint64_t branches);

    /**
     * The pre-decoded fetch-block stream of @p profile at @p branches.
     * Decoded exactly once per key (same once_flag discipline as get());
     * a warm stream cache on disk skips trace synthesis *and* decode
     * entirely. Thread-safe; the reference stays valid for the cache's
     * lifetime.
     */
    const BlockStream &stream(const WorkloadProfile &profile,
                              uint64_t branches);

    /**
     * The phase map of @p profile's stream at @p branches, tiled at
     * @p window_branches per window and classified with at most
     * @p max_phases phases. Built exactly once per key (once_flag) and
     * persisted as a `phase-...` sidecar next to the .ev8s file when
     * the disk layer is on: content-hash keyed, atomic temp-file +
     * rename writes, trust-but-verify reads. A stale or corrupt
     * sidecar is discarded (readErrorCount()) and rebuilt from the
     * stream; the sidecar_read/sidecar_write fault points exercise
     * both paths. Thread-safe; the reference stays valid for the
     * cache's lifetime.
     */
    const PhaseMap &phases(const WorkloadProfile &profile,
                           uint64_t branches, uint64_t window_branches,
                           uint32_t max_phases);

    /**
     * The cache file this (profile, budget) key maps to, or "" when the
     * disk layer is disabled. Exposed for tests and tooling.
     */
    std::string filePath(const WorkloadProfile &profile,
                         uint64_t branches) const;

    /** Like filePath(), for the pre-decoded block stream (.ev8s). */
    std::string streamFilePath(const WorkloadProfile &profile,
                               uint64_t branches) const;

    /** Like filePath(), for the phase-map sidecar (.ev8p). */
    std::string phaseFilePath(const WorkloadProfile &profile,
                              uint64_t branches,
                              uint64_t window_branches,
                              uint32_t max_phases) const;

    const std::string &dir() const { return dir_; }

    /** Traces synthesized by this cache (in-memory + disk misses). */
    uint64_t generatedCount() const { return generated_.load(); }

    /** Traces served from the on-disk layer. */
    uint64_t diskHitCount() const { return diskHits_.load(); }

    /** Block streams decoded by this cache (stream disk misses). */
    uint64_t decodedCount() const { return decoded_.load(); }

    /** Block streams served from the on-disk layer. */
    uint64_t streamDiskHitCount() const { return streamDiskHits_.load(); }

    /** Trace lookups answered (hits + generations). */
    uint64_t traceRequestCount() const { return traceRequests_.load(); }

    /** Stream lookups answered (hits + decodes). */
    uint64_t
    streamRequestCount() const
    {
        return streamRequests_.load();
    }

    /**
     * A disk layer was requested but its directory proved unusable, so
     * the cache fell back to in-memory operation. The bench harness
     * exports this as the trace_cache.disk_disabled metric.
     */
    bool diskDisabled() const { return diskDisabled_; }

    /** Cache files that failed to read or verify (then regenerated). */
    uint64_t readErrorCount() const { return readErrors_.load(); }

    /** Cache file writes that failed (results stayed in memory). */
    uint64_t writeErrorCount() const { return writeErrors_.load(); }

    /**
     * Publishes the cache's request/hit/generate counters (plus the
     * read_errors/write_errors fault tallies) under @p prefix (e.g.
     * "trace_cache.stream_requests"): the stream-layer view of how much
     * decode work grid fusion and the once-per-key discipline avoided.
     * Requested explicitly by the bench harness (EV8_CACHE_METRICS)
     * because the values legitimately differ between cold/warm cache
     * runs of otherwise identical experiments.
     */
    void publishMetrics(MetricRegistry &registry,
                        const std::string &prefix) const;

  private:
    struct Entry
    {
        std::once_flag once;
        Trace trace;
    };

    struct StreamEntry
    {
        std::once_flag once;
        BlockStream stream;
    };

    struct PhaseEntry
    {
        std::once_flag once;
        PhaseMap map;
    };

    Trace load(const WorkloadProfile &profile, uint64_t branches) const;
    BlockStream loadStream(const WorkloadProfile &profile,
                           uint64_t branches);
    PhaseMap loadPhases(const WorkloadProfile &profile,
                        uint64_t branches, uint64_t window_branches,
                        uint32_t max_phases);

    /**
     * Best-effort persist: @p write fills a temp file that is atomically
     * renamed to @p path. Any failure (including injected faults) is
     * counted, warned about once, and swallowed. @p write_point is the
     * fault-injection hook consulted before the write (CacheWrite for
     * trace/stream files, SidecarWrite for phase sidecars).
     */
    void persist(const std::string &path,
                 const std::function<void(const std::string &)> &write,
                 FaultPoint write_point) const;

    void noteReadError(const std::string &path,
                       const std::string &why) const;
    void noteWriteError(const std::string &path,
                        const std::string &why) const;

    std::string dir_;
    bool diskDisabled_ = false;
    mutable std::mutex mutex_;   //!< guards entries_ map shape only
    std::map<std::pair<uint64_t, uint64_t>, std::unique_ptr<Entry>>
        entries_;
    std::map<std::pair<uint64_t, uint64_t>, std::unique_ptr<StreamEntry>>
        streamEntries_;
    std::map<std::tuple<uint64_t, uint64_t, uint64_t, uint32_t>,
             std::unique_ptr<PhaseEntry>>
        phaseEntries_;
    mutable std::atomic<uint64_t> generated_{0};
    mutable std::atomic<uint64_t> diskHits_{0};
    mutable std::atomic<uint64_t> decoded_{0};
    mutable std::atomic<uint64_t> streamDiskHits_{0};
    mutable std::atomic<uint64_t> traceRequests_{0};
    mutable std::atomic<uint64_t> streamRequests_{0};
    mutable std::atomic<uint64_t> readErrors_{0};
    mutable std::atomic<uint64_t> writeErrors_{0};
    mutable std::atomic<bool> warnedRead_{false};
    mutable std::atomic<bool> warnedWrite_{false};
};

} // namespace ev8

#endif // EV8_SIM_TRACE_CACHE_HH
