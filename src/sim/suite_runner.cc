#include "sim/suite_runner.hh"

#include <limits>
#include <stdexcept>

#include "sim/experiment.hh"

namespace ev8
{

SuiteRunner::SuiteRunner(uint64_t base_branches, unsigned jobs)
    : baseBranches_(base_branches), jobs_(jobs)
{
}

SuiteRunner::~SuiteRunner() = default;

const std::string &
SuiteRunner::name(size_t i) const
{
    return specint95Suite()[i].profile.name;
}

const Trace &
SuiteRunner::trace(size_t i)
{
    const Benchmark &bench = specint95Suite()[i];
    return cache_.get(bench.profile, bench.branchesAt(baseBranches_));
}

const BlockStream &
SuiteRunner::blockStream(size_t i)
{
    const Benchmark &bench = specint95Suite()[i];
    return cache_.stream(bench.profile, bench.branchesAt(baseBranches_));
}

const SamplePlan *
SuiteRunner::samplePlan(size_t i)
{
    if (!sampleSpec_.active)
        return nullptr;
    PlanEntry *entry;
    {
        std::lock_guard<std::mutex> lock(planMutex_);
        if (planEntries_.size() < size())
            planEntries_.resize(size());
        if (!planEntries_[i])
            planEntries_[i] = std::make_unique<PlanEntry>();
        entry = planEntries_[i].get();
    }
    std::call_once(entry->once, [&] {
        const Benchmark &bench = specint95Suite()[i];
        const PhaseMap &map = cache_.phases(
            bench.profile, bench.branchesAt(baseBranches_),
            sampleSpec_.windowBranches, sampleSpec_.maxPhases);
        // The measured-branch budget scales per benchmark by the same
        // Table 2 weight as the branch budget itself.
        entry->plan = buildSamplePlan(
            map, sampleSpec_, bench.branchesAt(sampleSpec_.budget));
    });
    return &entry->plan;
}

ExperimentEngine &
SuiteRunner::engine()
{
    std::call_once(engineOnce_, [&] {
        engine_ = std::make_unique<ExperimentEngine>(jobs_);
    });
    return *engine_;
}

std::vector<BenchResult>
SuiteRunner::run(const PredictorFactory &factory, const SimConfig &config)
{
    std::vector<GridRow> rows(1);
    rows[0].factory = factory;
    rows[0].config = config;
    GridOutcome outcome = runGrid(rows);
    if (!outcome.ok()) {
        const CellFailure &f = outcome.failures.front();
        throw std::runtime_error(
            "suite run failed on " + f.bench + " after "
            + std::to_string(f.attempts) + " attempt(s): " + f.error);
    }
    return std::move(outcome.results.front());
}

GridOutcome
SuiteRunner::runGrid(const std::vector<GridRow> &rows)
{
    GridOutcome outcome = engine().runGrid(*this, rows);
    failures_.insert(failures_.end(), outcome.failures.begin(),
                     outcome.failures.end());
    resumedCells_ += outcome.resumedCells;
    // Sampled-cell summaries accumulate row-major like failures, so
    // the exported "sampling.cells" order is deterministic whatever
    // the pool width or fuse grouping.
    for (size_t ri = 0; ri < rows.size(); ++ri) {
        for (const BenchResult &r : outcome.results[ri]) {
            if (!r.failed && r.sim.sampled.active) {
                sampledCells_.push_back(
                    {rows[ri].label, r.bench, r.sim.sampled});
            }
        }
    }
    return outcome;
}

double
SuiteRunner::averageMispKI(const std::vector<BenchResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    size_t completed = 0;
    for (const auto &r : results) {
        if (r.failed)
            continue;
        sum += r.sim.stats.mispKI();
        ++completed;
    }
    if (completed == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return sum / static_cast<double>(completed);
}

} // namespace ev8
