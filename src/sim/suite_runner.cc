#include "sim/suite_runner.hh"

#include "sim/experiment.hh"

namespace ev8
{

SuiteRunner::SuiteRunner(uint64_t base_branches, unsigned jobs)
    : baseBranches_(base_branches), jobs_(jobs)
{
}

SuiteRunner::~SuiteRunner() = default;

const std::string &
SuiteRunner::name(size_t i) const
{
    return specint95Suite()[i].profile.name;
}

const Trace &
SuiteRunner::trace(size_t i)
{
    const Benchmark &bench = specint95Suite()[i];
    return cache_.get(bench.profile, bench.branchesAt(baseBranches_));
}

const BlockStream &
SuiteRunner::blockStream(size_t i)
{
    const Benchmark &bench = specint95Suite()[i];
    return cache_.stream(bench.profile, bench.branchesAt(baseBranches_));
}

ExperimentEngine &
SuiteRunner::engine()
{
    std::call_once(engineOnce_, [&] {
        engine_ = std::make_unique<ExperimentEngine>(jobs_);
    });
    return *engine_;
}

std::vector<BenchResult>
SuiteRunner::run(const PredictorFactory &factory, const SimConfig &config)
{
    std::vector<GridRow> rows(1);
    rows[0].factory = factory;
    rows[0].config = config;
    return std::move(runGrid(rows).front());
}

std::vector<std::vector<BenchResult>>
SuiteRunner::runGrid(const std::vector<GridRow> &rows)
{
    return engine().runGrid(*this, rows);
}

double
SuiteRunner::averageMispKI(const std::vector<BenchResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.sim.stats.mispKI();
    return sum / static_cast<double>(results.size());
}

} // namespace ev8
