#include "sim/suite_runner.hh"

#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{

SuiteRunner::SuiteRunner(uint64_t base_branches)
    : baseBranches(base_branches), traces(specint95Suite().size())
{
}

const std::string &
SuiteRunner::name(size_t i) const
{
    return specint95Suite()[i].profile.name;
}

const Trace &
SuiteRunner::trace(size_t i)
{
    if (traces[i].empty()) {
        const Benchmark &bench = specint95Suite()[i];
        traces[i] = generateTrace(bench.profile,
                                  bench.branchesAt(baseBranches));
    }
    return traces[i];
}

std::vector<BenchResult>
SuiteRunner::run(const PredictorFactory &factory, const SimConfig &config)
{
    std::vector<BenchResult> results;
    results.reserve(size());
    for (size_t i = 0; i < size(); ++i) {
        PredictorPtr predictor = factory();
        BenchResult r;
        r.bench = name(i);

        // Label the event stream and attach the pc -> behaviour-class
        // map for this benchmark's static branches.
        BranchClassMap classes;
        if (config.events) {
            config.events->setBench(r.bench);
            classes = SyntheticProgram(specint95Suite()[i].profile)
                          .condBranchClasses();
            config.events->setClassifier(&classes);
        }

        r.sim = simulateTrace(trace(i), *predictor, config);

        if (config.events)
            config.events->setClassifier(nullptr);
        if (config.metrics) {
            predictor->publishMetrics(*config.metrics,
                                      "pred." + predictor->name());
        }
        results.push_back(std::move(r));
    }
    return results;
}

double
SuiteRunner::averageMispKI(const std::vector<BenchResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.sim.stats.mispKI();
    return sum / static_cast<double>(results.size());
}

} // namespace ev8
