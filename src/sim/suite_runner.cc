#include "sim/suite_runner.hh"

#include "workloads/synthetic_program.hh"

namespace ev8
{

SuiteRunner::SuiteRunner(uint64_t base_branches)
    : baseBranches(base_branches), traces(specint95Suite().size())
{
}

const std::string &
SuiteRunner::name(size_t i) const
{
    return specint95Suite()[i].profile.name;
}

const Trace &
SuiteRunner::trace(size_t i)
{
    if (traces[i].empty()) {
        const Benchmark &bench = specint95Suite()[i];
        traces[i] = generateTrace(bench.profile,
                                  bench.branchesAt(baseBranches));
    }
    return traces[i];
}

std::vector<BenchResult>
SuiteRunner::run(const PredictorFactory &factory, const SimConfig &config)
{
    std::vector<BenchResult> results;
    results.reserve(size());
    for (size_t i = 0; i < size(); ++i) {
        PredictorPtr predictor = factory();
        BenchResult r;
        r.bench = name(i);
        r.sim = simulateTrace(trace(i), *predictor, config);
        results.push_back(std::move(r));
    }
    return results;
}

double
SuiteRunner::averageMispKI(const std::vector<BenchResult> &results)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.sim.stats.mispKI();
    return sum / static_cast<double>(results.size());
}

} // namespace ev8
