/**
 * @file
 * The cell-execution core, extracted from ExperimentEngine::runGrid so
 * batch grids and served sessions run the SAME code path.
 *
 * A "cell" is one (benchmark, predictor configuration) simulation with
 * isolated observability: a private MetricRegistry, a private buffered
 * event sink, and a job-owned BranchClassMap. The executor owns
 * everything about running one cell (or one fused multi-lane group)
 * under the failure-isolation contract:
 *
 *  - per-attempt fault hooks (maybeKill + the "job" point, plus the
 *    "session_drop" point for served cells);
 *  - bounded exponential-backoff retries (EV8_RETRY_MAX /
 *    EV8_RETRY_BASE_MS), discarding a torn attempt's partial state;
 *  - an exhausted budget becomes a recorded CellOutput::failed, never
 *    an escaping exception;
 *  - per-attempt timeline spans, phase totals, and progress-meter
 *    notes, exactly as the engine always emitted them.
 *
 * Callers differ only in scheduling and bookkeeping, which they attach
 * via the hook std::functions (journal for the checkpoint, the note*
 * accounting taps for pool telemetry). The hooks are invoked from
 * whatever thread runs the cell, concurrently across cells -- they must
 * be thread-safe (the engine's are: an atomic add, a lock-free
 * histogram, a mutex-guarded journal append).
 *
 * Byte-identity contract: a CellOutput produced here depends only on
 * the request (stream bytes, predictor factory, walk config), never on
 * the caller, the thread, or the transport that delivered the stream --
 * which is what makes served artifacts byte-identical to batch ones.
 */

#ifndef EV8_SIM_CELL_EXECUTOR_HH
#define EV8_SIM_CELL_EXECUTOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "sim/simulator.hh"
#include "sim/suite_runner.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{

class BlockStream; // sim/block_stream.hh
struct SamplePlan; // sim/phase/sample_plan.hh

/** Everything one cell produces in isolation. */
struct CellOutput
{
    BenchResult result;
    MetricRegistry metrics;
    std::vector<MispredictEvent> events;
    BranchClassMap classes; //!< owned here: cannot dangle (cell-local)
    bool failed = false;    //!< exhausted its retry budget
    unsigned attempts = 0;
    std::string error;      //!< what() of the last failed attempt
    std::vector<uint64_t> attemptNs; //!< wall time of each attempt
};

/**
 * One cell, fully described, independent of how it is scheduled. The
 * stream provider is invoked on every attempt (so a transient
 * cache-read fault heals on retry, and decode work lands inside the
 * attempt's span, exactly as before the extraction).
 */
struct CellRequest
{
    /** The pre-decoded stream to simulate; called per attempt. */
    std::function<const BlockStream &()> stream;

    /** The benchmark's workload profile (name + behaviour classes). */
    const WorkloadProfile *profile = nullptr;

    PredictorFactory factory;

    /**
     * The walk configuration. Sink pointers are ignored -- isolation
     * sinks are allocated per attempt; wantEvents/wantMetrics say
     * whether the caller will merge them.
     */
    SimConfig config;
    bool wantEvents = false;
    bool wantMetrics = false;

    /**
     * Set: run only the returned stratified sample plan's windows and
     * extrapolate (sim/phase/sample_plan.hh). Resolved per attempt
     * like the stream (plan construction loads or builds the phase
     * map, and a transient sidecar fault heals on retry). The plan is
     * a property of the benchmark's stream, so every cell fused over
     * one benchmark shares one plan; unset (or returning null) is the
     * exact whole-stream walk.
     */
    std::function<const SamplePlan *()> plan;

    std::string rowLabel;   //!< grid row / session label ("" = anon)
    size_t rowIndex = 0;    //!< timeline "row" arg
    std::string key;        //!< stable fault/journal identity
    std::string label;      //!< progress / timeline display label

    /** Served cell: also consult the "session_drop" fault point. */
    bool sessionFaults = false;
};

class CellExecutor
{
  public:
    /**
     * Attempts per cell before it is declared failed: EV8_RETRY_MAX
     * (strictly parsed, [1, 100]) or 3. A set-but-invalid value is a
     * hard error (stderr + exit 2), matching EV8_JOBS.
     */
    static unsigned retryMax();

    /**
     * Backoff base in milliseconds between attempts of the same cell:
     * EV8_RETRY_BASE_MS (strictly parsed, [0, 10000]) or 10. Attempt k
     * sleeps base * 2^(k-1) ms, capped at 1000 ms; 0 disables sleeping
     * (tests). A set-but-invalid value is a hard error (exit 2).
     */
    static unsigned retryBaseMs();

    /** Snapshots the retry knobs once (one env read per batch/session). */
    CellExecutor();

    /// @name Accounting hooks, all optional. Called from the executing
    /// thread, concurrently across cells: must be thread-safe.
    /// @{

    /** A cell completed successfully (checkpoint journal tap). */
    std::function<void(size_t index, const CellOutput &out)> journal;

    /** Wall time one attempt (or fused walk) kept a worker busy. */
    std::function<void(uint64_t ns)> noteBusyNs;

    /** A cell completed; its (possibly amortized) duration in ms. */
    std::function<void(double ms)> noteCellMs;

    /** A failed attempt is about to be retried. */
    std::function<void()> noteRetried;

    /// @}

    /**
     * The bare cell body: build the predictor, simulate the stream with
     * isolated sinks, publish predictor metrics, buffer events. Throws
     * on simulation failure; @p out may be torn then (callers discard).
     */
    void runCell(const CellRequest &req, CellOutput &out) const;

    /**
     * runCell under the failure-isolation contract: retry with backoff,
     * journal on success, and convert an exhausted budget into
     * out.failed instead of an escaping exception.
     */
    void runGuarded(size_t index, const CellRequest &req,
                    CellOutput &out) const;

    /**
     * One scheduled group: a single cell runs guarded; a fused group
     * tries the shared walk once and, if anything in it throws, falls
     * back to guarded per-cell execution. @p cells indexes into
     * @p reqs / @p outputs; all group members must share a benchmark
     * and walk configuration (the caller's fuse key guarantees it).
     */
    void runGroup(const std::vector<size_t> &cells,
                  const std::vector<CellRequest> &reqs,
                  std::vector<CellOutput> &outputs) const;

  private:
    void runFused(const std::vector<size_t> &cells,
                  const std::vector<CellRequest> &reqs,
                  std::vector<CellOutput> &outputs) const;

    void backoff(unsigned attempt) const;

    void recordCellSpan(const CellRequest &req, unsigned attempt,
                        size_t lanes, bool attempt_failed,
                        uint64_t start_ns, uint64_t dur_ns) const;

    unsigned retryMax_;
    unsigned retryBaseMs_;
};

} // namespace ev8

#endif // EV8_SIM_CELL_EXECUTOR_HH
