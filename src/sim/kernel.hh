/**
 * @file
 * The devirtualized simulation kernel.
 *
 * One template instantiation per (concrete predictor type, history
 * mode, timing, event sink) combination, so that in the hot loop:
 *
 *  - predict()/update() are direct calls into the final predictor
 *    class, inlinable by the compiler, instead of two virtual
 *    dispatches per dynamic branch;
 *  - the `if (timed)` / `if (events)` decisions are made once at
 *    dispatch time and compile out of the per-branch path entirely
 *    (the duplicated runtime-`if (timed)` blocks of the old
 *    simulator.cc collapse into `if constexpr`).
 *
 * The kernel consumes a BlockStream (pre-decoded, cache-linear fetch
 * blocks) and is the single definition of the simulation semantics:
 * the virtual fallback path is the same template instantiated with
 * Predictor = ConditionalBranchPredictor, so specialized and generic
 * runs cannot drift apart. simulator.cc owns the dispatch; nothing
 * else should include this header.
 */

#ifndef EV8_SIM_KERNEL_HH
#define EV8_SIM_KERNEL_HH

#include <type_traits>

#include "frontend/bank_scheduler.hh"
#include "frontend/lghist.hh"
#include "obs/event_trace.hh"
#include "obs/timer.hh"
#include "sim/block_stream.hh"
#include "sim/simulator.hh"

namespace ev8
{
namespace detail
{

/** Builds the sampled-trace record for one misprediction. */
inline MispredictEvent
makeMispredictEvent(const SimResult &result, const BranchSnapshot &snap,
                    bool taken, bool predicted, const VoteSnapshot &votes)
{
    MispredictEvent ev;
    ev.branchSeq = result.condBranches;
    ev.pc = snap.pc;
    ev.blockAddr = snap.blockAddr;
    ev.ghist = snap.hist.ghist;
    ev.indexHist = snap.hist.indexHist;
    ev.bank = snap.bank;
    ev.taken = taken;
    ev.predicted = predicted;
    ev.votesValid = votes.valid;
    ev.voteBim = votes.bim;
    ev.voteG0 = votes.g0;
    ev.voteG1 = votes.g1;
    ev.voteMeta = votes.meta;
    ev.voteMajority = votes.majority;
    return ev;
}

/**
 * The simulation inner loop over a pre-decoded block stream.
 *
 * @tparam Predictor   concrete (final) predictor class, or
 *                     ConditionalBranchPredictor for the virtual
 *                     fallback path
 * @tparam LghistMode  config.history != HistoryMode::Ghist
 * @tparam Timed       config.profileTiming
 * @tparam HasEvents   config.events != nullptr
 *
 * Semantics are bit-for-bit those of the original per-trace loop:
 * immediate update, per-branch ghist, per-block (aged) lghist, the
 * last-three-blocks path registers, and the bank-number recurrence.
 */
template <class Predictor, bool LghistMode, bool Timed, bool HasEvents>
SimResult
runStreamKernel(const BlockStream &stream, Predictor &predictor,
                const SimConfig &config, BankScheduler &bank_sched)
{
    SimResult result;
    result.stats.setInstructions(stream.instructions());

    const bool lghist_path = config.history == HistoryMode::LghistPath;
    const bool assign_banks = config.assignBanks;

    HistoryRegister ghist;
    LghistTracker lghist(lghist_path);
    DelayedHistory delayed(config.historyAge);

    // Path registers: addresses of the last three fetch blocks.
    uint64_t path_z = 0, path_y = 0, path_x = 0;

    BranchSnapshot snap;
    const size_t nblocks = stream.blocks();
    for (size_t b = 0; b < nblocks; ++b) {
        ++result.fetchBlocks;
        const uint32_t first = stream.branchBegin(b);
        const uint32_t last = stream.branchBegin(b + 1);
        const unsigned nbr = last - first;
        ++result.branchesPerBlock[nbr < result.branchesPerBlock.size()
                                      ? nbr
                                      : result.branchesPerBlock.size()
                                            - 1];

        const uint64_t block_addr = stream.blockAddr(b);
        snap.blockAddr = block_addr;
        snap.hist.pathZ = path_z;
        snap.hist.pathY = path_y;
        snap.hist.pathX = path_x;
        if (assign_banks)
            snap.bank =
                static_cast<uint8_t>(bank_sched.assign(block_addr));

        // The index history for every branch of this block: the aged
        // lghist view, or per-branch ghist filled in below.
        const uint64_t block_hist = delayed.view();

        for (uint32_t j = first; j < last; ++j) {
            const uint8_t raw = stream.branchRaw(j);
            const bool br_taken = (raw & 1) != 0;
            snap.pc = block_addr + uint64_t(raw >> 1) * kInstrBytes;
            snap.hist.ghist = ghist.raw();
            snap.hist.indexHist = LghistMode ? block_hist : ghist.raw();

            bool predicted;
            if constexpr (Timed) {
                ScopedTimer t(result.timing.lookup);
                predicted = predictor.predict(snap);
            } else {
                predicted = predictor.predict(snap);
            }
            result.stats.record(predicted, br_taken);

            if constexpr (HasEvents) {
                if (predicted != br_taken) {
                    config.events->onMispredict(makeMispredictEvent(
                        result, snap, br_taken, predicted,
                        predictor.lastVotes()));
                }
            }

            if constexpr (Timed) {
                ScopedTimer t(result.timing.update);
                predictor.update(snap, br_taken, predicted);
            } else {
                predictor.update(snap, br_taken, predicted);
            }

            ghist.push(br_taken);
            ++result.condBranches;
        }

        const auto advance_history = [&] {
            if (nbr > 0) {
                const uint8_t raw = stream.branchRaw(last - 1);
                lghist.onBranchBlock(
                    block_addr + uint64_t(raw >> 1) * kInstrBytes,
                    (raw & 1) != 0);
                ++result.lghistBits;
            }
            delayed.advance(lghist.value());
        };
        if constexpr (Timed) {
            ScopedTimer t(result.timing.history);
            advance_history();
        } else {
            advance_history();
        }

        path_x = path_y;
        path_y = path_z;
        path_z = block_addr;
    }

    return result;
}

/** Resolves the runtime flags to the matching kernel instantiation. */
template <class Predictor>
SimResult
dispatchStreamKernel(const BlockStream &stream, Predictor &predictor,
                     const SimConfig &config, BankScheduler &bank_sched)
{
    const bool lg = config.history != HistoryMode::Ghist;
    const bool timed = config.profileTiming;
    const bool events = config.events != nullptr;

    auto run = [&](auto lg_c, auto timed_c, auto events_c) {
        return runStreamKernel<Predictor, decltype(lg_c)::value,
                               decltype(timed_c)::value,
                               decltype(events_c)::value>(
            stream, predictor, config, bank_sched);
    };
    using F = std::false_type;
    using T = std::true_type;
    if (lg) {
        if (timed)
            return events ? run(T{}, T{}, T{}) : run(T{}, T{}, F{});
        return events ? run(T{}, F{}, T{}) : run(T{}, F{}, F{});
    }
    if (timed)
        return events ? run(F{}, T{}, T{}) : run(F{}, T{}, F{});
    return events ? run(F{}, F{}, T{}) : run(F{}, F{}, F{});
}

} // namespace detail
} // namespace ev8

#endif // EV8_SIM_KERNEL_HH
