/**
 * @file
 * The devirtualized simulation kernel.
 *
 * One template instantiation per (concrete predictor type, history
 * mode, timing, event sink) combination, so that in the hot loop:
 *
 *  - predict()/update() are direct calls into the final predictor
 *    class, inlinable by the compiler, instead of two virtual
 *    dispatches per dynamic branch;
 *  - the `if (timed)` / `if (events)` decisions are made once at
 *    dispatch time and compile out of the per-branch path entirely
 *    (the duplicated runtime-`if (timed)` blocks of the old
 *    simulator.cc collapse into `if constexpr`).
 *
 * The kernel consumes a BlockStream (pre-decoded, cache-linear fetch
 * blocks) and is the single definition of the simulation semantics:
 * the virtual fallback path is the same template instantiated with
 * Predictor = ConditionalBranchPredictor, so specialized and generic
 * runs cannot drift apart. simulator.cc owns the dispatch; nothing
 * else should include this header.
 *
 * The fused kernel (runFusedStreamKernel) is the multi-configuration
 * sibling: one walk of the stream drives N predictor lanes that share
 * the history machinery. That sharing is sound because every register
 * the simulator maintains -- ghist, lghist, the delayed view, the path
 * registers and the bank recurrence -- evolves from trace outcomes
 * only, never from predictor output: lanes with the same (history
 * mode, history age, assignBanks) triple observe bit-identical
 * BranchSnapshots, and a lane consuming fewer history bits simply
 * masks the shared register down (a shorter history is a prefix of a
 * longer one). Per-lane work is laid out struct-of-arrays: a dense
 * predictor-pointer array and a dense mispredict-tally array, with the
 * per-branch snapshot built once per branch instead of once per cell.
 */

#ifndef EV8_SIM_KERNEL_HH
#define EV8_SIM_KERNEL_HH

#include <array>
#include <cassert>
#include <concepts>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "frontend/bank_scheduler.hh"
#include "frontend/lghist.hh"
#include "obs/event_trace.hh"
#include "obs/timer.hh"
#include "sim/block_stream.hh"
#include "sim/phase/sample_plan.hh"
#include "sim/simulator.hh"

namespace ev8
{
namespace detail
{

/**
 * The shared history machinery of one stream walk, lifted out of the
 * kernels so a walk can span multiple [begin, end) block ranges: the
 * sampled-simulation layer runs a warmup range and a measured range
 * (or several contiguous windows) over one evolving state. The exact
 * path constructs a fresh state and walks [0, blocks()) -- bit-for-bit
 * the old single-call behaviour. The kernels copy the members into
 * locals at entry and write them back at exit, so the hot-loop codegen
 * is unchanged.
 */
struct KernelWalkState
{
    KernelWalkState(bool lghist_path, unsigned history_age)
        : lghist(lghist_path), delayed(history_age)
    {
    }

    HistoryRegister ghist;
    LghistTracker lghist;
    DelayedHistory delayed;
    /** Path registers: addresses of the last three fetch blocks. */
    uint64_t pathZ = 0, pathY = 0, pathX = 0;
};

/** Measured tallies of one sampled window (one lane's view). */
struct SampledWindowTally
{
    uint32_t phaseId = 0;
    uint64_t branches = 0;
    uint64_t instrs = 0;
    uint64_t mispredictions = 0;
};

/** Builds the sampled-trace record for one misprediction. */
inline MispredictEvent
makeMispredictEvent(uint64_t branch_seq, const BranchSnapshot &snap,
                    bool taken, bool predicted, const VoteSnapshot &votes)
{
    MispredictEvent ev;
    ev.branchSeq = branch_seq;
    ev.pc = snap.pc;
    ev.blockAddr = snap.blockAddr;
    ev.ghist = snap.hist.ghist;
    ev.indexHist = snap.hist.indexHist;
    ev.bank = snap.bank;
    ev.taken = taken;
    ev.predicted = predicted;
    ev.votesValid = votes.valid;
    ev.voteBim = votes.bim;
    ev.voteG0 = votes.g0;
    ev.voteG1 = votes.g1;
    ev.voteMeta = votes.meta;
    ev.voteMajority = votes.majority;
    return ev;
}

/**
 * The simulation inner loop over a pre-decoded block stream.
 *
 * @tparam Predictor   concrete (final) predictor class, or
 *                     ConditionalBranchPredictor for the virtual
 *                     fallback path
 * @tparam LghistMode  config.history != HistoryMode::Ghist
 * @tparam Timed       config.profileTiming
 * @tparam HasEvents   config.events != nullptr
 *
 * Semantics are bit-for-bit those of the original per-trace loop:
 * immediate update, per-branch ghist, per-block (aged) lghist, the
 * last-three-blocks path registers, and the bank-number recurrence.
 */
template <class Predictor, bool LghistMode, bool Timed, bool HasEvents>
void
runStreamKernelRange(const BlockStream &stream, Predictor &predictor,
                     const SimConfig &config, BankScheduler &bank_sched,
                     size_t begin_block, size_t end_block,
                     KernelWalkState &walk, uint64_t branch_seq_base,
                     SimResult &result)
{
    const bool assign_banks = config.assignBanks;

    // Walk state lives in locals for the duration of the range (the
    // compiler keeps them in registers exactly as when they were
    // declared here) and is written back at exit so a later range
    // continues where this one stopped.
    HistoryRegister ghist = walk.ghist;
    LghistTracker lghist = walk.lghist;
    DelayedHistory delayed = walk.delayed;
    uint64_t path_z = walk.pathZ, path_y = walk.pathY,
             path_x = walk.pathX;

    // Event records carry the branch's absolute sequence number in the
    // whole stream; for the exact walk the base is 0 and this equals
    // the running condBranches tally.
    uint64_t branch_seq = branch_seq_base;

    BranchSnapshot snap;
    const size_t nblocks = end_block;
    for (size_t b = begin_block; b < nblocks; ++b) {
        ++result.fetchBlocks;
        const uint32_t first = stream.branchBegin(b);
        const uint32_t last = stream.branchBegin(b + 1);
        const unsigned nbr = last - first;
        ++result.branchesPerBlock[nbr < result.branchesPerBlock.size()
                                      ? nbr
                                      : result.branchesPerBlock.size()
                                            - 1];

        const uint64_t block_addr = stream.blockAddr(b);
        snap.blockAddr = block_addr;
        snap.hist.pathZ = path_z;
        snap.hist.pathY = path_y;
        snap.hist.pathX = path_x;
        if (assign_banks)
            snap.bank =
                static_cast<uint8_t>(bank_sched.assign(block_addr));

        // The index history for every branch of this block: the aged
        // lghist view, or per-branch ghist filled in below.
        const uint64_t block_hist = delayed.view();

        for (uint32_t j = first; j < last; ++j) {
            const uint8_t raw = stream.branchRaw(j);
            const bool br_taken = (raw & 1) != 0;
            snap.pc = block_addr + uint64_t(raw >> 1) * kInstrBytes;
            snap.hist.ghist = ghist.raw();
            snap.hist.indexHist = LghistMode ? block_hist : ghist.raw();

            bool predicted;
            if constexpr (Timed) {
                ScopedTimer t(result.timing.lookup, SpanPhase::SimLookup);
                predicted = predictor.predict(snap);
            } else {
                predicted = predictor.predict(snap);
            }
            result.stats.record(predicted, br_taken);

            if constexpr (HasEvents) {
                if (predicted != br_taken) {
                    config.events->onMispredict(makeMispredictEvent(
                        branch_seq, snap, br_taken, predicted,
                        predictor.lastVotes()));
                }
            }

            if constexpr (Timed) {
                ScopedTimer t(result.timing.update, SpanPhase::SimUpdate);
                predictor.update(snap, br_taken, predicted);
            } else {
                predictor.update(snap, br_taken, predicted);
            }

            ghist.push(br_taken);
            ++branch_seq;
            ++result.condBranches;
        }

        const auto advance_history = [&] {
            if (nbr > 0) {
                const uint8_t raw = stream.branchRaw(last - 1);
                lghist.onBranchBlock(
                    block_addr + uint64_t(raw >> 1) * kInstrBytes,
                    (raw & 1) != 0);
                ++result.lghistBits;
            }
            delayed.advance(lghist.value());
        };
        if constexpr (Timed) {
            ScopedTimer t(result.timing.history, SpanPhase::SimHistory);
            advance_history();
        } else {
            advance_history();
        }

        path_x = path_y;
        path_y = path_z;
        path_z = block_addr;
    }

    walk.ghist = ghist;
    walk.lghist = lghist;
    walk.delayed = delayed;
    walk.pathZ = path_z;
    walk.pathY = path_y;
    walk.pathX = path_x;
}

/** The exact (whole-stream) walk: fresh state, every block. */
template <class Predictor, bool LghistMode, bool Timed, bool HasEvents>
SimResult
runStreamKernel(const BlockStream &stream, Predictor &predictor,
                const SimConfig &config, BankScheduler &bank_sched)
{
    SimResult result;
    result.stats.setInstructions(stream.instructions());
    KernelWalkState walk(config.history == HistoryMode::LghistPath,
                         config.historyAge);
    runStreamKernelRange<Predictor, LghistMode, Timed, HasEvents>(
        stream, predictor, config, bank_sched, 0, stream.blocks(), walk,
        0, result);
    return result;
}

/**
 * The sampled walk: the plan's windows in stream order, each primed by
 * a warmup range (stats gated off, events and timers disabled) when
 * the walk is not already contiguous with the previous window. The
 * predictor is never reset between windows -- its table state carries
 * over, a second warming layer on top of the explicit prefix -- while
 * the shared history state resets at each discontinuity and is primed
 * by the warmup range. Per-window measured tallies land in @p tallies
 * for the stratified extrapolation.
 */
template <class Predictor, bool LghistMode, bool Timed, bool HasEvents>
SimResult
runSampledStreamKernel(const BlockStream &stream, Predictor &predictor,
                       const SimConfig &config,
                       BankScheduler &bank_sched, const SamplePlan &plan,
                       std::vector<SampledWindowTally> &tallies)
{
    const bool lghist_path = config.history == HistoryMode::LghistPath;
    const bool want_stats = config.metrics != nullptr;

    SimResult result;
    SimResult warm_sink;
    KernelWalkState walk(lghist_path, config.historyAge);
    uint64_t next_block = ~uint64_t{0};
    for (const SampledWindow &w : plan.windows) {
        if (w.blockBegin != next_block) {
            walk = KernelWalkState(lghist_path, config.historyAge);
            bank_sched = BankScheduler();
            if (w.warmupBlockBegin < w.blockBegin) {
                predictor.enableStats(false);
                runStreamKernelRange<Predictor, LghistMode, false,
                                     false>(
                    stream, predictor, config, bank_sched,
                    static_cast<size_t>(w.warmupBlockBegin),
                    static_cast<size_t>(w.blockBegin), walk, 0,
                    warm_sink);
                predictor.enableStats(want_stats);
            }
        }
        const uint64_t misp0 = result.stats.mispredictions();
        runStreamKernelRange<Predictor, LghistMode, Timed, HasEvents>(
            stream, predictor, config, bank_sched,
            static_cast<size_t>(w.blockBegin),
            static_cast<size_t>(w.blockEnd), walk, w.branchSeqBase,
            result);
        tallies.push_back(
            {w.phaseId, w.branches, w.instrs,
             result.stats.mispredictions() - misp0});
        next_block = w.blockEnd;
    }
    return result;
}

/** Resolves the runtime flags to the matching kernel instantiation. */
template <class Predictor>
SimResult
dispatchStreamKernel(const BlockStream &stream, Predictor &predictor,
                     const SimConfig &config, BankScheduler &bank_sched)
{
    const bool lg = config.history != HistoryMode::Ghist;
    const bool timed = config.profileTiming;
    const bool events = config.events != nullptr;

    auto run = [&](auto lg_c, auto timed_c, auto events_c) {
        return runStreamKernel<Predictor, decltype(lg_c)::value,
                               decltype(timed_c)::value,
                               decltype(events_c)::value>(
            stream, predictor, config, bank_sched);
    };
    using F = std::false_type;
    using T = std::true_type;
    if (lg) {
        if (timed)
            return events ? run(T{}, T{}, T{}) : run(T{}, T{}, F{});
        return events ? run(T{}, F{}, T{}) : run(T{}, F{}, F{});
    }
    if (timed)
        return events ? run(F{}, T{}, T{}) : run(F{}, T{}, F{});
    return events ? run(F{}, F{}, T{}) : run(F{}, F{}, F{});
}

/** Resolves the runtime flags for the sampled per-cell walk. */
template <class Predictor>
SimResult
dispatchSampledStreamKernel(const BlockStream &stream,
                            Predictor &predictor,
                            const SimConfig &config,
                            BankScheduler &bank_sched,
                            const SamplePlan &plan,
                            std::vector<SampledWindowTally> &tallies)
{
    const bool lg = config.history != HistoryMode::Ghist;
    const bool timed = config.profileTiming;
    const bool events = config.events != nullptr;

    auto run = [&](auto lg_c, auto timed_c, auto events_c) {
        return runSampledStreamKernel<Predictor, decltype(lg_c)::value,
                                      decltype(timed_c)::value,
                                      decltype(events_c)::value>(
            stream, predictor, config, bank_sched, plan, tallies);
    };
    using F = std::false_type;
    using T = std::true_type;
    if (lg) {
        if (timed)
            return events ? run(T{}, T{}, T{}) : run(T{}, T{}, F{});
        return events ? run(T{}, F{}, T{}) : run(T{}, F{}, F{});
    }
    if (timed)
        return events ? run(F{}, T{}, T{}) : run(F{}, T{}, F{});
    return events ? run(F{}, F{}, T{}) : run(F{}, F{}, F{});
}

/**
 * Two-phase lane entry point: the predictor exposes its (pure) table
 * index computation separately from the read-modify-write, so the
 * fused loop can compute every lane's index back-to-back (unrolled,
 * no intervening table traffic) and then stream the counter updates.
 */
template <class P>
concept FusedLaneIndexed = requires(P p, const P cp,
                                    const BranchSnapshot &snap) {
    { cp.laneIndex(snap) } -> std::convertible_to<size_t>;
    { p.applyAt(size_t{}, true) } -> std::same_as<bool>;
};

/**
 * Single-call lane entry point: predict and train in one step, letting
 * the predictor reuse lookup state (indices, votes) it would otherwise
 * recompute or re-cache between the two virtual calls.
 */
template <class P>
concept FusedSteppable = requires(P p, const BranchSnapshot &snap) {
    { p.predictAndUpdate(snap, true) } -> std::same_as<bool>;
};

/**
 * Group-stepped lane entry point, the strongest fusion contract: the
 * predictor class exposes a FusedGroup stepper that advances every lane
 * of a fused job in one call, sharing cross-lane index arithmetic that
 * the per-lane entry points cannot see (all lanes of a group observe
 * the same BranchSnapshot). Constructed once per walk, checked before
 * the per-lane entry points on the untimed, event-free fast path.
 */
template <class P>
concept FusedGroupStepped = requires(typename P::FusedGroup &group,
                                     const BranchSnapshot &snap,
                                     uint64_t *misp) {
    requires std::constructible_from<typename P::FusedGroup, P *const *,
                                     size_t>;
    { group.step(snap, true, misp) } -> std::same_as<void>;
};

/** One lane of a fused run: where its results and events go. */
template <class Predictor>
struct FusedLaneState
{
    Predictor *predictor = nullptr;
    SimResult *result = nullptr;
    MispredictSink *events = nullptr; //!< may be null per lane

    /**
     * Whether this lane's predictor wants internal stats on (metrics
     * attached). Only the sampled walk consults it -- it must gate
     * stats off during warmup ranges and back on per lane afterwards;
     * the exact walk sets stats once up front in simulateStreamFused.
     */
    bool statsWanted = false;
};

/**
 * The fused inner loop: one pass over @p stream drives @p nlanes
 * predictor lanes under one shared history configuration.
 *
 * Template parameters mirror runStreamKernel. HasEvents means "some
 * lane has an event sink"; lanes with a null sink inside an events
 * instantiation just skip emission. Each lane's SimResult ends up
 * bit-identical to what a per-cell runStreamKernel call would have
 * produced for that (predictor, config) pair: the walk tallies
 * (fetchBlocks, condBranches, lghistBits, branchesPerBlock) are
 * computed once and copied into every lane, per-lane mispredictions
 * are tallied SoA in the fast path, and the per-block history advance
 * is timed once and merged into every lane with the same call count a
 * per-cell run would record.
 */
/**
 * Throwing lane-set validation shared by the fused entry points: a
 * malformed lane set must be a recoverable cell failure (caught,
 * retried, reported) in release builds too, not silent UB.
 */
template <class Predictor>
void
checkFusedLanes(const FusedLaneState<Predictor> *lanes, size_t nlanes)
{
    if (nlanes < 1 || nlanes > kMaxFusedLanes) {
        throw std::invalid_argument(
            "fused kernel lane count " + std::to_string(nlanes)
            + " outside [1, " + std::to_string(kMaxFusedLanes) + "]");
    }
    for (size_t l = 0; l < nlanes; ++l) {
        if (lanes[l].predictor == nullptr
            || lanes[l].result == nullptr) {
            throw std::invalid_argument(
                "fused kernel lane " + std::to_string(l)
                + " has a null predictor or result slot");
        }
    }
}

template <class Predictor, bool LghistMode, bool Timed, bool HasEvents>
void
runFusedStreamKernelRange(const BlockStream &stream,
                          FusedLaneState<Predictor> *lanes,
                          size_t nlanes, const SimConfig &config,
                          BankScheduler &bank_sched, size_t begin_block,
                          size_t end_block, KernelWalkState &walk,
                          uint64_t branch_seq_base)
{
    // SoA hot state: dense predictor pointers and mispredict tallies.
    Predictor *preds[kMaxFusedLanes];
    uint64_t misp[kMaxFusedLanes] = {};
    for (size_t l = 0; l < nlanes; ++l)
        preds[l] = lanes[l].predictor;

    // Group stepper, built once per walk; only the untimed, event-free
    // instantiations of group-steppable predictors ever use it (the
    // observed paths need per-lane calls for timers and events).
    auto group = [&] {
        if constexpr (!(Timed || HasEvents) && FusedGroupStepped<Predictor>)
            return typename Predictor::FusedGroup(preds, nlanes);
        else
            return 0;
    }();
    (void)group;

    const bool assign_banks = config.assignBanks;

    HistoryRegister ghist = walk.ghist;
    LghistTracker lghist = walk.lghist;
    DelayedHistory delayed = walk.delayed;
    uint64_t path_z = walk.pathZ, path_y = walk.pathY,
             path_x = walk.pathX;

    // Walk tallies, computed once and fanned out to every lane.
    uint64_t fetch_blocks = 0, cond_branches = 0, lghist_bits = 0;
    uint64_t branch_seq = branch_seq_base;
    std::array<uint64_t, 9> per_block{};
    TimingStat hist_time;

    BranchSnapshot snap;
    const size_t nblocks = end_block;
    for (size_t b = begin_block; b < nblocks; ++b) {
        ++fetch_blocks;
        const uint32_t first = stream.branchBegin(b);
        const uint32_t last = stream.branchBegin(b + 1);
        const unsigned nbr = last - first;
        ++per_block[nbr < per_block.size() ? nbr : per_block.size() - 1];

        const uint64_t block_addr = stream.blockAddr(b);
        snap.blockAddr = block_addr;
        snap.hist.pathZ = path_z;
        snap.hist.pathY = path_y;
        snap.hist.pathX = path_x;
        if (assign_banks)
            snap.bank =
                static_cast<uint8_t>(bank_sched.assign(block_addr));

        const uint64_t block_hist = delayed.view();

        for (uint32_t j = first; j < last; ++j) {
            const uint8_t raw = stream.branchRaw(j);
            const bool br_taken = (raw & 1) != 0;
            snap.pc = block_addr + uint64_t(raw >> 1) * kInstrBytes;
            snap.hist.ghist = ghist.raw();
            snap.hist.indexHist = LghistMode ? block_hist : ghist.raw();

            if constexpr (Timed || HasEvents) {
                // Observed path: per-lane timers / event emission need
                // the split predict()/update() calls of the per-cell
                // kernel, with identical call counts per lane.
                for (size_t l = 0; l < nlanes; ++l) {
                    bool predicted;
                    if constexpr (Timed) {
                        ScopedTimer t(lanes[l].result->timing.lookup,
                                      SpanPhase::SimLookup);
                        predicted = preds[l]->predict(snap);
                    } else {
                        predicted = preds[l]->predict(snap);
                    }
                    lanes[l].result->stats.record(predicted, br_taken);
                    if constexpr (HasEvents) {
                        if (predicted != br_taken && lanes[l].events) {
                            lanes[l].events->onMispredict(
                                makeMispredictEvent(
                                    branch_seq, snap, br_taken,
                                    predicted, preds[l]->lastVotes()));
                        }
                    }
                    if constexpr (Timed) {
                        ScopedTimer t(lanes[l].result->timing.update,
                                  SpanPhase::SimUpdate);
                        preds[l]->update(snap, br_taken, predicted);
                    } else {
                        preds[l]->update(snap, br_taken, predicted);
                    }
                }
            } else if constexpr (FusedGroupStepped<Predictor>) {
                group.step(snap, br_taken, misp);
            } else if constexpr (FusedLaneIndexed<Predictor>) {
                // Unrolled multi-lane index computation, then the
                // read-modify-write sweep over the lane tables.
                size_t idx[kMaxFusedLanes];
                for (size_t l = 0; l < nlanes; ++l)
                    idx[l] = preds[l]->laneIndex(snap);
                for (size_t l = 0; l < nlanes; ++l)
                    misp[l] +=
                        preds[l]->applyAt(idx[l], br_taken) != br_taken;
            } else if constexpr (FusedSteppable<Predictor>) {
                for (size_t l = 0; l < nlanes; ++l)
                    misp[l] += preds[l]->predictAndUpdate(snap, br_taken)
                        != br_taken;
            } else {
                for (size_t l = 0; l < nlanes; ++l) {
                    const bool predicted = preds[l]->predict(snap);
                    preds[l]->update(snap, br_taken, predicted);
                    misp[l] += predicted != br_taken;
                }
            }

            ghist.push(br_taken);
            ++branch_seq;
            ++cond_branches;
        }

        const auto advance_history = [&] {
            if (nbr > 0) {
                const uint8_t raw = stream.branchRaw(last - 1);
                lghist.onBranchBlock(
                    block_addr + uint64_t(raw >> 1) * kInstrBytes,
                    (raw & 1) != 0);
                ++lghist_bits;
            }
            delayed.advance(lghist.value());
        };
        if constexpr (Timed) {
            // Timed once per block; merged per lane below so every
            // lane reports the same history call count as a per-cell
            // run (the shared advance serves all lanes at once).
            ScopedTimer t(hist_time, SpanPhase::SimHistory);
            advance_history();
        } else {
            advance_history();
        }

        path_x = path_y;
        path_y = path_z;
        path_z = block_addr;
    }

    walk.ghist = ghist;
    walk.lghist = lghist;
    walk.delayed = delayed;
    walk.pathZ = path_z;
    walk.pathY = path_y;
    walk.pathX = path_x;

    // Accumulating fan-out: a whole-stream walk starts from zeroed
    // results (so += here equals the old overwrite), and the sampled
    // walk adds each measured window into the same lane results.
    for (size_t l = 0; l < nlanes; ++l) {
        SimResult &r = *lanes[l].result;
        if constexpr (!(Timed || HasEvents))
            r.stats.tally(cond_branches, misp[l]);
        r.fetchBlocks += fetch_blocks;
        r.condBranches += cond_branches;
        r.lghistBits += lghist_bits;
        for (size_t k = 0; k < per_block.size(); ++k)
            r.branchesPerBlock[k] += per_block[k];
        if constexpr (Timed)
            r.timing.history.merge(hist_time);
    }
}

/** The exact (whole-stream) fused walk: fresh state, every block. */
template <class Predictor, bool LghistMode, bool Timed, bool HasEvents>
void
runFusedStreamKernel(const BlockStream &stream,
                     FusedLaneState<Predictor> *lanes, size_t nlanes,
                     const SimConfig &config, BankScheduler &bank_sched)
{
    checkFusedLanes(lanes, nlanes);
    for (size_t l = 0; l < nlanes; ++l)
        lanes[l].result->stats.setInstructions(stream.instructions());
    KernelWalkState walk(config.history == HistoryMode::LghistPath,
                         config.historyAge);
    runFusedStreamKernelRange<Predictor, LghistMode, Timed, HasEvents>(
        stream, lanes, nlanes, config, bank_sched, 0, stream.blocks(),
        walk, 0);
}

/**
 * The sampled fused walk: the plan's windows in stream order over one
 * shared walk state, all lanes stepped together. Warmup ranges run on
 * the untimed, event-free instantiation into throwaway results with
 * per-lane stats gated off, so the fused group steppers (and the SIMD
 * lane stepping under them) serve warmup and measurement unchanged.
 * Per-window, per-lane measured tallies land in @p tallies
 * (tallies[lane][window]) for the stratified extrapolation.
 */
template <class Predictor, bool LghistMode, bool Timed, bool HasEvents>
void
runSampledFusedKernel(
    const BlockStream &stream, FusedLaneState<Predictor> *lanes,
    size_t nlanes, const SimConfig &config, BankScheduler &bank_sched,
    const SamplePlan &plan,
    std::vector<std::vector<SampledWindowTally>> &tallies)
{
    checkFusedLanes(lanes, nlanes);
    tallies.assign(nlanes, {});

    const bool lghist_path = config.history == HistoryMode::LghistPath;

    // Warmup lanes: same predictors, throwaway results, no events.
    std::vector<SimResult> warm_sinks(nlanes);
    std::vector<FusedLaneState<Predictor>> warm_lanes(nlanes);
    for (size_t l = 0; l < nlanes; ++l) {
        warm_lanes[l].predictor = lanes[l].predictor;
        warm_lanes[l].result = &warm_sinks[l];
    }

    KernelWalkState walk(lghist_path, config.historyAge);
    uint64_t next_block = ~uint64_t{0};
    for (const SampledWindow &w : plan.windows) {
        if (w.blockBegin != next_block) {
            walk = KernelWalkState(lghist_path, config.historyAge);
            bank_sched = BankScheduler();
            if (w.warmupBlockBegin < w.blockBegin) {
                for (size_t l = 0; l < nlanes; ++l)
                    lanes[l].predictor->enableStats(false);
                runFusedStreamKernelRange<Predictor, LghistMode, false,
                                          false>(
                    stream, warm_lanes.data(), nlanes, config,
                    bank_sched,
                    static_cast<size_t>(w.warmupBlockBegin),
                    static_cast<size_t>(w.blockBegin), walk, 0);
                for (size_t l = 0; l < nlanes; ++l)
                    lanes[l].predictor->enableStats(
                        lanes[l].statsWanted);
            }
        }
        uint64_t misp0[kMaxFusedLanes];
        for (size_t l = 0; l < nlanes; ++l)
            misp0[l] = lanes[l].result->stats.mispredictions();
        runFusedStreamKernelRange<Predictor, LghistMode, Timed,
                                  HasEvents>(
            stream, lanes, nlanes, config, bank_sched,
            static_cast<size_t>(w.blockBegin),
            static_cast<size_t>(w.blockEnd), walk, w.branchSeqBase);
        for (size_t l = 0; l < nlanes; ++l) {
            tallies[l].push_back(
                {w.phaseId, w.branches, w.instrs,
                 lanes[l].result->stats.mispredictions() - misp0[l]});
        }
        next_block = w.blockEnd;
    }
}

/** Resolves the runtime flags to the matching fused instantiation. */
template <class Predictor>
void
dispatchFusedKernel(const BlockStream &stream,
                    FusedLaneState<Predictor> *lanes, size_t nlanes,
                    const SimConfig &config, BankScheduler &bank_sched)
{
    const bool lg = config.history != HistoryMode::Ghist;
    const bool timed = config.profileTiming;
    bool events = false;
    for (size_t l = 0; l < nlanes; ++l)
        events |= lanes[l].events != nullptr;

    auto run = [&](auto lg_c, auto timed_c, auto events_c) {
        runFusedStreamKernel<Predictor, decltype(lg_c)::value,
                             decltype(timed_c)::value,
                             decltype(events_c)::value>(
            stream, lanes, nlanes, config, bank_sched);
    };
    using F = std::false_type;
    using T = std::true_type;
    if (lg) {
        if (timed)
            return events ? run(T{}, T{}, T{}) : run(T{}, T{}, F{});
        return events ? run(T{}, F{}, T{}) : run(T{}, F{}, F{});
    }
    if (timed)
        return events ? run(F{}, T{}, T{}) : run(F{}, T{}, F{});
    return events ? run(F{}, F{}, T{}) : run(F{}, F{}, F{});
}

/** Resolves the runtime flags for the sampled fused walk. */
template <class Predictor>
void
dispatchSampledFusedKernel(
    const BlockStream &stream, FusedLaneState<Predictor> *lanes,
    size_t nlanes, const SimConfig &config, BankScheduler &bank_sched,
    const SamplePlan &plan,
    std::vector<std::vector<SampledWindowTally>> &tallies)
{
    const bool lg = config.history != HistoryMode::Ghist;
    const bool timed = config.profileTiming;
    bool events = false;
    for (size_t l = 0; l < nlanes; ++l)
        events |= lanes[l].events != nullptr;

    auto run = [&](auto lg_c, auto timed_c, auto events_c) {
        runSampledFusedKernel<Predictor, decltype(lg_c)::value,
                              decltype(timed_c)::value,
                              decltype(events_c)::value>(
            stream, lanes, nlanes, config, bank_sched, plan, tallies);
    };
    using F = std::false_type;
    using T = std::true_type;
    if (lg) {
        if (timed)
            return events ? run(T{}, T{}, T{}) : run(T{}, T{}, F{});
        return events ? run(T{}, F{}, T{}) : run(T{}, F{}, F{});
    }
    if (timed)
        return events ? run(F{}, T{}, T{}) : run(F{}, T{}, F{});
    return events ? run(F{}, F{}, T{}) : run(F{}, F{}, F{});
}

} // namespace detail
} // namespace ev8

#endif // EV8_SIM_KERNEL_HH
