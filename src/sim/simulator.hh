/**
 * @file
 * Trace-driven branch-prediction simulation, the paper's methodology
 * (Section 8.1.1): immediate update, misp/KI metric, tables initialized
 * weakly not-taken. The paper validated that immediate update differs
 * insignificantly from full-pipeline commit-time update for the
 * predictors studied, which is what makes this three-orders-of-magnitude
 * faster methodology sound.
 *
 * The simulator owns the information-vector machinery of Section 5: it
 * reconstructs fetch blocks, maintains conventional ghist, lghist (with
 * or without the path bit), the N-fetch-blocks-old delayed view, the
 * last-three-blocks path registers, and the bank-number recurrence --
 * then hands each predictor a BranchSnapshot with everything filled in.
 */

#ifndef EV8_SIM_SIMULATOR_HH
#define EV8_SIM_SIMULATOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "obs/timer.hh"
#include "predictors/predictor.hh"
#include "trace/trace.hh"

namespace ev8
{

class BlockStream;    // sim/block_stream.hh
class MetricRegistry; // obs/metrics.hh
class MispredictSink; // obs/event_trace.hh
struct SamplePlan;    // sim/phase/sample_plan.hh

/** Which history register feeds hist.indexHist (Fig. 7's axis). */
enum class HistoryMode
{
    Ghist,        //!< conventional per-branch global history
    LghistNoPath, //!< one bit per fetch block, outcome only
    LghistPath,   //!< one bit per fetch block, outcome XOR pc bit 4
};

/** Simulation configuration: the information-vector variant. */
struct SimConfig
{
    HistoryMode history = HistoryMode::Ghist;

    /**
     * How many fetch blocks old the index history is. 0 models an
     * ideal up-to-date register; 3 models the EV8 pipeline (Section
     * 5.1). Applies to the lghist modes; conventional ghist in the
     * paper is always up to date.
     */
    unsigned historyAge = 0;

    /** Drive the bank-number recurrence and fill BranchSnapshot::bank. */
    bool assignBanks = false;

    /**
     * Optional observability hooks. All default to detached; the
     * simulation loop only pays for them when they are set.
     */
    MetricRegistry *metrics = nullptr; //!< end-of-run counter dump
    MispredictSink *events = nullptr;  //!< sampled mispredict JSONL
    bool profileTiming = false;        //!< fill SimResult::timing

    /**
     * Skip the devirtualized kernel specializations and run the
     * generic (virtual-dispatch) instantiation even for known
     * predictor types. The specialized and generic paths share one
     * kernel template and must produce identical results; this flag
     * (or the EV8_GENERIC_KERNEL environment variable) exists so tests
     * and CI can prove it byte-for-byte.
     */
    bool forceGenericKernel = false;

    /** Preset: conventional global history ("ghist" rows of Fig. 7). */
    static SimConfig
    ghist()
    {
        return SimConfig{HistoryMode::Ghist, 0, false};
    }

    /** Preset: the full EV8 information vector (3-old lghist + path). */
    static SimConfig
    ev8()
    {
        return SimConfig{HistoryMode::LghistPath, 3, true};
    }
};

/**
 * Per-cell summary of a sampled (stratified) run. Inactive (all zeros)
 * for exact runs, so exact-mode artifacts are unchanged by presence of
 * the sampling layer.
 */
struct SampledCellInfo
{
    bool active = false;
    uint32_t phases = 0;            //!< phases in the trace's map
    uint64_t windowsTotal = 0;      //!< windows in the trace's map
    uint64_t windowsSimulated = 0;  //!< measured windows run
    uint64_t branchesSimulated = 0; //!< measured branches run
    uint64_t warmupBranches = 0;    //!< warmup budget per window
    double ci95MispKI = 0.0;        //!< stratified 95% CI half-width

    bool operator==(const SampledCellInfo &) const = default;
};

/** Result of one (trace, predictor, config) simulation. */
struct SimResult
{
    PredictionStats stats;       //!< prediction accuracy tallies
    uint64_t fetchBlocks = 0;    //!< fetch blocks reconstructed
    uint64_t lghistBits = 0;     //!< history bits inserted (Table 3)
    uint64_t condBranches = 0;   //!< conditional branches simulated

    /**
     * Sampled-mode summary. When active, `stats` carries the
     * whole-trace extrapolation (lookups = the full branch total,
     * mispredictions = the stratified estimate) while fetchBlocks /
     * lghistBits / condBranches / branchesPerBlock tally only the
     * measured windows.
     */
    SampledCellInfo sampled;

    /** Fetch blocks holding exactly k conditional branches (k = 0..8). */
    std::array<uint64_t, 9> branchesPerBlock{};

    /** Wall-clock split (populated only when SimConfig::profileTiming). */
    SimTiming timing;

    /** Table 3: average branches summarized per lghist bit. */
    double
    lghistRatio() const
    {
        return lghistBits == 0
            ? 0.0
            : static_cast<double>(condBranches)
                  / static_cast<double>(lghistBits);
    }
};

/**
 * Runs @p predictor over @p trace under @p config. The predictor is NOT
 * reset first (callers decide whether warm state is wanted; the bench
 * harness always uses a fresh instance per run). Decodes the trace's
 * fetch blocks on the fly; grid runners that revisit the same trace
 * should decode once and call simulateStream() instead.
 */
SimResult simulateTrace(const Trace &trace,
                        ConditionalBranchPredictor &predictor,
                        const SimConfig &config);

/**
 * Runs @p predictor over a pre-decoded block stream -- the hot path of
 * the experiment engine. Known predictor types are dispatched to a
 * kernel specialized on the concrete class and on the config's static
 * flags (history mode, timing, event sink); everything else takes the
 * same kernel instantiated with virtual dispatch. Results, metrics and
 * emitted events are identical on both paths, and identical to
 * simulateTrace() over the trace the stream was decoded from.
 */
SimResult simulateStream(const BlockStream &stream,
                         ConditionalBranchPredictor &predictor,
                         const SimConfig &config);

/** Most lanes one fused kernel walk will drive (SoA array bound). */
constexpr size_t kMaxFusedLanes = 64;

/**
 * One configuration lane of a fused multi-configuration run. The
 * shared walk state (histories, path registers, bank recurrence) comes
 * from the SimConfig passed to simulateStreamFused(); each lane brings
 * its own predictor and its own observability sinks.
 */
struct FusedLane
{
    ConditionalBranchPredictor *predictor = nullptr;
    MetricRegistry *metrics = nullptr; //!< per-lane sim.* counter dump
    MispredictSink *events = nullptr;  //!< per-lane mispredict events
};

/**
 * Runs every lane predictor over @p stream in ONE pass: shared block
 * decode, branch iteration and history machinery, per-lane predictor
 * work. All lanes observe the history configuration of @p config
 * (whose metrics/events members are ignored -- sinks are per lane).
 *
 * Lanes are internally partitioned by concrete predictor type so each
 * partition runs the kernel devirtualized on that type (a mixed-type
 * lane set costs one stream walk per distinct type, never more than
 * the per-cell path's one walk per lane); unknown types share one
 * virtual-dispatch walk. Every lane's SimResult, published metrics and
 * emitted events are bit-identical to a simulateStream() call for that
 * (predictor, config) pair.
 */
std::vector<SimResult> simulateStreamFused(
    const BlockStream &stream, const std::vector<FusedLane> &lanes,
    const SimConfig &config);

/**
 * Sampled sibling of simulateStream(): runs only @p plan's windows
 * (each primed by its warmup prefix, stats gated off during warmup)
 * and extrapolates whole-trace stats per phase, with a stratified 95%
 * confidence interval in SimResult::sampled. Same devirtualized
 * dispatch as the exact path.
 */
SimResult simulateStreamSampled(const BlockStream &stream,
                                ConditionalBranchPredictor &predictor,
                                const SimConfig &config,
                                const SamplePlan &plan);

/**
 * Sampled sibling of simulateStreamFused(): one windowed walk drives
 * every lane, group steppers and SIMD lane stepping unchanged.
 */
std::vector<SimResult> simulateStreamFusedSampled(
    const BlockStream &stream, const std::vector<FusedLane> &lanes,
    const SimConfig &config, const SamplePlan &plan);

} // namespace ev8

#endif // EV8_SIM_SIMULATOR_HH
