/**
 * @file
 * History-length exploration ("best history length" methodology).
 *
 * Throughout Section 8 the paper reports each scheme at its best
 * history length, found by sweeping; Fig. 6 contrasts that best against
 * the conventional log2(table size) choice. This harness implements the
 * sweep.
 *
 * A sweep submits every candidate length as one grid batch, which is
 * the best case for the engine's fused execution: all lengths of one
 * scheme share the (benchmark, history-walk) grouping key -- a shorter
 * global history is a masked prefix of a longer one -- so an entire
 * sweep column rides a single trace walk per benchmark.
 */

#ifndef EV8_SIM_SWEEP_HH
#define EV8_SIM_SWEEP_HH

#include <functional>
#include <vector>

#include "sim/suite_runner.hh"

namespace ev8
{

/** One sweep sample: a history length and its suite-average misp/KI. */
struct SweepPoint
{
    unsigned histLen = 0;
    double avgMispKI = 0.0;
    std::vector<BenchResult> perBench;
};

/** Builds a predictor for a candidate history length. */
using HistoryFactory = std::function<PredictorPtr(unsigned hist_len)>;

/**
 * Evaluates @p make at every length in @p lengths over the whole suite.
 */
std::vector<SweepPoint> sweepHistoryLengths(
    SuiteRunner &runner, const HistoryFactory &make,
    const std::vector<unsigned> &lengths, const SimConfig &config);

/** The sweep point with the lowest suite-average misp/KI. */
const SweepPoint &bestPoint(const std::vector<SweepPoint> &points);

} // namespace ev8

#endif // EV8_SIM_SWEEP_HH
