#include "sim/simulator.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <type_traits>

#include "common/env.hh"
#include "core/ev8_predictor.hh"
#include "frontend/bank_scheduler.hh"
#include "obs/metrics.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/egskew.hh"
#include "predictors/gshare.hh"
#include "predictors/twobcgskew.hh"
#include "predictors/yags.hh"
#include "sim/block_stream.hh"
#include "sim/kernel.hh"
#include "sim/phase/sample_plan.hh"

namespace ev8
{

namespace
{

/** End-of-run dump of the simulator-level tallies into the registry. */
void
publishSimMetrics(MetricRegistry &registry, const SimResult &result,
                  const SimConfig &config, const BankScheduler &banks)
{
    registry.counter("sim.fetch_blocks").inc(result.fetchBlocks);
    registry.counter("sim.cond_branches").inc(result.condBranches);
    registry.counter("sim.mispredicts")
        .inc(result.stats.mispredictions());
    registry.counter("lghist.bits_inserted").inc(result.lghistBits);

    auto &hist = registry.histogram(
        "sim.branches_per_block", {0, 1, 2, 3, 4, 5, 6, 7, 8});
    for (unsigned k = 0; k < result.branchesPerBlock.size(); ++k)
        hist.observe(k, result.branchesPerBlock[k]);

    if (config.assignBanks)
        banks.publishMetrics(registry, "frontend.banks");

    if (config.profileTiming) {
        auto publish = [&](const char *phase, const TimingStat &t) {
            const std::string p = std::string("sim.time.") + phase;
            registry.counter(p + ".calls").inc(t.calls);
            registry.counter(p + ".ns").inc(t.ns);
            registry.gauge(p + ".ns_per_call").set(t.nsPerCall());
        };
        publish("lookup", result.timing.lookup);
        publish("update", result.timing.update);
        publish("history", result.timing.history);
    }
}

/**
 * Escape hatch for A/B-testing the devirtualized kernel against the
 * generic instantiation (the determinism gate in CI sets this).
 * Strictly parsed: only "0"/"1" are accepted (exit 2 otherwise).
 */
bool
genericKernelForced()
{
    return strictEnvBool("EV8_GENERIC_KERNEL", false);
}

/**
 * Turns the measured-window tallies of a sampled walk into the
 * whole-trace estimate (stratified by phase).
 *
 * Each phase's misprediction *rate* (mispredictions per instruction)
 * is pooled over its measured windows and scaled by the phase's
 * whole-trace instruction total; a phase the plan could not afford a
 * window for falls back to the overall measured rate. The 95%
 * confidence half-width follows the standard stratified estimator:
 * per-phase sample variance of the window rates, weighted by the
 * squared phase instruction total over the window count. Everything
 * iterates in deterministic (phase, window) order so the extrapolated
 * artifact bytes are stable across --jobs and lane packing.
 */
void
finalizeSampledResult(SimResult &result, const SamplePlan &plan,
                      const std::vector<detail::SampledWindowTally>
                          &tallies)
{
    struct PhaseAcc
    {
        uint64_t misp = 0;
        uint64_t instrs = 0;
        std::vector<double> rates; //!< per-window misp per instr
    };
    std::vector<PhaseAcc> acc(plan.phases);
    uint64_t misp_measured = 0;
    uint64_t instrs_measured = 0;
    uint64_t branches_measured = 0;
    for (const detail::SampledWindowTally &t : tallies) {
        PhaseAcc &a = acc[t.phaseId];
        a.misp += t.mispredictions;
        a.instrs += t.instrs;
        a.rates.push_back(t.instrs == 0
                              ? 0.0
                              : static_cast<double>(t.mispredictions)
                                    / static_cast<double>(t.instrs));
        misp_measured += t.mispredictions;
        instrs_measured += t.instrs;
        branches_measured += t.branches;
    }
    const double overall_rate = instrs_measured == 0
        ? 0.0
        : static_cast<double>(misp_measured)
            / static_cast<double>(instrs_measured);

    double est_misp = 0.0;
    double variance = 0.0;
    for (uint32_t p = 0; p < plan.phases; ++p) {
        const PhaseAcc &a = acc[p];
        const double phase_instrs =
            static_cast<double>(plan.totals[p].instrs);
        const double rate = a.instrs == 0
            ? overall_rate
            : static_cast<double>(a.misp)
                / static_cast<double>(a.instrs);
        est_misp += rate * phase_instrs;
        const size_t n = a.rates.size();
        if (n >= 2) {
            double mean = 0.0;
            for (double r : a.rates)
                mean += r;
            mean /= static_cast<double>(n);
            double s2 = 0.0;
            for (double r : a.rates)
                s2 += (r - mean) * (r - mean);
            s2 /= static_cast<double>(n - 1);
            variance += phase_instrs * phase_instrs * s2
                / static_cast<double>(n);
        }
    }

    result.stats = PredictionStats{};
    result.stats.tally(
        plan.totalBranches,
        static_cast<uint64_t>(std::llround(std::max(est_misp, 0.0))));
    result.stats.setInstructions(plan.totalInstructions);

    result.sampled.active = true;
    result.sampled.phases = plan.phases;
    result.sampled.windowsTotal = plan.windowsTotal;
    result.sampled.windowsSimulated = tallies.size();
    result.sampled.branchesSimulated = branches_measured;
    result.sampled.warmupBranches = plan.warmupBranches;
    result.sampled.ci95MispKI = plan.totalInstructions == 0
        ? 0.0
        : 1.96 * std::sqrt(variance)
            / static_cast<double>(plan.totalInstructions) * 1000.0;
}

} // namespace

SimResult
simulateStream(const BlockStream &stream,
               ConditionalBranchPredictor &predictor,
               const SimConfig &config)
{
    // Internal predictor tallies only matter when they will be
    // published; leave them off otherwise so uninstrumented runs pay
    // nothing on the per-branch path.
    predictor.enableStats(config.metrics != nullptr);

    BankScheduler bank_sched;
    SimResult result;

    // Devirtualize for the predictor classes that dominate the paper's
    // experiment grids. Every other type (and forced-generic runs)
    // takes the same kernel template through the virtual base class.
    const bool generic =
        config.forceGenericKernel || genericKernelForced();
    if (generic) {
        result = detail::dispatchStreamKernel(stream, predictor, config,
                                              bank_sched);
    } else if (auto *p = dynamic_cast<TwoBcGskewPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<GsharePredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<Ev8Predictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<EgskewPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<BimodalPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else {
        result = detail::dispatchStreamKernel(stream, predictor, config,
                                              bank_sched);
    }

    if (config.metrics)
        publishSimMetrics(*config.metrics, result, config, bank_sched);

    return result;
}

SimResult
simulateTrace(const Trace &trace, ConditionalBranchPredictor &predictor,
              const SimConfig &config)
{
    return simulateStream(decodeBlockStream(trace), predictor, config);
}

std::vector<SimResult>
simulateStreamFused(const BlockStream &stream,
                    const std::vector<FusedLane> &lanes,
                    const SimConfig &config)
{
    const size_t n = lanes.size();
    std::vector<SimResult> results(n);
    if (n == 0)
        return results;

    for (const FusedLane &lane : lanes)
        lane.predictor->enableStats(lane.metrics != nullptr);

    // Partition the lanes by concrete type so each partition runs the
    // kernel devirtualized. claimed[] keeps a lane in exactly one
    // partition; whatever no bucket claims takes the generic walk.
    std::vector<char> claimed(n, 0);

    // Bank assignment is a pure function of the block-address sequence,
    // so every partition's walk reproduces the same scheduler state;
    // the first finished walk's copy serves all lanes' metrics.
    BankScheduler metrics_sched;
    bool have_sched = false;

    auto run_bucket = [&]<class P>(std::type_identity<P>) {
        std::vector<size_t> members;
        for (size_t i = 0; i < n; ++i) {
            if (claimed[i])
                continue;
            if constexpr (std::is_same_v<P, ConditionalBranchPredictor>) {
                members.push_back(i);
                claimed[i] = 1;
            } else if (dynamic_cast<P *>(lanes[i].predictor)) {
                members.push_back(i);
                claimed[i] = 1;
            }
        }
        // Chunk oversized partitions: each chunk is one extra stream
        // walk, still never more walks than lanes.
        for (size_t beg = 0; beg < members.size();
             beg += kMaxFusedLanes) {
            const size_t cnt =
                std::min(kMaxFusedLanes, members.size() - beg);
            std::array<detail::FusedLaneState<P>, kMaxFusedLanes> state;
            for (size_t k = 0; k < cnt; ++k) {
                const size_t i = members[beg + k];
                state[k].predictor =
                    static_cast<P *>(lanes[i].predictor);
                state[k].result = &results[i];
                state[k].events = lanes[i].events;
            }
            BankScheduler sched;
            detail::dispatchFusedKernel<P>(stream, state.data(), cnt,
                                           config, sched);
            if (!have_sched) {
                metrics_sched = sched;
                have_sched = true;
            }
        }
    };

    const bool generic =
        config.forceGenericKernel || genericKernelForced();
    if (!generic) {
        run_bucket(std::type_identity<TwoBcGskewPredictor>{});
        run_bucket(std::type_identity<GsharePredictor>{});
        run_bucket(std::type_identity<Ev8Predictor>{});
        run_bucket(std::type_identity<EgskewPredictor>{});
        run_bucket(std::type_identity<BimodalPredictor>{});
        run_bucket(std::type_identity<YagsPredictor>{});
        run_bucket(std::type_identity<BimodePredictor>{});
    }
    run_bucket(std::type_identity<ConditionalBranchPredictor>{});

    for (size_t i = 0; i < n; ++i) {
        if (lanes[i].metrics) {
            publishSimMetrics(*lanes[i].metrics, results[i], config,
                              metrics_sched);
        }
    }
    return results;
}

SimResult
simulateStreamSampled(const BlockStream &stream,
                      ConditionalBranchPredictor &predictor,
                      const SimConfig &config, const SamplePlan &plan)
{
    predictor.enableStats(config.metrics != nullptr);

    BankScheduler bank_sched;
    std::vector<detail::SampledWindowTally> tallies;
    SimResult result;

    // Same devirtualization ladder as simulateStream(): the sampled
    // walk reuses the exact kernel's range core, so every predictor
    // class that has a specialized exact walk has a specialized
    // sampled one too.
    const bool generic =
        config.forceGenericKernel || genericKernelForced();
    if (generic) {
        result = detail::dispatchSampledStreamKernel(
            stream, predictor, config, bank_sched, plan, tallies);
    } else if (auto *p = dynamic_cast<TwoBcGskewPredictor *>(&predictor)) {
        result = detail::dispatchSampledStreamKernel(
            stream, *p, config, bank_sched, plan, tallies);
    } else if (auto *p = dynamic_cast<GsharePredictor *>(&predictor)) {
        result = detail::dispatchSampledStreamKernel(
            stream, *p, config, bank_sched, plan, tallies);
    } else if (auto *p = dynamic_cast<Ev8Predictor *>(&predictor)) {
        result = detail::dispatchSampledStreamKernel(
            stream, *p, config, bank_sched, plan, tallies);
    } else if (auto *p = dynamic_cast<EgskewPredictor *>(&predictor)) {
        result = detail::dispatchSampledStreamKernel(
            stream, *p, config, bank_sched, plan, tallies);
    } else if (auto *p = dynamic_cast<BimodalPredictor *>(&predictor)) {
        result = detail::dispatchSampledStreamKernel(
            stream, *p, config, bank_sched, plan, tallies);
    } else {
        result = detail::dispatchSampledStreamKernel(
            stream, predictor, config, bank_sched, plan, tallies);
    }

    finalizeSampledResult(result, plan, tallies);

    if (config.metrics)
        publishSimMetrics(*config.metrics, result, config, bank_sched);

    return result;
}

std::vector<SimResult>
simulateStreamFusedSampled(const BlockStream &stream,
                           const std::vector<FusedLane> &lanes,
                           const SimConfig &config,
                           const SamplePlan &plan)
{
    const size_t n = lanes.size();
    std::vector<SimResult> results(n);
    if (n == 0)
        return results;

    for (const FusedLane &lane : lanes)
        lane.predictor->enableStats(lane.metrics != nullptr);

    std::vector<char> claimed(n, 0);

    BankScheduler metrics_sched;
    bool have_sched = false;

    auto run_bucket = [&]<class P>(std::type_identity<P>) {
        std::vector<size_t> members;
        for (size_t i = 0; i < n; ++i) {
            if (claimed[i])
                continue;
            if constexpr (std::is_same_v<P, ConditionalBranchPredictor>) {
                members.push_back(i);
                claimed[i] = 1;
            } else if (dynamic_cast<P *>(lanes[i].predictor)) {
                members.push_back(i);
                claimed[i] = 1;
            }
        }
        for (size_t beg = 0; beg < members.size();
             beg += kMaxFusedLanes) {
            const size_t cnt =
                std::min(kMaxFusedLanes, members.size() - beg);
            std::array<detail::FusedLaneState<P>, kMaxFusedLanes> state;
            for (size_t k = 0; k < cnt; ++k) {
                const size_t i = members[beg + k];
                state[k].predictor =
                    static_cast<P *>(lanes[i].predictor);
                state[k].result = &results[i];
                state[k].events = lanes[i].events;
                // The sampled walk toggles stats off for warmup
                // ranges and back to this after.
                state[k].statsWanted = lanes[i].metrics != nullptr;
            }
            BankScheduler sched;
            std::vector<std::vector<detail::SampledWindowTally>>
                tallies;
            detail::dispatchSampledFusedKernel<P>(
                stream, state.data(), cnt, config, sched, plan,
                tallies);
            for (size_t k = 0; k < cnt; ++k) {
                finalizeSampledResult(results[members[beg + k]], plan,
                                      tallies[k]);
            }
            if (!have_sched) {
                metrics_sched = sched;
                have_sched = true;
            }
        }
    };

    const bool generic =
        config.forceGenericKernel || genericKernelForced();
    if (!generic) {
        run_bucket(std::type_identity<TwoBcGskewPredictor>{});
        run_bucket(std::type_identity<GsharePredictor>{});
        run_bucket(std::type_identity<Ev8Predictor>{});
        run_bucket(std::type_identity<EgskewPredictor>{});
        run_bucket(std::type_identity<BimodalPredictor>{});
        run_bucket(std::type_identity<YagsPredictor>{});
        run_bucket(std::type_identity<BimodePredictor>{});
    }
    run_bucket(std::type_identity<ConditionalBranchPredictor>{});

    for (size_t i = 0; i < n; ++i) {
        if (lanes[i].metrics) {
            publishSimMetrics(*lanes[i].metrics, results[i], config,
                              metrics_sched);
        }
    }
    return results;
}

} // namespace ev8
