#include "sim/simulator.hh"

#include <cstdlib>

#include "core/ev8_predictor.hh"
#include "frontend/bank_scheduler.hh"
#include "obs/metrics.hh"
#include "predictors/bimodal.hh"
#include "predictors/egskew.hh"
#include "predictors/gshare.hh"
#include "predictors/twobcgskew.hh"
#include "sim/block_stream.hh"
#include "sim/kernel.hh"

namespace ev8
{

namespace
{

/** End-of-run dump of the simulator-level tallies into the registry. */
void
publishSimMetrics(MetricRegistry &registry, const SimResult &result,
                  const SimConfig &config, const BankScheduler &banks)
{
    registry.counter("sim.fetch_blocks").inc(result.fetchBlocks);
    registry.counter("sim.cond_branches").inc(result.condBranches);
    registry.counter("sim.mispredicts")
        .inc(result.stats.mispredictions());
    registry.counter("lghist.bits_inserted").inc(result.lghistBits);

    auto &hist = registry.histogram(
        "sim.branches_per_block", {0, 1, 2, 3, 4, 5, 6, 7, 8});
    for (unsigned k = 0; k < result.branchesPerBlock.size(); ++k)
        hist.observe(k, result.branchesPerBlock[k]);

    if (config.assignBanks)
        banks.publishMetrics(registry, "frontend.banks");

    if (config.profileTiming) {
        auto publish = [&](const char *phase, const TimingStat &t) {
            const std::string p = std::string("sim.time.") + phase;
            registry.counter(p + ".calls").inc(t.calls);
            registry.counter(p + ".ns").inc(t.ns);
            registry.gauge(p + ".ns_per_call").set(t.nsPerCall());
        };
        publish("lookup", result.timing.lookup);
        publish("update", result.timing.update);
        publish("history", result.timing.history);
    }
}

/**
 * Escape hatch for A/B-testing the devirtualized kernel against the
 * generic instantiation (the determinism gate in CI sets this).
 */
bool
genericKernelForced()
{
    const char *env = std::getenv("EV8_GENERIC_KERNEL");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

} // namespace

SimResult
simulateStream(const BlockStream &stream,
               ConditionalBranchPredictor &predictor,
               const SimConfig &config)
{
    // Internal predictor tallies only matter when they will be
    // published; leave them off otherwise so uninstrumented runs pay
    // nothing on the per-branch path.
    predictor.enableStats(config.metrics != nullptr);

    BankScheduler bank_sched;
    SimResult result;

    // Devirtualize for the predictor classes that dominate the paper's
    // experiment grids. Every other type (and forced-generic runs)
    // takes the same kernel template through the virtual base class.
    const bool generic =
        config.forceGenericKernel || genericKernelForced();
    if (generic) {
        result = detail::dispatchStreamKernel(stream, predictor, config,
                                              bank_sched);
    } else if (auto *p = dynamic_cast<TwoBcGskewPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<GsharePredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<Ev8Predictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<EgskewPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<BimodalPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else {
        result = detail::dispatchStreamKernel(stream, predictor, config,
                                              bank_sched);
    }

    if (config.metrics)
        publishSimMetrics(*config.metrics, result, config, bank_sched);

    return result;
}

SimResult
simulateTrace(const Trace &trace, ConditionalBranchPredictor &predictor,
              const SimConfig &config)
{
    return simulateStream(decodeBlockStream(trace), predictor, config);
}

} // namespace ev8
