#include "sim/simulator.hh"

#include "frontend/bank_scheduler.hh"
#include "frontend/fetch_block.hh"
#include "frontend/lghist.hh"

namespace ev8
{

SimResult
simulateTrace(const Trace &trace, ConditionalBranchPredictor &predictor,
              const SimConfig &config)
{
    SimResult result;
    result.stats.setInstructions(trace.instructionCount());

    const bool lghist_mode = config.history != HistoryMode::Ghist;
    const bool lghist_path = config.history == HistoryMode::LghistPath;

    HistoryRegister ghist;
    LghistTracker lghist(lghist_path);
    DelayedHistory delayed(config.historyAge);
    BankScheduler bank_sched;

    // Path registers: addresses of the last three fetch blocks.
    uint64_t path_z = 0, path_y = 0, path_x = 0;

    FetchBlockBuilder builder;
    builder.begin(trace.startPc());

    auto on_block = [&](const FetchBlock &block) {
        ++result.fetchBlocks;

        BranchSnapshot snap;
        snap.blockAddr = block.address;
        snap.hist.pathZ = path_z;
        snap.hist.pathY = path_y;
        snap.hist.pathX = path_x;
        if (config.assignBanks)
            snap.bank = static_cast<uint8_t>(bank_sched.assign(
                block.address));

        // The index history for every branch of this block: the aged
        // lghist view, or per-branch ghist filled in below.
        const uint64_t block_hist = delayed.view();

        for (unsigned i = 0; i < block.numBranches; ++i) {
            const BlockBranch &br = block.branches[i];
            snap.pc = br.pc;
            snap.hist.ghist = ghist.raw();
            snap.hist.indexHist = lghist_mode ? block_hist : ghist.raw();

            const bool predicted = predictor.predict(snap);
            result.stats.record(predicted, br.taken);
            predictor.update(snap, br.taken, predicted);

            ghist.push(br.taken);
            ++result.condBranches;
        }

        if (lghist.onBlock(block))
            ++result.lghistBits;
        delayed.advance(lghist.value());

        path_x = path_y;
        path_y = path_z;
        path_z = block.address;
    };

    for (const auto &rec : trace.records())
        builder.feed(rec, on_block);
    builder.flush(on_block);

    return result;
}

} // namespace ev8
