#include "sim/simulator.hh"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <type_traits>

#include "common/env.hh"
#include "core/ev8_predictor.hh"
#include "frontend/bank_scheduler.hh"
#include "obs/metrics.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/egskew.hh"
#include "predictors/gshare.hh"
#include "predictors/twobcgskew.hh"
#include "predictors/yags.hh"
#include "sim/block_stream.hh"
#include "sim/kernel.hh"

namespace ev8
{

namespace
{

/** End-of-run dump of the simulator-level tallies into the registry. */
void
publishSimMetrics(MetricRegistry &registry, const SimResult &result,
                  const SimConfig &config, const BankScheduler &banks)
{
    registry.counter("sim.fetch_blocks").inc(result.fetchBlocks);
    registry.counter("sim.cond_branches").inc(result.condBranches);
    registry.counter("sim.mispredicts")
        .inc(result.stats.mispredictions());
    registry.counter("lghist.bits_inserted").inc(result.lghistBits);

    auto &hist = registry.histogram(
        "sim.branches_per_block", {0, 1, 2, 3, 4, 5, 6, 7, 8});
    for (unsigned k = 0; k < result.branchesPerBlock.size(); ++k)
        hist.observe(k, result.branchesPerBlock[k]);

    if (config.assignBanks)
        banks.publishMetrics(registry, "frontend.banks");

    if (config.profileTiming) {
        auto publish = [&](const char *phase, const TimingStat &t) {
            const std::string p = std::string("sim.time.") + phase;
            registry.counter(p + ".calls").inc(t.calls);
            registry.counter(p + ".ns").inc(t.ns);
            registry.gauge(p + ".ns_per_call").set(t.nsPerCall());
        };
        publish("lookup", result.timing.lookup);
        publish("update", result.timing.update);
        publish("history", result.timing.history);
    }
}

/**
 * Escape hatch for A/B-testing the devirtualized kernel against the
 * generic instantiation (the determinism gate in CI sets this).
 * Strictly parsed: only "0"/"1" are accepted (exit 2 otherwise).
 */
bool
genericKernelForced()
{
    return strictEnvBool("EV8_GENERIC_KERNEL", false);
}

} // namespace

SimResult
simulateStream(const BlockStream &stream,
               ConditionalBranchPredictor &predictor,
               const SimConfig &config)
{
    // Internal predictor tallies only matter when they will be
    // published; leave them off otherwise so uninstrumented runs pay
    // nothing on the per-branch path.
    predictor.enableStats(config.metrics != nullptr);

    BankScheduler bank_sched;
    SimResult result;

    // Devirtualize for the predictor classes that dominate the paper's
    // experiment grids. Every other type (and forced-generic runs)
    // takes the same kernel template through the virtual base class.
    const bool generic =
        config.forceGenericKernel || genericKernelForced();
    if (generic) {
        result = detail::dispatchStreamKernel(stream, predictor, config,
                                              bank_sched);
    } else if (auto *p = dynamic_cast<TwoBcGskewPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<GsharePredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<Ev8Predictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<EgskewPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else if (auto *p = dynamic_cast<BimodalPredictor *>(&predictor)) {
        result =
            detail::dispatchStreamKernel(stream, *p, config, bank_sched);
    } else {
        result = detail::dispatchStreamKernel(stream, predictor, config,
                                              bank_sched);
    }

    if (config.metrics)
        publishSimMetrics(*config.metrics, result, config, bank_sched);

    return result;
}

SimResult
simulateTrace(const Trace &trace, ConditionalBranchPredictor &predictor,
              const SimConfig &config)
{
    return simulateStream(decodeBlockStream(trace), predictor, config);
}

std::vector<SimResult>
simulateStreamFused(const BlockStream &stream,
                    const std::vector<FusedLane> &lanes,
                    const SimConfig &config)
{
    const size_t n = lanes.size();
    std::vector<SimResult> results(n);
    if (n == 0)
        return results;

    for (const FusedLane &lane : lanes)
        lane.predictor->enableStats(lane.metrics != nullptr);

    // Partition the lanes by concrete type so each partition runs the
    // kernel devirtualized. claimed[] keeps a lane in exactly one
    // partition; whatever no bucket claims takes the generic walk.
    std::vector<char> claimed(n, 0);

    // Bank assignment is a pure function of the block-address sequence,
    // so every partition's walk reproduces the same scheduler state;
    // the first finished walk's copy serves all lanes' metrics.
    BankScheduler metrics_sched;
    bool have_sched = false;

    auto run_bucket = [&]<class P>(std::type_identity<P>) {
        std::vector<size_t> members;
        for (size_t i = 0; i < n; ++i) {
            if (claimed[i])
                continue;
            if constexpr (std::is_same_v<P, ConditionalBranchPredictor>) {
                members.push_back(i);
                claimed[i] = 1;
            } else if (dynamic_cast<P *>(lanes[i].predictor)) {
                members.push_back(i);
                claimed[i] = 1;
            }
        }
        // Chunk oversized partitions: each chunk is one extra stream
        // walk, still never more walks than lanes.
        for (size_t beg = 0; beg < members.size();
             beg += kMaxFusedLanes) {
            const size_t cnt =
                std::min(kMaxFusedLanes, members.size() - beg);
            std::array<detail::FusedLaneState<P>, kMaxFusedLanes> state;
            for (size_t k = 0; k < cnt; ++k) {
                const size_t i = members[beg + k];
                state[k].predictor =
                    static_cast<P *>(lanes[i].predictor);
                state[k].result = &results[i];
                state[k].events = lanes[i].events;
            }
            BankScheduler sched;
            detail::dispatchFusedKernel<P>(stream, state.data(), cnt,
                                           config, sched);
            if (!have_sched) {
                metrics_sched = sched;
                have_sched = true;
            }
        }
    };

    const bool generic =
        config.forceGenericKernel || genericKernelForced();
    if (!generic) {
        run_bucket(std::type_identity<TwoBcGskewPredictor>{});
        run_bucket(std::type_identity<GsharePredictor>{});
        run_bucket(std::type_identity<Ev8Predictor>{});
        run_bucket(std::type_identity<EgskewPredictor>{});
        run_bucket(std::type_identity<BimodalPredictor>{});
        run_bucket(std::type_identity<YagsPredictor>{});
        run_bucket(std::type_identity<BimodePredictor>{});
    }
    run_bucket(std::type_identity<ConditionalBranchPredictor>{});

    for (size_t i = 0; i < n; ++i) {
        if (lanes[i].metrics) {
            publishSimMetrics(*lanes[i].metrics, results[i], config,
                              metrics_sched);
        }
    }
    return results;
}

} // namespace ev8
