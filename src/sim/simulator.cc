#include "sim/simulator.hh"

#include "frontend/bank_scheduler.hh"
#include "frontend/fetch_block.hh"
#include "frontend/lghist.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace ev8
{

namespace
{

/** Builds the sampled-trace record for one misprediction. */
MispredictEvent
makeEvent(const SimResult &result, const BranchSnapshot &snap,
          bool taken, bool predicted, const VoteSnapshot &votes)
{
    MispredictEvent ev;
    ev.branchSeq = result.condBranches;
    ev.pc = snap.pc;
    ev.blockAddr = snap.blockAddr;
    ev.ghist = snap.hist.ghist;
    ev.indexHist = snap.hist.indexHist;
    ev.bank = snap.bank;
    ev.taken = taken;
    ev.predicted = predicted;
    ev.votesValid = votes.valid;
    ev.voteBim = votes.bim;
    ev.voteG0 = votes.g0;
    ev.voteG1 = votes.g1;
    ev.voteMeta = votes.meta;
    ev.voteMajority = votes.majority;
    return ev;
}

/** End-of-run dump of the simulator-level tallies into the registry. */
void
publishSimMetrics(MetricRegistry &registry, const SimResult &result,
                  const SimConfig &config, const BankScheduler &banks)
{
    registry.counter("sim.fetch_blocks").inc(result.fetchBlocks);
    registry.counter("sim.cond_branches").inc(result.condBranches);
    registry.counter("sim.mispredicts")
        .inc(result.stats.mispredictions());
    registry.counter("lghist.bits_inserted").inc(result.lghistBits);

    auto &hist = registry.histogram(
        "sim.branches_per_block", {0, 1, 2, 3, 4, 5, 6, 7, 8});
    for (unsigned k = 0; k < result.branchesPerBlock.size(); ++k)
        hist.observe(k, result.branchesPerBlock[k]);

    if (config.assignBanks)
        banks.publishMetrics(registry, "frontend.banks");

    if (config.profileTiming) {
        auto publish = [&](const char *phase, const TimingStat &t) {
            const std::string p = std::string("sim.time.") + phase;
            registry.counter(p + ".calls").inc(t.calls);
            registry.counter(p + ".ns").inc(t.ns);
            registry.gauge(p + ".ns_per_call").set(t.nsPerCall());
        };
        publish("lookup", result.timing.lookup);
        publish("update", result.timing.update);
        publish("history", result.timing.history);
    }
}

} // namespace

SimResult
simulateTrace(const Trace &trace, ConditionalBranchPredictor &predictor,
              const SimConfig &config)
{
    SimResult result;
    result.stats.setInstructions(trace.instructionCount());

    // Internal predictor tallies only matter when they will be
    // published; leave them off otherwise so uninstrumented runs pay
    // nothing on the per-branch path.
    predictor.enableStats(config.metrics != nullptr);

    const bool lghist_mode = config.history != HistoryMode::Ghist;
    const bool lghist_path = config.history == HistoryMode::LghistPath;
    const bool timed = config.profileTiming;

    HistoryRegister ghist;
    LghistTracker lghist(lghist_path);
    DelayedHistory delayed(config.historyAge);
    BankScheduler bank_sched;

    // Path registers: addresses of the last three fetch blocks.
    uint64_t path_z = 0, path_y = 0, path_x = 0;

    FetchBlockBuilder builder;
    builder.begin(trace.startPc());

    auto on_block = [&](const FetchBlock &block) {
        ++result.fetchBlocks;
        ++result.branchesPerBlock[block.numBranches
                                      < result.branchesPerBlock.size()
                                  ? block.numBranches
                                  : result.branchesPerBlock.size() - 1];

        BranchSnapshot snap;
        snap.blockAddr = block.address;
        snap.hist.pathZ = path_z;
        snap.hist.pathY = path_y;
        snap.hist.pathX = path_x;
        if (config.assignBanks)
            snap.bank = static_cast<uint8_t>(bank_sched.assign(
                block.address));

        // The index history for every branch of this block: the aged
        // lghist view, or per-branch ghist filled in below.
        const uint64_t block_hist = delayed.view();

        for (unsigned i = 0; i < block.numBranches; ++i) {
            const BlockBranch &br = block.branches[i];
            snap.pc = br.pc;
            snap.hist.ghist = ghist.raw();
            snap.hist.indexHist = lghist_mode ? block_hist : ghist.raw();

            bool predicted;
            if (timed) {
                ScopedTimer t(result.timing.lookup);
                predicted = predictor.predict(snap);
            } else {
                predicted = predictor.predict(snap);
            }
            result.stats.record(predicted, br.taken);

            if (config.events && predicted != br.taken) {
                config.events->onMispredict(makeEvent(
                    result, snap, br.taken, predicted,
                    predictor.lastVotes()));
            }

            if (timed) {
                ScopedTimer t(result.timing.update);
                predictor.update(snap, br.taken, predicted);
            } else {
                predictor.update(snap, br.taken, predicted);
            }

            ghist.push(br.taken);
            ++result.condBranches;
        }

        if (timed) {
            ScopedTimer t(result.timing.history);
            if (lghist.onBlock(block))
                ++result.lghistBits;
            delayed.advance(lghist.value());
        } else {
            if (lghist.onBlock(block))
                ++result.lghistBits;
            delayed.advance(lghist.value());
        }

        path_x = path_y;
        path_y = path_z;
        path_z = block.address;
    };

    for (const auto &rec : trace.records())
        builder.feed(rec, on_block);
    builder.flush(on_block);

    if (config.metrics)
        publishSimMetrics(*config.metrics, result, config, bank_sched);

    return result;
}

} // namespace ev8
