#include "sim/smt.hh"

#include <deque>
#include <memory>

#include "frontend/bank_scheduler.hh"
#include "frontend/fetch_block.hh"
#include "frontend/lghist.hh"

namespace ev8
{

namespace
{

/** Streaming fetch-block source over one trace (SMT interleaver). */
class SmtBlockSource
{
  public:
    explicit SmtBlockSource(const Trace &trace) : trace(trace)
    {
        builder.begin(trace.startPc());
    }

    /** Produces the next fetch block; false when the trace is done. */
    bool
    next(FetchBlock &out)
    {
        auto sink = [this](const FetchBlock &b) { queue.push_back(b); };
        while (queue.empty()) {
            if (pos < trace.records().size()) {
                builder.feed(trace.records()[pos++], sink);
            } else if (!flushed) {
                builder.flush(sink);
                flushed = true;
            } else {
                return false;
            }
        }
        out = queue.front();
        queue.pop_front();
        return true;
    }

  private:
    const Trace &trace;
    size_t pos = 0;
    bool flushed = false;
    FetchBlockBuilder builder;
    std::deque<FetchBlock> queue;
};

/** One thread's architectural history state (per-thread on EV8). */
struct HistoryState
{
    HistoryState(bool lghist_path, unsigned age)
        : lghist(lghist_path), delayed(age)
    {}

    HistoryRegister ghist;
    LghistTracker lghist;
    DelayedHistory delayed;
    uint64_t pathZ = 0, pathY = 0, pathX = 0;
};

} // namespace

std::vector<SmtThreadResult>
simulateSmt(const std::vector<const Trace *> &threads,
            ConditionalBranchPredictor &predictor, const SmtConfig &config)
{
    const SimConfig &sim = config.sim;
    const bool lghist_mode = sim.history != HistoryMode::Ghist;
    const bool lghist_path = sim.history == HistoryMode::LghistPath;

    std::vector<SmtThreadResult> results(threads.size());
    std::vector<std::unique_ptr<SmtBlockSource>> streams;
    std::vector<std::unique_ptr<HistoryState>> states;
    std::vector<bool> alive(threads.size(), true);

    // The bank-number recurrence lives in the fetch hardware and spans
    // threads (fetch slots interleave on the real machine).
    BankScheduler bank_sched;

    for (size_t t = 0; t < threads.size(); ++t) {
        results[t].name = threads[t]->name();
        results[t].sim.stats.setInstructions(
            threads[t]->instructionCount());
        streams.push_back(std::make_unique<SmtBlockSource>(*threads[t]));
        states.push_back(std::make_unique<HistoryState>(
            lghist_path, sim.historyAge));
    }
    // Shared-history straw man: every thread reads and writes state 0.
    auto state_of = [&](size_t t) -> HistoryState & {
        return config.perThreadHistory ? *states[t] : *states[0];
    };

    size_t running = threads.size();
    size_t turn = 0;
    while (running > 0) {
        const size_t t = turn++ % threads.size();
        if (!alive[t])
            continue;

        FetchBlock block;
        if (!streams[t]->next(block)) {
            alive[t] = false;
            --running;
            continue;
        }

        HistoryState &hs = state_of(t);
        SimResult &out = results[t].sim;
        ++out.fetchBlocks;

        BranchSnapshot snap;
        snap.blockAddr = block.address;
        snap.hist.pathZ = hs.pathZ;
        snap.hist.pathY = hs.pathY;
        snap.hist.pathX = hs.pathX;
        if (sim.assignBanks)
            snap.bank = static_cast<uint8_t>(
                bank_sched.assign(block.address));

        const uint64_t block_hist = hs.delayed.view();
        for (unsigned i = 0; i < block.numBranches; ++i) {
            const BlockBranch &br = block.branches[i];
            snap.pc = br.pc;
            snap.hist.ghist = hs.ghist.raw();
            snap.hist.indexHist =
                lghist_mode ? block_hist : hs.ghist.raw();

            const bool predicted = predictor.predict(snap);
            out.stats.record(predicted, br.taken);
            predictor.update(snap, br.taken, predicted);

            hs.ghist.push(br.taken);
            ++out.condBranches;
        }

        if (hs.lghist.onBlock(block))
            ++out.lghistBits;
        hs.delayed.advance(hs.lghist.value());

        hs.pathX = hs.pathY;
        hs.pathY = hs.pathZ;
        hs.pathZ = block.address;
    }
    return results;
}

} // namespace ev8
