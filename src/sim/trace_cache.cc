#include "sim/trace_cache.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/hash.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "sim/fault_injection.hh"
#include "trace/trace_io.hh"

namespace ev8
{

std::string
TraceCache::defaultDir()
{
    const char *env = std::getenv("EV8_TRACE_CACHE_DIR");
    return env ? env : "";
}

uint64_t
TraceCache::profileHash(const WorkloadProfile &profile)
{
    // Every field that can influence the generated trace feeds the
    // hash. When WorkloadProfile grows a field, add it here (and bump
    // kFormatVersion if older caches could now alias).
    ContentHash h;
    h.str(profile.name);
    h.u64(profile.seed);

    const ProgramShape &s = profile.shape;
    h.u64(s.numFunctions);
    h.u64(s.minBlocksPerFunction);
    h.u64(s.maxBlocksPerFunction);
    h.u64(s.minBlockInstrs);
    h.u64(s.maxBlockInstrs);
    h.f64(s.condFraction);
    h.f64(s.jumpFraction);
    h.f64(s.callFraction);
    h.f64(s.loopBackFraction);
    h.u64(s.maxLoopSpan);
    h.f64(s.driverCallFraction);
    h.u64(s.maxCalleesPerSite);
    h.u64(s.driverDispatchWidth);
    h.f64(s.dispatchSwitchChance);
    h.u64(s.textBase);

    const BehaviorMix &m = profile.mix;
    h.f64(m.biased);
    h.f64(m.loop);
    h.f64(m.pattern);
    h.f64(m.globalCorrelated);
    h.f64(m.pathCorrelated);
    h.f64(m.random);

    const BehaviorTuning &t = profile.tuning;
    h.f64(t.biasedNotTakenSkew);
    h.f64(t.biasedStrength);
    h.f64(t.biasedNoise);
    h.u64(t.loopMinTrip);
    h.u64(t.loopMaxTrip);
    h.f64(t.loopReroll);
    h.u64(t.patternMinLen);
    h.u64(t.patternMaxLen);
    h.f64(t.patternNotTakenSkew);
    h.u64(t.corrMinDepth);
    h.u64(t.corrMaxDepth);
    h.u64(t.corrTaps);
    h.f64(t.corrNoise);
    h.f64(t.corrAndWeight);
    h.f64(t.corrXorWeight);
    h.f64(t.corrOrWeight);

    return h.value();
}

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    // Probe the disk layer now instead of failing (or warning) once per
    // cache miss later: create the directory, then prove it is writable
    // with a throwaway probe file.
    try {
        namespace fs = std::filesystem;
        fs::create_directories(dir_);
        const std::string probe =
            dir_ + "/.ev8-probe." + std::to_string(::getpid());
        {
            std::ofstream out(probe,
                              std::ios::binary | std::ios::trunc);
            out << "probe";
            out.flush();
            if (!out)
                throw std::runtime_error("probe file not writable");
        }
        std::error_code ec;
        fs::remove(probe, ec);
    } catch (const std::exception &err) {
        std::fprintf(stderr,
                     "ev8: trace cache: directory '%s' is unusable "
                     "(%s); falling back to in-memory caching\n",
                     dir_.c_str(), err.what());
        dir_.clear();
        diskDisabled_ = true;
    }
}

void
TraceCache::noteReadError(const std::string &path,
                          const std::string &why) const
{
    readErrors_.fetch_add(1, std::memory_order_relaxed);
    if (!warnedRead_.exchange(true)) {
        std::fprintf(stderr,
                     "ev8: trace cache: discarding unreadable cache "
                     "file '%s' (%s); regenerating (further read "
                     "errors reported only in metrics)\n",
                     path.c_str(), why.c_str());
    }
}

void
TraceCache::noteWriteError(const std::string &path,
                           const std::string &why) const
{
    writeErrors_.fetch_add(1, std::memory_order_relaxed);
    if (!warnedWrite_.exchange(true)) {
        std::fprintf(stderr,
                     "ev8: trace cache: cannot persist cache file "
                     "'%s' (%s); continuing in memory (further write "
                     "errors reported only in metrics)\n",
                     path.c_str(), why.c_str());
    }
}

void
TraceCache::persist(
    const std::string &path,
    const std::function<void(const std::string &)> &write,
    FaultPoint write_point) const
{
    // Best effort: a read-only or full cache directory must not fail
    // the experiment. Temp file + rename keeps concurrent processes
    // from ever reading a torn file; a failure between the two (a
    // crash, or the injected cache_rename fault) leaves only temp-file
    // litter, never a truncated cache entry under the real name.
    try {
        namespace fs = std::filesystem;
        FaultInjector &faults = FaultInjector::global();
        fs::create_directories(dir_);
        const std::string tmp =
            path + ".tmp." + std::to_string(::getpid());
        faults.maybeThrow(write_point, path);
        write(tmp);
        if (faults.fires(FaultPoint::CacheShortWrite, path)) {
            // Publish a torn file under the real name: the verifying
            // reader must reject and regenerate it.
            fs::resize_file(tmp, fs::file_size(tmp) / 2);
        }
        faults.maybeThrow(FaultPoint::CacheRename, path);
        fs::rename(tmp, path);
    } catch (const std::exception &err) {
        noteWriteError(path, err.what());
    }
}

std::string
TraceCache::filePath(const WorkloadProfile &profile,
                     uint64_t branches) const
{
    if (dir_.empty())
        return "";
    char tail[96];
    std::snprintf(tail, sizeof(tail), "-%016llx-b%llu-v%u.ev8t",
                  static_cast<unsigned long long>(profileHash(profile)),
                  static_cast<unsigned long long>(branches),
                  kFormatVersion);
    return dir_ + "/" + profile.name + tail;
}

std::string
TraceCache::streamFilePath(const WorkloadProfile &profile,
                           uint64_t branches) const
{
    if (dir_.empty())
        return "";
    char tail[96];
    std::snprintf(tail, sizeof(tail), "-%016llx-b%llu-v%u-s%u.ev8s",
                  static_cast<unsigned long long>(profileHash(profile)),
                  static_cast<unsigned long long>(branches),
                  kFormatVersion, kStreamFormatVersion);
    return dir_ + "/" + profile.name + tail;
}

Trace
TraceCache::load(const WorkloadProfile &profile, uint64_t branches) const
{
    const std::string path = filePath(profile, branches);
    ScopedSpan span(SpanPhase::CacheLoad);
    span.rename("cache:trace:" + profile.name);
    span.arg("kind", "trace");
    span.arg("bench", profile.name);

    if (!path.empty()) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec) && !ec) {
            try {
                FaultInjector::global().maybeThrow(
                    FaultPoint::CacheRead, path);
                Trace trace = readTraceFile(path);
                // Trust but verify: the key encodes the profile
                // content, but a truncated write or a hand-edited file
                // could still masquerade under the right name.
                if (trace.name() == profile.name
                    && trace.stats().dynamicCondBranches == branches) {
                    diskHits_.fetch_add(1, std::memory_order_relaxed);
                    span.arg("hit", uint64_t{1});
                    return trace;
                }
                noteReadError(path, "key/content mismatch");
            } catch (const std::exception &err) {
                noteReadError(path, err.what());
            }
        }
    }

    span.arg("hit", uint64_t{0});
    Trace trace = generateTrace(profile, branches);
    generated_.fetch_add(1, std::memory_order_relaxed);

    if (!path.empty()) {
        persist(path, [&](const std::string &tmp) {
            writeTraceFile(tmp, trace);
        }, FaultPoint::CacheWrite);
    }
    return trace;
}

BlockStream
TraceCache::loadStream(const WorkloadProfile &profile, uint64_t branches)
{
    const std::string path = streamFilePath(profile, branches);
    ScopedSpan span(SpanPhase::CacheLoad);
    span.rename("cache:stream:" + profile.name);
    span.arg("kind", "stream");
    span.arg("bench", profile.name);

    if (!path.empty()) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec) && !ec) {
            try {
                FaultInjector::global().maybeThrow(
                    FaultPoint::CacheRead, path);
                BlockStream stream = readBlockStreamFile(path);
                // Trust but verify, as for traces: the branch count is
                // the budget the key encodes, so a torn or hand-edited
                // file cannot masquerade as a full-length stream.
                if (stream.name() == profile.name
                    && stream.branches() == branches) {
                    streamDiskHits_.fetch_add(
                        1, std::memory_order_relaxed);
                    span.arg("hit", uint64_t{1});
                    return stream;
                }
                noteReadError(path, "key/content mismatch");
            } catch (const std::exception &err) {
                noteReadError(path, err.what());
            }
        }
    }

    // Stream miss: decode from the trace (which has its own cache
    // layers, so a warm .ev8t still skips synthesis).
    span.arg("hit", uint64_t{0});
    BlockStream stream = decodeBlockStream(get(profile, branches));
    decoded_.fetch_add(1, std::memory_order_relaxed);

    if (!path.empty()) {
        persist(path, [&](const std::string &tmp) {
            writeBlockStreamFile(tmp, stream);
        }, FaultPoint::CacheWrite);
    }
    return stream;
}

std::string
TraceCache::phaseFilePath(const WorkloadProfile &profile,
                          uint64_t branches, uint64_t window_branches,
                          uint32_t max_phases) const
{
    if (dir_.empty())
        return "";
    char tail[128];
    std::snprintf(tail, sizeof(tail),
                  "-%016llx-b%llu-w%llu-p%u-v%u.ev8p",
                  static_cast<unsigned long long>(profileHash(profile)),
                  static_cast<unsigned long long>(branches),
                  static_cast<unsigned long long>(window_branches),
                  max_phases, PhaseMap::kFormatVersion);
    return dir_ + "/phase-" + profile.name + tail;
}

PhaseMap
TraceCache::loadPhases(const WorkloadProfile &profile, uint64_t branches,
                       uint64_t window_branches, uint32_t max_phases)
{
    const std::string path =
        phaseFilePath(profile, branches, window_branches, max_phases);
    ScopedSpan span(SpanPhase::CacheLoad);
    span.rename("cache:phases:" + profile.name);
    span.arg("kind", "phases");
    span.arg("bench", profile.name);

    if (!path.empty()) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec) && !ec) {
            try {
                FaultInjector::global().maybeThrow(
                    FaultPoint::SidecarRead, path);
                PhaseMap map = readPhaseMapFile(path);
                // Trust but verify: the name encodes the content key,
                // but a torn write or a hand-edited sidecar must be
                // rejected and rebuilt, never poison the sampler.
                if (map.name == profile.name
                    && map.branches == branches
                    && map.windowBranches == window_branches
                    && map.maxPhases == max_phases) {
                    span.arg("hit", uint64_t{1});
                    return map;
                }
                noteReadError(path, "key/content mismatch");
            } catch (const std::exception &err) {
                noteReadError(path, err.what());
            }
        }
    }

    // Sidecar miss: rebuild from the stream (which has its own cache
    // layers, so a warm .ev8s still skips synthesis and decode).
    span.arg("hit", uint64_t{0});
    PhaseMap map = buildPhaseMap(stream(profile, branches),
                                 window_branches, max_phases);

    if (!path.empty()) {
        persist(path, [&](const std::string &tmp) {
            writePhaseMapFile(tmp, map);
        }, FaultPoint::SidecarWrite);
    }
    return map;
}

const PhaseMap &
TraceCache::phases(const WorkloadProfile &profile, uint64_t branches,
                   uint64_t window_branches, uint32_t max_phases)
{
    PhaseEntry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unique_ptr<PhaseEntry> &slot =
            phaseEntries_[{profileHash(profile), branches,
                           window_branches, max_phases}];
        if (!slot)
            slot = std::make_unique<PhaseEntry>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        entry->map = loadPhases(profile, branches, window_branches,
                                max_phases);
    });
    return entry->map;
}

void
TraceCache::publishMetrics(MetricRegistry &registry,
                           const std::string &prefix) const
{
    registry.counter(prefix + ".trace_requests")
        .inc(traceRequests_.load());
    registry.counter(prefix + ".traces_generated")
        .inc(generated_.load());
    registry.counter(prefix + ".trace_disk_hits").inc(diskHits_.load());
    registry.counter(prefix + ".stream_requests")
        .inc(streamRequests_.load());
    registry.counter(prefix + ".streams_decoded").inc(decoded_.load());
    registry.counter(prefix + ".stream_disk_hits")
        .inc(streamDiskHits_.load());
    registry.counter(prefix + ".read_errors").inc(readErrors_.load());
    registry.counter(prefix + ".write_errors").inc(writeErrors_.load());
}

const BlockStream &
TraceCache::stream(const WorkloadProfile &profile, uint64_t branches)
{
    ++streamRequests_;
    StreamEntry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unique_ptr<StreamEntry> &slot =
            streamEntries_[{profileHash(profile), branches}];
        if (!slot)
            slot = std::make_unique<StreamEntry>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        entry->stream = loadStream(profile, branches);
    });
    return entry->stream;
}

const Trace &
TraceCache::get(const WorkloadProfile &profile, uint64_t branches)
{
    ++traceRequests_;
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unique_ptr<Entry> &slot =
            entries_[{profileHash(profile), branches}];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        entry->trace = load(profile, branches);
    });
    return entry->trace;
}

} // namespace ev8
