#include "sim/cell_executor.hh"

#include <chrono>
#include <thread>

#include "common/env.hh"
#include "obs/json.hh"
#include "obs/progress.hh"
#include "obs/trace_span.hh"
#include "sim/block_stream.hh"
#include "sim/fault_injection.hh"

namespace ev8
{

namespace
{

/** Ceiling on one retry backoff sleep, whatever the attempt count. */
constexpr uint64_t kMaxBackoffMs = 1000;

} // namespace

unsigned
CellExecutor::retryMax()
{
    return static_cast<unsigned>(
        strictEnvU64("EV8_RETRY_MAX", 1, 100, 3));
}

unsigned
CellExecutor::retryBaseMs()
{
    return static_cast<unsigned>(
        strictEnvU64("EV8_RETRY_BASE_MS", 0, 10000, 10));
}

CellExecutor::CellExecutor()
    : retryMax_(retryMax()), retryBaseMs_(retryBaseMs())
{
}

void
CellExecutor::backoff(unsigned attempt) const
{
    if (retryBaseMs_ == 0)
        return;
    const uint64_t ms =
        std::min<uint64_t>(uint64_t{retryBaseMs_} << (attempt - 1),
                           kMaxBackoffMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void
CellExecutor::runCell(const CellRequest &req, CellOutput &out) const
{
    out.result.bench = req.profile->name;

    // The pre-decoded stream, not the trace: decode happens once per
    // benchmark (and not at all with a warm on-disk stream cache),
    // however many cells revisit it.
    const BlockStream &stream = req.stream();
    PredictorPtr predictor = req.factory();

    // Isolate the observability sinks: the caller's shared sinks are
    // merge *targets*, never touched by executing cells.
    SimConfig config = req.config;
    BufferedEventSink buffer;
    config.events = req.wantEvents ? &buffer : nullptr;
    config.metrics = req.wantMetrics ? &out.metrics : nullptr;
    if (req.wantEvents) {
        out.classes = SyntheticProgram(*req.profile)
                          .condBranchClasses();
    }

    const SamplePlan *plan = req.plan ? req.plan() : nullptr;
    out.result.sim = plan
        ? simulateStreamSampled(stream, *predictor, config, *plan)
        : simulateStream(stream, *predictor, config);

    if (config.metrics) {
        predictor->publishMetrics(out.metrics,
                                  "pred." + predictor->name());
    }
    out.events = buffer.take();
}

void
CellExecutor::recordCellSpan(const CellRequest &req, unsigned attempt,
                             size_t lanes, bool attempt_failed,
                             uint64_t start_ns, uint64_t dur_ns) const
{
    SpanTracer &tracer = SpanTracer::global();
    if (!tracer.enabled())
        return;
    std::string args = "\"bench\":\"" + escapeJson(req.profile->name)
        + "\",\"config\":\"" + escapeJson(req.rowLabel)
        + "\",\"row\":" + std::to_string(req.rowIndex)
        + ",\"lanes\":" + std::to_string(lanes)
        + ",\"attempt\":" + std::to_string(attempt);
    if (attempt_failed)
        args += ",\"failed\":true";
    tracer.record(SpanPhase::Cell, req.label, std::move(args), start_ns,
                  dur_ns);
}

void
CellExecutor::runGuarded(size_t index, const CellRequest &req,
                         CellOutput &out) const
{
    SpanTracer &tracer = SpanTracer::global();
    ProgressMeter &progress = ProgressMeter::global();
    FaultInjector &faults = FaultInjector::global();
    for (unsigned attempt = 1; attempt <= retryMax_; ++attempt) {
        out.attempts = attempt;
        if (progress.enabled())
            progress.noteCurrent(req.label);
        const uint64_t startNs = tracer.nowNs();
        bool ok = false;
        try {
            faults.maybeKill(req.key);
            faults.maybeThrow(FaultPoint::Job, req.key);
            if (req.sessionFaults) {
                faults.maybeThrow(FaultPoint::SessionDrop, req.key);
            }
            runCell(req, out);
            if (journal)
                journal(index, out);
            ok = true;
        } catch (const std::exception &err) {
            out.error = err.what();
        } catch (...) {
            out.error = "unknown exception";
        }
        const uint64_t durNs = tracer.nowNs() - startNs;
        tracer.addPhase(SpanPhase::Cell, durNs);
        recordCellSpan(req, attempt, 1, !ok, startNs, durNs);
        if (noteBusyNs)
            noteBusyNs(durNs);
        out.attemptNs.push_back(durNs);
        if (ok) {
            if (noteCellMs)
                noteCellMs(static_cast<double>(durNs) / 1e6);
            progress.noteDone(durNs, false);
            return;
        }
        // Discard the torn attempt's partial state; only the failure
        // bookkeeping survives into the next attempt.
        const unsigned attempts = out.attempts;
        std::string error = std::move(out.error);
        std::vector<uint64_t> attemptNs = std::move(out.attemptNs);
        out = CellOutput{};
        out.attempts = attempts;
        out.error = std::move(error);
        out.attemptNs = std::move(attemptNs);
        if (attempt < retryMax_) {
            if (noteRetried)
                noteRetried();
            progress.noteRetried();
            backoff(attempt);
        }
    }
    out.failed = true;
    progress.noteDone(out.attemptNs.empty() ? 0 : out.attemptNs.back(),
                      true);
}

void
CellExecutor::runFused(const std::vector<size_t> &cells,
                       const std::vector<CellRequest> &reqs,
                       std::vector<CellOutput> &outputs) const
{
    const CellRequest &lead = reqs[cells.front()];
    const BlockStream &stream = lead.stream();
    const bool want_events = lead.wantEvents;
    const bool want_metrics = lead.wantMetrics;

    // The pc -> behaviour-class map is a function of the benchmark
    // alone: build it once per fused job, copy per event-carrying cell
    // (the per-cell path builds one per cell).
    BranchClassMap classes;
    if (want_events)
        classes = SyntheticProgram(*lead.profile).condBranchClasses();

    std::vector<PredictorPtr> predictors;
    predictors.reserve(cells.size());
    std::vector<BufferedEventSink> buffers(cells.size());
    std::vector<FusedLane> lanes(cells.size());
    for (size_t k = 0; k < cells.size(); ++k) {
        const size_t i = cells[k];
        CellOutput &out = outputs[i];
        out.result.bench = lead.profile->name;
        predictors.push_back(reqs[i].factory());
        lanes[k].predictor = predictors.back().get();
        lanes[k].metrics = want_metrics ? &out.metrics : nullptr;
        lanes[k].events = want_events ? &buffers[k] : nullptr;
        if (want_events)
            out.classes = classes;
    }

    SimConfig config = lead.config;
    config.metrics = nullptr; // sinks are per lane
    config.events = nullptr;

    const SamplePlan *plan = lead.plan ? lead.plan() : nullptr;
    std::vector<SimResult> sims = plan
        ? simulateStreamFusedSampled(stream, lanes, config, *plan)
        : simulateStreamFused(stream, lanes, config);

    for (size_t k = 0; k < cells.size(); ++k) {
        CellOutput &out = outputs[cells[k]];
        out.result.sim = std::move(sims[k]);
        if (want_metrics) {
            predictors[k]->publishMetrics(
                out.metrics, "pred." + predictors[k]->name());
        }
        out.events = buffers[k].take();
    }
}

void
CellExecutor::runGroup(const std::vector<size_t> &cells,
                       const std::vector<CellRequest> &reqs,
                       std::vector<CellOutput> &outputs) const
{
    if (cells.size() == 1) {
        runGuarded(cells.front(), reqs[cells.front()],
                   outputs[cells.front()]);
        return;
    }
    SpanTracer &tracer = SpanTracer::global();
    ProgressMeter &progress = ProgressMeter::global();
    FaultInjector &faults = FaultInjector::global();
    const std::string &benchName = reqs[cells.front()].profile->name;
    if (progress.enabled()) {
        progress.noteCurrent("fused:" + benchName + " x"
                             + std::to_string(cells.size()));
    }
    bool fused_ok = true;
    const uint64_t startNs = tracer.nowNs();
    try {
        for (const size_t i : cells) {
            faults.maybeKill(reqs[i].key);
            faults.maybeThrow(FaultPoint::Job, reqs[i].key);
            if (reqs[i].sessionFaults)
                faults.maybeThrow(FaultPoint::SessionDrop, reqs[i].key);
        }
        runFused(cells, reqs, outputs);
    } catch (...) {
        fused_ok = false;
    }
    const uint64_t durNs = tracer.nowNs() - startNs;
    tracer.addPhase(SpanPhase::FusedWalk, durNs);
    if (noteBusyNs)
        noteBusyNs(durNs);
    if (tracer.enabled()) {
        tracer.record(SpanPhase::FusedWalk,
                      "fused:" + benchName + " x"
                          + std::to_string(cells.size()),
                      "\"bench\":\"" + escapeJson(benchName)
                          + "\",\"lanes\":"
                          + std::to_string(cells.size()),
                      startNs, durNs);
    }
    if (fused_ok) {
        // One shared walk executed every lane: attribute each cell an
        // equal amortized slice so the timeline (and the cell
        // histogram) keeps one entry per cell in every mode.
        const uint64_t slice = durNs / cells.size();
        for (size_t k = 0; k < cells.size(); ++k) {
            const size_t i = cells[k];
            CellOutput &out = outputs[i];
            out.attempts = 1;
            if (journal)
                journal(i, out);
            recordCellSpan(reqs[i], 1, cells.size(), false,
                           startNs + k * slice, slice);
            if (noteCellMs)
                noteCellMs(static_cast<double>(slice) / 1e6);
            progress.noteDone(slice, false);
        }
        return;
    }
    // Demotion: the walk threw, so the group falls back to guarded
    // per-cell execution. Zero-duration marker span for the event.
    tracer.addPhase(SpanPhase::FusedDemote, 0);
    if (tracer.enabled()) {
        tracer.record(SpanPhase::FusedDemote, "demote:" + benchName,
                      "\"bench\":\"" + escapeJson(benchName)
                          + "\",\"lanes\":"
                          + std::to_string(cells.size()),
                      tracer.nowNs(), 0);
    }
    for (const size_t i : cells) {
        outputs[i] = CellOutput{}; // drop the torn fused attempt
        runGuarded(i, reqs[i], outputs[i]);
    }
}

} // namespace ev8
