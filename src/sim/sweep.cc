#include "sim/sweep.hh"

#include <cmath>
#include <stdexcept>

namespace ev8
{

std::vector<SweepPoint>
sweepHistoryLengths(SuiteRunner &runner, const HistoryFactory &make,
                    const std::vector<unsigned> &lengths,
                    const SimConfig &config)
{
    // One grid row per candidate length: the whole (length x benchmark)
    // sweep is a single engine batch, so every cell runs in parallel
    // while results and merged sinks keep the serial order.
    std::vector<GridRow> rows;
    rows.reserve(lengths.size());
    for (unsigned len : lengths) {
        GridRow row;
        row.factory = [&make, len] { return make(len); };
        row.config = config;
        row.label = "len" + std::to_string(len);
        rows.push_back(std::move(row));
    }
    GridOutcome grid = runner.runGrid(rows);

    std::vector<SweepPoint> points;
    points.reserve(lengths.size());
    for (size_t i = 0; i < lengths.size(); ++i) {
        SweepPoint p;
        p.histLen = lengths[i];
        p.perBench = std::move(grid.results[i]);
        p.avgMispKI = SuiteRunner::averageMispKI(p.perBench);
        points.push_back(std::move(p));
    }
    return points;
}

const SweepPoint &
bestPoint(const std::vector<SweepPoint> &points)
{
    if (points.empty())
        throw std::invalid_argument("bestPoint on an empty sweep");
    // Failed cells make a point's average NaN; such points never win.
    // If *every* point failed, fall back to the first (its NaN average
    // renders as null/"--" downstream).
    const SweepPoint *best = nullptr;
    for (const auto &p : points) {
        if (!std::isfinite(p.avgMispKI))
            continue;
        if (best == nullptr || p.avgMispKI < best->avgMispKI)
            best = &p;
    }
    return best != nullptr ? *best : points.front();
}

} // namespace ev8
