#include "sim/sweep.hh"

#include <cassert>

namespace ev8
{

std::vector<SweepPoint>
sweepHistoryLengths(SuiteRunner &runner, const HistoryFactory &make,
                    const std::vector<unsigned> &lengths,
                    const SimConfig &config)
{
    // One grid row per candidate length: the whole (length x benchmark)
    // sweep is a single engine batch, so every cell runs in parallel
    // while results and merged sinks keep the serial order.
    std::vector<GridRow> rows;
    rows.reserve(lengths.size());
    for (unsigned len : lengths) {
        GridRow row;
        row.factory = [&make, len] { return make(len); };
        row.config = config;
        rows.push_back(std::move(row));
    }
    auto grid = runner.runGrid(rows);

    std::vector<SweepPoint> points;
    points.reserve(lengths.size());
    for (size_t i = 0; i < lengths.size(); ++i) {
        SweepPoint p;
        p.histLen = lengths[i];
        p.perBench = std::move(grid[i]);
        p.avgMispKI = SuiteRunner::averageMispKI(p.perBench);
        points.push_back(std::move(p));
    }
    return points;
}

const SweepPoint &
bestPoint(const std::vector<SweepPoint> &points)
{
    assert(!points.empty());
    const SweepPoint *best = &points.front();
    for (const auto &p : points) {
        if (p.avgMispKI < best->avgMispKI)
            best = &p;
    }
    return *best;
}

} // namespace ev8
