#include "sim/sweep.hh"

#include <cassert>

namespace ev8
{

std::vector<SweepPoint>
sweepHistoryLengths(SuiteRunner &runner, const HistoryFactory &make,
                    const std::vector<unsigned> &lengths,
                    const SimConfig &config)
{
    std::vector<SweepPoint> points;
    points.reserve(lengths.size());
    for (unsigned len : lengths) {
        SweepPoint p;
        p.histLen = len;
        p.perBench = runner.run([&] { return make(len); }, config);
        p.avgMispKI = SuiteRunner::averageMispKI(p.perBench);
        points.push_back(std::move(p));
    }
    return points;
}

const SweepPoint &
bestPoint(const std::vector<SweepPoint> &points)
{
    assert(!points.empty());
    const SweepPoint *best = &points.front();
    for (const auto &p : points) {
        if (p.avgMispKI < best->avgMispKI)
            best = &p;
    }
    return *best;
}

} // namespace ev8
