/**
 * @file
 * Pre-decoded fetch-block streams: the cache-linear form of a trace.
 *
 * Reconstructing fetch blocks from the raw branch records
 * (FetchBlockBuilder) is pure per-trace work, yet the experiment grids
 * re-ran it for every (benchmark x configuration) cell -- ~11 times per
 * benchmark for a figure regeneration. A BlockStream is the result of
 * running the builder exactly once, flattened into structure-of-arrays
 * storage the simulation kernel can stream through linearly:
 *
 *  - per block: the block address, an info byte packing the instruction
 *    count (1..8) and the ends-taken flag, and a prefix index into the
 *    branch array;
 *  - per conditional branch: one byte packing the in-block instruction
 *    slot (0..7) and the outcome bit. The branch PC is reconstructed as
 *    blockAddr + slot * kInstrBytes, so a million-branch trace costs
 *    ~1 byte per branch instead of a 17-byte BranchRecord re-decoded
 *    per cell.
 *
 * The block sequence is exactly what FetchBlockBuilder::feed/flush
 * emits for the trace, including zero-branch alignment blocks, so a
 * simulation over the stream is bit-for-bit equivalent to one over the
 * trace. decodeBlockStream() is the only constructor of the data; the
 * binary serialization (readBlockStream/writeBlockStream) exists so
 * TraceCache can persist decoded streams next to cached traces.
 *
 * The stream is also the unit of sharing for fused multi-configuration
 * simulation (runFusedStreamKernel): because the data is immutable and
 * the walk order is defined entirely by the stream, N predictor lanes
 * can consume one linear pass concurrently with no per-lane decode or
 * history state of their own.
 */

#ifndef EV8_SIM_BLOCK_STREAM_HH
#define EV8_SIM_BLOCK_STREAM_HH

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/branch_record.hh"

namespace ev8
{

class Trace; // trace/trace.hh

/** The flattened fetch-block form of one trace. */
class BlockStream
{
  public:
    /** Blocks in fetch order (including zero-branch alignment blocks). */
    size_t blocks() const { return addr_.size(); }

    /** Total conditional branches across all blocks. */
    size_t branches() const { return branchSlot_.size(); }

    /** Instructions the underlying trace represents. */
    uint64_t instructions() const { return instructions_; }

    /** Name of the trace this stream was decoded from. */
    const std::string &name() const { return name_; }

    /** Address of the first instruction of block @p b. */
    uint64_t blockAddr(size_t b) const { return addr_[b]; }

    /** Instructions in block @p b (1..8). */
    unsigned blockInstrs(size_t b) const { return info_[b] >> 1; }

    /** One past the last instruction of block @p b. */
    uint64_t
    blockEndPc(size_t b) const
    {
        return addr_[b] + uint64_t{blockInstrs(b)} * kInstrBytes;
    }

    /** True when block @p b was ended by a taken CTI (vs. alignment). */
    bool blockEndsTaken(size_t b) const { return (info_[b] & 1) != 0; }

    /**
     * Index of block @p b's first branch in the flat branch array;
     * valid for b in [0, blocks()], with branchBegin(blocks()) ==
     * branches(). Block b owns branches [branchBegin(b),
     * branchBegin(b + 1)).
     */
    uint32_t branchBegin(size_t b) const { return branchBegin_[b]; }

    /** Conditional branches in block @p b (0..8). */
    unsigned
    numBranches(size_t b) const
    {
        return branchBegin_[b + 1] - branchBegin_[b];
    }

    /** Packed (slot << 1 | taken) byte of flat branch @p j. */
    uint8_t branchRaw(size_t j) const { return branchSlot_[j]; }

    /** In-block instruction slot (0..7) of flat branch @p j. */
    unsigned branchSlot(size_t j) const { return branchSlot_[j] >> 1; }

    /** Outcome of flat branch @p j. */
    bool branchTaken(size_t j) const { return (branchSlot_[j] & 1) != 0; }

    /** PC of branch @p k (0-based) inside block @p b. */
    uint64_t
    branchPc(size_t b, unsigned k) const
    {
        assert(k < numBranches(b));
        return addr_[b]
            + uint64_t{branchSlot(branchBegin_[b] + k)} * kInstrBytes;
    }

    /** Outcome of branch @p k inside block @p b. */
    bool
    branchTakenIn(size_t b, unsigned k) const
    {
        assert(k < numBranches(b));
        return branchTaken(branchBegin_[b] + k);
    }

    bool operator==(const BlockStream &) const = default;

  private:
    friend BlockStream decodeBlockStream(const Trace &trace);
    friend BlockStream readBlockStream(std::istream &in);
    friend class StreamAssembler; // serve/packet.hh wire reassembly

    std::string name_;
    uint64_t instructions_ = 0;
    std::vector<uint64_t> addr_;        //!< per block: address
    std::vector<uint8_t> info_;         //!< per block: instrs<<1 | taken
    std::vector<uint32_t> branchBegin_; //!< per block + 1: prefix index
    std::vector<uint8_t> branchSlot_;   //!< per branch: slot<<1 | taken
};

/**
 * Runs FetchBlockBuilder over @p trace once and flattens the emitted
 * block sequence. Deterministic: equal traces decode to equal streams.
 */
BlockStream decodeBlockStream(const Trace &trace);

/**
 * Serializes @p stream to a stream / file. Throws TraceIoError on I/O
 * failure. The format is versioned (see block_stream.cc); readers of a
 * different version reject the file.
 */
void writeBlockStream(std::ostream &out, const BlockStream &stream);
void writeBlockStreamFile(const std::string &path,
                          const BlockStream &stream);

/** Parses a serialized stream. Throws TraceIoError on malformed input. */
BlockStream readBlockStream(std::istream &in);
BlockStream readBlockStreamFile(const std::string &path);

} // namespace ev8

#endif // EV8_SIM_BLOCK_STREAM_HH
