#include "sim/fault_injection.hh"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/hash.hh"

namespace ev8
{

namespace
{

const char *const kPointNames[] = {
    "job",          "die",          "cache_read",
    "cache_write",  "cache_rename", "cache_short_write",
    "ckpt_read",    "ckpt_write",   "ckpt_corrupt",
    "session_drop", "ring_stall",   "sidecar_read",
    "sidecar_write", "conn_drop",   "slow_peer",
    "partial_write", "garbage_frame",
};

constexpr size_t kNumPoints = sizeof(kPointNames) / sizeof(kPointNames[0]);

/** splitmix64 finalizer: decorrelates the occurrence-hash inputs. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
parseU64(const std::string &text, const std::string &what)
{
    if (text.empty())
        throw std::invalid_argument("empty " + what);
    for (const char ch : text) {
        if (ch < '0' || ch > '9') {
            throw std::invalid_argument("invalid " + what + " '" + text
                                        + "'; expected an integer");
        }
    }
    return std::strtoull(text.c_str(), nullptr, 10);
}

double
parseProb(const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() || v < 0.0
        || v > 1.0) {
        throw std::invalid_argument("invalid probability '" + text
                                    + "'; expected a number in [0,1]");
    }
    return v;
}

} // namespace

const char *
FaultInjector::pointName(FaultPoint point)
{
    return kPointNames[static_cast<size_t>(point)];
}

FaultInjector::FaultInjector(const std::string &spec)
{
    size_t pos = 0;
    while (pos <= spec.size()) {
        if (spec.empty())
            break;
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            throw std::invalid_argument("empty entry in fault spec");

        if (item.rfind("seed=", 0) == 0) {
            seed_ = parseU64(item.substr(5), "seed");
            continue;
        }

        // point ['/' keysub] ['@' first] ['+' count] ['~' prob].
        // keysub may itself contain '/' (cell keys do), so it extends to
        // the next '@', '+' or '~' -- characters keys never contain.
        Entry entry;
        const size_t name_end = item.find_first_of("/@+~");
        const std::string name = item.substr(0, name_end);
        size_t point_idx = kNumPoints;
        for (size_t i = 0; i < kNumPoints; ++i) {
            if (name == kPointNames[i])
                point_idx = i;
        }
        if (point_idx == kNumPoints) {
            throw std::invalid_argument("unknown fault point '" + name
                                        + "'");
        }
        entry.point = static_cast<FaultPoint>(point_idx);

        size_t at = name_end;
        while (at != std::string::npos && at < item.size()) {
            const char tag = item[at];
            size_t end = item.find_first_of("@+~", at + 1);
            if (end == std::string::npos)
                end = item.size();
            const std::string field = item.substr(at + 1, end - at - 1);
            switch (tag) {
              case '/':
                entry.keySub = field;
                break;
              case '@':
                entry.first = parseU64(field, "occurrence");
                if (entry.first == 0) {
                    throw std::invalid_argument(
                        "occurrence '@0' is invalid; occurrences are "
                        "1-based");
                }
                break;
              case '+':
                if (field == "*") {
                    entry.permanent = true;
                } else {
                    entry.count = parseU64(field, "count");
                    if (entry.count == 0) {
                        throw std::invalid_argument(
                            "count '+0' would never fire");
                    }
                }
                break;
              case '~':
                entry.prob = parseProb(field);
                break;
              default:
                throw std::invalid_argument("malformed entry '" + item
                                            + "'");
            }
            at = end;
        }
        entries_.push_back(std::move(entry));
    }
}

bool
FaultInjector::matches(const Entry &entry, FaultPoint point,
                       const std::string &key) const
{
    if (entry.point != point)
        return false;
    if (entry.keySub.empty())
        return true;
    if (entry.keySub[0] == '=')
        return key == entry.keySub.substr(1);
    return key.find(entry.keySub) != std::string::npos;
}

bool
FaultInjector::fires(FaultPoint point, const std::string &key)
{
    if (entries_.empty())
        return false;

    bool fired = false;
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t e = 0; e < entries_.size(); ++e) {
        const Entry &entry = entries_[e];
        if (!matches(entry, point, key))
            continue;
        // Count the occurrence whether or not it fires: determinism
        // depends only on how often this (point, key) was consulted.
        const uint64_t n = ++occurrences_[{e, key}];
        if (n < entry.first)
            continue;
        if (!entry.permanent && n >= entry.first + entry.count)
            continue;
        if (entry.prob < 1.0) {
            ContentHash h;
            h.u64(seed_);
            h.u64(e);
            h.str(key);
            h.u64(n);
            // Top 53 bits -> a uniform double in [0,1).
            const double u = static_cast<double>(mix64(h.value()) >> 11)
                * 0x1.0p-53;
            if (u >= entry.prob)
                continue;
        }
        fired = true;
    }
    return fired;
}

void
FaultInjector::maybeThrow(FaultPoint point, const std::string &key)
{
    if (fires(point, key)) {
        throw InjectedFault(std::string("injected ") + pointName(point)
                            + " fault at " + key);
    }
}

void
FaultInjector::maybeKill(const std::string &key)
{
    if (fires(FaultPoint::Die, key)) {
        std::fprintf(stderr, "ev8: injected die at %s\n", key.c_str());
        std::fflush(stderr);
        ::raise(SIGKILL);
    }
}

FaultInjector &
FaultInjector::global()
{
    static std::mutex m;
    static std::string cached_spec;
    static std::unique_ptr<FaultInjector> instance;

    std::lock_guard<std::mutex> lock(m);
    const char *env = std::getenv("EV8_FAULT_SPEC");
    const std::string spec = env ? env : "";
    if (!instance || spec != cached_spec) {
        try {
            instance = std::make_unique<FaultInjector>(spec);
        } catch (const std::invalid_argument &err) {
            std::fprintf(stderr, "EV8_FAULT_SPEC: %s\n", err.what());
            std::exit(2);
        }
        cached_spec = spec;
    }
    return *instance;
}

} // namespace ev8
