#include "sim/experiment.hh"

#include <cstdlib>
#include <string>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{

unsigned
ExperimentEngine::defaultJobs()
{
    if (const char *env = std::getenv("EV8_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ExperimentEngine::ExperimentEngine(unsigned jobs)
    : jobs_(jobs != 0 ? jobs : defaultJobs())
{
    queues_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        queues_.push_back(std::make_unique<TaskDeque>());
    // The calling thread is participant 0; slots 1..jobs-1 are pool
    // threads. jobs == 1 therefore spawns nothing and parallelFor is a
    // plain loop over the same code path.
    workers_.reserve(jobs_ - 1);
    for (unsigned slot = 1; slot < jobs_; ++slot)
        workers_.emplace_back([this, slot] { workerLoop(slot); });
}

ExperimentEngine::~ExperimentEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

bool
ExperimentEngine::popTask(unsigned slot, size_t &task)
{
    {
        TaskDeque &own = *queues_[slot];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = own.tasks.front();
            own.tasks.pop_front();
            return true;
        }
    }
    // Steal from the back of the other deques, scanning from the next
    // slot so victims spread instead of piling onto worker 0.
    for (unsigned k = 1; k < jobs_; ++k) {
        TaskDeque &victim = *queues_[(slot + k) % jobs_];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = victim.tasks.back();
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ExperimentEngine::drain(unsigned slot, const std::function<void(size_t)> &fn)
{
    size_t task;
    while (popTask(slot, task)) {
        try {
            fn(task);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0)
            batchDone_.notify_all();
    }
}

void
ExperimentEngine::workerLoop(unsigned slot)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t)> *fn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [&] {
                return stop_ || (batchSeq_ != seen && batchFn_ != nullptr);
            });
            if (stop_)
                return;
            seen = batchSeq_;
            fn = batchFn_;
            ++busy_;
        }
        drain(slot, *fn);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--busy_ == 0)
                batchDone_.notify_all();
        }
    }
}

void
ExperimentEngine::parallelFor(size_t n,
                              const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < n; ++i) {
            TaskDeque &q = *queues_[i % jobs_];
            std::lock_guard<std::mutex> qlock(q.mutex);
            q.tasks.push_back(i);
        }
        batchFn_ = &fn;
        pending_ = n;
        firstError_ = nullptr;
        ++batchSeq_;
    }
    workReady_.notify_all();

    drain(0, fn);

    std::unique_lock<std::mutex> lock(mutex_);
    // busy_ == 0 matters as much as pending_ == 0: a worker still inside
    // drain() must not race a subsequent batch's queue refill with this
    // batch's (about to dangle) fn.
    batchDone_.wait(lock, [&] { return pending_ == 0 && busy_ == 0; });
    batchFn_ = nullptr;
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

std::vector<std::vector<BenchResult>>
ExperimentEngine::runGrid(SuiteRunner &runner,
                          const std::vector<GridRow> &rows)
{
    const size_t nbench = runner.size();
    const size_t n = rows.size() * nbench;

    /** Everything one (benchmark, config) job produces in isolation. */
    struct JobOutput
    {
        BenchResult result;
        MetricRegistry metrics;
        std::vector<MispredictEvent> events;
        BranchClassMap classes; //!< owned here: cannot dangle (job-local)
    };
    std::vector<JobOutput> outputs(n);

    parallelFor(n, [&](size_t i) {
        const GridRow &row = rows[i / nbench];
        const size_t b = i % nbench;
        const Benchmark &bench = specint95Suite()[b];
        JobOutput &out = outputs[i];
        out.result.bench = bench.profile.name;

        // The pre-decoded stream, not the trace: decode happens once per
        // benchmark (and not at all with a warm on-disk stream cache),
        // however many grid rows revisit it.
        const BlockStream &stream = runner.blockStream(b);
        PredictorPtr predictor = row.factory();

        // Isolate the observability sinks: the shared registry/sink in
        // row.config are merge *targets*, never touched by workers.
        SimConfig config = row.config;
        BufferedEventSink buffer;
        config.events = row.config.events ? &buffer : nullptr;
        config.metrics = row.config.metrics ? &out.metrics : nullptr;
        if (row.config.events) {
            out.classes = SyntheticProgram(bench.profile)
                              .condBranchClasses();
        }

        out.result.sim = simulateStream(stream, *predictor, config);

        if (config.metrics) {
            predictor->publishMetrics(out.metrics,
                                      "pred." + predictor->name());
        }
        out.events = buffer.take();
    });

    // Deterministic merge, strictly in submission order (row-major over
    // the grid): byte-identical shared-sink contents for any pool width.
    std::vector<std::vector<BenchResult>> results(rows.size());
    for (auto &row_results : results)
        row_results.reserve(nbench);
    for (size_t i = 0; i < n; ++i) {
        const GridRow &row = rows[i / nbench];
        JobOutput &out = outputs[i];
        if (row.config.metrics)
            row.config.metrics->merge(out.metrics);
        if (MispredictSink *sink = row.config.events) {
            sink->setBench(out.result.bench);
            sink->setClassifier(&out.classes);
            for (const MispredictEvent &event : out.events)
                sink->onMispredict(event);
            sink->setClassifier(nullptr);
        }
        results[i / nbench].push_back(std::move(out.result));
    }
    return results;
}

} // namespace ev8
