#include "sim/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{

namespace
{

/** Upper bound for parseJobs(): far above any sane pool or lane cap. */
constexpr unsigned long long kMaxParsedJobs = 4096;

} // namespace

unsigned
ExperimentEngine::parseJobs(const std::string &text)
{
    if (text.empty()) {
        throw std::invalid_argument(
            "empty worker count; expected a positive integer");
    }
    for (const char ch : text) {
        if (ch < '0' || ch > '9') {
            throw std::invalid_argument(
                "invalid worker count '" + text
                + "'; expected a positive integer");
        }
    }
    // Digits only from here on, so strtoull cannot reject; it can only
    // saturate, which the range check below catches (ULLONG_MAX >
    // kMaxParsedJobs).
    const unsigned long long v =
        std::strtoull(text.c_str(), nullptr, 10);
    if (v == 0) {
        throw std::invalid_argument("worker count must be at least 1, "
                                    "got '" + text + "'");
    }
    if (v > kMaxParsedJobs) {
        throw std::invalid_argument(
            "worker count '" + text + "' out of range [1, "
            + std::to_string(kMaxParsedJobs) + "]");
    }
    return static_cast<unsigned>(v);
}

unsigned
ExperimentEngine::defaultJobs()
{
    if (const char *env = std::getenv("EV8_JOBS")) {
        try {
            return parseJobs(env);
        } catch (const std::invalid_argument &err) {
            std::fprintf(stderr, "EV8_JOBS: %s\n", err.what());
            std::exit(2);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

bool
ExperimentEngine::fusedEnabled()
{
    const char *env = std::getenv("EV8_FUSED");
    return env == nullptr || !(env[0] == '0' && env[1] == '\0');
}

size_t
ExperimentEngine::fusedLaneCap()
{
    if (const char *env = std::getenv("EV8_FUSED_LANES")) {
        try {
            return std::min<size_t>(parseJobs(env), kMaxFusedLanes);
        } catch (const std::invalid_argument &err) {
            std::fprintf(stderr, "EV8_FUSED_LANES: %s\n", err.what());
            std::exit(2);
        }
    }
    return kMaxFusedLanes;
}

void
ExperimentEngine::publishMetrics(MetricRegistry &registry,
                                 const std::string &prefix) const
{
    registry.counter(prefix + ".grid_cells").inc(gridCells_);
    registry.counter(prefix + ".fused_jobs").inc(fusedJobs_);
    registry.counter(prefix + ".fused_lane_cells").inc(fusedLaneCells_);
}

ExperimentEngine::ExperimentEngine(unsigned jobs)
    : jobs_(jobs != 0 ? jobs : defaultJobs())
{
    queues_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        queues_.push_back(std::make_unique<TaskDeque>());
    // The calling thread is participant 0; slots 1..jobs-1 are pool
    // threads. jobs == 1 therefore spawns nothing and parallelFor is a
    // plain loop over the same code path.
    workers_.reserve(jobs_ - 1);
    for (unsigned slot = 1; slot < jobs_; ++slot)
        workers_.emplace_back([this, slot] { workerLoop(slot); });
}

ExperimentEngine::~ExperimentEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

bool
ExperimentEngine::popTask(unsigned slot, size_t &task)
{
    {
        TaskDeque &own = *queues_[slot];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = own.tasks.front();
            own.tasks.pop_front();
            return true;
        }
    }
    // Steal from the back of the other deques, scanning from the next
    // slot so victims spread instead of piling onto worker 0.
    for (unsigned k = 1; k < jobs_; ++k) {
        TaskDeque &victim = *queues_[(slot + k) % jobs_];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = victim.tasks.back();
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ExperimentEngine::drain(unsigned slot, const std::function<void(size_t)> &fn)
{
    size_t task;
    while (popTask(slot, task)) {
        try {
            fn(task);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0)
            batchDone_.notify_all();
    }
}

void
ExperimentEngine::workerLoop(unsigned slot)
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t)> *fn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [&] {
                return stop_ || (batchSeq_ != seen && batchFn_ != nullptr);
            });
            if (stop_)
                return;
            seen = batchSeq_;
            fn = batchFn_;
            ++busy_;
        }
        drain(slot, *fn);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--busy_ == 0)
                batchDone_.notify_all();
        }
    }
}

void
ExperimentEngine::parallelFor(size_t n,
                              const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < n; ++i) {
            TaskDeque &q = *queues_[i % jobs_];
            std::lock_guard<std::mutex> qlock(q.mutex);
            q.tasks.push_back(i);
        }
        batchFn_ = &fn;
        pending_ = n;
        firstError_ = nullptr;
        ++batchSeq_;
    }
    workReady_.notify_all();

    drain(0, fn);

    std::unique_lock<std::mutex> lock(mutex_);
    // busy_ == 0 matters as much as pending_ == 0: a worker still inside
    // drain() must not race a subsequent batch's queue refill with this
    // batch's (about to dangle) fn.
    batchDone_.wait(lock, [&] { return pending_ == 0 && busy_ == 0; });
    batchFn_ = nullptr;
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

std::vector<std::vector<BenchResult>>
ExperimentEngine::runGrid(SuiteRunner &runner,
                          const std::vector<GridRow> &rows)
{
    const size_t nbench = runner.size();
    const size_t n = rows.size() * nbench;

    /** Everything one (benchmark, config) job produces in isolation. */
    struct JobOutput
    {
        BenchResult result;
        MetricRegistry metrics;
        std::vector<MispredictEvent> events;
        BranchClassMap classes; //!< owned here: cannot dangle (job-local)
    };
    std::vector<JobOutput> outputs(n);
    gridCells_ += n;

    /** The original per-cell job body (the EV8_FUSED=0 path, and the
     *  body of any fused group that ends up with a single lane). */
    auto run_cell = [&](size_t i) {
        const GridRow &row = rows[i / nbench];
        const size_t b = i % nbench;
        const Benchmark &bench = specint95Suite()[b];
        JobOutput &out = outputs[i];
        out.result.bench = bench.profile.name;

        // The pre-decoded stream, not the trace: decode happens once per
        // benchmark (and not at all with a warm on-disk stream cache),
        // however many grid rows revisit it.
        const BlockStream &stream = runner.blockStream(b);
        PredictorPtr predictor = row.factory();

        // Isolate the observability sinks: the shared registry/sink in
        // row.config are merge *targets*, never touched by workers.
        SimConfig config = row.config;
        BufferedEventSink buffer;
        config.events = row.config.events ? &buffer : nullptr;
        config.metrics = row.config.metrics ? &out.metrics : nullptr;
        if (row.config.events) {
            out.classes = SyntheticProgram(bench.profile)
                              .condBranchClasses();
        }

        out.result.sim = simulateStream(stream, *predictor, config);

        if (config.metrics) {
            predictor->publishMetrics(out.metrics,
                                      "pred." + predictor->name());
        }
        out.events = buffer.take();
    };

    /** One fused job: all cells share (benchmark, walk config); the
     *  stream is walked once (per concrete predictor type) for all of
     *  them, with per-cell sinks so the merge below is untouched. */
    auto run_fused = [&](const std::vector<size_t> &cells) {
        const size_t b = cells.front() % nbench;
        const Benchmark &bench = specint95Suite()[b];
        const BlockStream &stream = runner.blockStream(b);
        const GridRow &lead = rows[cells.front() / nbench];
        const bool want_events = lead.config.events != nullptr;
        const bool want_metrics = lead.config.metrics != nullptr;

        // The pc -> behaviour-class map is a function of the benchmark
        // alone: build it once per fused job, copy per event-carrying
        // cell (the per-cell path builds one per cell).
        BranchClassMap classes;
        if (want_events)
            classes = SyntheticProgram(bench.profile).condBranchClasses();

        std::vector<PredictorPtr> predictors;
        predictors.reserve(cells.size());
        std::vector<BufferedEventSink> buffers(cells.size());
        std::vector<FusedLane> lanes(cells.size());
        for (size_t k = 0; k < cells.size(); ++k) {
            const size_t i = cells[k];
            JobOutput &out = outputs[i];
            out.result.bench = bench.profile.name;
            predictors.push_back(rows[i / nbench].factory());
            lanes[k].predictor = predictors.back().get();
            lanes[k].metrics = want_metrics ? &out.metrics : nullptr;
            lanes[k].events = want_events ? &buffers[k] : nullptr;
            if (want_events)
                out.classes = classes;
        }

        SimConfig config = lead.config;
        config.metrics = nullptr; // sinks are per lane
        config.events = nullptr;

        std::vector<SimResult> sims =
            simulateStreamFused(stream, lanes, config);

        for (size_t k = 0; k < cells.size(); ++k) {
            JobOutput &out = outputs[cells[k]];
            out.result.sim = std::move(sims[k]);
            if (want_metrics) {
                predictors[k]->publishMetrics(
                    out.metrics, "pred." + predictors[k]->name());
            }
            out.events = buffers[k].take();
        }
    };

    if (!fusedEnabled()) {
        parallelFor(n, run_cell);
    } else {
        // Group cells sharing (benchmark, walk config) into fused jobs,
        // preserving submission order within each group, chunked at the
        // lane cap. Everything in the key must be identical for the
        // lanes to legally share one history walk / one kernel shape.
        using FuseKey = std::tuple<size_t, int, unsigned, bool, bool,
                                   bool, bool, bool>;
        const size_t cap = fusedLaneCap();
        std::vector<std::vector<size_t>> groups;
        std::map<FuseKey, size_t> open; //!< key -> unfilled group index
        for (size_t i = 0; i < n; ++i) {
            const SimConfig &c = rows[i / nbench].config;
            const FuseKey key{i % nbench, static_cast<int>(c.history),
                              c.historyAge, c.assignBanks,
                              c.profileTiming, c.events != nullptr,
                              c.metrics != nullptr,
                              c.forceGenericKernel};
            auto [it, inserted] = open.try_emplace(key, groups.size());
            if (inserted) {
                groups.emplace_back();
            } else if (groups[it->second].size() >= cap) {
                it->second = groups.size();
                groups.emplace_back();
            }
            groups[it->second].push_back(i);
        }
        for (const auto &cells : groups) {
            if (cells.size() > 1) {
                ++fusedJobs_;
                fusedLaneCells_ += cells.size();
            }
        }
        parallelFor(groups.size(), [&](size_t g) {
            if (groups[g].size() == 1)
                run_cell(groups[g].front());
            else
                run_fused(groups[g]);
        });
    }

    // Deterministic merge, strictly in submission order (row-major over
    // the grid): byte-identical shared-sink contents for any pool width.
    std::vector<std::vector<BenchResult>> results(rows.size());
    for (auto &row_results : results)
        row_results.reserve(nbench);
    for (size_t i = 0; i < n; ++i) {
        const GridRow &row = rows[i / nbench];
        JobOutput &out = outputs[i];
        if (row.config.metrics)
            row.config.metrics->merge(out.metrics);
        if (MispredictSink *sink = row.config.events) {
            sink->setBench(out.result.bench);
            sink->setClassifier(&out.classes);
            for (const MispredictEvent &event : out.events)
                sink->onMispredict(event);
            sink->setClassifier(nullptr);
        }
        results[i / nbench].push_back(std::move(out.result));
    }
    return results;
}

} // namespace ev8
