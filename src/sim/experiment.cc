#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>

#include "common/env.hh"
#include "common/hash.hh"
#include "obs/event_trace.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace_span.hh"
#include "sim/cell_executor.hh"
#include "sim/checkpoint.hh"
#include "sim/fault_injection.hh"
#include "workloads/synthetic_program.hh"

namespace ev8
{

namespace
{

/** Upper bound for parseJobs(): far above any sane pool or lane cap. */
constexpr unsigned long long kMaxParsedJobs = 4096;

/**
 * Bucket bounds (milliseconds) for the per-cell duration histogram the
 * telemetry block exports. Cells range from sub-millisecond unit-test
 * grids to multi-second full-budget sweeps.
 */
std::vector<double>
cellDurationBoundsMs()
{
    return {1,    2,    5,    10,   25,   50,  100,
            250,  500,  1000, 2500, 5000, 10000};
}

/**
 * Content hash identifying one grid batch for checkpoint naming: covers
 * everything that could change what the cells compute -- format
 * versions, the batch's position in the run, the workload set and
 * budgets, and each row's predictor identity and simulation config.
 * Anything the hash cannot see (predictor update-rule edits, simulator
 * changes) must be covered by bumping a version constant.
 */
uint64_t
gridHash(SuiteRunner &runner, const std::vector<GridRow> &rows,
         uint64_t batch)
{
    ContentHash h;
    h.u64(GridCheckpoint::kFormatVersion);
    h.u64(TraceCache::kFormatVersion);
    h.u64(TraceCache::kStreamFormatVersion);
    h.u64(batch);
    h.u64(runner.size());
    h.u64(runner.baseBranches());
    for (size_t b = 0; b < runner.size(); ++b) {
        const Benchmark &bench = specint95Suite()[b];
        h.u64(TraceCache::profileHash(bench.profile));
        h.u64(bench.branchesAt(runner.baseBranches()));
    }
    // Sampled and exact grids must never share a checkpoint. Hashed
    // only when active so every pre-sampling checkpoint name (and the
    // exact mode's) is untouched.
    const SampleSpec &sample = runner.sampleSpec();
    if (sample.active) {
        h.str("sampling");
        h.u64(sample.budget);
        h.u64(sample.windowBranches);
        h.u64(sample.warmupBranches);
        h.u64(sample.seed);
        h.u64(sample.maxPhases);
        h.u64(PhaseMap::kFormatVersion);
    }
    for (const GridRow &row : rows) {
        h.str(row.label);
        const PredictorPtr probe = row.factory();
        h.str(probe->name());
        h.u64(probe->storageBits());
        const SimConfig &c = row.config;
        h.u64(static_cast<uint64_t>(static_cast<int>(c.history)));
        h.u64(c.historyAge);
        h.u64(c.assignBanks ? 1 : 0);
        h.u64(c.events != nullptr ? 1 : 0);
        h.u64(c.metrics != nullptr ? 1 : 0);
        h.u64(c.profileTiming ? 1 : 0);
        h.u64(c.forceGenericKernel ? 1 : 0);
    }
    return h.value();
}

} // namespace

unsigned
ExperimentEngine::parseJobs(const std::string &text)
{
    if (text.empty()) {
        throw std::invalid_argument(
            "empty worker count; expected a positive integer");
    }
    for (const char ch : text) {
        if (ch < '0' || ch > '9') {
            throw std::invalid_argument(
                "invalid worker count '" + text
                + "'; expected a positive integer");
        }
    }
    // Digits only from here on, so strtoull cannot reject; it can only
    // saturate, which the range check below catches (ULLONG_MAX >
    // kMaxParsedJobs).
    const unsigned long long v =
        std::strtoull(text.c_str(), nullptr, 10);
    if (v == 0) {
        throw std::invalid_argument("worker count must be at least 1, "
                                    "got '" + text + "'");
    }
    if (v > kMaxParsedJobs) {
        throw std::invalid_argument(
            "worker count '" + text + "' out of range [1, "
            + std::to_string(kMaxParsedJobs) + "]");
    }
    return static_cast<unsigned>(v);
}

unsigned
ExperimentEngine::defaultJobs()
{
    if (const char *env = std::getenv("EV8_JOBS")) {
        try {
            return parseJobs(env);
        } catch (const std::invalid_argument &err) {
            std::fprintf(stderr, "EV8_JOBS: %s\n", err.what());
            std::exit(2);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

bool
ExperimentEngine::fusedEnabled()
{
    return strictEnvBool("EV8_FUSED", true);
}

unsigned
ExperimentEngine::retryMax()
{
    return CellExecutor::retryMax();
}

unsigned
ExperimentEngine::retryBaseMs()
{
    return CellExecutor::retryBaseMs();
}

size_t
ExperimentEngine::fusedLaneCap()
{
    if (const char *env = std::getenv("EV8_FUSED_LANES")) {
        try {
            return std::min<size_t>(parseJobs(env), kMaxFusedLanes);
        } catch (const std::invalid_argument &err) {
            std::fprintf(stderr, "EV8_FUSED_LANES: %s\n", err.what());
            std::exit(2);
        }
    }
    return kMaxFusedLanes;
}

void
ExperimentEngine::publishMetrics(MetricRegistry &registry,
                                 const std::string &prefix) const
{
    registry.counter(prefix + ".grid_cells").inc(gridCells_);
    registry.counter(prefix + ".fused_jobs").inc(fusedJobs_);
    registry.counter(prefix + ".fused_lane_cells").inc(fusedLaneCells_);
    registry.counter(prefix + ".cells_failed").inc(cellsFailed_);
    registry.counter(prefix + ".cells_retried")
        .inc(cellsRetried_.load(std::memory_order_relaxed));
    registry.counter(prefix + ".cells_resumed").inc(cellsResumed_);
}

ExperimentEngine::ExperimentEngine(unsigned jobs)
    : jobs_(jobs != 0 ? jobs : defaultJobs()),
      cellDurationsMs_(cellDurationBoundsMs())
{
    queues_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        queues_.push_back(std::make_unique<TaskDeque>());
    // The calling thread is participant 0; slots 1..jobs-1 are pool
    // threads. jobs == 1 therefore spawns nothing and parallelFor is a
    // plain loop over the same code path.
    workers_.reserve(jobs_ - 1);
    for (unsigned slot = 1; slot < jobs_; ++slot)
        workers_.emplace_back([this, slot] { workerLoop(slot); });
}

ExperimentEngine::~ExperimentEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

bool
ExperimentEngine::popTask(unsigned slot, size_t &task)
{
    {
        TaskDeque &own = *queues_[slot];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = own.tasks.front();
            own.tasks.pop_front();
            return true;
        }
    }
    // Steal from the back of the other deques, scanning from the next
    // slot so victims spread instead of piling onto worker 0.
    for (unsigned k = 1; k < jobs_; ++k) {
        TaskDeque &victim = *queues_[(slot + k) % jobs_];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = victim.tasks.back();
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ExperimentEngine::drain(unsigned slot, const std::function<void(size_t)> &fn)
{
    size_t task;
    while (popTask(slot, task)) {
        try {
            fn(task);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0)
            batchDone_.notify_all();
    }
}

void
ExperimentEngine::workerLoop(unsigned slot)
{
    SpanTracer::global().setThreadName("worker-"
                                       + std::to_string(slot));
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t)> *fn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [&] {
                return stop_ || (batchSeq_ != seen && batchFn_ != nullptr);
            });
            if (stop_)
                return;
            seen = batchSeq_;
            fn = batchFn_;
            ++busy_;
        }
        drain(slot, *fn);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--busy_ == 0)
                batchDone_.notify_all();
        }
    }
}

void
ExperimentEngine::parallelFor(size_t n,
                              const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < n; ++i) {
            TaskDeque &q = *queues_[i % jobs_];
            std::lock_guard<std::mutex> qlock(q.mutex);
            q.tasks.push_back(i);
        }
        batchFn_ = &fn;
        pending_ = n;
        firstError_ = nullptr;
        ++batchSeq_;
    }
    workReady_.notify_all();

    drain(0, fn);

    std::unique_lock<std::mutex> lock(mutex_);
    // busy_ == 0 matters as much as pending_ == 0: a worker still inside
    // drain() must not race a subsequent batch's queue refill with this
    // batch's (about to dangle) fn.
    batchDone_.wait(lock, [&] { return pending_ == 0 && busy_ == 0; });
    batchFn_ = nullptr;
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

GridOutcome
ExperimentEngine::runGrid(SuiteRunner &runner,
                          const std::vector<GridRow> &rows)
{
    const size_t nbench = runner.size();
    const size_t n = rows.size() * nbench;
    const uint64_t batch = batchIndex_++;

    SpanTracer &tracer = SpanTracer::global();
    ProgressMeter &progress = ProgressMeter::global();
    const uint64_t gridStartNs = tracer.nowNs();

    std::vector<CellOutput> outputs(n);
    gridCells_ += n;

    // The shared cell-execution core (sim/cell_executor.hh): served
    // sessions run the exact same code; only the scheduling and the
    // accounting hooks below are engine-specific.
    CellExecutor executor;

    /**
     * Stable cell identity for fault matching and failure reports:
     * batch index / row index / benchmark name. Deterministic across
     * identical runs, independent of scheduling.
     */
    auto cell_key = [&](size_t i) {
        return "g" + std::to_string(batch) + "/r"
            + std::to_string(i / nbench) + "/"
            + specint95Suite()[i % nbench].profile.name;
    };

    /**
     * Human/timeline label for cell @p i: "<row label>/<bench>", or
     * just the benchmark for anonymous rows.
     */
    auto cell_label = [&](size_t i) {
        const std::string &label = rows[i / nbench].label;
        const std::string &bench =
            specint95Suite()[i % nbench].profile.name;
        return label.empty() ? bench : label + "/" + bench;
    };

    // Everything the executor needs to run cell i, caller-agnostic.
    std::vector<CellRequest> requests(n);
    for (size_t i = 0; i < n; ++i) {
        const GridRow &row = rows[i / nbench];
        const size_t b = i % nbench;
        CellRequest &req = requests[i];
        req.stream = [&runner, b]() -> const BlockStream & {
            return runner.blockStream(b);
        };
        if (runner.sampleSpec().active) {
            req.plan = [&runner, b]() -> const SamplePlan * {
                return runner.samplePlan(b);
            };
        }
        req.profile = &specint95Suite()[b].profile;
        req.factory = row.factory;
        req.config = row.config;
        req.wantEvents = row.config.events != nullptr;
        req.wantMetrics = row.config.metrics != nullptr;
        req.rowLabel = row.label;
        req.rowIndex = i / nbench;
        req.key = cell_key(i);
        req.label = cell_label(i);
    }

    // Resume: load any journal for this exact grid and mark its cells
    // done before scheduling. The pc -> class maps are not journaled
    // (they are a pure function of the benchmark), so rebuild them for
    // restored event-carrying cells -- once per benchmark.
    const std::string ckpt_dir = GridCheckpoint::defaultDir();
    GridCheckpoint checkpoint(
        ckpt_dir, ckpt_dir.empty() ? 0 : gridHash(runner, rows, batch),
        n);
    std::vector<char> restored(n, 0);
    if (checkpoint.enabled()) {
        ScopedSpan setup(SpanPhase::GridSetup, "grid.setup:restore");
        setup.arg("batch", batch);
        setup.arg("cells", static_cast<uint64_t>(n));
        std::vector<BranchClassMap> classCache(nbench);
        std::vector<char> haveClass(nbench, 0);
        auto restoredCells = checkpoint.load();
        for (auto &[i, cell] : restoredCells) {
            CellOutput &out = outputs[i];
            out.result = std::move(cell.result);
            out.metrics = std::move(cell.metrics);
            out.events = std::move(cell.events);
            if (rows[i / nbench].config.events) {
                const size_t b = i % nbench;
                if (!haveClass[b]) {
                    classCache[b] =
                        SyntheticProgram(specint95Suite()[b].profile)
                            .condBranchClasses();
                    haveClass[b] = 1;
                }
                out.classes = classCache[b];
            }
            restored[i] = 1;
            ++cellsResumed_;
        }
    }

    // Engine-side accounting, fed from whatever thread runs the cell.
    executor.journal = [&checkpoint](size_t i, const CellOutput &out) {
        checkpoint.append(i, out.result, out.metrics, out.events);
    };
    executor.noteBusyNs = [this](uint64_t ns) {
        busyNs_.fetch_add(ns, std::memory_order_relaxed);
    };
    executor.noteCellMs = [this](double ms) {
        cellDurationsMs_.observe(ms);
    };
    executor.noteRetried = [this] {
        cellsRetried_.fetch_add(1, std::memory_order_relaxed);
    };

    // Schedule only the cells the checkpoint did not restore.
    std::vector<size_t> todo;
    todo.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (!restored[i])
            todo.push_back(i);
    }
    progress.beginBatch(todo.size());

    if (!fusedEnabled()) {
        parallelFor(todo.size(), [&](size_t t) {
            executor.runGuarded(todo[t], requests[todo[t]],
                                outputs[todo[t]]);
        });
    } else {
        // Group cells sharing (benchmark, walk config) into fused jobs,
        // preserving submission order within each group, chunked at the
        // lane cap. Everything in the key must be identical for the
        // lanes to legally share one history walk / one kernel shape.
        using FuseKey = std::tuple<size_t, int, unsigned, bool, bool,
                                   bool, bool, bool>;
        std::vector<std::vector<size_t>> groups;
        {
            ScopedSpan grouping(SpanPhase::GridSetup,
                                "grid.setup:fuse");
            grouping.arg("cells", static_cast<uint64_t>(todo.size()));
            const size_t cap = fusedLaneCap();
            std::map<FuseKey, size_t> open; //!< key -> unfilled group
            for (const size_t i : todo) {
                const SimConfig &c = rows[i / nbench].config;
                const FuseKey key{i % nbench,
                                  static_cast<int>(c.history),
                                  c.historyAge, c.assignBanks,
                                  c.profileTiming, c.events != nullptr,
                                  c.metrics != nullptr,
                                  c.forceGenericKernel};
                auto [it, inserted] =
                    open.try_emplace(key, groups.size());
                if (inserted) {
                    groups.emplace_back();
                } else if (groups[it->second].size() >= cap) {
                    it->second = groups.size();
                    groups.emplace_back();
                }
                groups[it->second].push_back(i);
            }
            for (const auto &cells : groups) {
                if (cells.size() > 1) {
                    ++fusedJobs_;
                    fusedLaneCells_ += cells.size();
                }
            }
        }
        parallelFor(groups.size(), [&](size_t g) {
            executor.runGroup(groups[g], requests, outputs);
        });
    }

    // Deterministic merge, strictly in submission order (row-major over
    // the grid): byte-identical shared-sink contents for any pool width,
    // whether a cell ran fresh, rode a fused walk, was retried, or was
    // restored from a journal. Failed cells contribute nothing to the
    // shared sinks; they surface as CellFailure records instead.
    GridOutcome outcome;
    outcome.results.resize(rows.size());
    for (auto &row_results : outcome.results)
        row_results.reserve(nbench);
    ScopedSpan mergeSpan(SpanPhase::Merge);
    mergeSpan.arg("cells", static_cast<uint64_t>(n));
    for (size_t i = 0; i < n; ++i) {
        const GridRow &row = rows[i / nbench];
        CellOutput &out = outputs[i];
        if (restored[i])
            ++outcome.resumedCells;
        if (out.failed) {
            CellFailure failure;
            failure.row = i / nbench;
            failure.rowLabel = row.label;
            failure.bench = specint95Suite()[i % nbench].profile.name;
            failure.attempts = out.attempts;
            failure.error = out.error;
            failure.attemptNs = std::move(out.attemptNs);
            outcome.failures.push_back(std::move(failure));
            out.result.bench = specint95Suite()[i % nbench].profile.name;
            out.result.failed = true;
            outcome.results[i / nbench].push_back(
                std::move(out.result));
            continue;
        }
        if (row.config.metrics)
            row.config.metrics->merge(out.metrics);
        if (MispredictSink *sink = row.config.events) {
            sink->setBench(out.result.bench);
            sink->setClassifier(&out.classes);
            for (const MispredictEvent &event : out.events)
                sink->onMispredict(event);
            sink->setClassifier(nullptr);
        }
        outcome.results[i / nbench].push_back(std::move(out.result));
    }
    cellsFailed_ += outcome.failures.size();
    progress.endBatch();
    gridWallNs_ += tracer.nowNs() - gridStartNs;
    return outcome;
}

} // namespace ev8
