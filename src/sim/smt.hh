/**
 * @file
 * Simultaneous-multithreading simulation (Section 3).
 *
 * The EV8 was an SMT processor; Section 3 argues that global-history
 * prediction is the SMT-compatible choice: each thread keeps its own
 * (cheap) global history register while sharing the predictor tables,
 * whereas local-history schemes see both their history and prediction
 * tables polluted by independent threads.
 *
 * This module interleaves several traces fetch-block by fetch-block
 * (round-robin, two blocks per cycle as on the EV8) into one shared
 * predictor, maintaining either per-thread history state (the EV8
 * design) or a single naively shared history (the straw man), and
 * reports per-thread accuracy. The paper's evaluation section contains
 * no SMT data -- this is the repository's quantitative extension of the
 * Section 3 argument, not a figure reproduction.
 */

#ifndef EV8_SIM_SMT_HH
#define EV8_SIM_SMT_HH

#include <vector>

#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace ev8
{

/** Per-thread outcome of an SMT run. */
struct SmtThreadResult
{
    std::string name;
    SimResult sim;
};

/** SMT run configuration. */
struct SmtConfig
{
    SimConfig sim;                 //!< information-vector configuration

    /**
     * Per-thread history registers and path state (the EV8 design:
     * "a global history register must be maintained per thread").
     * When false, all threads share one history -- the pollution straw
     * man, for comparison.
     */
    bool perThreadHistory = true;
};

/**
 * Runs the given traces as simultaneous threads over ONE shared
 * predictor instance (tables are shared; that is the point). Threads
 * are interleaved round-robin one fetch block at a time; a thread that
 * runs out of trace simply drops out. Immediate update, as everywhere.
 */
std::vector<SmtThreadResult> simulateSmt(
    const std::vector<const Trace *> &threads,
    ConditionalBranchPredictor &predictor, const SmtConfig &config);

} // namespace ev8

#endif // EV8_SIM_SMT_HH
