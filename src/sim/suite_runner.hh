/**
 * @file
 * Runs predictors over the whole synthetic SPECINT95 suite, caching
 * generated traces so a bench binary pays trace synthesis once no
 * matter how many configurations it evaluates.
 */

#ifndef EV8_SIM_SUITE_RUNNER_HH
#define EV8_SIM_SUITE_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace ev8
{

/** One benchmark's outcome for one configuration. */
struct BenchResult
{
    std::string bench;
    SimResult sim;
};

/** Builds a fresh predictor instance (cold tables) for each benchmark. */
using PredictorFactory = std::function<PredictorPtr()>;

class SuiteRunner
{
  public:
    /**
     * @param base_branches per-benchmark dynamic conditional-branch
     *        budget before the Table 2 weights are applied; defaults to
     *        branchesPerBenchmark() (EV8_BRANCHES_PER_BENCH env var).
     */
    explicit SuiteRunner(uint64_t base_branches = branchesPerBenchmark());

    size_t size() const { return specint95Suite().size(); }
    const std::string &name(size_t i) const;

    /** The i-th benchmark's trace; generated on first use and cached. */
    const Trace &trace(size_t i);

    /**
     * Simulates a fresh predictor from @p factory on every benchmark
     * under @p config. One cold predictor per benchmark, matching the
     * paper's per-trace methodology.
     */
    std::vector<BenchResult> run(const PredictorFactory &factory,
                                 const SimConfig &config);

    /** Arithmetic mean of misp/KI over a result set. */
    static double averageMispKI(const std::vector<BenchResult> &results);

  private:
    uint64_t baseBranches;
    std::vector<Trace> traces; //!< lazily filled, index-aligned to suite
};

} // namespace ev8

#endif // EV8_SIM_SUITE_RUNNER_HH
