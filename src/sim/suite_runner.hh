/**
 * @file
 * Runs predictors over the whole synthetic SPECINT95 suite. A thin
 * front over the parallel ExperimentEngine: trace synthesis goes
 * through the shared TraceCache (generated once per profile, optionally
 * persisted on disk) and every (benchmark, configuration) simulation is
 * a pool job, with results returned in suite order and observability
 * sinks merged deterministically -- a run's artifacts are byte-identical
 * whatever the worker count.
 */

#ifndef EV8_SIM_SUITE_RUNNER_HH
#define EV8_SIM_SUITE_RUNNER_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "sim/simulator.hh"
#include "sim/trace_cache.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace ev8
{

class ExperimentEngine; // sim/experiment.hh

/** One benchmark's outcome for one configuration. */
struct BenchResult
{
    std::string bench;
    SimResult sim;
};

/** Builds a fresh predictor instance (cold tables) for each benchmark. */
using PredictorFactory = std::function<PredictorPtr()>;

/**
 * One row of an experiment grid: a predictor configuration evaluated on
 * every suite benchmark. The config's metrics/events pointers name the
 * *shared* sinks the engine merges per-job results into.
 */
struct GridRow
{
    PredictorFactory factory;
    SimConfig config;
};

class SuiteRunner
{
  public:
    /**
     * @param base_branches per-benchmark dynamic conditional-branch
     *        budget before the Table 2 weights are applied; defaults to
     *        branchesPerBenchmark() (EV8_BRANCHES_PER_BENCH env var).
     * @param jobs worker threads for suite simulations; 0 picks
     *        ExperimentEngine::defaultJobs() (EV8_JOBS env var, else
     *        hardware concurrency). Results do not depend on the value.
     */
    explicit SuiteRunner(uint64_t base_branches = branchesPerBenchmark(),
                         unsigned jobs = 0);
    ~SuiteRunner();

    SuiteRunner(const SuiteRunner &) = delete;
    SuiteRunner &operator=(const SuiteRunner &) = delete;

    size_t size() const { return specint95Suite().size(); }
    const std::string &name(size_t i) const;

    /**
     * The i-th benchmark's trace; generated (or loaded from the on-disk
     * cache) on first use. Thread-safe: concurrent callers for the same
     * benchmark block until the single generation finishes.
     */
    const Trace &trace(size_t i);

    /**
     * The i-th benchmark's pre-decoded fetch-block stream -- what the
     * experiment engine actually simulates. Decoded (or loaded from the
     * on-disk cache) on first use; with a warm disk cache the trace
     * itself is never synthesized. Thread-safe like trace().
     */
    const BlockStream &blockStream(size_t i);

    /**
     * Simulates a fresh predictor from @p factory on every benchmark
     * under @p config. One cold predictor per benchmark, matching the
     * paper's per-trace methodology. Benchmarks run in parallel on the
     * engine; results are index-stable (suite order) and metric/event
     * sinks referenced by @p config receive exactly what a serial run
     * would have produced.
     */
    std::vector<BenchResult> run(const PredictorFactory &factory,
                                 const SimConfig &config);

    /**
     * Runs a whole experiment grid -- every @p rows entry over every
     * benchmark -- as one parallel batch. Returns one result vector per
     * row, each in suite order.
     */
    std::vector<std::vector<BenchResult>> runGrid(
        const std::vector<GridRow> &rows);

    /** The shared simulation engine (created on first use). */
    ExperimentEngine &engine();

    /**
     * The engine if a run already created it, else null. Lets the bench
     * harness export the engine's scheduling counters at finish() time
     * without spinning up a thread pool for a binary that never
     * simulated anything.
     */
    ExperimentEngine *engineIfCreated() { return engine_.get(); }

    /** The trace cache backing trace(). */
    TraceCache &traceCache() { return cache_; }

    uint64_t baseBranches() const { return baseBranches_; }

    /** Arithmetic mean of misp/KI over a result set. */
    static double averageMispKI(const std::vector<BenchResult> &results);

  private:
    uint64_t baseBranches_;
    unsigned jobs_; //!< requested width; 0 = engine default
    TraceCache cache_;
    std::once_flag engineOnce_;
    std::unique_ptr<ExperimentEngine> engine_;
};

} // namespace ev8

#endif // EV8_SIM_SUITE_RUNNER_HH
