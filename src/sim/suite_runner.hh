/**
 * @file
 * Runs predictors over the whole synthetic SPECINT95 suite. A thin
 * front over the parallel ExperimentEngine: trace synthesis goes
 * through the shared TraceCache (generated once per profile, optionally
 * persisted on disk) and every (benchmark, configuration) simulation is
 * a pool job, with results returned in suite order and observability
 * sinks merged deterministically -- a run's artifacts are byte-identical
 * whatever the worker count.
 */

#ifndef EV8_SIM_SUITE_RUNNER_HH
#define EV8_SIM_SUITE_RUNNER_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "sim/phase/sample_plan.hh"
#include "sim/simulator.hh"
#include "sim/trace_cache.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace ev8
{

class ExperimentEngine; // sim/experiment.hh

/** One benchmark's outcome for one configuration. */
struct BenchResult
{
    std::string bench;
    SimResult sim;

    /**
     * The cell exhausted its retries and produced no result: sim is
     * empty, the cell appears in the grid's CellFailure list, and
     * aggregates (averageMispKI, sweeps) skip it.
     */
    bool failed = false;
};

/** Builds a fresh predictor instance (cold tables) for each benchmark. */
using PredictorFactory = std::function<PredictorPtr()>;

/**
 * One row of an experiment grid: a predictor configuration evaluated on
 * every suite benchmark. The config's metrics/events pointers name the
 * *shared* sinks the engine merges per-job results into.
 */
struct GridRow
{
    PredictorFactory factory;
    SimConfig config;

    /**
     * Human-readable row name ("2Bc-gskew 512Kb", "len16", ...); feeds
     * CellFailure reports and the checkpoint grid hash. Optional --
     * anonymous rows just report by index.
     */
    std::string label;
};

/**
 * One grid cell that exhausted its retries. The grid keeps running;
 * the failure is reported here (and in the exported artifacts) instead
 * of poisoning the batch.
 */
struct CellFailure
{
    size_t row = 0;       //!< grid row index within the batch
    std::string rowLabel; //!< GridRow::label ("" when unlabelled)
    std::string bench;    //!< benchmark name of the failed cell
    unsigned attempts = 0; //!< attempts made (== retry budget)
    std::string error;    //!< what() of the final attempt's exception

    /**
     * Wall time of each attempt, in order -- shows the time lost to
     * retries, not just their count. Exported as the JSON failures
     * "attempt_ns" array (timing-dependent, masked in byte-identity
     * comparisons alongside the telemetry block).
     */
    std::vector<uint64_t> attemptNs;
};

/**
 * Everything one grid batch produced: per-row suite-ordered results
 * (failed cells carry BenchResult::failed and empty sims) plus the
 * structured failures, in submission order.
 */
struct GridOutcome
{
    std::vector<std::vector<BenchResult>> results;
    std::vector<CellFailure> failures;

    /** Cells restored from a checkpoint journal instead of re-run. */
    uint64_t resumedCells = 0;

    /** Every cell completed? */
    bool ok() const { return failures.empty(); }
};

class SuiteRunner
{
  public:
    /**
     * @param base_branches per-benchmark dynamic conditional-branch
     *        budget before the Table 2 weights are applied; defaults to
     *        branchesPerBenchmark() (EV8_BRANCHES_PER_BENCH env var).
     * @param jobs worker threads for suite simulations; 0 picks
     *        ExperimentEngine::defaultJobs() (EV8_JOBS env var, else
     *        hardware concurrency). Results do not depend on the value.
     */
    explicit SuiteRunner(uint64_t base_branches = branchesPerBenchmark(),
                         unsigned jobs = 0);
    ~SuiteRunner();

    SuiteRunner(const SuiteRunner &) = delete;
    SuiteRunner &operator=(const SuiteRunner &) = delete;

    size_t size() const { return specint95Suite().size(); }
    const std::string &name(size_t i) const;

    /**
     * The i-th benchmark's trace; generated (or loaded from the on-disk
     * cache) on first use. Thread-safe: concurrent callers for the same
     * benchmark block until the single generation finishes.
     */
    const Trace &trace(size_t i);

    /**
     * The i-th benchmark's pre-decoded fetch-block stream -- what the
     * experiment engine actually simulates. Decoded (or loaded from the
     * on-disk cache) on first use; with a warm disk cache the trace
     * itself is never synthesized. Thread-safe like trace().
     */
    const BlockStream &blockStream(size_t i);

    /**
     * Simulates a fresh predictor from @p factory on every benchmark
     * under @p config. One cold predictor per benchmark, matching the
     * paper's per-trace methodology. Benchmarks run in parallel on the
     * engine; results are index-stable (suite order) and metric/event
     * sinks referenced by @p config receive exactly what a serial run
     * would have produced. Throws std::runtime_error if any cell
     * exhausts its retries (callers wanting partial results use
     * runGrid() and inspect GridOutcome::failures).
     */
    std::vector<BenchResult> run(const PredictorFactory &factory,
                                 const SimConfig &config);

    /**
     * Runs a whole experiment grid -- every @p rows entry over every
     * benchmark -- as one parallel batch. Returns one result vector per
     * row, each in suite order, plus the structured failures of cells
     * that exhausted their retries (see ExperimentEngine::runGrid).
     * Failures also accumulate into failures() across batches.
     */
    GridOutcome runGrid(const std::vector<GridRow> &rows);

    /**
     * Every CellFailure any runGrid() batch of this runner recorded, in
     * submission order across batches. The bench harness reads this at
     * finish() time to export the failures section and pick the
     * partial-results exit code.
     */
    const std::vector<CellFailure> &failures() const { return failures_; }

    /**
     * One sampled cell's identity plus its coverage/CI summary, in
     * submission order across batches -- the artifact's
     * "sampling.cells" rows. Empty in exact mode.
     */
    struct SampledCell
    {
        std::string rowLabel;
        std::string bench;
        SampledCellInfo info;
    };

    const std::vector<SampledCell> &
    sampledCells() const
    {
        return sampledCells_;
    }

    /** Cells restored from checkpoint journals, across batches. */
    uint64_t resumedCells() const { return resumedCells_; }

    /** The shared simulation engine (created on first use). */
    ExperimentEngine &engine();

    /**
     * The engine if a run already created it, else null. Lets the bench
     * harness export the engine's scheduling counters at finish() time
     * without spinning up a thread pool for a binary that never
     * simulated anything.
     */
    ExperimentEngine *engineIfCreated() { return engine_.get(); }

    /** The trace cache backing trace(). */
    TraceCache &traceCache() { return cache_; }

    uint64_t baseBranches() const { return baseBranches_; }

    /**
     * Switches subsequent grids between exact and sampled execution.
     * An active spec makes every cell run only its benchmark's sample
     * plan windows (phase maps come from the trace cache's sidecar
     * layer; plans are built once per benchmark). The spec's budget is
     * the *suite-relative* measured-branch target: each benchmark's
     * share is scaled by its Table 2 weight exactly like the branch
     * budget itself, so `--sample-budget N` is comparable to
     * `--branches N`. Call before the first run; switching between
     * batches is allowed (plans cache per spec-independent key).
     */
    void setSampleSpec(const SampleSpec &spec) { sampleSpec_ = spec; }

    const SampleSpec &sampleSpec() const { return sampleSpec_; }

    /**
     * The i-th benchmark's stratified sample plan, or null when
     * sampling is off. Built (and its phase map loaded or computed)
     * on first use; thread-safe like trace().
     */
    const SamplePlan *samplePlan(size_t i);

    /**
     * Arithmetic mean of misp/KI over a result set, skipping failed
     * cells. NaN when every cell failed (exporters render that as
     * JSON null / CSV "--"); 0.0 on an empty set.
     */
    static double averageMispKI(const std::vector<BenchResult> &results);

  private:
    struct PlanEntry
    {
        std::once_flag once;
        SamplePlan plan;
    };

    uint64_t baseBranches_;
    unsigned jobs_; //!< requested width; 0 = engine default
    TraceCache cache_;
    std::once_flag engineOnce_;
    std::unique_ptr<ExperimentEngine> engine_;
    std::vector<CellFailure> failures_; //!< cumulative across batches
    std::vector<SampledCell> sampledCells_; //!< cumulative, in order
    uint64_t resumedCells_ = 0;
    SampleSpec sampleSpec_;
    std::mutex planMutex_; //!< guards planEntries_ map shape only
    std::vector<std::unique_ptr<PlanEntry>> planEntries_;
};

} // namespace ev8

#endif // EV8_SIM_SUITE_RUNNER_HH
