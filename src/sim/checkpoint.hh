/**
 * @file
 * Checkpoint/resume journal for experiment grids.
 *
 * A long grid run that dies (OOM kill, preemption, ctrl-C) should not
 * throw away its finished cells. The engine journals every completed
 * cell's full job output -- BenchResult, private MetricRegistry and
 * buffered misprediction events -- to a per-batch JSONL file under
 * EV8_CHECKPOINT_DIR. A re-run of the same grid loads the journal,
 * skips the finished cells, and merges restored and fresh outputs in
 * the same submission order, so the resumed run's artifacts are
 * byte-identical to an uninterrupted run's (the existing determinism
 * guarantee, extended across process deaths).
 *
 * File naming and staleness: the file name carries a content hash over
 * everything that identifies the grid -- batch index, workload profile
 * hashes and branch budgets, per-row label, predictor name and storage
 * bits, and every SimConfig field -- plus kFormatVersion. A different
 * grid (or a format bump) maps to a different file; a journal whose
 * header disagrees with the expected hash/cell-count is discarded and
 * regenerated, never trusted.
 *
 * Durability model: records are appended one flushed line at a time,
 * and the loader skips unparseable lines, so a record torn by a crash
 * costs exactly that cell (it is simply re-run). Numeric fields
 * round-trip exactly: u64 values are serialized as decimal strings
 * (JSON numbers lose precision past 2^53) and doubles as the hex bit
 * pattern of their IEEE-754 representation -- restoring a cell
 * reproduces the bytes a live run would have merged.
 *
 * Journal files persist after a successful run: re-running a finished
 * grid restores every cell (cells that *failed* are never journaled,
 * so they are retried). The files encode simulation semantics only by
 * version/hash, so clear EV8_CHECKPOINT_DIR after changing predictor
 * or simulator code the hash cannot see.
 */

#ifndef EV8_SIM_CHECKPOINT_HH
#define EV8_SIM_CHECKPOINT_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "sim/suite_runner.hh"

namespace ev8
{

class GridCheckpoint
{
  public:
    /**
     * Bump when the record encoding or the grid-hash recipe changes:
     * journals from older builds must be discarded, not misread.
     */
    static constexpr unsigned kFormatVersion = 1;

    /** EV8_CHECKPOINT_DIR, or "" (checkpointing disabled). */
    static std::string defaultDir();

    /** One journaled cell, restored. */
    struct RestoredCell
    {
        BenchResult result;
        MetricRegistry metrics;
        std::vector<MispredictEvent> events;
    };

    /**
     * @param dir checkpoint directory; "" disables the journal (load()
     *        returns nothing, append() is a no-op).
     * @param grid_hash content hash identifying this exact grid batch.
     * @param cells total cell count of the batch (sanity-checked
     *        against the journal header).
     */
    GridCheckpoint(std::string dir, uint64_t grid_hash, size_t cells);

    GridCheckpoint(const GridCheckpoint &) = delete;
    GridCheckpoint &operator=(const GridCheckpoint &) = delete;

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    /**
     * Loads the journal (if any) and opens it for appending. Returns
     * the restored cells keyed by cell index. A missing file starts a
     * fresh journal; a header mismatch (foreign grid, older format) or
     * an unreadable file discards the journal and starts fresh;
     * unparseable record lines (torn appends, injected corruption) are
     * skipped individually. Never throws: any journal problem degrades
     * to "those cells re-run". Call once, before append().
     */
    std::map<size_t, RestoredCell> load();

    /**
     * Journals one completed cell: a single flushed JSONL record.
     * Thread-safe (workers call it as cells finish; record order in
     * the file does not matter, the loader keys by cell index). Write
     * failures warn once and disable further journaling -- they never
     * fail the run.
     */
    void append(size_t cell, const BenchResult &result,
                const MetricRegistry &metrics,
                const std::vector<MispredictEvent> &events);

  private:
    void disableWrites(const std::string &reason);

    std::string path_;
    uint64_t hash_ = 0;
    size_t cells_ = 0;

    std::mutex mutex_; //!< guards out_ and warned_
    std::ofstream out_;
    bool writable_ = false;
    bool warned_ = false;
};

/**
 * Encodes one completed cell's full output -- BenchResult, private
 * MetricRegistry and buffered misprediction events -- as a single JSONL
 * record (no trailing newline). Scalars round-trip exactly (u64 as
 * decimal strings, doubles as IEEE-754 bit-pattern hex), which is why
 * the serve wire protocol reuses this codec verbatim: a cell shipped to
 * a client and merged there produces the same bytes a local merge
 * would.
 */
std::string encodeCellRecord(size_t cell, const BenchResult &result,
                             const MetricRegistry &metrics,
                             const std::vector<MispredictEvent> &events);

/**
 * Parses one encodeCellRecord() line into @p out and returns the cell
 * index. Throws std::runtime_error on any malformation (including a
 * cell index >= @p cells).
 */
size_t decodeCellRecord(const std::string &line, size_t cells,
                        GridCheckpoint::RestoredCell &out);

} // namespace ev8

#endif // EV8_SIM_CHECKPOINT_HH
