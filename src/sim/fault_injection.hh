/**
 * @file
 * Deterministic fault injection for the experiment engine and its
 * storage layers.
 *
 * Robustness claims ("a failing cell no longer aborts the grid", "a
 * torn cache write regenerates cleanly", "a killed run resumes
 * byte-identically") are only testable if faults can be produced on
 * demand, at an exact site, on an exact run -- and reproduced. The
 * injector provides that: named fault points compiled into the
 * production code paths, armed by the EV8_FAULT_SPEC environment
 * variable, firing deterministically by per-key occurrence count (and
 * optionally by a seeded hash when probabilistic firing is asked for).
 * With no spec armed every hook is a single vector-emptiness check.
 *
 * Spec grammar (comma-separated entries, no whitespace):
 *
 *     EV8_FAULT_SPEC := entry (',' entry)*
 *     entry          := "seed=" N
 *                     | point ['/' keysub] ['@' first] ['+' count] ['~' prob]
 *     point          := job | die | cache_read | cache_write
 *                     | cache_rename | cache_short_write
 *                     | ckpt_read | ckpt_write | ckpt_corrupt
 *                     | session_drop | ring_stall
 *                     | sidecar_read | sidecar_write
 *                     | conn_drop | slow_peer
 *                     | partial_write | garbage_frame
 *
 *  - keysub selects which keys the entry applies to: a substring match
 *    against the site's key (a grid cell key like "g0/r2/gcc", or a
 *    cache/checkpoint file path). A keysub starting with '=' requires
 *    an exact key match. Empty matches every key.
 *  - first (default 1) is the 1-based occurrence at which the entry
 *    starts firing; occurrences are counted per (entry, exact key), so
 *    firing is independent of thread interleaving.
 *  - count (default 1) is how many consecutive occurrences fire; '*'
 *    means every occurrence from @p first on (a permanent fault).
 *  - prob in [0,1] gates each would-fire occurrence by a hash of
 *    (seed, entry, key, occurrence) -- deterministic pseudo-randomness,
 *    identical across runs and thread schedules.
 *
 * Examples:
 *
 *     job/=g0/r0/gcc+*          the (row 0, gcc) cell of the first grid
 *                               batch fails permanently
 *     cache_read/+2             the first two attempted cache-file reads
 *                               (any key) fail
 *     die/=g3/r0/compress@1     SIGKILL the process when batch 3 first
 *                               schedules (row 0, compress)
 *     seed=7,job~0.1            every cell fails with probability 0.1
 *
 * What fires where:
 *
 *  - job:               the experiment engine throws InjectedFault
 *                       before running the cell (a fused group throws
 *                       if any of its lanes' keys match, which forces
 *                       the per-cell fallback)
 *  - die:               the engine prints one stderr line and raises
 *                       SIGKILL -- a real, unhandled kill, for
 *                       checkpoint/resume tests
 *  - cache_read:        TraceCache fails an attempted cache-file read
 *  - cache_write:       TraceCache fails a cache-file write
 *  - cache_short_write: TraceCache truncates the temp file to half its
 *                       size before the atomic rename (a torn write
 *                       that survives the rename discipline)
 *  - cache_rename:      TraceCache fails after writing the temp file
 *                       but before renaming it (a crash-before-rename,
 *                       leaving .tmp litter)
 *  - ckpt_read:         GridCheckpoint fails loading its journal
 *  - ckpt_write:        GridCheckpoint fails appending a record
 *  - ckpt_corrupt:      GridCheckpoint writes a torn (half) record
 *  - session_drop:      a served ClientSession's cell body throws
 *                       (consulted only for served cells, so batch
 *                       grids never burn its occurrences); keys are the
 *                       same "g<batch>/r<row>/<bench>" cell keys
 *  - ring_stall:        the serve transport's producer stalls for a
 *                       deterministic pause before pushing the matched
 *                       packet -- a timing-only fault (artifacts are
 *                       unchanged; backpressure/latency paths get
 *                       exercised); keys are "<session>/p<packet#>"
 *  - sidecar_read:      TraceCache fails an attempted phase-map sidecar
 *                       read (the map is rebuilt from the stream)
 *  - sidecar_write:     TraceCache fails a phase-map sidecar write (the
 *                       in-memory map stays valid; only caching is lost)
 *  - conn_drop:         the serve daemon closes the client connection
 *                       after handling the matched request, before the
 *                       reply is written -- the peer simply vanishes;
 *                       keys are "<session>/<op>" ("-" when the
 *                       request names no session)
 *  - slow_peer:         the serve daemon sleeps for a deterministic
 *                       pause before writing the matched reply -- a
 *                       glacial network, timing-only; same keys as
 *                       conn_drop
 *  - partial_write:     the serve transport producer truncates the
 *                       matched frame's payload to half before pushing
 *                       it (a torn frame; StreamAssembler detects the
 *                       truncation); keys are "<session>/p<packet#>"
 *  - garbage_frame:     the serve transport producer corrupts the
 *                       matched frame, type-dependently so every
 *                       assembler defense is reachable: a Hello frame
 *                       gets byte garbage (parse failure), a Blocks
 *                       frame is dropped with later seqs rewritten (a
 *                       totals mismatch at End), an End frame gets a
 *                       perturbed seq (reorder detection); keys are
 *                       "<session>/p<packet#>"
 *
 * Note that the engine's fused path consumes one occurrence per armed
 * key at the fused attempt and more during the per-cell fallback and
 * retries: a one-shot "job" fault is healed by the retry machinery (by
 * design -- that is the transient-fault scenario); use '+*' to make a
 * cell fail permanently.
 */

#ifndef EV8_SIM_FAULT_INJECTION_HH
#define EV8_SIM_FAULT_INJECTION_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ev8
{

/** The exception an armed "job"/"cache_*"/"ckpt_*" fault point throws. */
class InjectedFault : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The named fault points compiled into the production paths. */
enum class FaultPoint
{
    Job,             //!< experiment cell body
    Die,             //!< SIGKILL the process (checkpoint/resume tests)
    CacheRead,       //!< trace/stream cache file read
    CacheWrite,      //!< trace/stream cache file write
    CacheRename,     //!< crash between temp write and atomic rename
    CacheShortWrite, //!< truncate the temp file before the rename
    CkptRead,        //!< checkpoint journal load
    CkptWrite,       //!< checkpoint record append
    CkptCorrupt,     //!< checkpoint record torn mid-write
    SessionDrop,     //!< served session cell body (serve/server.hh)
    RingStall,       //!< serve transport producer pause (timing only)
    SidecarRead,     //!< phase-map sidecar file read (trace cache)
    SidecarWrite,    //!< phase-map sidecar file write (trace cache)
    ConnDrop,        //!< serve daemon drops the client connection
    SlowPeer,        //!< serve daemon delays one reply (timing only)
    PartialWrite,    //!< serve transport frame truncated (torn frame)
    GarbageFrame,    //!< serve transport frame corrupted
};

class FaultInjector
{
  public:
    /** An injector with no armed faults (every hook is a no-op). */
    FaultInjector() = default;

    /**
     * Parses @p spec (see file comment). Throws std::invalid_argument
     * with a human-readable message on malformed input. An empty spec
     * arms nothing.
     */
    explicit FaultInjector(const std::string &spec);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Any entries armed? The hot-path fast-out. */
    bool enabled() const { return !entries_.empty(); }

    /**
     * Counts one occurrence of @p key at @p point against every
     * matching entry and reports whether any of them fires. Occurrence
     * counters are per (entry, exact key), so the answer depends only
     * on how many times this (point, key) pair has been consulted --
     * never on thread scheduling. Thread-safe.
     */
    bool fires(FaultPoint point, const std::string &key);

    /** Throws InjectedFault when fires(point, key). */
    void maybeThrow(FaultPoint point, const std::string &key);

    /**
     * The Die point: when fires(Die, key), prints one stderr line and
     * raises SIGKILL -- the process dies unhandled, exactly like an OOM
     * kill or a cluster preemption.
     */
    void maybeKill(const std::string &key);

    /** The spec spelling of @p point ("job", "cache_read", ...). */
    static const char *pointName(FaultPoint point);

    /**
     * The process-wide injector, parsed from EV8_FAULT_SPEC. A
     * malformed spec is a hard usage error: message to stderr, exit 2
     * (matching EV8_JOBS). Re-reads the environment variable on each
     * call and re-parses when it changed, so tests can re-arm between
     * runs; do not change EV8_FAULT_SPEC while a grid is in flight.
     */
    static FaultInjector &global();

  private:
    struct Entry
    {
        FaultPoint point = FaultPoint::Job;
        std::string keySub;    //!< "" = any; leading '=' = exact match
        uint64_t first = 1;    //!< 1-based occurrence that starts firing
        uint64_t count = 1;    //!< consecutive firing occurrences
        bool permanent = false; //!< '+*': fire forever from @p first
        double prob = 1.0;     //!< per-occurrence firing probability
    };

    bool matches(const Entry &entry, FaultPoint point,
                 const std::string &key) const;

    std::vector<Entry> entries_;
    uint64_t seed_ = 0;

    std::mutex mutex_; //!< guards occurrences_
    std::map<std::pair<size_t, std::string>, uint64_t> occurrences_;
};

} // namespace ev8

#endif // EV8_SIM_FAULT_INJECTION_HH
