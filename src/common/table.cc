#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ev8
{

std::string
fmt(double value, int precision)
{
    if (!std::isfinite(value))
        return "--";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::rowValues(const std::string &label,
                     const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells{label};
    for (double v : values)
        cells.push_back(fmt(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cols; ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            const size_t pad = width[i] - cell.size();
            if (i == 0) {
                out << cell << std::string(pad, ' ');
            } else {
                out << "  " << std::string(pad, ' ') << cell;
            }
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < cols; ++i)
            total += width[i] + (i ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

std::string
renderBarChart(const std::string &title,
               const std::vector<std::string> &labels,
               const std::vector<double> &values, int width)
{
    std::ostringstream out;
    out << title << '\n';

    double max_value = 0.0;
    size_t label_width = 0;
    for (double v : values) {
        if (std::isfinite(v))
            max_value = std::max(max_value, v);
    }
    for (const auto &l : labels)
        label_width = std::max(label_width, l.size());

    for (size_t i = 0; i < labels.size() && i < values.size(); ++i) {
        const double v = values[i];
        const int len = max_value > 0.0 && std::isfinite(v)
            ? static_cast<int>(v / max_value * width + 0.5) : 0;
        out << "  " << labels[i]
            << std::string(label_width - labels[i].size(), ' ') << " |"
            << std::string(len, '#') << ' ' << fmt(v, 3) << '\n';
    }
    return out.str();
}

} // namespace ev8
