/**
 * @file
 * Bit-manipulation helpers shared by every predictor and index function.
 *
 * All predictor index computations in this project are expressed over
 * uint64_t "bit vectors". These helpers keep those computations readable
 * and auditable against the equations of Section 7 of the paper.
 */

#ifndef EV8_COMMON_BITS_HH
#define EV8_COMMON_BITS_HH

#include <cassert>
#include <cstdint>

namespace ev8
{

/** Returns a mask with the low @p n bits set. @p n must be <= 64. */
constexpr uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/** Extracts bit @p pos of @p value (0 = least significant). */
constexpr uint64_t
bit(uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/**
 * Extracts the bit field [hi:lo] of @p value, inclusive on both ends,
 * mirroring the (y6,y5)-style notation of the paper.
 */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & mask(hi - lo + 1);
}

/** Inserts @p field into bits [hi:lo] of @p base (field must fit). */
constexpr uint64_t
insertBits(uint64_t base, unsigned hi, unsigned lo, uint64_t field)
{
    const uint64_t m = mask(hi - lo + 1);
    return (base & ~(m << lo)) | ((field & m) << lo);
}

/** Rotate-left of the low @p n bits of @p value (result stays n-bit). */
constexpr uint64_t
rotl(uint64_t value, unsigned amount, unsigned n)
{
    value &= mask(n);
    amount %= n;
    if (amount == 0)
        return value;
    return ((value << amount) | (value >> (n - amount))) & mask(n);
}

/** Rotate-right of the low @p n bits of @p value. */
constexpr uint64_t
rotr(uint64_t value, unsigned amount, unsigned n)
{
    amount %= n;
    return rotl(value, n - amount, n);
}

/** XOR-reduces @p value: returns the parity of all its bits. */
constexpr uint64_t
parity(uint64_t value)
{
    value ^= value >> 32;
    value ^= value >> 16;
    value ^= value >> 8;
    value ^= value >> 4;
    value ^= value >> 2;
    value ^= value >> 1;
    return value & 1;
}

/**
 * XOR-folds @p value down to @p n bits by repeatedly XORing the
 * overflowing high part onto the low part. Used to compress wide
 * (address, history) vectors into table indices.
 */
constexpr uint64_t
xorFold(uint64_t value, unsigned n)
{
    assert(n > 0 && n < 64);
    uint64_t folded = 0;
    while (value) {
        folded ^= value & mask(n);
        value >>= n;
    }
    return folded;
}

/** True if @p value is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(uint64_t value)
{
    assert(isPowerOf2(value));
    unsigned n = 0;
    while (value >>= 1)
        ++n;
    return n;
}

/**
 * One step of an n-bit Galois LFSR-style invertible map, the "H" skewing
 * function of Seznec & Bodin's skewed-associative caches [17]: shift right
 * by one, feeding bit0 XOR bit(n-1) back into the top bit. Being a
 * bijection on n-bit values, it permutes indices without losing entropy.
 */
constexpr uint64_t
skewH(uint64_t value, unsigned n)
{
    assert(n >= 2 && n < 64);
    const uint64_t fb = bit(value, 0) ^ bit(value, n - 1);
    return ((value & mask(n)) >> 1) | (fb << (n - 1));
}

/**
 * The inverse bijection of skewH: shift left by one, reconstructing the
 * old bit0 from the wrapped feedback bit.
 */
constexpr uint64_t
skewHInv(uint64_t value, unsigned n)
{
    assert(n >= 2 && n < 64);
    const uint64_t top = bit(value, n - 1);
    uint64_t shifted = (value << 1) & mask(n);
    // old bit0 = top XOR old bit(n-1); old bit(n-1) is now bit 0 slot
    // of 'shifted' candidates: old value v satisfied
    //   skewH(v) = (v >> 1) | ((v0 ^ v_{n-1}) << (n-1))
    // so v_{n-1} = bit(value, n-2) when n > 2 ... reconstruct directly:
    // bits n-1..1 of v are bits n-2..0 of value; v0 = top ^ v_{n-1}.
    const uint64_t vTop = n >= 2 ? bit(value, n - 2) : 0;
    return (shifted | (top ^ vTop)) & mask(n);
}

/** Applies skewH @p times times. */
constexpr uint64_t
skewHPow(uint64_t value, unsigned times, unsigned n)
{
    for (unsigned i = 0; i < times; ++i)
        value = skewH(value, n);
    return value;
}

/** Applies skewHInv @p times times. */
constexpr uint64_t
skewHInvPow(uint64_t value, unsigned times, unsigned n)
{
    for (unsigned i = 0; i < times; ++i)
        value = skewHInv(value, n);
    return value;
}

} // namespace ev8

#endif // EV8_COMMON_BITS_HH
