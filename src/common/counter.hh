/**
 * @file
 * Saturating counters, including the split prediction/hysteresis view
 * used by the EV8 predictor's physically separate arrays (Section 4.3).
 */

#ifndef EV8_COMMON_COUNTER_HH
#define EV8_COMMON_COUNTER_HH

#include <cassert>
#include <cstdint>

namespace ev8
{

/**
 * A classic n-bit saturating up/down counter. The prediction is the most
 * significant bit (>= half range predicts taken).
 */
class SaturatingCounter
{
  public:
    explicit SaturatingCounter(unsigned num_bits = 2, uint8_t initial = 0)
        : numBits(num_bits), maxValue((1u << num_bits) - 1), value(initial)
    {
        assert(num_bits >= 1 && num_bits <= 7);
        assert(initial <= maxValue);
    }

    /** Most-significant-bit prediction: true = predict taken. */
    bool taken() const { return value > (maxValue >> 1); }

    /** True when the counter is at either extreme (strong state). */
    bool
    isStrong() const
    {
        return value == 0 || value == maxValue;
    }

    /** Counts toward taken (saturating). */
    void
    increment()
    {
        if (value < maxValue)
            ++value;
    }

    /** Counts toward not-taken (saturating). */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Moves the counter toward outcome @p taken. */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    uint8_t raw() const { return value; }
    void set(uint8_t v) { assert(v <= maxValue); value = v; }
    unsigned bits() const { return numBits; }

  private:
    unsigned numBits;
    uint8_t maxValue;
    uint8_t value;
};

/**
 * A 2-bit counter stored as two independent bits: a prediction bit and a
 * hysteresis bit, matching the EV8 split prediction/hysteresis arrays.
 *
 * Mapping onto the classic 2-bit counter states (value = 2*pred + hyst):
 *   00 strong not-taken, 01 weak not-taken, 10 weak taken, 11 strong taken.
 *
 * Semantics of the partial-update operations (Section 4.3):
 *  - "strengthen": push the hysteresis bit toward the current prediction
 *    (only the hysteresis array is written).
 *  - "update on mispredict": classic 2-bit counter step; weak states flip
 *    the prediction bit, strong states first weaken.
 */
struct SplitCounter
{
    bool prediction = false; //!< the bit held in the prediction array
    bool hysteresis = false; //!< the bit held in the hysteresis array

    /** Predicted direction. */
    bool taken() const { return prediction; }

    /** True when hysteresis backs the prediction (strong state). */
    bool isStrong() const { return prediction == hysteresis; }

    /**
     * Strengthen the counter in its current direction: written on correct
     * predictions under partial update; touches only the hysteresis bit.
     */
    void strengthen() { hysteresis = prediction; }

    /**
     * Full 2-bit-counter step toward @p taken. Equivalent to
     * increment/decrement of the classic counter with the encoding above.
     */
    void
    update(bool taken)
    {
        if (prediction == taken) {
            hysteresis = prediction;       // move to strong
        } else if (isStrong()) {
            hysteresis = !prediction;      // strong -> weak, keep direction
        } else {
            prediction = taken;            // weak -> flip direction
            hysteresis = !taken;           // lands in the weak state
        }
    }

    /** The classic 2-bit counter value in [0,3] for checking/debug. */
    uint8_t
    raw() const
    {
        // 0: strong NT, 1: weak NT, 2: weak T, 3: strong T.
        return (prediction ? 2 : 1) + (prediction == hysteresis
                                       ? (prediction ? 1 : -1) : 0);
    }

    bool operator==(const SplitCounter &) const = default;
};

} // namespace ev8

#endif // EV8_COMMON_COUNTER_HH
