#include "common/simd.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ev8
{
namespace simd
{

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool has = __builtin_cpu_supports("avx2") != 0;
    return has;
#else
    return false;
#endif
}

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Off:
        return "off";
      case Backend::Scalar:
        return "scalar";
      case Backend::Avx2:
        return "avx2";
    }
    return "unknown";
}

unsigned
backendLanes(Backend backend)
{
    return backend == Backend::Off ? 1u : 4u;
}

Backend
activeBackend()
{
    const char *env = std::getenv("EV8_SIMD");
    if (env == nullptr) {
        // cpuid default: the intrinsic path when both build and CPU
        // can run it, otherwise the tuned scalar steppers. The
        // emulated vector backend is never the default -- it exists
        // for determinism checks and A/B runs, not for speed.
        return builtWithAvx2() && cpuHasAvx2() ? Backend::Avx2
                                               : Backend::Off;
    }
    if (std::strcmp(env, "0") == 0)
        return Backend::Off;
    if (std::strcmp(env, "scalar") == 0)
        return Backend::Scalar;
    if (std::strcmp(env, "avx2") == 0) {
        if (!builtWithAvx2()) {
            std::fprintf(stderr, "EV8_SIMD: 'avx2' requested but this "
                                 "build has no AVX2 backend\n");
            std::exit(2);
        }
        if (!cpuHasAvx2()) {
            std::fprintf(stderr, "EV8_SIMD: 'avx2' requested but this "
                                 "CPU does not report AVX2\n");
            std::exit(2);
        }
        return Backend::Avx2;
    }
    std::fprintf(stderr,
                 "EV8_SIMD: invalid value '%s'; expected 0, scalar or "
                 "avx2\n",
                 env);
    std::exit(2);
}

} // namespace simd
} // namespace ev8
