#include "common/env.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ev8
{

uint64_t
parseStrictU64(const std::string &text, uint64_t lo, uint64_t hi)
{
    if (text.empty())
        throw std::invalid_argument("empty value; expected an integer");
    for (const char ch : text) {
        if (ch < '0' || ch > '9') {
            throw std::invalid_argument("invalid value '" + text
                                        + "'; expected an integer");
        }
    }
    // Digits only from here on: strtoull cannot reject, only saturate,
    // which the range check catches (hi < ULLONG_MAX in every caller).
    const unsigned long long v = std::strtoull(text.c_str(), nullptr, 10);
    if (v < lo || v > hi) {
        throw std::invalid_argument(
            "value '" + text + "' out of range [" + std::to_string(lo)
            + ", " + std::to_string(hi) + "]");
    }
    return v;
}

uint64_t
strictEnvU64(const char *name, uint64_t lo, uint64_t hi,
             uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    try {
        return parseStrictU64(env, lo, hi);
    } catch (const std::invalid_argument &err) {
        std::fprintf(stderr, "%s: %s\n", name, err.what());
        std::exit(2);
    }
}

bool
strictEnvBool(const char *name, bool fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    if (env[0] != '\0' && env[1] == '\0') {
        if (env[0] == '0')
            return false;
        if (env[0] == '1')
            return true;
    }
    std::fprintf(stderr,
                 "%s: invalid value '%s'; expected 0 or 1\n", name, env);
    std::exit(2);
}

} // namespace ev8
