/**
 * @file
 * Stable content hashing for cache and checkpoint keys.
 *
 * FNV-1a over explicitly fed fields: the caller enumerates every field
 * that can influence the derived artifact, so two keys that could name
 * different content hash differently, and the hash is identical across
 * platforms and process runs (no pointer values, no iteration over
 * unordered containers). Used by the trace cache (profile -> .ev8t/.ev8s
 * file names) and the experiment checkpoint (grid -> journal file name).
 */

#ifndef EV8_COMMON_HASH_HH
#define EV8_COMMON_HASH_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace ev8
{

/** FNV-1a over explicitly fed fields; stable across platforms. */
class ContentHash
{
  public:
    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ULL;
        }
    }

    void
    u64(uint64_t v)
    {
        unsigned char buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<unsigned char>(v >> (i * 8));
        bytes(buf, sizeof(buf));
    }

    void
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    uint64_t value() const { return h; }

  private:
    uint64_t h = 1469598103934665603ULL;
};

} // namespace ev8

#endif // EV8_COMMON_HASH_HH
