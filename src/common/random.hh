/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every random decision in the repository flows from a named 64-bit seed
 * through this generator, so every table and figure regenerates
 * bit-identically across runs and machines.
 */

#ifndef EV8_COMMON_RANDOM_HH
#define EV8_COMMON_RANDOM_HH

#include <cassert>
#include <cstdint>

namespace ev8
{

/**
 * xoroshiro128++ by Blackman & Vigna: small, fast, and good enough for
 * workload synthesis (we need reproducibility, not cryptography).
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoroshiro authors.
        uint64_t z = seed;
        for (auto &word : state) {
            z += 0x9e3779b97f4a7c15ULL;
            uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
            word = t ^ (t >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t s0 = state[0];
        uint64_t s1 = state[1];
        const uint64_t result = rotl64(s0 + s1, 17) + s0;
        s1 ^= s0;
        state[0] = rotl64(s0, 49) ^ s1 ^ (s1 << 21);
        state[1] = rotl64(s1, 28);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound != 0);
        // Lemire-style rejection-free mapping is fine for our use; a tiny
        // modulo bias is irrelevant to workload synthesis, but we avoid
        // it anyway via 128-bit multiply.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return next() < static_cast<uint64_t>(
            p * 18446744073709551615.0);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

  private:
    static uint64_t
    rotl64(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[2];
};

} // namespace ev8

#endif // EV8_COMMON_RANDOM_HH
