/**
 * @file
 * Branch-history shift registers.
 *
 * Three kinds of history feed the predictors in this repository:
 *  - conventional per-branch global history ("ghist" in Section 8.3),
 *  - block-compressed history with optional path bit ("lghist", Section 5.1),
 *  - path history: low-order PC bits of recent fetch blocks (Section 5.2).
 *
 * All are modelled as uint64_t shift registers; the longest history any
 * experiment uses is well below 64 bits (asserted at the consumer side).
 */

#ifndef EV8_COMMON_HISTORY_HH
#define EV8_COMMON_HISTORY_HH

#include <cassert>
#include <cstdint>

#include "common/bits.hh"

namespace ev8
{

/**
 * A shift register of branch outcomes (or lghist bits). Bit 0 is the most
 * recent entry, matching the h0..hN numbering of Section 7.
 */
class HistoryRegister
{
  public:
    /** Shifts in one bit as the new most-recent entry (h0). */
    void
    push(bool value)
    {
        word = (word << 1) | static_cast<uint64_t>(value);
    }

    /** The @p n most recent bits (h(n-1)..h0). */
    uint64_t
    low(unsigned n) const
    {
        assert(n <= 64);
        return n == 64 ? word : word & mask(n);
    }

    /** Bit @p i, with i = 0 the most recent (the paper's h_i). */
    bool get(unsigned i) const { return bit(word, i); }

    /** Full 64-bit backing word (most recent in bit 0). */
    uint64_t raw() const { return word; }

    void clear() { word = 0; }
    void setRaw(uint64_t value) { word = value; }

    bool operator==(const HistoryRegister &) const = default;

  private:
    uint64_t word = 0;
};

/**
 * Read-only bundle of the history state handed to a predictor at lookup
 * time. The simulator owns and advances the registers; predictors only
 * consume the view. Different predictors read different fields:
 * conventional global-history predictors use @ref ghist, the EV8-family
 * predictors use @ref indexHist (which the simulator points at either
 * ghist or an appropriately aged lghist, per the experiment's
 * information-vector configuration) plus the path fields.
 */
struct HistoryView
{
    /** Conventional per-conditional-branch global history. */
    uint64_t ghist = 0;

    /**
     * The history the predictor's index functions should consume. For
     * baseline predictors this equals ghist; for EV8 configurations it is
     * the (possibly 3-blocks-old) lghist.
     */
    uint64_t indexHist = 0;

    /** Address of fetch block Z (the most recent completed block). */
    uint64_t pathZ = 0;

    /** Address of fetch block Y (two blocks back). */
    uint64_t pathY = 0;

    /** Address of fetch block X (three blocks back). */
    uint64_t pathX = 0;
};

} // namespace ev8

#endif // EV8_COMMON_HISTORY_HH
