#include "common/stats.hh"

#include <cstdio>

namespace ev8
{

std::string
PredictionStats::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%llu lookups, %llu mispredicts (%.3f%% of branches, "
                  "%.3f misp/KI)",
                  static_cast<unsigned long long>(lookups_),
                  static_cast<unsigned long long>(mispredictions_),
                  100.0 * mispRate(), mispKI());
    return buf;
}

} // namespace ev8
