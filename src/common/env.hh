/**
 * @file
 * Strict environment-knob parsing, shared by every EV8_* switch.
 *
 * The --jobs discipline (strict digits-only parsing, a hard usage error
 * on garbage instead of a silent fallback) applies to environment knobs
 * too: a typo like EV8_FUSED=ture or EV8_BRANCHES_PER_BENCH=1e6 must
 * not silently select a default the user did not ask for. Every helper
 * here either returns the parsed value or prints one clear stderr
 * diagnostic naming the variable and exits with the usage status (2),
 * matching EV8_JOBS / EV8_RETRY_MAX.
 */

#ifndef EV8_COMMON_ENV_HH
#define EV8_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace ev8
{

/**
 * Strictly parses an unsigned decimal: digits only, value in
 * [lo, hi]. Throws std::invalid_argument with a human-readable message
 * on anything else (empty, signs, garbage, out of range).
 */
uint64_t parseStrictU64(const std::string &text, uint64_t lo,
                        uint64_t hi);

/**
 * Reads the integer environment knob @p name: unset returns @p fallback,
 * a valid value in [lo, hi] parses, and a set-but-invalid value is a
 * hard usage error (one stderr line naming the variable, exit 2).
 */
uint64_t strictEnvU64(const char *name, uint64_t lo, uint64_t hi,
                      uint64_t fallback);

/**
 * Reads the boolean environment knob @p name: unset returns
 * @p fallback, "0" is false, "1" is true, and anything else is a hard
 * usage error (exit 2) -- never a silent fallback.
 */
bool strictEnvBool(const char *name, bool fallback);

} // namespace ev8

#endif // EV8_COMMON_ENV_HH
