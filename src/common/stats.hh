/**
 * @file
 * Statistics accumulators for branch-prediction experiments.
 *
 * The paper's metric is mispredictions per 1000 instructions (misp/KI),
 * computed over traces whose instruction counts we track alongside the
 * conditional-branch stream.
 */

#ifndef EV8_COMMON_STATS_HH
#define EV8_COMMON_STATS_HH

#include <cstdint>
#include <string>

namespace ev8
{

/**
 * Running tally of predictions for one (predictor, benchmark) pair.
 */
class PredictionStats
{
  public:
    /** Records one conditional-branch prediction outcome. */
    void
    record(bool predicted_taken, bool actual_taken)
    {
        ++lookups_;
        if (predicted_taken != actual_taken)
            ++mispredictions_;
    }

    /**
     * Records a batch of outcomes at once: @p lookups predictions of
     * which @p mispredictions were wrong. Used by the fused simulation
     * kernel, which tallies lane mispredictions in a dense local array
     * and folds them in here after the walk -- equivalent to the same
     * number of record() calls.
     */
    void
    tally(uint64_t lookups, uint64_t mispredictions)
    {
        lookups_ += lookups;
        mispredictions_ += mispredictions;
    }

    /** Declares how many instructions the measured trace represents. */
    void setInstructions(uint64_t count) { instructions_ = count; }

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredictions() const { return mispredictions_; }
    uint64_t instructions() const { return instructions_; }

    /** Mispredictions per 1000 instructions, the paper's metric. */
    double
    mispKI() const
    {
        return instructions_ == 0
            ? 0.0
            : 1000.0 * static_cast<double>(mispredictions_)
                  / static_cast<double>(instructions_);
    }

    /** Misprediction rate over conditional branches, in [0,1]. */
    double
    mispRate() const
    {
        return lookups_ == 0
            ? 0.0
            : static_cast<double>(mispredictions_)
                  / static_cast<double>(lookups_);
    }

    /** Accuracy over conditional branches, in [0,1]. */
    double accuracy() const { return 1.0 - mispRate(); }

    /** Merges another tally into this one (for aggregating benchmarks). */
    void
    merge(const PredictionStats &other)
    {
        lookups_ += other.lookups_;
        mispredictions_ += other.mispredictions_;
        instructions_ += other.instructions_;
    }

    /** One-line human-readable summary. */
    std::string summary() const;

  private:
    uint64_t lookups_ = 0;
    uint64_t mispredictions_ = 0;
    uint64_t instructions_ = 0;
};

} // namespace ev8

#endif // EV8_COMMON_STATS_HH
