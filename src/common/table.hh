/**
 * @file
 * Plain-text table and bar-chart rendering for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * these helpers print them in a consistent, diff-friendly layout.
 */

#ifndef EV8_COMMON_TABLE_HH
#define EV8_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace ev8
{

/**
 * A simple left/right aligned ASCII table. Columns are sized to fit; the
 * first column is left-aligned (row labels), the rest right-aligned.
 */
class TextTable
{
  public:
    /** Sets the header row. */
    void header(std::vector<std::string> cells);

    /** Appends a data row (may be ragged; missing cells print empty). */
    void row(std::vector<std::string> cells);

    /** Convenience: label + doubles formatted with @p precision. */
    void rowValues(const std::string &label,
                   const std::vector<double> &values, int precision = 2);

    /** Renders the table, including a rule under the header. */
    std::string render() const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Renders a horizontal ASCII bar chart: one bar per (label, value), a
 * textual stand-in for the paper's per-benchmark bar figures.
 */
std::string renderBarChart(const std::string &title,
                           const std::vector<std::string> &labels,
                           const std::vector<double> &values,
                           int width = 50);

/** Formats a double with fixed precision. */
std::string fmt(double value, int precision = 2);

} // namespace ev8

#endif // EV8_COMMON_TABLE_HH
