/**
 * @file
 * Portable 4x64-bit vector wrapper for the fused simulation kernel.
 *
 * Two interchangeable value types implement the same tiny API: U64x4,
 * a pure-scalar emulation that compiles everywhere, and U64x4Avx2, a
 * thin veneer over AVX2 intrinsics compiled only into the translation
 * unit built with -mavx2 (fused_vec_avx2.cc). Which one runs is a
 * per-walk runtime decision (activeBackend()): cpuid picks AVX2 when
 * both the build and the CPU support it, and the EV8_SIMD environment
 * knob overrides the choice for A/B runs and determinism tests.
 *
 * The emulation is semantics-exact with AVX2 where the instruction
 * sets could differ: variable shifts (srlv/sllv) yield 0 for counts
 * >= 64, matching VPSRLVQ/VPSLLVQ, so the two backends compute
 * bit-identical results by construction, not by luck. Immediate-count
 * operator<</>> require counts < 64 (both backends; VPSLLQ would also
 * zero at >= 64 but no call site shifts that far).
 *
 * Every operation here is wait-free straight-line arithmetic; gather()
 * takes absolute byte addresses (as uint64_t lanes) rather than a
 * base + index pair so one gather can mix reads from different tables.
 */

#ifndef EV8_COMMON_SIMD_HH
#define EV8_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ev8
{
namespace simd
{

/** The runtime-selected vector backend of the fused group steppers. */
enum class Backend
{
    Off,    //!< scalar per-lane stepping (the pre-vector hot path)
    Scalar, //!< vector path on the U64x4 emulation (any CPU)
    Avx2,   //!< vector path on AVX2 intrinsics
};

/** True when this build contains the -mavx2 translation unit. */
constexpr bool
builtWithAvx2()
{
#ifdef EV8_HAVE_AVX2
    return true;
#else
    return false;
#endif
}

/** True when the executing CPU reports AVX2 (cached cpuid probe). */
bool cpuHasAvx2();

/**
 * Resolves EV8_SIMD to the backend for this walk: "0" forces the
 * scalar steppers, "scalar" the emulated vector path, "avx2" the
 * intrinsic path (usage error, exit 2, when build or CPU lack it).
 * Unset picks AVX2 when available and otherwise falls back to the
 * tuned scalar steppers. Any other value is a usage error (exit 2),
 * matching the strict EV8_* parsing convention of common/env.hh.
 */
Backend activeBackend();

/** Stable lowercase name for reports: "off" / "scalar" / "avx2". */
const char *backendName(Backend backend);

/** Lanes one vector op covers: 1 for Off, 4 for the vector paths. */
unsigned backendLanes(Backend backend);

/**
 * The portable emulation backend: four uint64_t lanes stepped by plain
 * scalar code. Exists so the vector group steppers have exactly one
 * template definition whose arithmetic can be byte-compared against
 * AVX2 on any machine.
 */
struct U64x4
{
    static constexpr size_t kLanes = 4;

    uint64_t l[kLanes];

    U64x4() = default;
    explicit U64x4(uint64_t v) : l{v, v, v, v} {}

    static U64x4
    zero()
    {
        return U64x4(0);
    }

    static U64x4
    load(const uint64_t *p)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = p[i];
        return r;
    }

    void
    store(uint64_t *p) const
    {
        for (size_t i = 0; i < kLanes; ++i)
            p[i] = l[i];
    }

    friend U64x4
    operator&(const U64x4 &a, const U64x4 &b)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] & b.l[i];
        return r;
    }

    friend U64x4
    operator|(const U64x4 &a, const U64x4 &b)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] | b.l[i];
        return r;
    }

    friend U64x4
    operator^(const U64x4 &a, const U64x4 &b)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] ^ b.l[i];
        return r;
    }

    U64x4
    operator~() const
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = ~l[i];
        return r;
    }

    /** Immediate shifts; @p s must be < 64 (see file comment). */
    U64x4
    operator<<(unsigned s) const
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = l[i] << s;
        return r;
    }

    U64x4
    operator>>(unsigned s) const
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = l[i] >> s;
        return r;
    }

    static U64x4
    add(const U64x4 &a, const U64x4 &b)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] + b.l[i];
        return r;
    }

    /** Per-lane variable right shift; counts >= 64 yield 0 (VPSRLVQ). */
    static U64x4
    srlv(const U64x4 &x, const U64x4 &n)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = n.l[i] >= 64 ? 0 : x.l[i] >> n.l[i];
        return r;
    }

    /** Per-lane variable left shift; counts >= 64 yield 0 (VPSLLVQ). */
    static U64x4
    sllv(const U64x4 &x, const U64x4 &n)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = n.l[i] >= 64 ? 0 : x.l[i] << n.l[i];
        return r;
    }

    /** Lanewise select: mask bit set -> yes, clear -> no. */
    static U64x4
    blend(const U64x4 &mask, const U64x4 &yes, const U64x4 &no)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = (yes.l[i] & mask.l[i]) | (no.l[i] & ~mask.l[i]);
        return r;
    }

    /** Loads one uint64_t per lane from an absolute byte address. */
    static U64x4
    gather(const U64x4 &addr)
    {
        U64x4 r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = *reinterpret_cast<const uint64_t *>(
                static_cast<uintptr_t>(addr.l[i]));
        return r;
    }

    bool
    allZero() const
    {
        return (l[0] | l[1] | l[2] | l[3]) == 0;
    }
};

#if defined(__AVX2__)

/** The AVX2 backend; same API and semantics as U64x4. */
struct U64x4Avx2
{
    static constexpr size_t kLanes = 4;

    __m256i v;

    U64x4Avx2() = default;
    explicit U64x4Avx2(uint64_t x)
        : v(_mm256_set1_epi64x(static_cast<long long>(x)))
    {}
    explicit U64x4Avx2(__m256i x) : v(x) {}

    static U64x4Avx2
    zero()
    {
        return U64x4Avx2(_mm256_setzero_si256());
    }

    static U64x4Avx2
    load(const uint64_t *p)
    {
        return U64x4Avx2(
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p)));
    }

    void
    store(uint64_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    friend U64x4Avx2
    operator&(const U64x4Avx2 &a, const U64x4Avx2 &b)
    {
        return U64x4Avx2(_mm256_and_si256(a.v, b.v));
    }

    friend U64x4Avx2
    operator|(const U64x4Avx2 &a, const U64x4Avx2 &b)
    {
        return U64x4Avx2(_mm256_or_si256(a.v, b.v));
    }

    friend U64x4Avx2
    operator^(const U64x4Avx2 &a, const U64x4Avx2 &b)
    {
        return U64x4Avx2(_mm256_xor_si256(a.v, b.v));
    }

    U64x4Avx2
    operator~() const
    {
        return U64x4Avx2(_mm256_xor_si256(v, _mm256_set1_epi64x(-1)));
    }

    U64x4Avx2
    operator<<(unsigned s) const
    {
        return U64x4Avx2(
            _mm256_sll_epi64(v, _mm_cvtsi32_si128(static_cast<int>(s))));
    }

    U64x4Avx2
    operator>>(unsigned s) const
    {
        return U64x4Avx2(
            _mm256_srl_epi64(v, _mm_cvtsi32_si128(static_cast<int>(s))));
    }

    static U64x4Avx2
    add(const U64x4Avx2 &a, const U64x4Avx2 &b)
    {
        return U64x4Avx2(_mm256_add_epi64(a.v, b.v));
    }

    static U64x4Avx2
    srlv(const U64x4Avx2 &x, const U64x4Avx2 &n)
    {
        return U64x4Avx2(_mm256_srlv_epi64(x.v, n.v));
    }

    static U64x4Avx2
    sllv(const U64x4Avx2 &x, const U64x4Avx2 &n)
    {
        return U64x4Avx2(_mm256_sllv_epi64(x.v, n.v));
    }

    static U64x4Avx2
    blend(const U64x4Avx2 &mask, const U64x4Avx2 &yes,
          const U64x4Avx2 &no)
    {
        return U64x4Avx2(_mm256_or_si256(
            _mm256_and_si256(yes.v, mask.v),
            _mm256_andnot_si256(mask.v, no.v)));
    }

    static U64x4Avx2
    gather(const U64x4Avx2 &addr)
    {
        return U64x4Avx2(_mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(0), addr.v, 1));
    }

    bool
    allZero() const
    {
        return _mm256_testz_si256(v, v) != 0;
    }
};

#endif // __AVX2__

} // namespace simd
} // namespace ev8

#endif // EV8_COMMON_SIMD_HH
