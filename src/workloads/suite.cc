#include "workloads/suite.hh"

#include <cstdlib>
#include <stdexcept>

#include "common/env.hh"

namespace ev8
{

namespace
{

/**
 * Builds one suite profile. The shape parameters target the Table 2
 * static footprints: static conditional branches ~= numFunctions *
 * meanBlocksPerFunction * condFraction (most sites execute at least
 * once thanks to dispatch calls spreading coverage).
 */
WorkloadProfile
makeProfile(const std::string &name, uint64_t seed, unsigned num_functions,
            unsigned min_blocks, unsigned max_blocks)
{
    WorkloadProfile p;
    p.name = name;
    p.seed = seed;
    p.shape.numFunctions = num_functions;
    p.shape.minBlocksPerFunction = min_blocks;
    p.shape.maxBlocksPerFunction = max_blocks;
    return p;
}

std::vector<Benchmark>
buildSuite()
{
    std::vector<Benchmark> suite;

    // ---- compress: tiny footprint (~46 static), tight loops over a
    // hash table; data-dependent bit-twiddling keeps it mid-pack in
    // difficulty despite the tiny footprint.
    {
        Benchmark b;
        b.profile = makeProfile("compress", 0xc0301, 3, 14, 22);
        b.profile.shape.condFraction = 0.62;
        b.profile.shape.loopBackFraction = 0.15;
        b.profile.shape.callFraction = 0.05;
        b.profile.mix = {.biased = 0.56, .loop = 0.01, .pattern = 0.01,
                         .globalCorrelated = 0.29, .pathCorrelated = 0.04,
                         .random = 0.09};
        b.profile.tuning.biasedStrength = 0.995;
        b.profile.tuning.biasedNoise = 0.004;
        b.profile.tuning.corrMaxDepth = 10;
        b.profile.tuning.corrNoise = 0.02;
        b.profile.tuning.loopMaxTrip = 12;
        b.dynamicWeight = 12044.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    // ---- gcc: the giant (~12k static branches): big aliasing pressure,
    // deep correlations (long history pays off), moderate noise.
    {
        Benchmark b;
        b.profile = makeProfile("gcc", 0x6cc02, 380, 28, 62);
        b.profile.shape.minBlockInstrs = 1;
        b.profile.shape.maxBlockInstrs = 6;
        b.profile.shape.condFraction = 0.64;
        b.profile.shape.callFraction = 0.10;
        b.profile.shape.driverDispatchWidth = 64;
        b.profile.shape.driverCallFraction = 0.30;
        b.profile.shape.dispatchSwitchChance = 0.05;
        b.profile.mix = {.biased = 0.51, .loop = 0.01, .pattern = 0.02,
                         .globalCorrelated = 0.32, .pathCorrelated = 0.08,
                         .random = 0.045};
        b.profile.tuning.biasedStrength = 0.997;
        b.profile.tuning.biasedNoise = 0.003;
        b.profile.tuning.corrMaxDepth = 22;
        b.profile.tuning.corrTaps = 2;
        b.profile.tuning.corrNoise = 0.008;
        b.dynamicWeight = 16035.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    // ---- go: the hardest benchmark: large footprint (~3.7k static) and
    // a heavy dose of data-dependent (random) decisions.
    {
        Benchmark b;
        b.profile = makeProfile("go", 0x90003, 125, 26, 56);
        b.profile.shape.condFraction = 0.65;
        b.profile.shape.callFraction = 0.09;
        b.profile.shape.driverDispatchWidth = 40;
        b.profile.shape.driverCallFraction = 0.26;
        b.profile.shape.dispatchSwitchChance = 0.05;
        b.profile.mix = {.biased = 0.38, .loop = 0.01, .pattern = 0.03,
                         .globalCorrelated = 0.27, .pathCorrelated = 0.08,
                         .random = 0.23};
        b.profile.tuning.biasedStrength = 0.96;
        b.profile.tuning.biasedNoise = 0.03;
        b.profile.tuning.corrMaxDepth = 12;
        b.profile.tuning.corrNoise = 0.03;
        b.dynamicWeight = 11285.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    // ---- ijpeg: loop-dominated numeric kernels (~0.9k static); highly
    // predictable once history covers the trip counts.
    {
        Benchmark b;
        b.profile = makeProfile("ijpeg", 0x17e604, 38, 22, 44);
        b.profile.shape.condFraction = 0.58;
        b.profile.shape.loopBackFraction = 0.35;
        b.profile.shape.callFraction = 0.07;
        b.profile.mix = {.biased = 0.62, .loop = 0.02, .pattern = 0.02,
                         .globalCorrelated = 0.26, .pathCorrelated = 0.03,
                         .random = 0.05};
        b.profile.tuning.biasedStrength = 0.998;
        b.profile.tuning.biasedNoise = 0.002;
        b.profile.tuning.corrMaxDepth = 12;
        b.profile.tuning.corrNoise = 0.004;
        b.profile.tuning.loopMaxTrip = 24;
        b.dynamicWeight = 8894.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    // ---- li: lisp interpreter (~250 static): recursion-heavy, strongly
    // correlated through global history and path.
    {
        Benchmark b;
        b.profile = makeProfile("li", 0x11905, 22, 14, 30);
        b.profile.shape.loopBackFraction = 0.12;
        b.profile.shape.minBlockInstrs = 1;
        b.profile.shape.maxBlockInstrs = 6;
        b.profile.shape.condFraction = 0.60;
        b.profile.shape.callFraction = 0.14;
        b.profile.shape.driverDispatchWidth = 10;
        b.profile.mix = {.biased = 0.52, .loop = 0.01, .pattern = 0.02,
                         .globalCorrelated = 0.35, .pathCorrelated = 0.06,
                         .random = 0.022};
        b.profile.tuning.loopMaxTrip = 10;
        b.profile.tuning.biasedStrength = 0.998;
        b.profile.tuning.biasedNoise = 0.002;
        b.profile.tuning.corrMaxDepth = 14;
        b.profile.tuning.corrNoise = 0.004;
        b.dynamicWeight = 16254.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    // ---- m88ksim: CPU simulator main loop (~400 static): extremely
    // predictable, strongly biased dispatch branches.
    {
        Benchmark b;
        b.profile = makeProfile("m88ksim", 0x880006, 22, 16, 34);
        b.profile.shape.loopBackFraction = 0.10;
        b.profile.shape.minBlockInstrs = 1;
        b.profile.shape.maxBlockInstrs = 6;
        b.profile.shape.condFraction = 0.60;
        b.profile.shape.callFraction = 0.10;
        b.profile.mix = {.biased = 0.66, .loop = 0.01, .pattern = 0.01,
                         .globalCorrelated = 0.28, .pathCorrelated = 0.03,
                         .random = 0.008};
        b.profile.tuning.loopMaxTrip = 8;
        b.profile.tuning.biasedStrength = 0.999;
        b.profile.tuning.biasedNoise = 0.001;
        b.profile.tuning.corrMaxDepth = 14;
        b.profile.tuning.corrNoise = 0.002;
        b.dynamicWeight = 9706.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    // ---- perl: interpreter dispatch (~270 static): predictable, deep
    // global correlation from the opcode dispatch chain.
    {
        Benchmark b;
        b.profile = makeProfile("perl", 0x9e1207, 20, 14, 30);
        b.profile.shape.loopBackFraction = 0.10;
        b.profile.shape.condFraction = 0.62;
        b.profile.shape.callFraction = 0.12;
        b.profile.shape.driverDispatchWidth = 12;
        b.profile.mix = {.biased = 0.54, .loop = 0.01, .pattern = 0.01,
                         .globalCorrelated = 0.34, .pathCorrelated = 0.08,
                         .random = 0.014};
        b.profile.tuning.loopMaxTrip = 8;
        b.profile.tuning.biasedStrength = 0.999;
        b.profile.tuning.biasedNoise = 0.001;
        b.profile.tuning.corrMaxDepth = 16;
        b.profile.tuning.corrNoise = 0.003;
        b.dynamicWeight = 13263.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    // ---- vortex: OO database (~2.2k static): the most predictable of
    // the suite; heavily biased checks with mild correlation, and the
    // highest branch density (Table 3's largest lghist ratio).
    {
        Benchmark b;
        b.profile = makeProfile("vortex", 0x0e7e08, 85, 18, 38);
        b.profile.shape.loopBackFraction = 0.08;
        b.profile.shape.condFraction = 0.68;
        b.profile.shape.callFraction = 0.10;
        b.profile.shape.driverDispatchWidth = 32;
        b.profile.shape.driverCallFraction = 0.24;
        b.profile.shape.minBlockInstrs = 1;
        b.profile.shape.maxBlockInstrs = 7;
        b.profile.mix = {.biased = 0.70, .loop = 0.01, .pattern = 0.01,
                         .globalCorrelated = 0.23, .pathCorrelated = 0.04,
                         .random = 0.005};
        b.profile.tuning.loopMaxTrip = 6;
        b.profile.tuning.biasedStrength = 0.9995;
        b.profile.tuning.biasedNoise = 0.0005;
        b.profile.tuning.corrMaxDepth = 14;
        b.profile.tuning.corrNoise = 0.0015;
        b.dynamicWeight = 12757.0 / 12000.0;
        suite.push_back(std::move(b));
    }

    return suite;
}

} // namespace

const std::vector<Benchmark> &
specint95Suite()
{
    static const std::vector<Benchmark> suite = buildSuite();
    return suite;
}

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const auto &b : specint95Suite()) {
        if (b.profile.name == name)
            return b;
    }
    throw std::out_of_range("no such benchmark: " + name);
}

uint64_t
branchesPerBenchmark()
{
    // Strict: a typo like "1e6" or "1,000,000" is a hard usage error
    // (exit 2), never a silent fall-back to the default budget.
    return strictEnvU64("EV8_BRANCHES_PER_BENCH", 1,
                        uint64_t{1} << 40, 1000000);
}

} // namespace ev8
