#include "workloads/branch_behavior.hh"

#include <algorithm>
#include <cassert>

#include "common/bits.hh"

namespace ev8
{

bool
BiasedBehavior::nextOutcome(BehaviorContext &ctx)
{
    return ctx.rng->chance(pTaken);
}

LoopBehavior::LoopBehavior(unsigned trip, unsigned min_trip,
                           unsigned max_trip, double reroll_chance)
    : trip(std::max(1u, trip)), minTrip(std::max(1u, min_trip)),
      maxTrip(std::max(min_trip, max_trip)), rerollChance(reroll_chance)
{
}

bool
LoopBehavior::nextOutcome(BehaviorContext &ctx)
{
    ++position;
    if (position >= trip) {
        position = 0;
        if (rerollChance > 0.0 && ctx.rng->chance(rerollChance))
            trip = static_cast<unsigned>(ctx.rng->range(minTrip, maxTrip));
        return false; // loop exit: fall through
    }
    return true; // loop again
}

PatternBehavior::PatternBehavior(std::vector<bool> pattern)
    : pattern_(std::move(pattern))
{
    if (pattern_.empty())
        pattern_.push_back(false);
}

bool
PatternBehavior::nextOutcome(BehaviorContext &)
{
    const bool out = pattern_[position];
    position = (position + 1) % pattern_.size();
    return out;
}

GlobalCorrelatedBehavior::GlobalCorrelatedBehavior(uint64_t tap_mask,
                                                   CorrKind kind,
                                                   bool invert, double noise)
    : taps(tap_mask ? tap_mask : 1), form(kind), invert(invert),
      noise(noise)
{
    // Split the taps into two halves for the And/Or forms. With a single
    // tap both halves see the same bit, degenerating gracefully.
    unsigned seen = 0;
    unsigned total = 0;
    for (unsigned i = 0; i < 64; ++i)
        total += bit(taps, i) ? 1 : 0;
    for (unsigned i = 0; i < 64; ++i) {
        if (!bit(taps, i))
            continue;
        if (seen < (total + 1) / 2)
            tapsLow |= uint64_t{1} << i;
        else
            tapsHigh |= uint64_t{1} << i;
        ++seen;
    }
    if (tapsHigh == 0)
        tapsHigh = tapsLow;
}

bool
GlobalCorrelatedBehavior::nextOutcome(BehaviorContext &ctx)
{
    bool out;
    switch (form) {
      case CorrKind::Xor:
        out = parity(ctx.ghist & taps) != 0;
        break;
      case CorrKind::And:
        out = (parity(ctx.ghist & tapsLow) & parity(ctx.ghist & tapsHigh))
            != 0;
        break;
      case CorrKind::Or:
      default:
        out = (parity(ctx.ghist & tapsLow) | parity(ctx.ghist & tapsHigh))
            != 0;
        break;
    }
    if (invert)
        out = !out;
    if (noise > 0.0 && ctx.rng->chance(noise))
        out = !out;
    return out;
}

unsigned
GlobalCorrelatedBehavior::deepestTap() const
{
    unsigned deepest = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if (bit(taps, i))
            deepest = i + 1;
    }
    return deepest;
}

PathCorrelatedBehavior::PathCorrelatedBehavior(uint64_t tap_mask,
                                               bool invert, double noise)
    : taps(tap_mask ? tap_mask : 1), invert(invert), noise(noise)
{
}

bool
PathCorrelatedBehavior::nextOutcome(BehaviorContext &ctx)
{
    bool out = parity(ctx.path & taps) != 0;
    if (invert)
        out = !out;
    if (noise > 0.0 && ctx.rng->chance(noise))
        out = !out;
    return out;
}

bool
RandomBehavior::nextOutcome(BehaviorContext &ctx)
{
    return ctx.rng->chance(0.5);
}

namespace
{

/** Draws a tap mask with @p num_taps distinct bits in [min_d, max_d). */
uint64_t
drawTapMask(unsigned num_taps, unsigned min_d, unsigned max_d, Rng &rng)
{
    assert(max_d > min_d && max_d <= 63);
    uint64_t taps = 0;
    for (unsigned t = 0; t < num_taps; ++t)
        taps |= uint64_t{1} << rng.range(min_d, max_d - 1);
    return taps;
}

std::unique_ptr<BranchBehavior>
sampleBiased(const BehaviorTuning &tuning, Rng &rng)
{
    // Strong bias with a little per-branch spread. Optimized Alpha code
    // skews not-taken (Section 5.1), hence the NT skew knob.
    double strength = tuning.biasedStrength
        + (rng.uniform() - 0.5) * 2.0 * tuning.biasedNoise;
    strength = std::clamp(strength, 0.5, 1.0);
    const bool nt_biased = rng.chance(tuning.biasedNotTakenSkew);
    return std::make_unique<BiasedBehavior>(nt_biased ? 1.0 - strength
                                                      : strength);
}

} // namespace

std::unique_ptr<BranchBehavior>
sampleLoopBehavior(const BehaviorTuning &tuning, Rng &rng)
{
    // Geometric-ish trip counts: short loops common, long loops rare.
    const unsigned span = tuning.loopMaxTrip - tuning.loopMinTrip;
    const double u = rng.uniform();
    const unsigned trip = tuning.loopMinTrip
        + static_cast<unsigned>(span * u * u);
    return std::make_unique<LoopBehavior>(trip, tuning.loopMinTrip,
                                          tuning.loopMaxTrip,
                                          tuning.loopReroll);
}

std::unique_ptr<BranchBehavior>
sampleBehavior(const BehaviorMix &mix, const BehaviorTuning &tuning,
               Rng &rng)
{
    const double total = mix.biased + mix.loop + mix.pattern
        + mix.globalCorrelated + mix.pathCorrelated + mix.random;
    assert(total > 0.0);
    double draw = rng.uniform() * total;

    if ((draw -= mix.biased) < 0.0)
        return sampleBiased(tuning, rng);

    if ((draw -= mix.loop) < 0.0)
        return sampleLoopBehavior(tuning, rng);

    if ((draw -= mix.pattern) < 0.0) {
        const unsigned len = static_cast<unsigned>(
            rng.range(tuning.patternMinLen, tuning.patternMaxLen));
        std::vector<bool> pattern(len);
        for (unsigned i = 0; i < len; ++i)
            pattern[i] = !rng.chance(tuning.patternNotTakenSkew);
        return std::make_unique<PatternBehavior>(std::move(pattern));
    }

    if ((draw -= mix.globalCorrelated) < 0.0) {
        const uint64_t taps = drawTapMask(tuning.corrTaps,
                                          tuning.corrMinDepth,
                                          tuning.corrMaxDepth, rng);
        const double total_w = tuning.corrAndWeight + tuning.corrXorWeight
            + tuning.corrOrWeight;
        double w = rng.uniform() * total_w;
        CorrKind kind = CorrKind::Or;
        if ((w -= tuning.corrAndWeight) < 0.0)
            kind = CorrKind::And;
        else if ((w -= tuning.corrXorWeight) < 0.0)
            kind = CorrKind::Xor;
        // Rare inversion keeps variety without washing out the
        // suite-level not-taken skew.
        return std::make_unique<GlobalCorrelatedBehavior>(
            taps, kind, rng.chance(0.15), tuning.corrNoise);
    }

    if ((draw -= mix.pathCorrelated) < 0.0) {
        const uint64_t taps = drawTapMask(tuning.corrTaps, 0, 16, rng);
        return std::make_unique<PathCorrelatedBehavior>(
            taps, rng.chance(0.5), tuning.corrNoise);
    }

    return std::make_unique<RandomBehavior>();
}

} // namespace ev8
