#include "workloads/synthetic_program.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/bits.hh"

namespace ev8
{

namespace
{

/** Mixes a per-branch seed out of the profile seed and branch ordinal. */
uint64_t
branchSeed(uint64_t base, uint64_t ordinal)
{
    uint64_t z = base ^ (ordinal * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

SyntheticProgram::SyntheticProgram(const WorkloadProfile &profile)
    : profile_(profile)
{
    const ProgramShape &shape = profile_.shape;
    assert(shape.numFunctions >= 1);
    assert(shape.minBlocksPerFunction >= 3);
    assert(shape.maxBlocksPerFunction >= shape.minBlocksPerFunction);
    assert(shape.minBlockInstrs >= 1);
    assert(shape.maxBlockInstrs <= 32);

    Rng rng(profile_.seed);

    // Pass 1: choose the block count of every function so that call
    // targets (function entry indices) are known up front.
    std::vector<unsigned> func_blocks(shape.numFunctions);
    entries_.resize(shape.numFunctions);
    unsigned total_blocks = 0;
    for (unsigned f = 0; f < shape.numFunctions; ++f) {
        func_blocks[f] = static_cast<unsigned>(
            rng.range(shape.minBlocksPerFunction,
                      shape.maxBlocksPerFunction));
        entries_[f] = static_cast<int>(total_blocks);
        total_blocks += func_blocks[f];
    }
    blocks_.reserve(total_blocks);

    // Pass 2: generate each function's blocks.
    for (unsigned f = 0; f < shape.numFunctions; ++f) {
        const unsigned n = func_blocks[f];
        const int base = entries_[f];
        bool func_has_cond = false;

        for (unsigned j = 0; j < n; ++j) {
            BasicBlock block;
            block.numInstrs = static_cast<unsigned>(
                rng.range(shape.minBlockInstrs, shape.maxBlockInstrs));

            const bool last = (j == n - 1);
            if (last) {
                // Function 0 is the driver: its tail jumps back to its
                // entry, forming the benchmark's outer loop. All other
                // functions end in a return.
                if (f == 0) {
                    block.term = TermKind::Jump;
                    block.target = entries_[0];
                } else {
                    block.term = TermKind::Return;
                }
                blocks_.push_back(block);
                continue;
            }

            double draw = rng.uniform();
            // Force at least one conditional into the driver function so
            // every outer-loop iteration makes observable progress.
            if (f == 0 && j == n - 2 && !func_has_cond)
                draw = 0.0;

            if ((draw -= shape.condFraction) < 0.0) {
                block.term = TermKind::Cond;
                func_has_cond = true;

                const bool has_forward_room = j + 2 <= n - 1;
                const bool backward = !has_forward_room
                    || (j > 0 && rng.chance(shape.loopBackFraction));

                BehaviorSpec spec;
                spec.seed = branchSeed(profile_.seed ^ 0xb7ae15u,
                                       behaviorSpecs.size());
                if (backward) {
                    // Loop-closing branch: jumps back a short span.
                    const unsigned span = shape.maxLoopSpan;
                    const unsigned lo = j >= span ? j - span : 0;
                    block.target = base
                        + static_cast<int>(rng.range(lo, j));
                    spec.isLoop = true;
                } else {
                    // Forward branch skipping at least one block so the
                    // taken target differs from the fall-through.
                    const unsigned hi = std::min(j + 8, n - 1);
                    block.target = base
                        + static_cast<int>(rng.range(j + 2, hi));
                    spec.isLoop = false;
                }
                block.behavior = static_cast<int>(behaviorSpecs.size());
                behaviorSpecs.push_back(spec);
            } else if ((draw -= shape.jumpFraction) < 0.0
                       && j + 2 <= n - 1) {
                // Forward-only jumps: cycles may only close through
                // loop-conditionals (guaranteed to exit) so no CTI-free
                // infinite cycle can form.
                block.term = TermKind::Jump;
                block.target = base
                    + static_cast<int>(rng.range(j + 2, n - 1));
            } else if ((draw -= (f == 0 ? shape.driverCallFraction
                                        : shape.callFraction)) < 0.0
                       && f + 1 < shape.numFunctions) {
                // Calls go strictly to higher-numbered functions, so the
                // dynamic call depth is bounded by the function count.
                // A call site carries a *set* of candidate callees: the
                // driver function dispatches widely (interpreter-style),
                // inner functions narrowly. Dispatch is what spreads
                // dynamic coverage across the whole CFG.
                block.term = TermKind::Call;
                const unsigned width = f == 0 ? shape.driverDispatchWidth
                                              : shape.maxCalleesPerSite;
                std::vector<int> callees;
                const unsigned n_callees = static_cast<unsigned>(
                    rng.range(1, std::max(1u, width)));
                for (unsigned c = 0; c < n_callees; ++c) {
                    callees.push_back(entries_[static_cast<unsigned>(
                        rng.range(f + 1, shape.numFunctions - 1))]);
                }
                block.target = static_cast<int>(callSets.size());
                callSets.push_back(std::move(callees));
            } else {
                block.term = TermKind::FallThrough;
            }
            blocks_.push_back(block);
        }
    }

    // Pass 3: lay the blocks out in the text segment. Function entries
    // are aligned to 8-instruction fetch rows, as a compiler would.
    uint64_t pc = shape.textBase;
    size_t next_entry = 0;
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (next_entry < entries_.size()
            && static_cast<int>(i) == entries_[next_entry]) {
            pc = (pc + 31) & ~uint64_t{31};
            ++next_entry;
        }
        blocks_[i].pc = pc;
        pc += blocks_[i].numInstrs * kInstrBytes;
    }
}

std::unique_ptr<BranchBehavior>
SyntheticProgram::makeBehavior(size_t idx) const
{
    const BehaviorSpec &spec = behaviorSpecs[idx];
    Rng rng(spec.seed);
    if (spec.isLoop)
        return sampleLoopBehavior(profile_.tuning, rng);
    return sampleBehavior(profile_.mix, profile_.tuning, rng);
}

std::unordered_map<uint64_t, std::string>
SyntheticProgram::condBranchClasses() const
{
    std::unordered_map<uint64_t, std::string> classes;
    for (const BasicBlock &block : blocks_) {
        if (block.term != TermKind::Cond || block.behavior < 0)
            continue;
        classes[block.termPc()] =
            makeBehavior(static_cast<size_t>(block.behavior))->name();
    }
    return classes;
}

Trace
SyntheticProgram::run(uint64_t dynamic_cond_branches,
                      uint64_t run_seed) const
{
    // Fresh behaviour instances so repeated runs are identical.
    std::vector<std::unique_ptr<BranchBehavior>> behaviors;
    behaviors.reserve(behaviorSpecs.size());
    for (size_t i = 0; i < behaviorSpecs.size(); ++i)
        behaviors.push_back(makeBehavior(i));

    Rng noise_rng(profile_.seed ^ 0x5eed0fUL
                  ^ (run_seed * 0x9e3779b97f4a7c15ULL));
    BehaviorContext ctx;
    ctx.rng = &noise_rng;

    Trace trace(profile_.name, blocks_[entries_[0]].pc);
    trace.records().reserve(dynamic_cond_branches * 2);

    std::vector<int> call_stack;
    std::vector<int> dispatch_choice(callSets.size(), -1);
    int pos = entries_[0];
    uint64_t cond_count = 0;
    uint64_t steps_since_cond = 0;
    const uint64_t progress_limit = blocks_.size() * 8 + 64;

    // Short-window path context: one byte of the last three taken-CTI
    // targets. Path-correlated branch outcomes are functions of these 24
    // bits, i.e. of *recent* control-flow provenance -- precisely the
    // information the EV8 information vector captures through the lghist
    // path bits and the Z/Y/X block addresses (Sections 5.1-5.2), and
    // that pure outcome history does not.
    auto note_path = [&ctx](uint64_t, uint64_t to_pc) {
        ctx.path = ((ctx.path << 8) | ((to_pc >> 2) & 0xff)) & mask(24);
    };

    while (cond_count < dynamic_cond_branches) {
        const BasicBlock &block = blocks_[static_cast<size_t>(pos)];

        if (++steps_since_cond > progress_limit) {
            throw std::logic_error(
                "synthetic program stopped making progress");
        }

        BranchRecord rec;
        rec.pc = block.termPc();

        switch (block.term) {
          case TermKind::FallThrough:
            ++pos;
            continue;

          case TermKind::Cond: {
            const bool taken =
                behaviors[static_cast<size_t>(block.behavior)]
                    ->nextOutcome(ctx);
            rec.type = BranchType::Conditional;
            rec.taken = taken;
            rec.target =
                blocks_[static_cast<size_t>(block.target)].pc;
            trace.append(rec);
            ctx.ghist = (ctx.ghist << 1) | (taken ? 1 : 0);
            if (taken)
                note_path(rec.pc, rec.target);
            ++cond_count;
            steps_since_cond = 0;
            pos = taken ? block.target : pos + 1;
            break;
          }

          case TermKind::Jump:
            rec.type = BranchType::Unconditional;
            rec.taken = true;
            rec.target =
                blocks_[static_cast<size_t>(block.target)].pc;
            trace.append(rec);
            note_path(rec.pc, rec.target);
            pos = block.target;
            break;

          case TermKind::Call: {
            const std::vector<int> &callees =
                callSets[static_cast<size_t>(block.target)];
            // Sticky dispatch: a site keeps calling the same callee for
            // a while (a program phase), occasionally re-drawing. This
            // keeps branch histories repetitive -- hence learnable --
            // while still covering the whole CFG over a long trace.
            int &choice = dispatch_choice[static_cast<size_t>(
                block.target)];
            if (choice < 0
                || (callees.size() > 1
                    && noise_rng.chance(
                        profile_.shape.dispatchSwitchChance))) {
                choice = static_cast<int>(
                    noise_rng.below(callees.size()));
            }
            const int callee = callees[static_cast<size_t>(choice)];
            // Multi-candidate sites model indirect (dispatch) calls.
            rec.type = callees.size() == 1 ? BranchType::Call
                                           : BranchType::Indirect;
            rec.taken = true;
            rec.target = blocks_[static_cast<size_t>(callee)].pc;
            trace.append(rec);
            note_path(rec.pc, rec.target);
            call_stack.push_back(pos + 1);
            pos = callee;
            break;
          }

          case TermKind::Return: {
            assert(!call_stack.empty());
            const int return_to = call_stack.back();
            call_stack.pop_back();
            rec.type = BranchType::Return;
            rec.taken = true;
            rec.target =
                blocks_[static_cast<size_t>(return_to)].pc;
            trace.append(rec);
            note_path(rec.pc, rec.target);
            pos = return_to;
            break;
          }
        }
    }

    assert(trace.isWellFormed());
    return trace;
}

Trace
generateTrace(const WorkloadProfile &profile,
              uint64_t dynamic_cond_branches)
{
    SyntheticProgram program(profile);
    return program.run(dynamic_cond_branches);
}

} // namespace ev8
