/**
 * @file
 * The synthetic SPECINT95 benchmark suite.
 *
 * Eight deterministic synthetic workloads named after the paper's
 * benchmark set (Table 2). Each profile is calibrated on the axes that
 * matter to the paper's experiments:
 *
 *  - static conditional-branch footprint, scaled to Table 2's counts
 *    (compress tiny at ~46, gcc huge at ~12k) -- this drives aliasing
 *    pressure and the benefit of de-aliased predictors;
 *  - relative dynamic branch volume, proportional to Table 2;
 *  - intrinsic predictability (noise floors), reproducing the paper's
 *    difficulty ordering: go hardest, then compress/gcc, with
 *    m88ksim/vortex/perl nearly perfectly predictable;
 *  - correlation depth and loop trip counts, so optimal history lengths
 *    land in the paper's 13-27 bit range and differ per benchmark;
 *  - path-correlated branches, so path information in the information
 *    vector pays off (Figs. 7 and 9).
 */

#ifndef EV8_WORKLOADS_SUITE_HH
#define EV8_WORKLOADS_SUITE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/synthetic_program.hh"

namespace ev8
{

/** One suite entry: a workload profile plus its relative trace length. */
struct Benchmark
{
    WorkloadProfile profile;

    /**
     * Relative weight of this benchmark's dynamic conditional branch
     * count, proportional to Table 2 (compress 12044K ... vortex 12757K).
     */
    double dynamicWeight = 1.0;

    /** Dynamic conditional branches at scale @p base (weight applied). */
    uint64_t
    branchesAt(uint64_t base) const
    {
        return static_cast<uint64_t>(
            static_cast<double>(base) * dynamicWeight);
    }
};

/** The eight SPECINT95-like benchmarks, in the paper's Table 2 order. */
const std::vector<Benchmark> &specint95Suite();

/** Looks up a suite benchmark by name; throws std::out_of_range. */
const Benchmark &findBenchmark(const std::string &name);

/**
 * The per-benchmark base dynamic conditional-branch count used by the
 * bench binaries: the EV8_BRANCHES_PER_BENCH environment variable, or
 * 1,000,000 by default (the paper's traces carry ~10-16M).
 */
uint64_t branchesPerBenchmark();

} // namespace ev8

#endif // EV8_WORKLOADS_SUITE_HH
