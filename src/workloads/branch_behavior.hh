/**
 * @file
 * Outcome models for synthetic static branches.
 *
 * The paper evaluates on SPECINT95 Atom traces we cannot obtain, so each
 * static conditional branch in our synthetic programs is driven by one of
 * these behaviour models. The mix is chosen per benchmark so that the
 * suite exposes the same axes the paper's benchmarks exercise:
 *
 *  - Biased: strongly taken or not-taken branches -- the bread and butter
 *    of the bimodal component (Section 4.2's "strongly biased static
 *    branches").
 *  - Loop: trip-count loops; learnable by a global predictor whose
 *    history covers the trip count, hence a direct source of the "longer
 *    history helps" effect (Section 5.3, Fig. 6).
 *  - Pattern: short repeating local patterns.
 *  - GlobalCorrelated: outcome is a boolean function of recent *global*
 *    outcome history; the mechanism behind inter-branch correlation that
 *    global-history predictors exploit.
 *  - PathCorrelated: outcome depends on the recent *path* (block
 *    addresses), learnable only when path information is part of the
 *    information vector (Sections 5.1-5.2, Fig. 7/9).
 *  - Random: data-dependent unpredictable branches (go is full of them).
 */

#ifndef EV8_WORKLOADS_BRANCH_BEHAVIOR_HH
#define EV8_WORKLOADS_BRANCH_BEHAVIOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hh"

namespace ev8
{

/**
 * Dynamic context a behaviour may consult when producing an outcome.
 * Maintained by the synthetic program's executor.
 */
struct BehaviorContext
{
    uint64_t ghist = 0;   //!< global outcome history, bit 0 most recent
    uint64_t path = 0;    //!< folded recent-path register
    Rng *rng = nullptr;   //!< noise source (deterministic per program)
};

/** Base class of all outcome models; one instance per static branch. */
class BranchBehavior
{
  public:
    virtual ~BranchBehavior() = default;

    /** Produces the next dynamic outcome of this static branch. */
    virtual bool nextOutcome(BehaviorContext &ctx) = 0;

    /** Model name for debugging and workload reports. */
    virtual const char *name() const = 0;
};

/** Taken with fixed probability @p p_taken, independently each time. */
class BiasedBehavior : public BranchBehavior
{
  public:
    explicit BiasedBehavior(double p_taken) : pTaken(p_taken) {}
    bool nextOutcome(BehaviorContext &ctx) override;
    const char *name() const override { return "biased"; }
    double takenProbability() const { return pTaken; }

  private:
    double pTaken;
};

/**
 * A loop-closing branch: taken (trip - 1) consecutive times, then
 * not-taken once, repeating. With @p rerollChance > 0 the trip count is
 * occasionally re-sampled from [minTrip, maxTrip], modelling
 * data-dependent loop bounds.
 */
class LoopBehavior : public BranchBehavior
{
  public:
    LoopBehavior(unsigned trip, unsigned min_trip, unsigned max_trip,
                 double reroll_chance);
    bool nextOutcome(BehaviorContext &ctx) override;
    const char *name() const override { return "loop"; }
    unsigned currentTrip() const { return trip; }

  private:
    unsigned trip;
    unsigned minTrip;
    unsigned maxTrip;
    double rerollChance;
    unsigned position = 0;
};

/** Cycles through a fixed outcome pattern. */
class PatternBehavior : public BranchBehavior
{
  public:
    explicit PatternBehavior(std::vector<bool> pattern);
    bool nextOutcome(BehaviorContext &ctx) override;
    const char *name() const override { return "pattern"; }
    const std::vector<bool> &pattern() const { return pattern_; }

  private:
    std::vector<bool> pattern_;
    size_t position = 0;
};

/**
 * Functional form of a history-correlated outcome. All three forms are
 * deterministic boolean functions of the tapped history bits (hence
 * perfectly learnable by a sufficiently long-history predictor), but
 * their taken rates differ: Xor is balanced, And is taken-rare, Or is
 * taken-often. Mixing them lets a workload hit the not-taken skew of
 * optimized code (Section 5.1) without losing learnability.
 */
enum class CorrKind : uint8_t
{
    Xor, //!< parity of all taps (~50% taken)
    And, //!< parity(low half) AND parity(high half) (~25% taken)
    Or,  //!< parity(low half) OR parity(high half) (~75% taken)
};

/**
 * Outcome = boolean function of selected global-history bits,
 * optionally inverted, flipped with probability @p noise. A table-based
 * global predictor learns this exactly once its history length covers
 * the deepest tap.
 */
class GlobalCorrelatedBehavior : public BranchBehavior
{
  public:
    GlobalCorrelatedBehavior(uint64_t tap_mask, CorrKind kind, bool invert,
                             double noise);
    bool nextOutcome(BehaviorContext &ctx) override;
    const char *name() const override { return "gcorr"; }
    uint64_t tapMask() const { return taps; }
    CorrKind kind() const { return form; }

    /** Depth (1-based) of the deepest history bit consulted. */
    unsigned deepestTap() const;

  private:
    uint64_t taps;
    uint64_t tapsLow = 0;  //!< lower-half taps for And/Or forms
    uint64_t tapsHigh = 0; //!< upper-half taps for And/Or forms
    CorrKind form;
    bool invert;
    double noise;
};

/** Outcome = parity of selected bits of the folded path register. */
class PathCorrelatedBehavior : public BranchBehavior
{
  public:
    PathCorrelatedBehavior(uint64_t tap_mask, bool invert, double noise);
    bool nextOutcome(BehaviorContext &ctx) override;
    const char *name() const override { return "pcorr"; }

  private:
    uint64_t taps;
    bool invert;
    double noise;
};

/** Fair-coin outcomes: inherently unpredictable. */
class RandomBehavior : public BranchBehavior
{
  public:
    bool nextOutcome(BehaviorContext &ctx) override;
    const char *name() const override { return "random"; }
};

/**
 * Relative weights of the behaviour classes when sampling a static
 * branch's model. Weights need not sum to 1; they are normalized.
 */
struct BehaviorMix
{
    double biased = 1.0;
    double loop = 0.0;       //!< only used for forward branches; loops
                             //!< proper are assigned structurally
    double pattern = 0.0;
    double globalCorrelated = 0.0;
    double pathCorrelated = 0.0;
    double random = 0.0;
};

/** Tuning knobs for sampled behaviour instances. */
struct BehaviorTuning
{
    double biasedNotTakenSkew = 0.78; //!< P(a biased branch is NT-biased)
    double biasedStrength = 0.97;     //!< mean |bias| of biased branches
    double biasedNoise = 0.02;        //!< spread around the strength
    unsigned loopMinTrip = 2;
    unsigned loopMaxTrip = 12;
    double loopReroll = 0.0;
    unsigned patternMinLen = 3;
    unsigned patternMaxLen = 10;
    double patternNotTakenSkew = 0.7; //!< P(each pattern bit is NT)
    unsigned corrMinDepth = 2;        //!< shallowest correlation tap
    unsigned corrMaxDepth = 16;       //!< deepest correlation tap
    unsigned corrTaps = 2;            //!< taps per correlated branch (low
                                      //!< counts avoid LFSR-like feedback
                                      //!< chaos through shared history)
    double corrNoise = 0.01;
    double corrAndWeight = 0.5;       //!< P(And form): taken-rare
    double corrXorWeight = 0.3;       //!< P(Xor form): balanced
    double corrOrWeight = 0.2;        //!< P(Or form): taken-often
};

/**
 * Samples a concrete behaviour instance for one static branch according
 * to @p mix and @p tuning, consuming randomness from @p rng.
 */
std::unique_ptr<BranchBehavior> sampleBehavior(const BehaviorMix &mix,
                                               const BehaviorTuning &tuning,
                                               Rng &rng);

/**
 * Samples a loop-closing behaviour (used for structurally backward
 * branches) according to @p tuning.
 */
std::unique_ptr<BranchBehavior> sampleLoopBehavior(
    const BehaviorTuning &tuning, Rng &rng);

} // namespace ev8

#endif // EV8_WORKLOADS_BRANCH_BEHAVIOR_HH
