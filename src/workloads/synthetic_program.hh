/**
 * @file
 * Synthetic-program generator: our stand-in for SPECINT95 binaries.
 *
 * A SyntheticProgram is a randomly generated (but seed-deterministic)
 * control-flow graph: functions made of basic blocks laid out
 * contiguously in a synthetic text segment, with conditional branches,
 * unconditional jumps, calls, and returns. Executing the program walks
 * the CFG, asking each static conditional branch's BranchBehavior for
 * outcomes, and emits a branch Trace identical in form to what Atom
 * instrumentation would have produced (Section 8.1.2 of the paper).
 *
 * The generator controls the properties that matter to branch
 * prediction studies: static branch footprint (aliasing pressure),
 * basic-block length (branches per fetch block, hence the lghist
 * compression ratio of Table 3), taken-rate skew, loop structure, and
 * the predictability mix.
 */

#ifndef EV8_WORKLOADS_SYNTHETIC_PROGRAM_HH
#define EV8_WORKLOADS_SYNTHETIC_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "trace/trace.hh"
#include "workloads/branch_behavior.hh"

namespace ev8
{

/** What ends a basic block. */
enum class TermKind : uint8_t
{
    FallThrough,  //!< no CTI; execution continues into the next block
    Cond,         //!< conditional branch (behaviour-driven)
    Jump,         //!< unconditional direct jump
    Call,         //!< call to another function
    Return,       //!< return to the caller
};

/** A basic block of the synthetic CFG. */
struct BasicBlock
{
    uint64_t pc = 0;         //!< address of the first instruction
    unsigned numInstrs = 1;  //!< instructions including any terminator
    TermKind term = TermKind::FallThrough;

    /**
     * Cond/Jump: taken-target block index. Call: index into the
     * program's call-target sets -- a call site with several candidate
     * callees executes as an indirect (dispatch) call, which is what
     * spreads dynamic coverage across the whole CFG the way interpreter
     * and compiler main loops do.
     */
    int target = -1;
    int behavior = -1;       //!< index into the behaviour pool (Cond only)

    /** Address of the terminator (last) instruction. */
    uint64_t termPc() const { return pc + (numInstrs - 1) * kInstrBytes; }

    /** Address just past the block. */
    uint64_t endPc() const { return pc + numInstrs * kInstrBytes; }
};

/** Structural parameters of a synthetic program. */
struct ProgramShape
{
    unsigned numFunctions = 8;
    unsigned minBlocksPerFunction = 6;
    unsigned maxBlocksPerFunction = 40;
    unsigned minBlockInstrs = 1;
    unsigned maxBlockInstrs = 10;
    double condFraction = 0.62;   //!< P(block ends in a conditional)
    double jumpFraction = 0.06;   //!< P(block ends in a jump)
    double callFraction = 0.08;   //!< P(block ends in a call)
    double loopBackFraction = 0.20; //!< P(conditional is a backward loop)

    /**
     * Maximum blocks a loop-closing branch jumps back over. Small spans
     * keep the loop's global-history period (trip x branches-per-body)
     * within reach of realistic history lengths, like the tight loops
     * of real integer code; predictors with shorter histories still pay
     * on the longer loops, giving the Fig. 6 history-length gradient.
     */
    unsigned maxLoopSpan = 2;

    double driverCallFraction = 0.18;   //!< call density in function 0
    unsigned maxCalleesPerSite = 3;     //!< dispatch width, inner calls
    unsigned driverDispatchWidth = 12;  //!< dispatch width, function 0

    /**
     * Probability per executed call that a dispatch site re-draws its
     * current callee. Low values create program *phases*: repetitive
     * control flow (learnable histories, like real loops and interpreter
     * phases) that still covers the whole CFG over a long trace.
     */
    double dispatchSwitchChance = 0.04;

    uint64_t textBase = 0x120000000ULL; //!< Alpha-style text segment base
};

/** Everything needed to build one benchmark's program. */
struct WorkloadProfile
{
    std::string name;
    uint64_t seed = 1;
    ProgramShape shape;
    BehaviorMix mix;
    BehaviorTuning tuning;
};

/**
 * A generated program: blocks, function entries, and one behaviour
 * instance per static conditional branch. Execution is re-runnable; the
 * behaviour states reset on each run() call.
 */
class SyntheticProgram
{
  public:
    /** Generates the CFG for @p profile (deterministic in the seed). */
    explicit SyntheticProgram(const WorkloadProfile &profile);

    /**
     * Executes the program until @p dynamic_cond_branches conditional
     * branches have executed, returning the trace. Deterministic: two
     * run() calls with the same arguments produce identical traces.
     *
     * @param run_seed perturbs the dynamic behaviour (noise draws and
     *        dispatch choices) without changing the static program --
     *        "same binary, different input". 0 is the default input.
     */
    Trace run(uint64_t dynamic_cond_branches,
              uint64_t run_seed = 0) const;

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const std::vector<int> &functionEntries() const { return entries_; }
    const WorkloadProfile &profile() const { return profile_; }

    /** Candidate-callee sets referenced by Call blocks' target field. */
    const std::vector<std::vector<int>> &callTargetSets() const
    {
        return callSets;
    }

    /** Number of static conditional branch sites in the CFG. */
    size_t staticCondBranches() const { return behaviorSpecs.size(); }

    /**
     * Terminator pc -> behaviour model name ("loop", "gcorr", ...) for
     * every static conditional branch; the event-trace classifier input.
     */
    std::unordered_map<uint64_t, std::string> condBranchClasses() const;

  private:
    struct BehaviorSpec
    {
        bool isLoop = false;   //!< structurally a backward loop branch
        uint64_t seed = 0;     //!< per-branch seed for instantiation
    };

    /** Instantiates a fresh behaviour object for static branch @p idx. */
    std::unique_ptr<BranchBehavior> makeBehavior(size_t idx) const;

    WorkloadProfile profile_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> entries_;  //!< entry block index per function
    std::vector<BehaviorSpec> behaviorSpecs;
    std::vector<std::vector<int>> callSets; //!< dispatch candidate sets
};

/**
 * Convenience: generates @p profile's program and runs it for
 * @p dynamic_cond_branches conditional branches.
 */
Trace generateTrace(const WorkloadProfile &profile,
                    uint64_t dynamic_cond_branches);

} // namespace ev8

#endif // EV8_WORKLOADS_SYNTHETIC_PROGRAM_HH
